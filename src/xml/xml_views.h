// Instantiation of XML in iDM (paper §3.3) and the ActiveXML use-case
// (paper §4.3.1).
//
//   xmltext: V = (χ=C_t)
//   xmlelem: V = (η=N_E, τ=(W_E,T_E), γ=(∅, ⟨children⟩))  — attributes in τ
//   xmldoc:  V = (γ=(∅, ⟨V_root^xmlelem⟩))
//
// View URIs are "<prefix>#<child-index-path>", e.g. "vfs:/a.xml#xml/0/1" is
// the second child of the first child of the root element — stable across
// re-instantiations of the same document.

#ifndef IDM_XML_XML_VIEWS_H_
#define IDM_XML_XML_VIEWS_H_

#include <memory>
#include <string>

#include "core/resource_view.h"
#include "core/service.h"
#include "xml/xml.h"

namespace idm::xml {

/// Builds the xmldoc view graph for \p doc. The graph is materialized
/// eagerly (names, attributes and text are copied out of the tree), so the
/// document need not outlive the views.
core::ViewPtr XmlToViews(const XmlDocument& doc, const std::string& uri_prefix);

/// Builds the view graph for one element subtree.
core::ViewPtr XmlNodeToView(const XmlNode& node, const std::string& uri);

/// ActiveXML, eager variant: walks \p doc and, for every element named "sc",
/// invokes the service named by the element's text content against
/// \p services, parses the payload as XML and inserts it as a following
/// "scresult" sibling (paper §4.3.1's GetDepartments example). Existing
/// scresult siblings are replaced. Unreachable services are left unresolved
/// (the document stays valid); parse failures of a payload are errors.
Status ResolveActiveXml(XmlDocument* doc, const core::ServiceRegistry& services);

/// ActiveXML, lazy/intensional variant: like XmlToViews, but every element
/// containing an "sc" child is exposed with class "axml" and a *lazy* group
/// sequence — the service is only called (and the scresult subtree only
/// built) when the group component is first accessed. This is iDM's
/// intensional-component evaluation (paper §4.3): no call happens unless a
/// consumer navigates into the element.
core::ViewPtr ActiveXmlToViews(std::shared_ptr<const XmlDocument> doc,
                               const std::string& uri_prefix,
                               std::shared_ptr<const core::ServiceRegistry> services);

/// Splits a service-call string "host/Service(arg)" into name ("host/Service")
/// and args ("arg"). No parens → empty args.
void SplitServiceCall(const std::string& call, std::string* name,
                      std::string* args);

}  // namespace idm::xml

#endif  // IDM_XML_XML_VIEWS_H_
