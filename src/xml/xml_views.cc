#include "xml/xml_views.h"

#include "util/string_util.h"

namespace idm::xml {

using core::ContentComponent;
using core::Domain;
using core::GroupComponent;
using core::Schema;
using core::TupleComponent;
using core::Value;
using core::ViewBuilder;
using core::ViewPtr;

namespace {

/// W_E/T_E: XML attributes become the element view's tuple component.
TupleComponent AttributeTuple(const XmlNode& node) {
  if (node.attributes.empty()) return TupleComponent();
  Schema schema;
  std::vector<Value> values;
  for (const auto& attr : node.attributes) {
    schema.Add(attr.name, Domain::kString);
    values.push_back(Value::String(attr.value));
  }
  return TupleComponent::MakeUnchecked(std::move(schema), std::move(values));
}

ViewPtr BuildNodeView(const XmlNode& node, const std::string& uri) {
  if (node.kind == XmlNode::Kind::kText) {
    return ViewBuilder(uri)
        .Class("xmltext")
        .ContentString(node.text)
        .Build();
  }
  std::vector<ViewPtr> children;
  children.reserve(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    children.push_back(
        BuildNodeView(*node.children[i], uri + "/" + std::to_string(i)));
  }
  return ViewBuilder(uri)
      .Class("xmlelem")
      .Name(node.name)
      .Tuple(AttributeTuple(node))
      .GroupSequence(std::move(children))
      .Build();
}

}  // namespace

ViewPtr XmlNodeToView(const XmlNode& node, const std::string& uri) {
  return BuildNodeView(node, uri);
}

ViewPtr XmlToViews(const XmlDocument& doc, const std::string& uri_prefix) {
  std::vector<ViewPtr> root;
  if (doc.root != nullptr) {
    root.push_back(BuildNodeView(*doc.root, uri_prefix + "#xml"));
  }
  return ViewBuilder(uri_prefix + "#xmldoc")
      .Class("xmldoc")
      .GroupSequence(std::move(root))
      .Build();
}

void SplitServiceCall(const std::string& call, std::string* name,
                      std::string* args) {
  std::string trimmed(Trim(call));
  size_t open = trimmed.find('(');
  if (open == std::string::npos) {
    *name = trimmed;
    args->clear();
    return;
  }
  *name = trimmed.substr(0, open);
  size_t close = trimmed.rfind(')');
  if (close == std::string::npos || close < open) close = trimmed.size();
  *args = trimmed.substr(open + 1, close - open - 1);
}

namespace {

Status ResolveElement(XmlNode* node, const core::ServiceRegistry& services) {
  for (size_t i = 0; i < node->children.size(); ++i) {
    XmlNode* child = node->children[i].get();
    if (child->kind != XmlNode::Kind::kElement) continue;
    if (child->name == "sc") {
      std::string name, args;
      SplitServiceCall(child->TextContent(), &name, &args);
      auto payload = services.Call(name, args);
      if (!payload.ok()) continue;  // unreachable host: stays unresolved
      auto parsed = Parse(*payload);
      if (!parsed.ok()) {
        return parsed.status().WithContext("service '" + name +
                                           "' returned a malformed payload");
      }
      XmlDocument fragment = std::move(parsed).value();
      // Replace an existing scresult sibling, or insert one after <sc>.
      auto result = std::make_unique<XmlNode>();
      result->kind = XmlNode::Kind::kElement;
      result->name = "scresult";
      result->children.push_back(std::move(fragment.root));
      size_t insert_at = i + 1;
      if (insert_at < node->children.size() &&
          node->children[insert_at]->kind == XmlNode::Kind::kElement &&
          node->children[insert_at]->name == "scresult") {
        node->children[insert_at] = std::move(result);
      } else {
        node->children.insert(node->children.begin() + insert_at,
                              std::move(result));
      }
      ++i;  // skip the scresult we just placed
    } else {
      IDM_RETURN_NOT_OK(ResolveElement(child, services));
    }
  }
  return Status::OK();
}

}  // namespace

Status ResolveActiveXml(XmlDocument* doc,
                        const core::ServiceRegistry& services) {
  if (doc == nullptr || doc->root == nullptr) return Status::OK();
  return ResolveElement(doc->root.get(), services);
}

namespace {

bool HasScChild(const XmlNode& node) {
  for (const auto& child : node.children) {
    if (child->kind == XmlNode::Kind::kElement && child->name == "sc") {
      return true;
    }
  }
  return false;
}

ViewPtr BuildActiveNodeView(
    std::shared_ptr<const XmlDocument> doc, const XmlNode* node,
    const std::string& uri,
    std::shared_ptr<const core::ServiceRegistry> services) {
  if (node->kind == XmlNode::Kind::kText) {
    return ViewBuilder(uri).Class("xmltext").ContentString(node->text).Build();
  }
  std::string class_name = "xmlelem";
  if (node->name == "sc") class_name = "sc";
  if (node->name == "scresult") class_name = "scresult";
  if (HasScChild(*node)) class_name = "axml";

  // γ.Q is computed lazily; for axml elements the computation performs the
  // service call and splices the scresult view into the sequence.
  auto group_thunk = [doc, node, uri, services]() {
    std::vector<ViewPtr> out;
    for (size_t i = 0; i < node->children.size(); ++i) {
      const XmlNode* child = node->children[i].get();
      std::string child_uri = uri + "/" + std::to_string(i);
      out.push_back(BuildActiveNodeView(doc, child, child_uri, services));
      if (child->kind == XmlNode::Kind::kElement && child->name == "sc") {
        // Already materialized in the document? Then the next child is the
        // scresult and will be emitted by the loop. Otherwise compute it.
        bool next_is_result =
            i + 1 < node->children.size() &&
            node->children[i + 1]->kind == XmlNode::Kind::kElement &&
            node->children[i + 1]->name == "scresult";
        if (next_is_result) continue;
        std::string name, args;
        SplitServiceCall(child->TextContent(), &name, &args);
        auto payload = services->Call(name, args);
        if (!payload.ok()) continue;
        auto parsed = Parse(*payload);
        if (!parsed.ok()) continue;
        ViewPtr payload_view =
            XmlNodeToView(*parsed->root, child_uri + "/scresult/0");
        out.push_back(ViewBuilder(child_uri + "/scresult")
                          .Class("scresult")
                          .Name("scresult")
                          .GroupSequence({std::move(payload_view)})
                          .Build());
      }
    }
    return out;
  };
  return ViewBuilder(uri)
      .Class(class_name)
      .Name(node->name)
      .Tuple(AttributeTuple(*node))
      .Group(GroupComponent::OfLazySequence(std::move(group_thunk)))
      .Build();
}

}  // namespace

ViewPtr ActiveXmlToViews(std::shared_ptr<const XmlDocument> doc,
                         const std::string& uri_prefix,
                         std::shared_ptr<const core::ServiceRegistry> services) {
  std::vector<ViewPtr> roots;
  if (doc != nullptr && doc->root != nullptr) {
    roots.push_back(BuildActiveNodeView(doc, doc->root.get(),
                                        uri_prefix + "#xml", services));
  }
  return ViewBuilder(uri_prefix + "#xmldoc")
      .Class("xmldoc")
      .GroupSequence(std::move(roots))
      .Build();
}

}  // namespace idm::xml
