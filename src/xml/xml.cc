#include "xml/xml.h"

#include <cctype>
#include <cstdlib>

namespace idm::xml {

const std::string* XmlNode::FindAttribute(const std::string& attr_name) const {
  for (const auto& attr : attributes) {
    if (attr.name == attr_name) return &attr.value;
  }
  return nullptr;
}

std::string XmlNode::TextContent() const {
  if (kind == Kind::kText) return text;
  std::string out;
  for (const auto& child : children) out += child->TextContent();
  return out;
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children) n += child->SubtreeSize();
  return n;
}

std::string EscapeText(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& input) : input_(input) {}

  Result<XmlDocument> ParseDocument() {
    SkipProlog();
    IDM_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement());
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after the root element");
    XmlDocument doc;
    doc.root = std::move(root);
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(const char* s) const {
    return input_.compare(pos_, std::char_traits<char>::length(s), s) == 0;
  }
  void Advance(size_t n = 1) {
    for (size_t i = 0; i < n && pos_ < input_.size(); ++i) {
      if (input_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("XML at line " + std::to_string(line_) +
                              ", column " + std::to_string(col_) + ": " + msg);
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  bool SkipUntil(const char* terminator) {
    size_t found = input_.find(terminator, pos_);
    if (found == std::string::npos) return false;
    Advance(found + std::char_traits<char>::length(terminator) - pos_);
    return true;
  }

  /// Skips the XML declaration, DOCTYPE, comments, PIs and whitespace.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        if (!SkipUntil("?>")) { pos_ = input_.size(); return; }
      } else if (LookingAt("<!--")) {
        if (!SkipUntil("-->")) { pos_ = input_.size(); return; }
      } else if (LookingAt("<!DOCTYPE")) {
        if (!SkipUntil(">")) { pos_ = input_.size(); return; }
      } else {
        return;
      }
    }
  }
  void SkipMisc() { SkipProlog(); }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name += Peek();
      Advance();
    }
    return name;
  }

  /// Decodes entities in raw character data.
  Result<std::string> DecodeEntities(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t end = raw.find(';', i);
      if (end == std::string::npos) return Error("unterminated entity");
      std::string entity = raw.substr(i + 1, end - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else if (!entity.empty() && entity[0] == '#') {
        bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
        std::string digits = entity.substr(hex ? 2 : 1);
        char* parse_end = nullptr;
        long code = std::strtol(digits.c_str(), &parse_end, hex ? 16 : 10);
        if (digits.empty() || parse_end == nullptr || *parse_end != '\0') {
          return Error("malformed character reference '&" + entity + ";'");
        }
        if (code <= 0 || code > 0x10FFFF) {
          return Error("character reference out of range");
        }
        // UTF-8 encode.
        unsigned long cp = static_cast<unsigned long>(code);
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (cp >> 18));
          out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
      } else {
        return Error("unknown entity '&" + entity + ";'");
      }
      i = end + 1;
    }
    return out;
  }

  Result<XmlAttribute> ParseAttribute() {
    IDM_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute name");
    Advance();
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected a quoted attribute value");
    }
    char quote = Peek();
    Advance();
    size_t end = input_.find(quote, pos_);
    if (end == std::string::npos) return Error("unterminated attribute value");
    std::string raw = input_.substr(pos_, end - pos_);
    Advance(end + 1 - pos_);
    IDM_ASSIGN_OR_RETURN(std::string value, DecodeEntities(raw));
    return XmlAttribute{std::move(name), std::move(value)};
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    Advance();
    auto node = std::make_unique<XmlNode>();
    node->kind = XmlNode::Kind::kElement;
    IDM_ASSIGN_OR_RETURN(node->name, ParseName());
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + node->name);
      if (Peek() == '>' || LookingAt("/>")) break;
      IDM_ASSIGN_OR_RETURN(XmlAttribute attr, ParseAttribute());
      if (node->FindAttribute(attr.name) != nullptr) {
        return Error("duplicate attribute '" + attr.name + "'");
      }
      node->attributes.push_back(std::move(attr));
    }
    if (LookingAt("/>")) {
      Advance(2);
      return node;
    }
    Advance();  // consume '>'
    // Content.
    std::string pending_text;
    auto flush_text = [&node, &pending_text]() {
      if (pending_text.empty()) return;
      auto text = std::make_unique<XmlNode>();
      text->kind = XmlNode::Kind::kText;
      text->text = std::move(pending_text);
      pending_text.clear();
      node->children.push_back(std::move(text));
    };
    while (true) {
      if (AtEnd()) return Error("unterminated element <" + node->name + ">");
      if (LookingAt("</")) {
        Advance(2);
        IDM_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != node->name) {
          return Error("mismatched end tag </" + close + "> for <" +
                       node->name + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
        Advance();
        flush_text();
        return node;
      }
      if (LookingAt("<!--")) {
        if (!SkipUntil("-->")) return Error("unterminated comment");
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        Advance(9);
        size_t end = input_.find("]]>", pos_);
        if (end == std::string::npos) return Error("unterminated CDATA");
        pending_text += input_.substr(pos_, end - pos_);
        Advance(end + 3 - pos_);
        continue;
      }
      if (LookingAt("<?")) {
        if (!SkipUntil("?>")) return Error("unterminated processing instruction");
        continue;
      }
      if (Peek() == '<') {
        flush_text();
        IDM_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement());
        node->children.push_back(std::move(child));
        continue;
      }
      // Character data up to the next markup.
      size_t next = input_.find('<', pos_);
      if (next == std::string::npos) next = input_.size();
      std::string raw = input_.substr(pos_, next - pos_);
      Advance(next - pos_);
      IDM_ASSIGN_OR_RETURN(std::string decoded, DecodeEntities(raw));
      pending_text += decoded;
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

void SerializeNodeTo(const XmlNode& node, std::string* out) {
  if (node.kind == XmlNode::Kind::kText) {
    *out += EscapeText(node.text);
    return;
  }
  *out += '<';
  *out += node.name;
  for (const auto& attr : node.attributes) {
    *out += ' ';
    *out += attr.name;
    *out += "=\"";
    *out += EscapeText(attr.value);
    *out += '"';
  }
  if (node.children.empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  for (const auto& child : node.children) SerializeNodeTo(*child, out);
  *out += "</";
  *out += node.name;
  *out += '>';
}

}  // namespace

Result<XmlDocument> Parse(const std::string& input) {
  return Parser(input).ParseDocument();
}

std::string Serialize(const XmlDocument& doc) {
  if (doc.root == nullptr) return "";
  return SerializeNode(*doc.root);
}

std::string SerializeNode(const XmlNode& node) {
  std::string out;
  SerializeNodeTo(node, &out);
  return out;
}

bool Equals(const XmlNode& a, const XmlNode& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == XmlNode::Kind::kText) return a.text == b.text;
  if (a.name != b.name) return false;
  if (a.attributes.size() != b.attributes.size()) return false;
  for (size_t i = 0; i < a.attributes.size(); ++i) {
    if (a.attributes[i].name != b.attributes[i].name ||
        a.attributes[i].value != b.attributes[i].value) {
      return false;
    }
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!Equals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

}  // namespace idm::xml
