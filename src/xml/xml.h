// From-scratch XML parser and serializer (substitute for the XML tooling the
// paper's Java prototype used). Covers the core of the XML Information Set
// that iDM instantiates (paper §3.3): document, element, attribute and
// character information items — plus comments, processing instructions,
// CDATA sections and the five predefined entities (skipped or decoded, as
// appropriate). Namespaces are treated lexically (prefixes kept in names).

#ifndef IDM_XML_XML_H_
#define IDM_XML_XML_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace idm::xml {

/// An element's attribute: (name, value), document order preserved.
struct XmlAttribute {
  std::string name;
  std::string value;
};

/// A node of the parsed tree: either an element or a text node.
struct XmlNode {
  enum class Kind { kElement, kText };

  Kind kind = Kind::kElement;

  // --- element fields ---
  std::string name;
  std::vector<XmlAttribute> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;

  // --- text fields ---
  std::string text;

  /// Attribute value lookup; nullptr when absent.
  const std::string* FindAttribute(const std::string& attr_name) const;

  /// Concatenated text of this subtree (the XPath string-value).
  std::string TextContent() const;

  /// Number of nodes in this subtree (including this node).
  size_t SubtreeSize() const;
};

/// A parsed document: exactly one root element.
struct XmlDocument {
  std::unique_ptr<XmlNode> root;
};

/// Parses \p input. Returns ParseError with line/column context on
/// malformed input. Comments, processing instructions, the XML declaration
/// and DOCTYPE are skipped; CDATA becomes text; the predefined entities and
/// decimal/hex character references are decoded.
Result<XmlDocument> Parse(const std::string& input);

/// Serializes a document (or subtree) back to XML text. Text is re-escaped;
/// round-tripping Parse(Serialize(doc)) yields an equal tree.
std::string Serialize(const XmlDocument& doc);
std::string SerializeNode(const XmlNode& node);

/// Structural equality of trees (attribute order significant, as in the
/// Information Set's ordered attribute list reading).
bool Equals(const XmlNode& a, const XmlNode& b);

/// Escapes &, <, >, ", ' for inclusion in text or attribute values.
std::string EscapeText(const std::string& s);

}  // namespace idm::xml

#endif  // IDM_XML_XML_H_
