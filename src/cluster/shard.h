// One shard = one replication group (DESIGN.md §12): a durable primary
// Dataspace on its own MemEnv, K ReplicaNodes fed by a WalShipper, a
// SimClock failure detector (health probes through a CircuitBreaker), and
// deterministic promotion of the most-caught-up replica when the breaker
// trips. Semi-synchronous by construction: every fsynced commit is offered
// to every replica before the mutating call returns (ship-on-commit), so an
// acknowledged mutation survives failover whenever at least one replica's
// link was reachable at commit time.

#ifndef IDM_CLUSTER_SHARD_H_
#define IDM_CLUSTER_SHARD_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/replication.h"
#include "iql/dataspace.h"
#include "obs/obs.h"
#include "util/retry.h"

namespace idm::cluster {

/// Per-shard tuning. The node template configures every dataspace in the
/// group (primary and replicas alike); its storage_dir/env are overridden
/// per node.
struct ShardOptions {
  size_t replicas = 1;
  iql::Dataspace::Config node;
  storage::StorageOptions storage;
  /// Failure detector: consecutive failed probes to trip, cooldown, and
  /// probes-to-close are CircuitBreaker semantics on the shared SimClock.
  CircuitBreaker::Options breaker{/*failure_threshold=*/3,
                                  /*cooldown_micros=*/2'000'000,
                                  /*half_open_successes=*/1};
  /// Simulated time between health probes (one Tick()).
  Micros probe_interval_micros = 500'000;
  /// Link-level retry for one shipped message.
  RetryPolicy ship_retry{/*max_attempts=*/3, /*initial_backoff_micros=*/10'000,
                         /*backoff_multiplier=*/2.0,
                         /*max_backoff_micros=*/200'000,
                         /*jitter_fraction=*/0.25};
  /// Ship after every commit (semi-sync). Off: replication only advances on
  /// explicit Ship()/Poll()/Checkpoint() calls (async shipping).
  bool ship_on_commit = true;
  uint64_t seed = 1;
};

/// Cumulative outcome of ScrubAndRepair() sweeps over one shard.
struct RepairTotals {
  uint64_t sweeps = 0;           ///< ScrubAndRepair() rounds run
  uint64_t primary_defects = 0;  ///< scrubber findings on the primary store
  uint64_t replica_repairs = 0;  ///< replicas that rewound a damaged suffix
  uint64_t replica_reseeds = 0;  ///< replicas whose base image was rebuilt
  uint64_t replicas_clean = 0;   ///< replica checks that verified clean
};

class ShardGroup {
 public:
  /// \p clock is the cluster-wide simulated clock driving probes, backoff
  /// and the breaker; \p obs (may be null) receives promotion counters and
  /// per-shard lag gauges.
  ShardGroup(std::string name, ShardOptions options, SimClock* clock,
             obs::Observability* obs = nullptr);

  const std::string& name() const { return name_; }
  /// Open status of the initial primary (construction error surface).
  const Status& status() const { return status_; }

  /// The live primary, or null while the shard has no primary (killed and
  /// not yet promoted, or promotion impossible).
  iql::Dataspace* primary() { return primary_alive_ ? primary_.get() : nullptr; }
  const iql::Dataspace* primary() const {
    return primary_alive_ ? primary_.get() : nullptr;
  }
  bool primary_alive() const { return primary_alive_; }
  /// The primary's MemEnv (crash-matrix hooks on the primary side).
  storage::MemEnv* primary_env() { return primary_env_; }

  size_t replica_count() const { return replicas_.size(); }
  ReplicaNode& replica(size_t i) { return *replicas_[i]; }
  /// Fault injector on the replication link to replica \p i (null = perfect
  /// link). Must outlive the shard.
  void set_replica_link(size_t i, FaultInjector* link) {
    replica_links_[i] = link;
  }
  /// Fault injector consulted by health probes (scripting detector
  /// false-positives); null (default) means probes only fail when the
  /// primary is actually dead.
  void set_probe_injector(FaultInjector* injector) {
    probe_injector_ = injector;
  }

  /// --- primary-side operations (routed by the Cluster) --------------------
  Result<rvm::SourceIndexStats> AddSource(
      std::shared_ptr<rvm::DataSource> source);
  Result<rvm::SyncStats> Poll();
  Result<rvm::SyncStats> ProcessNotifications();
  Status Checkpoint();

  /// Ships the durable suffix to every replica. Per-replica link failures
  /// are recorded (ship_totals().failed, last_ship_status()) and returned,
  /// but leave the other replicas shipped — lag, not loss. A kDataLoss
  /// verdict here means damaged bytes were *refused* somewhere, never
  /// applied; ScrubAndRepair() is the recovery.
  Status Ship();

  /// One anti-entropy sweep (DESIGN.md §15): scrub the primary store
  /// (quarantine + rescue checkpoint via Dataspace::ScrubNow), exchange the
  /// primary's digest ladder with every replica so each quarantines and
  /// rewinds exactly its damaged range, then ship to close the gaps the
  /// repairs opened. Deterministic: same damage, same sweep, same repairs.
  Status ScrubAndRepair();

  /// Kills the primary machine: unsynced bytes are lost (bar the writeback
  /// prefix) and the shard serves no linearizable reads until the failure
  /// detector promotes a replica.
  void KillPrimary();

  /// One failure-detector step at the current clock time: probe the
  /// primary, feed the breaker, and promote once the breaker leaves
  /// kClosed. (The caller advances the clock — Cluster::Tick advances it
  /// once per probe interval for all shards.) Returns the promotion error
  /// when promotion was due but impossible (e.g. no replicas).
  Status Tick();

  /// The dataspace that serves reads under \p mode: the primary for
  /// kLinearizable (null while the shard has no primary — callers degrade),
  /// the most-caught-up replica for kStaleOk (falling back to the primary
  /// when the shard has no replicas).
  const iql::Dataspace* ServingFor(iql::ReadMode mode) const;
  /// Always-non-null dataspace of this shard (possibly the dead primary);
  /// routing plumbing for down-shard federation peers, never queried over
  /// a healthy link.
  const iql::Dataspace* AnyDataspace() const { return primary_.get(); }

  /// Best known VersionLog epoch in the group, and how far behind it a
  /// given serving dataspace is.
  uint64_t BestEpoch() const;
  uint64_t StalenessOf(const iql::Dataspace* serving) const;

  /// --- counters ------------------------------------------------------------
  uint64_t promotions() const { return promotions_; }
  const ShipTotals& ship_totals() const { return ship_totals_; }
  const Status& last_ship_status() const { return last_ship_status_; }
  const RepairTotals& repair_totals() const { return repair_totals_; }
  CircuitBreaker& breaker() { return *breaker_; }

 private:
  void WireCommitListener();
  bool ProbeOnce();
  Status Promote();
  void UpdateLagGauge();

  std::string name_;
  ShardOptions options_;
  SimClock* clock_;
  obs::Observability* obs_;

  /// Envs are owned here (one per machine that ever was primary): a deposed
  /// primary's env must outlive its Dataspace, and a promoted replica's env
  /// stays owned by its retired ReplicaNode.
  std::vector<std::unique_ptr<storage::MemEnv>> owned_envs_;
  storage::MemEnv* primary_env_ = nullptr;
  std::unique_ptr<iql::Dataspace> primary_;
  bool primary_alive_ = false;
  Status status_;

  std::vector<std::unique_ptr<ReplicaNode>> replicas_;
  std::vector<FaultInjector*> replica_links_;
  /// Deposed primaries and promoted (retired) replica nodes — kept alive
  /// because federation peers and envs reference them.
  std::vector<std::unique_ptr<iql::Dataspace>> graveyard_;
  std::vector<std::unique_ptr<ReplicaNode>> retired_;

  /// Sources registered through this shard, re-attached on promotion.
  std::vector<std::shared_ptr<rvm::DataSource>> sources_;

  std::optional<CircuitBreaker> breaker_;
  WalShipper shipper_;
  ShipTotals ship_totals_;
  Status last_ship_status_;
  RepairTotals repair_totals_;
  FaultInjector* probe_injector_ = nullptr;

  uint64_t promotions_ = 0;

  obs::Counter* promotions_metric_ = nullptr;
  obs::Counter* probe_failures_metric_ = nullptr;
  obs::Counter* repairs_metric_ = nullptr;
  obs::Counter* reseeds_metric_ = nullptr;
  obs::Gauge* lag_gauge_ = nullptr;
};

}  // namespace idm::cluster

#endif  // IDM_CLUSTER_SHARD_H_
