#include "cluster/replication.h"

#include <utility>

#include "storage/wal.h"

namespace idm::cluster {

ReplicaNode::ReplicaNode(std::string name, iql::Dataspace::Config config,
                         storage::StorageOptions storage)
    : name_(std::move(name)), storage_(storage) {
  // The follower serves from memory; its durable mirror is written by the
  // shipping path below, never by the dataspace itself (an attached engine
  // would re-log every replayed mutation).
  config.storage_dir.clear();
  config.env = nullptr;
  config_ = std::move(config);
  serving_ = std::make_unique<iql::Dataspace>(config_);
}

uint64_t ReplicaNode::epoch() const {
  return serving_ != nullptr ? serving_->module().epoch() : 0;
}

std::string ReplicaNode::CkptPath(uint64_t gen) const {
  return dir_ + "/checkpoint-" + std::to_string(gen) + ".ckpt";
}

std::string ReplicaNode::WalPath(uint64_t gen) const {
  return dir_ + "/wal-" + std::to_string(gen) + ".log";
}

Status ReplicaNode::SwitchCurrent(uint64_t gen) {
  const std::string tmp = dir_ + "/CURRENT.tmp";
  IDM_RETURN_NOT_OK(env_.Delete(tmp));
  IDM_RETURN_NOT_OK(env_.Append(tmp, std::to_string(gen)));
  IDM_RETURN_NOT_OK(env_.Sync(tmp));
  return env_.Rename(tmp, dir_ + "/CURRENT");
}

Status ReplicaNode::InstallCheckpoint(uint64_t gen, const std::string& image) {
  if (gen <= generation_) {
    ++duplicates_;  // re-delivered checkpoint: already installed, no-op
    return Status::OK();
  }
  IDM_ASSIGN_OR_RETURN(storage::Snapshot snapshot,
                       storage::Snapshot::Decode(image));
  // PR-3 generation protocol on the mirror: image, then the (empty) new
  // WAL, then the CURRENT switch; a crash in between leaves the previous
  // generation recoverable.
  IDM_RETURN_NOT_OK(env_.CreateDir(dir_));
  IDM_RETURN_NOT_OK(env_.Append(CkptPath(gen), image));
  IDM_RETURN_NOT_OK(env_.Sync(CkptPath(gen)));
  IDM_RETURN_NOT_OK(env_.Append(WalPath(gen), ""));
  IDM_RETURN_NOT_OK(SwitchCurrent(gen));
  IDM_RETURN_NOT_OK(env_.Delete(CkptPath(generation_)));
  IDM_RETURN_NOT_OK(env_.Delete(WalPath(generation_)));
  IDM_RETURN_NOT_OK(serving_->module()
                        .RestoreSnapshot(snapshot)
                        .WithContext("replica '" + name_ + "' checkpoint"));
  generation_ = gen;
  applied_seq_ = snapshot.last_commit_seq;
  wal_bytes_ = 0;
  ++checkpoints_installed_;
  return Status::OK();
}

Status ReplicaNode::AppendWal(uint64_t gen, uint64_t from_offset,
                              std::string_view data) {
  if (gen != generation_) {
    return Status::Unavailable("replica '" + name_ + "' follows generation " +
                               std::to_string(generation_) + ", got " +
                               std::to_string(gen) + "; checkpoint resync");
  }
  if (from_offset > wal_bytes_) {
    return Status::Unavailable(
        "replica '" + name_ + "' has " + std::to_string(wal_bytes_) +
        " WAL bytes, segment starts at " + std::to_string(from_offset));
  }
  const uint64_t end = from_offset + data.size();
  if (end <= wal_bytes_) {
    ++duplicates_;  // fully re-delivered segment: already applied, no-op
    return Status::OK();
  }
  if (from_offset < wal_bytes_) ++duplicates_;  // overlapping re-delivery
  std::string_view fresh = data.substr(wal_bytes_ - from_offset);

  // Durable mirror first, then the in-memory apply: a crash between the
  // two discards the serving state anyway (Recover() rebuilds it from the
  // mirror), so the mirror is the only state that must be right.
  IDM_RETURN_NOT_OK(env_.Append(WalPath(generation_), fresh));
  IDM_RETURN_NOT_OK(env_.Sync(WalPath(generation_)));

  storage::WalScanResult scan = storage::ScanWal(fresh);
  if (scan.torn_tail || scan.dropped_records > 0 ||
      scan.valid_bytes != fresh.size()) {
    return Status::IoError("replica '" + name_ +
                           "': shipped segment is not commit-aligned");
  }
  IDM_RETURN_NOT_OK(serving_->module()
                        .ReplayMutations(scan.mutations)
                        .WithContext("replica '" + name_ + "' replay"));
  wal_bytes_ += fresh.size();
  if (scan.last_commit_seq > 0) applied_seq_ = scan.last_commit_seq;
  ++segments_applied_;
  bytes_applied_ += fresh.size();
  return Status::OK();
}

Status ReplicaNode::Recover() {
  auto fresh = std::make_unique<iql::Dataspace>(config_);
  IDM_ASSIGN_OR_RETURN(
      storage::StorageEngine::Recovered rec,
      storage::StorageEngine::Open(&env_, dir_, storage_, fresh->clock()));
  if (rec.snapshot.has_value()) {
    IDM_RETURN_NOT_OK(fresh->module()
                          .RestoreSnapshot(*rec.snapshot)
                          .WithContext("replica '" + name_ + "' recovery"));
  }
  IDM_RETURN_NOT_OK(fresh->module()
                        .ReplayMutations(rec.mutations)
                        .WithContext("replica '" + name_ + "' recovery"));
  // The engine is discarded: a follower applies, it does not log. Open()
  // already truncated any torn mirror tail, so wal_bytes_ resumes at a
  // commit boundary and the shipper re-sends exactly the lost suffix.
  rec.engine.reset();
  IDM_ASSIGN_OR_RETURN(std::string wal,
                       env_.ReadFile(WalPath(rec.stats.generation)));
  serving_ = std::move(fresh);
  generation_ = rec.stats.generation;
  applied_seq_ = rec.stats.last_commit_seq;
  wal_bytes_ = wal.size();
  return Status::OK();
}

Result<std::unique_ptr<iql::Dataspace>> ReplicaNode::Promote() {
  iql::Dataspace::Config config = config_;
  config.storage_dir = dir_;
  config.env = &env_;
  config.storage = storage_;
  IDM_ASSIGN_OR_RETURN(std::unique_ptr<iql::Dataspace> primary,
                       iql::Dataspace::Open(std::move(config)));
  serving_.reset();  // the node now IS the primary; stop replica serving
  return primary;
}

Status WalShipper::Ship(storage::StorageEngine* engine, ReplicaNode* replica,
                        FaultInjector* link, ShipTotals* totals) {
  // Generation catch-up: a replica behind the primary's checkpoint installs
  // the current image, then follows the new WAL from byte 0.
  if (replica->generation() != engine->generation()) {
    if (replica->generation() > engine->generation()) {
      return Status::FailedPrecondition(
          "replica '" + replica->name() + "' is at generation " +
          std::to_string(replica->generation()) + ", ahead of the primary");
    }
    IDM_ASSIGN_OR_RETURN(std::string image,
                         engine->env()->ReadFile(engine->LiveCheckpointPath()));
    const uint64_t gen = engine->generation();
    IDM_RETURN_NOT_OK(
        Deliver([&] { return replica->InstallCheckpoint(gen, image); }, link,
                "replicate.checkpoint", totals));
    ++totals->checkpoints;
  }

  // Incremental commit-boundary scan of the live WAL.
  if (engine != scanned_engine_ || engine->generation() != scanned_generation_) {
    scanned_engine_ = engine;
    scanned_generation_ = engine->generation();
    scanned_bytes_ = 0;
    commits_.clear();
  }
  IDM_ASSIGN_OR_RETURN(std::string wal,
                       engine->env()->ReadFile(engine->LiveWalPath()));
  if (wal.size() > scanned_bytes_) {
    storage::WalScanResult scan =
        storage::ScanWal(std::string_view(wal).substr(scanned_bytes_));
    for (const storage::CommitMark& mark : scan.commits) {
      commits_.push_back({mark.seq, scanned_bytes_ + mark.end_offset});
    }
    scanned_bytes_ += scan.valid_bytes;
  }

  // The shippable prefix ends at the last commit mark known durable: only
  // fsynced commits replicate, so a replica can never be ahead of what the
  // primary would itself recover.
  const uint64_t durable_seq = engine->last_durable_seq();
  uint64_t boundary = 0;
  for (auto it = commits_.rbegin(); it != commits_.rend(); ++it) {
    if (it->seq <= durable_seq) {
      boundary = it->end_offset;
      break;
    }
  }
  const uint64_t from = replica->wal_bytes();
  if (from >= boundary) return Status::OK();  // caught up

  std::string_view slice =
      std::string_view(wal).substr(from, boundary - from);
  const uint64_t gen = engine->generation();
  IDM_RETURN_NOT_OK(
      Deliver([&] { return replica->AppendWal(gen, from, slice); }, link,
              "replicate.wal", totals));
  ++totals->segments;
  totals->bytes += slice.size();
  return Status::OK();
}

Status WalShipper::Deliver(const std::function<Status()>& deliver,
                           FaultInjector* link, const char* what,
                           ShipTotals* totals) {
  Status last = Status::OK();
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    LinkVerdict verdict;
    if (link != nullptr) verdict = link->OnLinkOperation(what);
    if (verdict.dropped) {
      ++totals->drops;
      last = Status::Unavailable(std::string(what) +
                                 " lost to an injected link fault");
      if (attempt == retry_.max_attempts) break;
      ++totals->retries;
      if (clock_ != nullptr) {
        clock_->AdvanceMicros(retry_.BackoffMicros(attempt, &jitter_));
      }
      continue;
    }
    IDM_RETURN_NOT_OK(deliver());
    if (verdict.duplicated) {
      ++totals->duplicates;
      IDM_RETURN_NOT_OK(deliver());  // re-delivery must be a no-op
    }
    return Status::OK();
  }
  return last;
}

}  // namespace idm::cluster
