#include "cluster/replication.h"

#include <utility>

#include "storage/quarantine.h"
#include "storage/wal.h"

namespace idm::cluster {

namespace {

/// Deterministic in-flight damage for a link-corrupted send: one flipped
/// bit midway through the payload, so the receiver's CRC checks must catch
/// it (every payload byte is covered by a frame length, CRC, or seal).
std::string CorruptCopy(std::string_view payload) {
  std::string damaged(payload);
  if (!damaged.empty()) damaged[damaged.size() / 2] ^= 0x40;
  return damaged;
}

}  // namespace

ReplicaNode::ReplicaNode(std::string name, iql::Dataspace::Config config,
                         storage::StorageOptions storage)
    : name_(std::move(name)), storage_(storage) {
  // The follower serves from memory; its durable mirror is written by the
  // shipping path below, never by the dataspace itself (an attached engine
  // would re-log every replayed mutation).
  config.storage_dir.clear();
  config.env = nullptr;
  config_ = std::move(config);
  serving_ = std::make_unique<iql::Dataspace>(config_);
}

uint64_t ReplicaNode::epoch() const {
  return serving_ != nullptr ? serving_->module().epoch() : 0;
}

std::string ReplicaNode::CkptPath(uint64_t gen) const {
  return dir_ + "/checkpoint-" + std::to_string(gen) + ".ckpt";
}

std::string ReplicaNode::WalPath(uint64_t gen) const {
  return dir_ + "/wal-" + std::to_string(gen) + ".log";
}

Status ReplicaNode::SwitchCurrent(uint64_t gen) {
  const std::string tmp = dir_ + "/CURRENT.tmp";
  IDM_RETURN_NOT_OK(env_.Delete(tmp));
  IDM_RETURN_NOT_OK(env_.Append(tmp, std::to_string(gen)));
  IDM_RETURN_NOT_OK(env_.Sync(tmp));
  return env_.Rename(tmp, dir_ + "/CURRENT");
}

Status ReplicaNode::InstallCheckpoint(uint64_t gen, const std::string& image) {
  if (gen <= generation_) {
    ++duplicates_;  // re-delivered checkpoint: already installed, no-op
    return Status::OK();
  }
  // Verify before anything durable changes: an image whose seal is broken
  // (link corruption, or a damaged source) is preserved as evidence and
  // rejected permanently — re-sending the same bytes rereads the same
  // damage, so the sender must re-read its source, not retry.
  Result<storage::Snapshot> snapshot = storage::Snapshot::Decode(image);
  if (!snapshot.ok()) {
    ++rejected_deliveries_;
    IDM_RETURN_NOT_OK(
        Stash("checkpoint-" + std::to_string(gen) + ".ckpt.shipment", image,
              "shipped checkpoint failed its seal check: " +
                  snapshot.status().ToString(),
              nullptr));
    return Status::DataLoss("replica '" + name_ +
                            "': shipped checkpoint for generation " +
                            std::to_string(gen) +
                            " failed verification; bytes quarantined");
  }
  // PR-3 generation protocol on the mirror: image, then the (empty) new
  // WAL, then the CURRENT switch; a crash in between leaves the previous
  // generation recoverable.
  IDM_RETURN_NOT_OK(env_.CreateDir(dir_));
  IDM_RETURN_NOT_OK(env_.Append(CkptPath(gen), image));
  IDM_RETURN_NOT_OK(env_.Sync(CkptPath(gen)));
  IDM_RETURN_NOT_OK(env_.Append(WalPath(gen), ""));
  IDM_RETURN_NOT_OK(SwitchCurrent(gen));
  IDM_RETURN_NOT_OK(env_.Delete(CkptPath(generation_)));
  IDM_RETURN_NOT_OK(env_.Delete(WalPath(generation_)));
  IDM_RETURN_NOT_OK(serving_->module()
                        .RestoreSnapshot(*snapshot)
                        .WithContext("replica '" + name_ + "' checkpoint"));
  generation_ = gen;
  applied_seq_ = snapshot->last_commit_seq;
  wal_bytes_ = 0;
  ++checkpoints_installed_;
  return Status::OK();
}

Status ReplicaNode::AppendWal(uint64_t gen, uint64_t from_offset,
                              std::string_view data) {
  if (gen != generation_) {
    return Status::Unavailable("replica '" + name_ + "' follows generation " +
                               std::to_string(generation_) + ", got " +
                               std::to_string(gen) + "; checkpoint resync");
  }
  if (from_offset > wal_bytes_) {
    return Status::Unavailable(
        "replica '" + name_ + "' has " + std::to_string(wal_bytes_) +
        " WAL bytes, segment starts at " + std::to_string(from_offset));
  }
  const uint64_t end = from_offset + data.size();
  if (end <= wal_bytes_) {
    ++duplicates_;  // fully re-delivered segment: already applied, no-op
    return Status::OK();
  }
  if (from_offset < wal_bytes_) ++duplicates_;  // overlapping re-delivery
  std::string_view fresh = data.substr(wal_bytes_ - from_offset);

  // Verify BEFORE the mirror append: a slice that fails its frame CRCs or
  // is not commit-aligned must never become durable replica state —
  // replaying garbage is how silent divergence starts, and once the bytes
  // are in the mirror a crash recovery would re-read them. The rejection
  // is permanent (kDataLoss, not a retryable link fault): re-sending the
  // same bytes rereads the same damage, so the shipper re-fetches from the
  // untouched mirror boundary instead.
  storage::WalScanResult scan = storage::ScanWal(fresh);
  if (scan.torn_tail || scan.dropped_records > 0 ||
      scan.valid_bytes != fresh.size()) {
    ++rejected_deliveries_;
    IDM_RETURN_NOT_OK(
        Stash("wal-" + std::to_string(generation_) + ".log.shipment", fresh,
              "shipped WAL segment failed frame CRC / commit alignment",
              nullptr));
    return Status::DataLoss(
        "replica '" + name_ + "': shipped WAL segment [" +
        std::to_string(wal_bytes_) + ", " + std::to_string(end) +
        ") failed verification; bytes quarantined, mirror untouched");
  }

  // Durable mirror first, then the in-memory apply: a crash between the
  // two discards the serving state anyway (Recover() rebuilds it from the
  // mirror), so the mirror is the only state that must be right.
  IDM_RETURN_NOT_OK(env_.Append(WalPath(generation_), fresh));
  IDM_RETURN_NOT_OK(env_.Sync(WalPath(generation_)));

  IDM_RETURN_NOT_OK(serving_->module()
                        .ReplayMutations(scan.mutations)
                        .WithContext("replica '" + name_ + "' replay"));
  wal_bytes_ += fresh.size();
  if (scan.last_commit_seq > 0) applied_seq_ = scan.last_commit_seq;
  ++segments_applied_;
  bytes_applied_ += fresh.size();
  return Status::OK();
}

Status ReplicaNode::Recover() {
  auto fresh = std::make_unique<iql::Dataspace>(config_);
  IDM_ASSIGN_OR_RETURN(
      storage::StorageEngine::Recovered rec,
      storage::StorageEngine::Open(&env_, dir_, storage_, fresh->clock()));
  if (rec.snapshot.has_value()) {
    IDM_RETURN_NOT_OK(fresh->module()
                          .RestoreSnapshot(*rec.snapshot)
                          .WithContext("replica '" + name_ + "' recovery"));
  }
  IDM_RETURN_NOT_OK(fresh->module()
                        .ReplayMutations(rec.mutations)
                        .WithContext("replica '" + name_ + "' recovery"));
  // The engine is discarded: a follower applies, it does not log. Open()
  // already truncated any torn mirror tail, so wal_bytes_ resumes at a
  // commit boundary and the shipper re-sends exactly the lost suffix.
  rec.engine.reset();
  IDM_ASSIGN_OR_RETURN(std::string wal,
                       env_.ReadFile(WalPath(rec.stats.generation)));
  serving_ = std::move(fresh);
  generation_ = rec.stats.generation;
  applied_seq_ = rec.stats.last_commit_seq;
  wal_bytes_ = wal.size();
  return Status::OK();
}

Result<repair::DigestLadder> ReplicaNode::MirrorLadder() {
  std::string ckpt;
  if (generation_ > 0) {
    if (auto image = env_.ReadFile(CkptPath(generation_)); image.ok()) {
      ckpt = std::move(*image);
    }
    // An unreadable image at gen > 0 leaves ckpt empty: the ladder's
    // checkpoint rung is then 0, which disagrees with any healthy peer —
    // exactly the signal that forces a reseed.
  }
  std::string wal;
  if (auto image = env_.ReadFile(WalPath(generation_)); image.ok()) {
    wal = std::move(*image);
  }
  return repair::BuildLadder(generation_, ckpt, wal);
}

Result<AntiEntropyReport> ReplicaNode::SyncWithLadder(
    const repair::DigestLadder& remote) {
  AntiEntropyReport report;
  if (generation_ != remote.generation) {
    if (generation_ > remote.generation) {
      return Status::FailedPrecondition(
          "replica '" + name_ + "' is at generation " +
          std::to_string(generation_) + ", ahead of the peer's " +
          std::to_string(remote.generation));
    }
    // Behind a whole generation: the mirror's artifacts are about to be
    // replaced wholesale by InstallCheckpoint — nothing to repair here.
    report.behind = true;
    report.refetch_from = wal_bytes_;
    return report;
  }
  std::string wal;
  if (auto image = env_.ReadFile(WalPath(generation_)); image.ok()) {
    wal = std::move(*image);
  }
  IDM_ASSIGN_OR_RETURN(repair::DigestLadder local, MirrorLadder());
  repair::LadderDelta delta = repair::CompareLadders(local, remote);
  if (delta.checkpoint_mismatch) {
    IDM_RETURN_NOT_OK(
        Reseed("anti-entropy: base image disagrees with the peer", &report));
    return report;
  }
  if (delta.diverged) {
    IDM_RETURN_NOT_OK(RewindWal(
        wal, delta.matched_end_offset,
        "anti-entropy: WAL diverges from the peer past commit " +
            std::to_string(delta.matched_seq),
        &report));
    return report;
  }
  // The mirror only ever receives whole verified batches, so any trailing
  // bytes that do not form intact frames are damage, never an in-flight
  // tail. Without this check a short ladder from a damaged suffix would
  // masquerade as "behind" and the damaged range would never be re-shipped.
  const uint64_t intact =
      local.rungs.empty() ? 0 : local.rungs.back().end_offset;
  if (intact < wal.size()) {
    IDM_RETURN_NOT_OK(
        RewindWal(wal, intact,
                  "anti-entropy: mirror WAL unreadable past byte " +
                      std::to_string(intact),
                  &report));
    return report;
  }
  if (delta.local_behind) {
    report.behind = true;
  } else {
    report.clean = true;
  }
  report.refetch_from = wal_bytes_;
  return report;
}

Result<AntiEntropyReport> ReplicaNode::ScrubMirror() {
  AntiEntropyReport report;
  if (generation_ > 0) {
    Result<std::string> image = env_.ReadFile(CkptPath(generation_));
    std::string defect;
    if (!image.ok()) {
      defect = "checkpoint image unreadable: " + image.status().ToString();
    } else if (!repair::VerifyCheckpoint(*image, nullptr, &defect)) {
      defect = "checkpoint seal: " + defect;
    }
    if (!defect.empty()) {
      IDM_RETURN_NOT_OK(Reseed("mirror scrub: " + defect, &report));
      return report;
    }
  }
  std::string wal;
  if (auto image = env_.ReadFile(WalPath(generation_)); image.ok()) {
    wal = std::move(*image);
  }
  storage::WalScanResult scan = storage::ScanWal(wal);
  if (scan.torn_tail || scan.dropped_records > 0 ||
      scan.valid_bytes != wal.size()) {
    IDM_RETURN_NOT_OK(RewindWal(wal, scan.valid_bytes,
                                "mirror scrub: WAL unreadable past byte " +
                                    std::to_string(scan.valid_bytes),
                                &report));
    return report;
  }
  report.clean = true;
  report.refetch_from = wal_bytes_;
  return report;
}

Status ReplicaNode::Stash(const std::string& artifact, std::string_view bytes,
                          const std::string& reason,
                          AntiEntropyReport* report) {
  storage::QuarantineManager stash(&env_, dir_);
  IDM_RETURN_NOT_OK(stash.Load());
  IDM_RETURN_NOT_OK(stash.PreserveBytes(artifact, bytes, reason));
  ++quarantined_;
  if (report != nullptr) report->quarantined = artifact;
  return Status::OK();
}

Status ReplicaNode::RewindWal(std::string_view wal, uint64_t keep,
                              const std::string& reason,
                              AntiEntropyReport* report) {
  const std::string artifact = "wal-" + std::to_string(generation_) + ".log";
  IDM_RETURN_NOT_OK(Stash(artifact, wal, reason, report));
  const std::string path = WalPath(generation_);
  IDM_RETURN_NOT_OK(env_.Delete(path));
  IDM_RETURN_NOT_OK(env_.Append(path, wal.substr(0, keep)));
  IDM_RETURN_NOT_OK(env_.Sync(path));
  ++repairs_;
  report->repaired = true;
  report->refetch_from = keep;
  // Recover() rebuilds the serving dataspace from the repaired mirror —
  // never patch serving state in place, or the range the shipper re-sends
  // would apply twice.
  return Recover();
}

Status ReplicaNode::Reseed(const std::string& reason,
                           AntiEntropyReport* report) {
  if (auto image = env_.ReadFile(CkptPath(generation_)); image.ok()) {
    IDM_RETURN_NOT_OK(
        Stash("checkpoint-" + std::to_string(generation_) + ".ckpt", *image,
              reason, report));
  }
  if (auto image = env_.ReadFile(WalPath(generation_)); image.ok()) {
    IDM_RETURN_NOT_OK(Stash("wal-" + std::to_string(generation_) + ".log",
                            *image, reason, report));
  }
  IDM_RETURN_NOT_OK(env_.Delete(CkptPath(generation_)));
  IDM_RETURN_NOT_OK(env_.Delete(WalPath(generation_)));
  IDM_RETURN_NOT_OK(env_.Delete(dir_ + "/CURRENT"));
  serving_ = std::make_unique<iql::Dataspace>(config_);
  generation_ = 0;
  applied_seq_ = 0;
  wal_bytes_ = 0;
  ++reseeds_;
  report->reseeded = true;
  report->refetch_from = 0;
  return Status::OK();
}

Result<std::unique_ptr<iql::Dataspace>> ReplicaNode::Promote() {
  iql::Dataspace::Config config = config_;
  config.storage_dir = dir_;
  config.env = &env_;
  config.storage = storage_;
  IDM_ASSIGN_OR_RETURN(std::unique_ptr<iql::Dataspace> primary,
                       iql::Dataspace::Open(std::move(config)));
  serving_.reset();  // the node now IS the primary; stop replica serving
  return primary;
}

Status WalShipper::Ship(storage::StorageEngine* engine, ReplicaNode* replica,
                        FaultInjector* link, ShipTotals* totals) {
  // Generation catch-up: a replica behind the primary's checkpoint installs
  // the current image, then follows the new WAL from byte 0.
  if (replica->generation() != engine->generation()) {
    if (replica->generation() > engine->generation()) {
      return Status::FailedPrecondition(
          "replica '" + replica->name() + "' is at generation " +
          std::to_string(replica->generation()) + ", ahead of the primary");
    }
    IDM_ASSIGN_OR_RETURN(std::string image,
                         engine->env()->ReadFile(engine->LiveCheckpointPath()));
    // Never ship damage: a primary whose checkpoint seal no longer checks
    // out reports kDataLoss (permanent — the shard's quarantine + rescue
    // path is the recovery) instead of seeding replicas with garbage.
    std::string defect;
    if (!repair::VerifyCheckpoint(image, nullptr, &defect)) {
      return Status::DataLoss("primary checkpoint '" +
                              engine->LiveCheckpointPath() +
                              "' failed its seal check before shipping: " +
                              defect);
    }
    const uint64_t gen = engine->generation();
    IDM_RETURN_NOT_OK(Deliver(
        [&](bool corrupted) {
          return replica->InstallCheckpoint(
              gen, corrupted ? CorruptCopy(image) : image);
        },
        link, "replicate.checkpoint", totals));
    ++totals->checkpoints;
  }

  // Incremental commit-boundary scan of the live WAL.
  if (engine != scanned_engine_ || engine->generation() != scanned_generation_) {
    scanned_engine_ = engine;
    scanned_generation_ = engine->generation();
    scanned_bytes_ = 0;
    commits_.clear();
  }
  IDM_ASSIGN_OR_RETURN(std::string wal,
                       engine->env()->ReadFile(engine->LiveWalPath()));
  if (wal.size() > scanned_bytes_) {
    storage::WalScanResult scan =
        storage::ScanWal(std::string_view(wal).substr(scanned_bytes_));
    for (const storage::CommitMark& mark : scan.commits) {
      commits_.push_back({mark.seq, scanned_bytes_ + mark.end_offset});
    }
    scanned_bytes_ += scan.valid_bytes;
  }

  // Every commit the engine calls durable must be reachable through intact
  // frames. A scan that stops short of one is at-rest damage on the
  // primary's live WAL — never an in-flight tail, which by definition holds
  // no durable commit. Permanent verdict: the shard's repair path
  // (quarantine the evidence, rescue-checkpoint to a clean generation) is
  // the recovery, not a retry over the same bytes.
  const uint64_t wal_durable = engine->wal_durable_seq();
  const uint64_t last_scanned_seq = commits_.empty() ? 0 : commits_.back().seq;
  if (last_scanned_seq < wal_durable) {
    return Status::DataLoss("primary WAL '" + engine->LiveWalPath() +
                            "' is unreadable past commit " +
                            std::to_string(last_scanned_seq) +
                            " though commit " + std::to_string(wal_durable) +
                            " is durable");
  }

  // The shippable prefix ends at the last commit mark known durable: only
  // fsynced commits replicate, so a replica can never be ahead of what the
  // primary would itself recover.
  const uint64_t durable_seq = engine->last_durable_seq();
  uint64_t boundary = 0;
  for (auto it = commits_.rbegin(); it != commits_.rend(); ++it) {
    if (it->seq <= durable_seq) {
      boundary = it->end_offset;
      break;
    }
  }
  const uint64_t from = replica->wal_bytes();
  if (from >= boundary) return Status::OK();  // caught up

  std::string_view slice =
      std::string_view(wal).substr(from, boundary - from);
  const uint64_t gen = engine->generation();
  IDM_RETURN_NOT_OK(Deliver(
      [&](bool corrupted) {
        if (!corrupted) return replica->AppendWal(gen, from, slice);
        const std::string damaged = CorruptCopy(slice);
        return replica->AppendWal(gen, from, damaged);
      },
      link, "replicate.wal", totals));
  ++totals->segments;
  totals->bytes += slice.size();
  return Status::OK();
}

Status WalShipper::Deliver(const std::function<Status(bool)>& deliver,
                           FaultInjector* link, const char* what,
                           ShipTotals* totals) {
  Status last = Status::OK();
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    LinkVerdict verdict;
    if (link != nullptr) verdict = link->OnLinkOperation(what);
    if (verdict.dropped) {
      ++totals->drops;
      last = Status::Unavailable(std::string(what) +
                                 " lost to an injected link fault");
      if (attempt == retry_.max_attempts) break;
      ++totals->retries;
      if (clock_ != nullptr) {
        clock_->AdvanceMicros(retry_.BackoffMicros(attempt, &jitter_));
      }
      continue;
    }
    Status received = deliver(verdict.corrupted);
    if (verdict.corrupted) ++totals->corruptions;
    if (received.code() == StatusCode::kDataLoss) ++totals->rejections;
    if (verdict.corrupted && !received.ok()) {
      // The receiver refused bytes the *link* damaged (it quarantined the
      // evidence and touched nothing durable); the local copy is fine, so
      // a clean re-send is the repair. Contrast with a clean-send
      // kDataLoss below, which is permanent — the source bytes themselves
      // are damaged and re-sending rereads the same damage.
      last = received;
      if (attempt == retry_.max_attempts) break;
      ++totals->retries;
      if (clock_ != nullptr) {
        clock_->AdvanceMicros(retry_.BackoffMicros(attempt, &jitter_));
      }
      continue;
    }
    IDM_RETURN_NOT_OK(received);
    if (verdict.duplicated) {
      ++totals->duplicates;
      IDM_RETURN_NOT_OK(deliver(false));  // re-delivery must be a no-op
    }
    return Status::OK();
  }
  return last;
}

}  // namespace idm::cluster
