#include "cluster/shard.h"

#include <algorithm>
#include <utility>

namespace idm::cluster {

ShardGroup::ShardGroup(std::string name, ShardOptions options, SimClock* clock,
                       obs::Observability* obs)
    : name_(std::move(name)),
      options_(std::move(options)),
      clock_(clock),
      obs_(obs),
      shipper_(clock, options_.ship_retry, options_.seed) {
  owned_envs_.push_back(std::make_unique<storage::MemEnv>());
  primary_env_ = owned_envs_.back().get();
  iql::Dataspace::Config config = options_.node;
  config.storage_dir = "primary";
  config.env = primary_env_;
  config.storage = options_.storage;
  Result<std::unique_ptr<iql::Dataspace>> opened =
      iql::Dataspace::Open(std::move(config));
  if (opened.ok()) {
    primary_ = std::move(*opened);
    primary_alive_ = true;
    WireCommitListener();
  } else {
    status_ = opened.status();
  }
  breaker_.emplace(options_.breaker, clock_);
  for (size_t i = 0; i < options_.replicas; ++i) {
    replicas_.push_back(std::make_unique<ReplicaNode>(
        name_ + ".r" + std::to_string(i), options_.node, options_.storage));
    replica_links_.push_back(nullptr);
  }
  if (obs_ != nullptr) {
    obs::MetricsRegistry& reg = obs_->metrics();
    promotions_metric_ = reg.counter("cluster.promotions");
    probe_failures_metric_ = reg.counter("cluster.probe_failures");
    repairs_metric_ = reg.counter("cluster.repairs");
    reseeds_metric_ = reg.counter("cluster.reseeds");
    lag_gauge_ = reg.gauge("cluster." + name_ + ".lag_commits");
  }
}

void ShardGroup::WireCommitListener() {
  if (!options_.ship_on_commit || primary_ == nullptr ||
      primary_->storage_engine() == nullptr) {
    return;
  }
  primary_->storage_engine()->set_commit_listener([this](uint64_t) {
    // Semi-sync replication: every fsynced commit is offered to every
    // replica before the mutating call returns. A failed ship (partitioned
    // link, crashed replica) is lag, not an error on the write path.
    last_ship_status_ = Ship();
  });
}

Result<rvm::SourceIndexStats> ShardGroup::AddSource(
    std::shared_ptr<rvm::DataSource> source) {
  if (!primary_alive_) {
    return Status::Unavailable("shard '" + name_ + "' has no primary");
  }
  sources_.push_back(source);
  IDM_ASSIGN_OR_RETURN(rvm::SourceIndexStats stats,
                       primary_->AddSource(std::move(source)));
  (void)Ship();  // catch policy-deferred fsyncs; failures are lag
  return stats;
}

Result<rvm::SyncStats> ShardGroup::Poll() {
  if (!primary_alive_) {
    return Status::Unavailable("shard '" + name_ + "' has no primary");
  }
  IDM_ASSIGN_OR_RETURN(rvm::SyncStats stats, primary_->sync().Poll());
  (void)Ship();
  return stats;
}

Result<rvm::SyncStats> ShardGroup::ProcessNotifications() {
  if (!primary_alive_) {
    return Status::Unavailable("shard '" + name_ + "' has no primary");
  }
  IDM_ASSIGN_OR_RETURN(rvm::SyncStats stats,
                       primary_->sync().ProcessNotifications());
  (void)Ship();
  return stats;
}

Status ShardGroup::Checkpoint() {
  if (!primary_alive_) {
    return Status::Unavailable("shard '" + name_ + "' has no primary");
  }
  IDM_RETURN_NOT_OK(primary_->Checkpoint());
  (void)Ship();  // a crashed/partitioned replica is lag, not a write error
  return Status::OK();
}

Status ShardGroup::Ship() {
  if (!primary_alive_ || primary_ == nullptr ||
      primary_->storage_engine() == nullptr) {
    return Status::FailedPrecondition("shard '" + name_ +
                                      "' has no live storage to ship from");
  }
  Status first;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Status shipped =
        shipper_.Ship(primary_->storage_engine(), replicas_[i].get(),
                      replica_links_[i], &ship_totals_);
    if (!shipped.ok()) {
      ++ship_totals_.failed;
      if (first.ok()) first = shipped;
    }
  }
  UpdateLagGauge();
  return first;
}

Status ShardGroup::ScrubAndRepair() {
  if (!primary_alive_ || primary_ == nullptr ||
      primary_->storage_engine() == nullptr) {
    return Status::FailedPrecondition("shard '" + name_ +
                                      "' has no live storage to scrub");
  }
  ++repair_totals_.sweeps;

  // 1. Primary store: a full scrub pass. Findings are contained inside
  //    ScrubNow — evidence copied to quarantine, then a rescue checkpoint
  //    rotates to a clean generation cut from the authoritative in-memory
  //    state, which also resets the shipper's view of the damaged WAL.
  IDM_ASSIGN_OR_RETURN(std::vector<repair::ScrubFinding> findings,
                       primary_->ScrubNow());
  repair_totals_.primary_defects += findings.size();

  // 2. Anti-entropy: the primary's digest ladder against every mirror.
  //    Each damaged replica quarantines exactly its bad suffix (or base
  //    image) and rewinds; a clean or merely-behind replica is untouched.
  storage::StorageEngine* engine = primary_->storage_engine();
  std::string ckpt;
  if (engine->generation() > 0) {
    IDM_ASSIGN_OR_RETURN(
        ckpt, engine->env()->ReadFile(engine->LiveCheckpointPath()));
  }
  IDM_ASSIGN_OR_RETURN(std::string wal,
                       engine->env()->ReadFile(engine->LiveWalPath()));
  repair::DigestLadder ladder =
      repair::BuildLadder(engine->generation(), ckpt, wal);
  Status first;
  for (std::unique_ptr<ReplicaNode>& replica : replicas_) {
    Result<AntiEntropyReport> report = replica->SyncWithLadder(ladder);
    if (!report.ok()) {
      if (first.ok()) first = report.status();
      continue;
    }
    if (report->repaired) {
      ++repair_totals_.replica_repairs;
      if (repairs_metric_ != nullptr) repairs_metric_->Inc();
    } else if (report->reseeded) {
      ++repair_totals_.replica_reseeds;
      if (reseeds_metric_ != nullptr) reseeds_metric_->Inc();
    } else {
      ++repair_totals_.replicas_clean;
    }
  }

  // 3. Re-fetch: normal shipping closes exactly the gap each repair opened
  //    (the rewound mirror reports its boundary; the reseeded mirror
  //    reinstalls the checkpoint). Link failures here are lag, as always.
  Status shipped = Ship();
  if (first.ok()) first = shipped;
  UpdateLagGauge();
  return first;
}

void ShardGroup::KillPrimary() {
  if (!primary_alive_) return;
  primary_alive_ = false;
  if (primary_env_ != nullptr) primary_env_->CrashNow();
}

bool ShardGroup::ProbeOnce() {
  if (!primary_alive_) return false;
  if (probe_injector_ != nullptr) {
    return probe_injector_->OnOperation("probe " + name_).ok();
  }
  return true;
}

Status ShardGroup::Tick() {
  const bool healthy = ProbeOnce();
  if (healthy) {
    breaker_->RecordSuccess();
    return Status::OK();
  }
  breaker_->RecordFailure();
  if (probe_failures_metric_ != nullptr) probe_failures_metric_->Inc();
  if (breaker_->state() != CircuitBreaker::State::kClosed) {
    return Promote();
  }
  return Status::OK();
}

Status ShardGroup::Promote() {
  // Most caught-up replica wins: by (generation, applied commit sequence),
  // ties broken by the lowest index — fully deterministic.
  int best = -1;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (best < 0 ||
        std::pair(replicas_[i]->generation(), replicas_[i]->applied_seq()) >
            std::pair(replicas_[best]->generation(),
                      replicas_[best]->applied_seq())) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    return Status::Unavailable("shard '" + name_ +
                               "': no replica available to promote");
  }
  std::unique_ptr<ReplicaNode> node = std::move(replicas_[best]);
  replicas_.erase(replicas_.begin() + best);
  replica_links_.erase(replica_links_.begin() + best);

  Result<std::unique_ptr<iql::Dataspace>> promoted = node->Promote();
  if (!promoted.ok()) {
    replicas_.insert(replicas_.begin() + best, std::move(node));
    replica_links_.insert(replica_links_.begin() + best, nullptr);
    return promoted.status();
  }

  // Fence whatever is left of the old primary: even if it was merely
  // suspected (detector false positive), it must never accept another
  // write once a replacement exists.
  if (primary_env_ != nullptr) primary_env_->CrashNow();
  graveyard_.push_back(std::move(primary_));
  primary_ = std::move(*promoted);
  primary_env_ = node->env();
  retired_.push_back(std::move(node));
  primary_alive_ = true;

  // The promoted node inherits the cluster's notion of time (its state is
  // unaffected — mutation timestamps ride in the WAL records).
  const Micros now = clock_->NowMicros();
  if (primary_->clock()->NowMicros() < now) {
    primary_->clock()->AdvanceMicros(now - primary_->clock()->NowMicros());
  }
  for (const std::shared_ptr<rvm::DataSource>& source : sources_) {
    primary_->AttachSource(source);
  }
  WireCommitListener();
  shipper_ = WalShipper(clock_, options_.ship_retry, options_.seed);
  breaker_.emplace(options_.breaker, clock_);
  ++promotions_;
  if (promotions_metric_ != nullptr) promotions_metric_->Inc();
  UpdateLagGauge();
  return Status::OK();
}

const iql::Dataspace* ShardGroup::ServingFor(iql::ReadMode mode) const {
  if (mode == iql::ReadMode::kLinearizable) {
    return primary_alive_ ? primary_.get() : nullptr;
  }
  const ReplicaNode* best = nullptr;
  for (const std::unique_ptr<ReplicaNode>& r : replicas_) {
    if (r->serving() == nullptr) continue;
    if (best == nullptr || std::pair(r->generation(), r->applied_seq()) >
                               std::pair(best->generation(),
                                         best->applied_seq())) {
      best = r.get();
    }
  }
  if (best != nullptr) return best->serving();
  return primary_alive_ ? primary_.get() : nullptr;
}

uint64_t ShardGroup::BestEpoch() const {
  uint64_t best = 0;
  if (primary_alive_ && primary_ != nullptr) best = primary_->module().epoch();
  for (const std::unique_ptr<ReplicaNode>& r : replicas_) {
    best = std::max(best, r->epoch());
  }
  return best;
}

uint64_t ShardGroup::StalenessOf(const iql::Dataspace* serving) const {
  if (serving == nullptr) return 0;
  const uint64_t best = BestEpoch();
  const uint64_t mine = serving->module().epoch();
  return best > mine ? best - mine : 0;
}

void ShardGroup::UpdateLagGauge() {
  if (lag_gauge_ == nullptr) return;
  if (!primary_alive_ || primary_ == nullptr ||
      primary_->storage_engine() == nullptr) {
    return;
  }
  const uint64_t head = primary_->storage_engine()->commit_seq();
  uint64_t lag = 0;
  for (const std::unique_ptr<ReplicaNode>& r : replicas_) {
    lag = std::max(lag, head - std::min(head, r->applied_seq()));
  }
  lag_gauge_->Set(static_cast<int64_t>(lag));
}

}  // namespace idm::cluster
