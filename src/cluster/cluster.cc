#include "cluster/cluster.h"

#include <algorithm>
#include <utility>

namespace idm::cluster {

uint64_t StableHash(std::string_view key) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {
std::string ShardName(size_t index) {
  return "shard" + std::to_string(index);
}
}  // namespace

Cluster::Cluster(Config config) : config_(std::move(config)) {
  if (config_.observability) {
    obs::Options options;
    options.enabled = true;
    obs_ = std::make_unique<obs::Observability>(&clock_, options);
  }
  for (size_t i = 0; i < config_.shards; ++i) AddShardInternal();
  for (const std::unique_ptr<ShardGroup>& shard : shards_) {
    if (!shard->status().ok()) {
      status_ = shard->status();
      break;
    }
  }
}

void Cluster::AddShardInternal() {
  const size_t index = shards_.size();
  ShardOptions options;
  options.replicas = config_.replicas_per_shard;
  options.node = config_.node;
  options.storage = config_.storage;
  options.breaker = config_.breaker;
  options.probe_interval_micros = config_.probe_interval_micros;
  options.ship_retry = config_.ship_retry;
  options.ship_on_commit = config_.ship_on_commit;
  options.seed = config_.seed + 7919 * (index + 1);
  shards_.push_back(std::make_unique<ShardGroup>(ShardName(index),
                                                 std::move(options), &clock_,
                                                 obs_.get()));
  // The down-shard stand-in link: shipping a query to a shard without a
  // serving node always fails, deterministically and without latency, so
  // the federation counts the shard failed and the merge degrades.
  auto link = std::make_unique<FaultInjector>(options.seed);
  FaultConfig always_fail;
  always_fail.fault_probability = 1.0;
  always_fail.unavailable_weight = 1.0;
  always_fail.fault_latency_micros = 0;
  link->set_config(always_fail);
  down_links_.push_back(std::move(link));
}

void Cluster::AddShard() { AddShardInternal(); }

size_t Cluster::ShardOf(const std::string& key) const {
  auto placed = placements_.find(key);
  if (placed != placements_.end()) return placed->second;
  return static_cast<size_t>(StableHash(key) % shards_.size());
}

Result<rvm::SourceIndexStats> Cluster::AddFileSystem(
    const std::string& name, std::shared_ptr<vfs::VirtualFileSystem> fs,
    const std::string& root_path) {
  return AddSource(
      std::make_shared<rvm::FileSystemSource>(name, std::move(fs), root_path));
}

Result<rvm::SourceIndexStats> Cluster::AddSource(
    std::shared_ptr<rvm::DataSource> source) {
  const size_t index = ShardOf(source->name());
  placements_[source->name()] = index;  // pinned across AddShard
  return shards_[index]->AddSource(std::move(source));
}

rvm::SyncStats Cluster::PollAll() {
  rvm::SyncStats merged;
  for (const std::unique_ptr<ShardGroup>& shard : shards_) {
    Result<rvm::SyncStats> polled = shard->Poll();
    if (polled.ok()) {
      merged.Merge(*polled);
    } else {
      merged.RecordFailure(shard->name() + ": " + polled.status().ToString());
    }
  }
  return merged;
}

Status Cluster::Tick() {
  clock_.AdvanceMicros(config_.probe_interval_micros);
  Status first;
  for (const std::unique_ptr<ShardGroup>& shard : shards_) {
    Status status = shard->Tick();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

void Cluster::ShipAll() {
  std::shared_ptr<obs::Trace> trace =
      obs_ != nullptr ? obs_->StartTrace("cluster", "ship") : nullptr;
  obs::TraceSpan* root = trace == nullptr ? nullptr : trace->root();
  for (const std::unique_ptr<ShardGroup>& shard : shards_) {
    obs::ScopedSpan span(root, "ship." + shard->name());
    Status status = shard->primary_alive() ? shard->Ship() : Status::OK();
    if (span) {
      span.get()->SetAttr("ok", static_cast<int64_t>(status.ok() ? 1 : 0));
      span.get()->SetAttr("shipped_bytes",
                          static_cast<int64_t>(shard->ship_totals().bytes));
    }
  }
  if (obs_ != nullptr) obs_->FinishTrace("cluster", std::move(trace));
}

Status Cluster::CheckpointAll() {
  Status first;
  for (const std::unique_ptr<ShardGroup>& shard : shards_) {
    if (!shard->primary_alive()) continue;
    Status status = shard->Checkpoint();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

void Cluster::RefreshServing() const {
  uint64_t stamp = shards_.size() * 1'000'003ull;
  for (const std::unique_ptr<ShardGroup>& shard : shards_) {
    stamp += shard->promotions();
    stamp += shard->primary_alive() ? 0 : (1ull << 32);
  }
  if (stamp == serving_stamp_ && fed_linearizable_ != nullptr) return;
  serving_stamp_ = stamp;
  fed_linearizable_ = BuildFederation(iql::ReadMode::kLinearizable);
  fed_stale_ = BuildFederation(iql::ReadMode::kStaleOk);
}

std::unique_ptr<iql::Federation> Cluster::BuildFederation(
    iql::ReadMode mode) const {
  auto fed = std::make_unique<iql::Federation>(&clock_, config_.federation);
  if (obs_ != nullptr) fed->SetObservability(obs_.get());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const iql::Dataspace* serving = shards_[i]->ServingFor(mode);
    FaultInjector* link = nullptr;
    if (serving == nullptr) {
      // No serving node under this mode: route to the shard's (dead)
      // dataspace behind an always-fail link, so the query degrades
      // instead of silently skipping the shard.
      serving = shards_[i]->AnyDataspace();
      link = down_links_[i].get();
    }
    if (serving == nullptr) continue;  // shard never opened at all
    (void)fed->AddPeer(ShardName(i), serving, config_.peer_latency, link);
  }
  return fed;
}

Result<Cluster::QueryOutcome> Cluster::Query(
    const std::string& iql, const iql::QueryOptions& options) const {
  RefreshServing();
  const bool stale = options.read_mode == iql::ReadMode::kStaleOk;
  iql::Federation* fed =
      stale ? fed_stale_.get() : fed_linearizable_.get();
  if (fed == nullptr || fed->peer_count() == 0) {
    return Status::FailedPrecondition("cluster has no serving shards");
  }

  // Staleness accounting happens against the serving table used for the
  // dispatch: the worst lag (in epochs) of any replica that may answer.
  uint64_t staleness = 0;
  if (stale) {
    for (const std::unique_ptr<ShardGroup>& shard : shards_) {
      const iql::Dataspace* serving =
          shard->ServingFor(iql::ReadMode::kStaleOk);
      staleness = std::max(staleness, shard->StalenessOf(serving));
    }
  }

  Result<iql::FederatedResult> merged = fed->Query(iql);
  QueryOutcome out;
  if (!merged.ok()) {
    // Every shard failed. Infrastructure failures degrade per the
    // partial-result contract (an empty answer is an answer during
    // failover); real query errors (parse, unsupported shape) propagate.
    if (!merged.status().IsRetryable()) return merged.status();
    out.meta.complete = false;
    out.meta.degraded_reason = merged.status().ToString();
    out.meta.staleness_epochs = staleness;
    out.shards_failed = shards_.size();
    return out;
  }
  out.merged = std::move(*merged);
  out.shards_reached = out.merged.peers_reached;
  out.shards_failed = out.merged.peers_failed;
  out.meta.complete =
      out.merged.peers_failed == 0 && out.merged.peers_degraded == 0;
  if (!out.meta.complete) {
    out.meta.degraded_reason = out.merged.failures.empty()
                                   ? "shard returned a partial result"
                                   : out.merged.failures.front();
  }
  out.meta.staleness_epochs = staleness;
  return out;
}

Cluster::Stats Cluster::GetStats() const {
  Stats stats;
  stats.shards = shards_.size();
  for (const std::unique_ptr<ShardGroup>& shard : shards_) {
    ShardStats s;
    s.name = shard->name();
    s.primary_alive = shard->primary_alive();
    iql::Dataspace* primary = shard->primary();
    if (primary != nullptr) {
      s.epoch = primary->module().epoch();
      storage::StorageEngine* engine = primary->storage_engine();
      if (engine != nullptr) {
        s.commit_seq = engine->commit_seq();
        s.durable_seq = engine->last_durable_seq();
      }
    }
    s.promotions = shard->promotions();
    s.shipping = shard->ship_totals();
    for (size_t r = 0; r < shard->replica_count(); ++r) {
      ReplicaNode& node = shard->replica(r);
      s.replicas.push_back({node.name(), node.generation(), node.applied_seq(),
                            node.epoch(), node.wal_bytes(),
                            node.duplicates()});
    }
    stats.promotions += s.promotions;
    stats.shipping.Merge(s.shipping);
    stats.per_shard.push_back(std::move(s));
  }
  if (obs_ != nullptr) stats.metrics = obs_->metrics().Snapshot();
  return stats;
}

}  // namespace idm::cluster
