// WAL-shipping replication (DESIGN.md §12): the primary's durable WAL
// prefix and checkpoint images are streamed to replicas over a
// fault-injectable link and replayed through the existing ApplyMutation
// path — live == replay is preserved by construction, because a replica
// executes exactly the code a crash recovery executes.
//
// Two halves:
//   * ReplicaNode — one follower: an in-memory serving Dataspace plus a
//     durable mirror of the primary's generation files in its own MemEnv.
//     Receipt is idempotent (re-delivery of an applied segment is a no-op),
//     crash recovery reuses StorageEngine::Open on the mirror, and
//     Promote() turns the mirror into a full durable primary.
//   * WalShipper — the primary side: enumerates commit-aligned durable
//     segments of the live WAL (WalScanResult::commits), ships them (plus
//     the checkpoint image on generation change) through a FaultInjector
//     link with retry/backoff charged to the SimClock.

#ifndef IDM_CLUSTER_REPLICATION_H_
#define IDM_CLUSTER_REPLICATION_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "iql/dataspace.h"
#include "repair/integrity.h"
#include "storage/engine.h"
#include "storage/env.h"
#include "util/fault.h"
#include "util/retry.h"

namespace idm::cluster {

/// What one anti-entropy round against a healthy peer decided for a mirror
/// (DESIGN.md §15): at most one of repaired/reseeded is set, and any
/// quarantined evidence is named so callers can surface it loudly.
struct AntiEntropyReport {
  bool clean = false;     ///< mirror agrees with the remote prefix
  bool behind = false;    ///< agrees but shorter/older — shipping catches up
  bool repaired = false;  ///< damaged WAL suffix quarantined, clean prefix kept
  bool reseeded = false;  ///< base image damaged: mirror reset to generation 0
  uint64_t refetch_from = 0;  ///< mirror WAL offset re-shipping resumes from
  std::string quarantined;    ///< artifact named in the manifest ("" = none)
};

/// One read replica: serving state + durable mirror. Not thread-safe (the
/// whole replication simulation is single-threaded, like fault injection).
class ReplicaNode {
 public:
  /// \p serving_config configures the follower's in-memory dataspace; its
  /// storage_dir/env are cleared — the durable mirror lives in this node's
  /// own MemEnv under "replica", maintained by the shipping path, never by
  /// the serving dataspace (a follower applies, it does not log).
  ReplicaNode(std::string name, iql::Dataspace::Config serving_config,
              storage::StorageOptions storage);

  const std::string& name() const { return name_; }
  storage::MemEnv* env() { return &env_; }

  /// The serving dataspace (stale_ok reads); null after Promote().
  const iql::Dataspace* serving() const { return serving_.get(); }

  /// Mirror position: generation being followed, last applied commit
  /// sequence, and bytes of the generation's WAL already applied.
  uint64_t generation() const { return generation_; }
  uint64_t applied_seq() const { return applied_seq_; }
  uint64_t wal_bytes() const { return wal_bytes_; }
  /// VersionLog epoch of the serving state (staleness accounting).
  uint64_t epoch() const;

  /// Installs checkpoint image \p image as generation \p gen (primary
  /// checkpointed): writes the mirror files under the PR-3 generation
  /// protocol, retires the old generation, and restores the serving
  /// dataspace from the image. Re-delivery (gen <= current) is a no-op.
  Status InstallCheckpoint(uint64_t gen, const std::string& image);

  /// Appends a commit-aligned WAL slice starting at \p from_offset of
  /// generation \p gen to the durable mirror, then replays its mutations
  /// into the serving dataspace. Idempotent: a slice ending at or before
  /// wal_bytes() is a no-op, an overlapping slice applies only its fresh
  /// tail. A gap (from_offset > wal_bytes()) or generation mismatch
  /// returns kUnavailable — the shipper resyncs. A slice that fails its
  /// frame CRCs is rejected *before* it touches the mirror: the bytes are
  /// preserved in quarantine and the verdict is kDataLoss — permanent, not
  /// a link fault, because re-sending the same bytes rereads the same
  /// damage; the shipper re-fetches from the mirror boundary instead.
  Status AppendWal(uint64_t gen, uint64_t from_offset, std::string_view data);

  /// Digest ladder over the mirror's current generation artifacts
  /// (anti-entropy request half: what this replica believes it has).
  Result<repair::DigestLadder> MirrorLadder();

  /// One anti-entropy round against a healthy peer's ladder: locates the
  /// first divergence, quarantines exactly the damaged mirror suffix (or
  /// the base image), and rewinds so normal shipping re-fetches precisely
  /// the lost range. Repair always goes through Recover() — the serving
  /// state is rebuilt from the repaired mirror, never patched in place, so
  /// a re-shipped range can never double-apply.
  Result<AntiEntropyReport> SyncWithLadder(const repair::DigestLadder& remote);

  /// Replica-local at-rest scrub: verifies the mirror's checkpoint seal and
  /// WAL frame CRCs without a peer. Damage is contained exactly as in
  /// SyncWithLadder (quarantine + rewind + Recover, or reseed); the lag it
  /// opens reads as kUnavailable to gap-checking callers until the shipper
  /// closes it — degraded, never silently divergent.
  Result<AntiEntropyReport> ScrubMirror();

  /// Rebuilds serving state from the durable mirror after env().Reboot()
  /// — exactly the PR-3 recovery path (StorageEngine::Open + restore +
  /// replay), so a killed replica recovers byte-identically to its own
  /// durable prefix and re-shipping resumes from wal_bytes().
  Status Recover();

  /// Turns the mirror into a full durable primary: Dataspace::Open on the
  /// mirror directory. The node stops serving as a replica afterwards.
  Result<std::unique_ptr<iql::Dataspace>> Promote();

  /// --- counters ------------------------------------------------------------
  uint64_t duplicates() const { return duplicates_; }
  uint64_t segments_applied() const { return segments_applied_; }
  uint64_t bytes_applied() const { return bytes_applied_; }
  uint64_t checkpoints_installed() const { return checkpoints_installed_; }
  uint64_t rejected_deliveries() const { return rejected_deliveries_; }
  uint64_t quarantined() const { return quarantined_; }
  uint64_t repairs() const { return repairs_; }
  uint64_t reseeds() const { return reseeds_; }

 private:
  std::string CkptPath(uint64_t gen) const;
  std::string WalPath(uint64_t gen) const;
  Status SwitchCurrent(uint64_t gen);
  /// Preserves \p bytes in the mirror's quarantine stash under \p artifact.
  /// A fresh QuarantineManager is loaded per call: Recover()/Promote() open
  /// a StorageEngine over the same directory whose manager may also append
  /// to the manifest, so a cached instance could hand out stale ids.
  Status Stash(const std::string& artifact, std::string_view bytes,
               const std::string& reason, AntiEntropyReport* report);
  /// Quarantines the full mirror WAL as evidence, rewrites the live file
  /// with its verified prefix [0, keep), and rebuilds serving state via
  /// Recover() so re-shipping resumes exactly at \p keep.
  Status RewindWal(std::string_view wal, uint64_t keep,
                   const std::string& reason, AntiEntropyReport* report);
  /// Quarantines the generation's artifacts and resets the mirror to
  /// generation 0 — the next Ship() reinstalls the peer's checkpoint (the
  /// "last sealed-good generation" degraded path when the base is gone).
  Status Reseed(const std::string& reason, AntiEntropyReport* report);

  std::string name_;
  iql::Dataspace::Config config_;  ///< sanitized serving template
  storage::StorageOptions storage_;
  storage::MemEnv env_;
  std::string dir_ = "replica";
  std::unique_ptr<iql::Dataspace> serving_;

  uint64_t generation_ = 0;
  uint64_t applied_seq_ = 0;
  uint64_t wal_bytes_ = 0;

  uint64_t duplicates_ = 0;
  uint64_t segments_applied_ = 0;
  uint64_t bytes_applied_ = 0;
  uint64_t checkpoints_installed_ = 0;
  uint64_t rejected_deliveries_ = 0;
  uint64_t quarantined_ = 0;
  uint64_t repairs_ = 0;
  uint64_t reseeds_ = 0;
};

/// What one Ship() round (or a lifetime of rounds) moved.
struct ShipTotals {
  uint64_t segments = 0;     ///< WAL slices delivered
  uint64_t bytes = 0;        ///< WAL bytes delivered
  uint64_t checkpoints = 0;  ///< checkpoint images delivered
  uint64_t duplicates = 0;   ///< injected duplicate deliveries
  uint64_t drops = 0;        ///< sends lost to injected link faults
  uint64_t retries = 0;      ///< re-sends after a drop or a corrupted send
  uint64_t failed = 0;       ///< Ship() rounds that gave up on a replica
  uint64_t corruptions = 0;  ///< sends damaged in flight by the link
  uint64_t rejections = 0;   ///< deliveries the receiver refused as kDataLoss

  void Merge(const ShipTotals& other) {
    segments += other.segments;
    bytes += other.bytes;
    checkpoints += other.checkpoints;
    duplicates += other.duplicates;
    drops += other.drops;
    retries += other.retries;
    failed += other.failed;
    corruptions += other.corruptions;
    rejections += other.rejections;
  }
};

/// Primary-side shipping loop. One shipper per shard; it keeps an
/// incremental scan cache over the live WAL so each round scans only bytes
/// appended since the last.
class WalShipper {
 public:
  /// \p clock receives retry backoff (and, via the link injector, injected
  /// delivery latency); may be nullptr.
  WalShipper(Clock* clock, RetryPolicy retry, uint64_t jitter_seed)
      : clock_(clock), retry_(retry), jitter_(jitter_seed) {}

  /// Brings \p replica as close to \p engine's durable prefix as the link
  /// allows: ships the checkpoint image when the replica is a generation
  /// behind, then the commit-aligned durable WAL suffix past the replica's
  /// wal_bytes(). Only fsynced commits ship — under FsyncPolicy::kNever
  /// replication advances on explicit SyncNow/Checkpoint, by design.
  /// \p link may be nullptr (a perfect link). Accounting accumulates into
  /// \p totals even when the round fails — a dropped send is a drop whether
  /// or not a retry eventually got through. Local artifacts are verified
  /// before they ship: a primary whose checkpoint seal or durable WAL
  /// frames no longer check out gets kDataLoss (never ships damage) — the
  /// shard's ScrubAndRepair quarantines and rescues it.
  Status Ship(storage::StorageEngine* engine, ReplicaNode* replica,
              FaultInjector* link, ShipTotals* totals);

 private:
  /// Sends one message through the link with retry: a dropped send backs
  /// off (charged to the clock) and re-sends; a duplicated send delivers
  /// twice (receipt must be idempotent); a corrupted send (\p corrupted
  /// true) delivers damaged bytes the receiver's CRCs must catch — its
  /// kDataLoss rejection is retried with a clean re-send, since the local
  /// bytes are fine and the link was at fault. Receiver-side errors on a
  /// *clean* send are never retried: kDataLoss there means the source or
  /// mirror bytes are damaged (permanent — anti-entropy is the recovery),
  /// and kUnavailable means resync or a crashed replica, not a lost packet.
  Status Deliver(const std::function<Status(bool corrupted)>& deliver,
                 FaultInjector* link, const char* what, ShipTotals* totals);

  Clock* clock_;
  RetryPolicy retry_;
  Rng jitter_;

  /// Incremental scan cache over the live WAL (reset on generation change).
  const storage::StorageEngine* scanned_engine_ = nullptr;
  uint64_t scanned_generation_ = 0;
  uint64_t scanned_bytes_ = 0;
  std::vector<storage::CommitMark> commits_;
};

}  // namespace idm::cluster

#endif  // IDM_CLUSTER_REPLICATION_H_
