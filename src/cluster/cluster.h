// The shard router (DESIGN.md §12): partitions sources across N ShardGroups
// by a stable hash of the source name (with a routing table pinning
// existing placements across AddShard), fronts Dataspace::Query with the
// federation's scatter-gather merge, and degrades per the partial-result
// contract while a shard is failing over instead of erroring.
//
//   cluster::Cluster::Config config;
//   config.shards = 3;
//   config.replicas_per_shard = 2;
//   cluster::Cluster cluster(config);
//   cluster.AddFileSystem("Filesystem", fs);
//   auto out = cluster.Query("//PIM//notes", {});       // linearizable
//   iql::QueryOptions stale;
//   stale.read_mode = iql::ReadMode::kStaleOk;
//   auto near = cluster.Query("//PIM//notes", stale);   // any replica
//
// Read modes: kLinearizable routes to primaries only (a shard without a
// primary contributes a degraded hole — meta.complete == false — never a
// stale row); kStaleOk routes to each shard's most-caught-up replica and
// reports the worst replica lag in ResultMeta::staleness_epochs.

#ifndef IDM_CLUSTER_CLUSTER_H_
#define IDM_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/shard.h"
#include "iql/federation.h"

namespace idm::cluster {

/// Stable FNV-1a hash used by the router (placement must never depend on
/// process or library state).
uint64_t StableHash(std::string_view key);

class Cluster {
 public:
  struct Config {
    size_t shards = 1;
    size_t replicas_per_shard = 0;
    /// Template for every node in every shard (storage_dir/env overridden
    /// per node).
    iql::Dataspace::Config node;
    storage::StorageOptions storage;
    CircuitBreaker::Options breaker{/*failure_threshold=*/3,
                                    /*cooldown_micros=*/2'000'000,
                                    /*half_open_successes=*/1};
    Micros probe_interval_micros = 500'000;
    RetryPolicy ship_retry{/*max_attempts=*/3,
                           /*initial_backoff_micros=*/10'000,
                           /*backoff_multiplier=*/2.0,
                           /*max_backoff_micros=*/200'000,
                           /*jitter_fraction=*/0.25};
    bool ship_on_commit = true;
    /// Scatter-gather options for the query fan-out (threads, per-shard
    /// deadline, link retry).
    iql::Federation::Options federation;
    /// Simulated network cost of shipping a query to a shard.
    iql::Federation::PeerLatency peer_latency{/*per_query_micros=*/1000,
                                              /*per_result_micros=*/5};
    uint64_t seed = 1;
    /// Cluster-level tracing + metrics (promotions, lag, per-shard spans).
    bool observability = false;
  };

  /// Everything one routed query returns: the federation merge plus the
  /// cluster-level ResultMeta (degradation + staleness).
  struct QueryOutcome {
    iql::FederatedResult merged;
    iql::ResultMeta meta;
    size_t shards_reached = 0;
    size_t shards_failed = 0;
  };

  struct ReplicaStats {
    std::string name;
    uint64_t generation = 0;
    uint64_t applied_seq = 0;
    uint64_t epoch = 0;
    uint64_t wal_bytes = 0;
    uint64_t duplicates = 0;
  };
  struct ShardStats {
    std::string name;
    bool primary_alive = false;
    uint64_t commit_seq = 0;
    uint64_t durable_seq = 0;
    uint64_t epoch = 0;
    uint64_t promotions = 0;
    ShipTotals shipping;
    std::vector<ReplicaStats> replicas;
  };
  struct Stats {
    size_t shards = 0;
    uint64_t promotions = 0;
    ShipTotals shipping;
    std::vector<ShardStats> per_shard;
    obs::MetricsSnapshot metrics;  ///< empty when observability off
  };

  explicit Cluster(Config config);

  /// OK when every shard's initial primary opened; the first open error
  /// otherwise.
  const Status& status() const { return status_; }

  size_t shard_count() const { return shards_.size(); }
  ShardGroup& shard(size_t i) { return *shards_[i]; }
  /// The cluster-wide simulated clock (probes, backoff, network model).
  SimClock* clock() { return &clock_; }
  obs::Observability* observability() const { return obs_.get(); }

  /// Adds an empty shard to the ring. Existing placements are pinned by
  /// the routing table — only sources added afterwards hash over the
  /// enlarged ring (no resharding of existing data).
  void AddShard();

  /// Which shard \p key (a source name) routes to.
  size_t ShardOf(const std::string& key) const;

  /// --- source registration (routed by source name) ------------------------
  Result<rvm::SourceIndexStats> AddFileSystem(
      const std::string& name, std::shared_ptr<vfs::VirtualFileSystem> fs,
      const std::string& root_path = "/");
  Result<rvm::SourceIndexStats> AddSource(
      std::shared_ptr<rvm::DataSource> source);

  /// Polls every shard's sources; down shards are recorded as failures in
  /// the merged stats rather than failing the round.
  rvm::SyncStats PollAll();
  /// One failure-detector round: advances the clock by one probe interval
  /// and ticks every shard. Returns the first promotion error (a shard
  /// that is due for promotion but cannot promote).
  Status Tick();
  /// Ships every shard's durable suffix (async catch-up after partitions
  /// heal); per-shard failures are recorded, not fatal.
  void ShipAll();
  /// Checkpoints every live shard.
  Status CheckpointAll();

  /// Routes \p iql to every shard under options.read_mode and merges per
  /// the federation contract. Shards without a reachable serving node
  /// degrade the result (meta.complete == false) instead of erroring;
  /// non-retryable errors (parse, unsupported shape) propagate.
  Result<QueryOutcome> Query(const std::string& iql,
                             const iql::QueryOptions& options) const;

  Stats GetStats() const;

 private:
  void AddShardInternal();
  void RefreshServing() const;
  std::unique_ptr<iql::Federation> BuildFederation(iql::ReadMode mode) const;

  Config config_;
  mutable SimClock clock_;
  std::unique_ptr<obs::Observability> obs_;
  Status status_;

  std::vector<std::unique_ptr<ShardGroup>> shards_;
  /// Always-fail link injectors representing unreachable (down) shards in
  /// the federations, one per shard.
  std::vector<std::unique_ptr<FaultInjector>> down_links_;
  /// Routing table: source name -> shard index, pinned at AddSource time.
  std::map<std::string, size_t> placements_;

  /// Serving tables (federations) are rebuilt lazily when topology changes
  /// (shard added / primary promoted).
  mutable std::unique_ptr<iql::Federation> fed_linearizable_;
  mutable std::unique_ptr<iql::Federation> fed_stale_;
  mutable uint64_t serving_stamp_ = ~uint64_t{0};
};

}  // namespace idm::cluster

#endif  // IDM_CLUSTER_CLUSTER_H_
