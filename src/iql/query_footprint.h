// Builds dependency footprints (sub/footprint.h) from parsed iQL queries
// (DESIGN.md §14). This is the only place that knows both the AST and the
// footprint algebra; the subscription manager and the query cache consume
// the result without ever seeing a query tree.

#ifndef IDM_IQL_QUERY_FOOTPRINT_H_
#define IDM_IQL_QUERY_FOOTPRINT_H_

#include "iql/ast.h"
#include "rvm/rvm.h"
#include "sub/footprint.h"

namespace idm::iql {

/// Computes \p query's dependency footprint against the current replica
/// state. Scoped iff every result member and structural bridge provably
/// matches one of the collected name patterns:
///   - paths: every step carries a concrete (non-"", non-"*") pattern;
///   - filters: un-ranked, with a name conjunct anchoring the result (a
///     kNameEq at top level, under a top-level `and`, or on *every* arm
///     of an `or`);
///   - set operations: every arm anchored (patterns are the union — even
///     `except` arms, whose mutations can add results);
///   - joins, ranked keyword filters, and clock-dependent predicates
///     (now()/yesterday()) are never scoped: they get a global footprint,
///     which degrades exactly to whole-epoch invalidation.
/// The substrate set is the sources holding >= 1 live pattern match right
/// now; the epoch is stamped from module.epoch().
sub::Footprint ComputeFootprint(const Query& query,
                                const rvm::ReplicaIndexesModule& module);

}  // namespace idm::iql

#endif  // IDM_IQL_QUERY_FOOTPRINT_H_
