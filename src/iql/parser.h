// Recursive-descent iQL parser (paper §5.1).
//
// Grammar (informal):
//   query    := union | join | path | filter
//   union    := 'union' '(' query (',' query)+ ')'
//   join     := 'join' '(' query 'as' IDENT ',' query 'as' IDENT ',' ref '=' ref ')'
//   ref      := IDENT '.' ('name' | 'class' | 'content' | 'tuple' '.' IDENT)
//               (lexed as one dotted identifier)
//   path     := step+
//   step     := ('//' | '/') [name_pattern] [ '[' orexpr ']' ]
//   filter   := orexpr
//   orexpr   := andexpr ('or' andexpr)*
//   andexpr  := unary ('and' unary)*
//   unary    := 'not' unary | atom
//   atom     := STRING | '(' orexpr ')' | '[' orexpr ']'
//             | 'class' '=' (STRING | IDENT)
//             | 'name' '=' (STRING | IDENT)
//             | IDENT op literal
//   literal  := NUMBER | STRING | DATE | IDENT '(' ')'

#ifndef IDM_IQL_PARSER_H_
#define IDM_IQL_PARSER_H_

#include <string>

#include "iql/ast.h"
#include "util/result.h"

namespace idm::iql {

/// Parses \p query into an AST. ParseError on malformed input.
Result<Query> ParseQuery(const std::string& query);

}  // namespace idm::iql

#endif  // IDM_IQL_PARSER_H_
