#include "iql/query_cache.h"

namespace idm::iql {

namespace {

bool PredCacheable(const PredNode& pred) {
  if (pred.kind == PredNode::Kind::kCompare &&
      pred.literal_kind != PredNode::LiteralKind::kValue) {
    return false;
  }
  for (const auto& child : pred.children) {
    if (!PredCacheable(*child)) return false;
  }
  return true;
}

}  // namespace

bool IsCacheable(const Query& query) {
  switch (query.kind) {
    case Query::Kind::kFilter:
      return query.filter == nullptr || PredCacheable(*query.filter);
    case Query::Kind::kPath:
      for (const PathStep& step : query.steps) {
        if (step.predicate != nullptr && !PredCacheable(*step.predicate)) {
          return false;
        }
      }
      return true;
    case Query::Kind::kUnion:
    case Query::Kind::kIntersect:
    case Query::Kind::kExcept:
      for (const auto& arm : query.arms) {
        if (!IsCacheable(*arm)) return false;
      }
      return true;
    case Query::Kind::kJoin:
      return IsCacheable(*query.join->left) && IsCacheable(*query.join->right);
  }
  return false;
}

std::optional<QueryResult> QueryCache::Lookup(const std::string& normalized,
                                              uint64_t epoch,
                                              const Validator& validator) {
  if (!options_.enabled) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(normalized);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    // The dataspace changed since this entry was computed. A scoped
    // footprint gets one chance to prove every intervening mutation
    // irrelevant; success re-stamps the entry so the proof is never
    // repeated for the same window.
    if (validator != nullptr && it->second->footprint.scoped() &&
        validator(it->second->footprint, it->second->epoch)) {
      it->second->epoch = epoch;
      it->second->footprint.epoch = epoch;
      ++stats_.footprint_survived;
    } else {
      // Logically invalidated by the epoch advance; drop it now.
      bytes_ -= it->second->bytes;
      lru_.erase(it->second);
      index_.erase(it);
      ++stats_.stale_drops;
      ++stats_.stale_skipped;
      ++stats_.misses;
      return std::nullopt;
    }
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  ++stats_.hits;
  return it->second->result;
}

void QueryCache::Insert(const std::string& normalized, uint64_t epoch,
                        const QueryResult& result, sub::Footprint footprint) {
  if (!options_.enabled) return;
  if (!result.meta.complete) return;  // partial results are not the answer
  size_t bytes = ResultBytes(normalized, result);
  size_t entry_cap = options_.max_entry_fraction >= 1.0
                         ? options_.max_bytes
                         : static_cast<size_t>(
                               static_cast<double>(options_.max_bytes) *
                               options_.max_entry_fraction);
  if (bytes > entry_cap) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.oversized;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(normalized);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{normalized, epoch, bytes, result,
                        std::move(footprint)});
  index_[normalized] = lru_.begin();
  bytes_ += bytes;
  EvictLocked();
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

size_t QueryCache::ResultBytes(const std::string& key,
                               const QueryResult& result) {
  size_t bytes = sizeof(Entry) + key.size() + result.plan.size() +
                 result.meta.degraded_reason.size();
  for (const std::string& column : result.columns) bytes += column.size() + 8;
  for (const auto& row : result.rows) {
    bytes += sizeof(row) + row.size() * sizeof(index::DocId);
  }
  bytes += result.scores.size() * sizeof(double);
  return bytes;
}

void QueryCache::EvictLocked() {
  while (bytes_ > options_.max_bytes && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace idm::iql
