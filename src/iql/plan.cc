#include "iql/plan.h"

#include <algorithm>

namespace idm::iql {

namespace {

/// Canonical rendering of a predicate: same-kind and/or chains flatten
/// into one n-ary node with sorted operands (the parser builds binary
/// trees, so `a and (b and c)` and `(c and a) and b` meet here as the
/// same key); leaves render as their normalized iQL text.
void FlattenPred(const PredNode& pred, PredNode::Kind kind,
                 std::vector<std::string>* out);

std::string CanonicalPred(const PredNode& pred) {
  switch (pred.kind) {
    case PredNode::Kind::kAnd:
    case PredNode::Kind::kOr: {
      std::vector<std::string> parts;
      FlattenPred(pred, pred.kind, &parts);
      std::sort(parts.begin(), parts.end());
      std::string out =
          pred.kind == PredNode::Kind::kAnd ? "and(" : "or(";
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += ", ";
        out += parts[i];
      }
      out += ")";
      return out;
    }
    case PredNode::Kind::kNot:
      return "not(" + CanonicalPred(*pred.children[0]) + ")";
    default:
      return ToString(pred);
  }
}

void FlattenPred(const PredNode& pred, PredNode::Kind kind,
                 std::vector<std::string>* out) {
  if (pred.kind == kind) {
    for (const auto& child : pred.children) FlattenPred(*child, kind, out);
    return;
  }
  out->push_back(CanonicalPred(pred));
}

std::string RefKey(const JoinRef& ref) {
  std::string out = ref.binding;
  switch (ref.field) {
    case JoinRef::Field::kName: out += ".name"; break;
    case JoinRef::Field::kClass: out += ".class"; break;
    case JoinRef::Field::kTupleAttr: out += ".tuple." + ref.attribute; break;
    case JoinRef::Field::kContent: out += ".content"; break;
  }
  return out;
}

const char* CompareOpText(index::CompareOp op) {
  switch (op) {
    case index::CompareOp::kEq: return "=";
    case index::CompareOp::kNe: return "!=";
    case index::CompareOp::kLt: return "<";
    case index::CompareOp::kLe: return "<=";
    case index::CompareOp::kGt: return ">";
    case index::CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* LiteralKindText(PredNode::LiteralKind kind) {
  switch (kind) {
    case PredNode::LiteralKind::kValue: return "value";
    case PredNode::LiteralKind::kYesterday: return "yesterday()";
    case PredNode::LiteralKind::kNow: return "now()";
  }
  return "?";
}

std::string Quoted(const std::string& text) {
  std::string out = "\"";
  out += text;
  out += "\"";
  return out;
}

void ExplainInto(const PlanProgram& program, const std::string& label,
                 int indent, std::string* out) {
  std::string pad(indent, ' ');
  const char* kind = "";
  switch (program.kind) {
    case Query::Kind::kFilter: kind = "filter"; break;
    case Query::Kind::kPath: kind = "path"; break;
    case Query::Kind::kUnion: kind = "union"; break;
    case Query::Kind::kIntersect: kind = "intersect"; break;
    case Query::Kind::kExcept: kind = "except"; break;
    case Query::Kind::kJoin: kind = "join"; break;
  }
  *out += pad + label + ": " +
          (program.flavor == PlanProgram::Flavor::kPred ? "pred" : kind) +
          " regs=" + std::to_string(program.num_regs);
  if (program.flavor == PlanProgram::Flavor::kPred) {
    *out += " out=r" + std::to_string(program.out_reg);
  }
  if (program.rankable) *out += " ranked";
  *out += "\n";
  for (size_t pc = 0; pc < program.ops.size(); ++pc) {
    const PlanOp& op = program.ops[pc];
    std::string line = pad + "  " + std::to_string(pc) + ": ";
    auto dst = [&] { return "r" + std::to_string(op.dst); };
    auto ra = [&] { return "r" + std::to_string(op.a); };
    auto rb = [&] { return "r" + std::to_string(op.b); };
    switch (op.code) {
      case OpCode::kLoadLive:
        line += dst() + " = live";
        break;
      case OpCode::kRootChildren:
        line += dst() + " = root-children";
        break;
      case OpCode::kNameMatch:
        line += dst() + " = name-match " + Quoted(program.strings[op.str]);
        break;
      case OpCode::kPhrase:
        line += dst() + " = phrase " + Quoted(program.strings[op.str]) +
                " & " + ra();
        break;
      case OpCode::kTupleScan:
        line += dst() + " = tuple-scan " + program.strings[op.str] + " " +
                CompareOpText(static_cast<index::CompareOp>(op.flags & 0xF));
        if (static_cast<PredNode::LiteralKind>(op.flags >> 4) ==
            PredNode::LiteralKind::kValue) {
          line += " " + program.literals[op.aux].ToString();
        } else {
          line += std::string(" ") +
                  LiteralKindText(
                      static_cast<PredNode::LiteralKind>(op.flags >> 4));
        }
        line += " & " + ra();
        break;
      case OpCode::kClassFilter:
        line += dst() + " = class-filter " +
                Quoted(program.strings[op.str]) + " over " + ra();
        break;
      case OpCode::kIntersect:
        line += dst() + " = " + ra() + " & " + rb();
        break;
      case OpCode::kUnion:
        line += dst() + " = " + ra() + " | " + rb();
        break;
      case OpCode::kDifference:
        line += dst() + " = " + ra() + " - " + rb();
        break;
      case OpCode::kMove:
        line += dst() + " = " + ra();
        break;
      case OpCode::kJumpIfEmpty:
        line += "if-empty " + ra() + " goto " + std::to_string(op.aux);
        break;
      case OpCode::kParGroup:
        line += dst() + " = par-" + (op.flags == 0 ? "and" : "or") +
                " subs[" + std::to_string(op.aux) + ".." +
                std::to_string(op.aux + op.b) + ") over " + ra();
        break;
      case OpCode::kStepChild:
        line += dst() + " = step-child frontier=" + ra() + " names=" + rb();
        break;
      case OpCode::kExpand:
        line += dst() + " = expand frontier=" + ra() + " names=" + rb();
        break;
      case OpCode::kSetOp:
        line += dst() + " = " +
                (op.flags == 0 ? "union" :
                 op.flags == 1 ? "intersect" : "except") +
                " subs[" + std::to_string(op.aux) + ".." +
                std::to_string(op.aux + op.b) + ")";
        break;
      case OpCode::kJoin:
        line += "hash-join " + RefKey(program.join->left_ref) + " = " +
                RefKey(program.join->right_ref);
        break;
      case OpCode::kMaterialize:
        line += "materialize " + ra();
        if (op.flags & 1) line += " governed";
        break;
      case OpCode::kRankOrClear:
        line += "rank-or-clear";
        break;
    }
    *out += line + "\n";
  }
  for (size_t i = 0; i < program.subs.size(); ++i) {
    ExplainInto(*program.subs[i], "sub[" + std::to_string(i) + "]",
                indent + 2, out);
  }
  if (program.join != nullptr) {
    ExplainInto(*program.join->left,
                "left (" + program.join->left_binding + ")", indent + 2, out);
    ExplainInto(*program.join->right,
                "right (" + program.join->right_binding + ")", indent + 2,
                out);
  }
}

}  // namespace

std::string CanonicalQueryKey(const Query& query) {
  switch (query.kind) {
    case Query::Kind::kFilter:
      return "filter:" +
             (query.filter == nullptr ? std::string("<empty>")
                                      : CanonicalPred(*query.filter));
    case Query::Kind::kPath: {
      std::string out = "path:";
      for (const PathStep& step : query.steps) {
        out += step.descendant ? "//" : "/";
        out += step.name_pattern.empty() ? "*" : step.name_pattern;
        if (step.predicate != nullptr) {
          out += "[" + CanonicalPred(*step.predicate) + "]";
        }
      }
      return out;
    }
    case Query::Kind::kUnion:
    case Query::Kind::kIntersect:
    case Query::Kind::kExcept: {
      std::vector<std::string> arms;
      arms.reserve(query.arms.size());
      for (const auto& arm : query.arms) {
        arms.push_back(CanonicalQueryKey(*arm));
      }
      // union/intersect commute entirely; except keeps its first arm and
      // commutes only the subtrahends (A \ B \ C == A \ C \ B).
      auto sort_from = arms.begin();
      const char* name = "union";
      if (query.kind == Query::Kind::kIntersect) {
        name = "intersect";
      } else if (query.kind == Query::Kind::kExcept) {
        name = "except";
        if (!arms.empty()) ++sort_from;
      }
      std::sort(sort_from, arms.end());
      std::string out = std::string(name) + "(";
      for (size_t i = 0; i < arms.size(); ++i) {
        if (i > 0) out += ", ";
        out += arms[i];
      }
      return out + ")";
    }
    case Query::Kind::kJoin:
      // Join output columns are ordered (left binding, right binding):
      // the arms do not commute, so the key is verbatim.
      return "join(" + CanonicalQueryKey(*query.join->left) + " as " +
             query.join->left_binding + ", " +
             CanonicalQueryKey(*query.join->right) + " as " +
             query.join->right_binding + ", " +
             RefKey(query.join->left_ref) + "=" +
             RefKey(query.join->right_ref) + ")";
  }
  return ToString(query);
}

uint64_t Fingerprint64(const std::string& key) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

std::string ExplainProgram(const PlanProgram& program) {
  std::string out;
  ExplainInto(program, "program", 0, &out);
  return out;
}

}  // namespace idm::iql
