#include "iql/dataspace.h"

#include "iql/parser.h"
#include "util/string_util.h"

namespace idm::iql {

Dataspace::Dataspace(Config config)
    : config_(std::move(config)),
      classes_(core::ClassRegistry::Standard()),
      cache_(config_.cache),
      admission_(config_.admission) {
  module_.SetClock(&clock_);
  sync_ = std::make_unique<rvm::SynchronizationManager>(
      &module_, rvm::ConverterRegistry::Standard(), config_.indexing);
  processor_ = std::make_unique<QueryProcessor>(&module_, &classes_, &clock_,
                                                config_.query);
  if (!config_.storage_dir.empty()) {
    storage_status_ = InitStorage();
    if (!storage_status_.ok()) engine_.reset();
  }
}

Result<std::unique_ptr<Dataspace>> Dataspace::Open(Config config) {
  auto dataspace = std::make_unique<Dataspace>(std::move(config));
  IDM_RETURN_NOT_OK(dataspace->storage_status());
  return dataspace;
}

Status Dataspace::InitStorage() {
  storage::Env* env =
      config_.env != nullptr ? config_.env : storage::Env::Default();
  IDM_ASSIGN_OR_RETURN(
      storage::StorageEngine::Recovered recovered,
      storage::StorageEngine::Open(env, config_.storage_dir, config_.storage,
                                   &clock_));
  if (recovered.snapshot.has_value()) {
    IDM_RETURN_NOT_OK(module_.RestoreSnapshot(*recovered.snapshot)
                          .WithContext("restoring checkpoint"));
  }
  // Replay runs with the engine still detached, so recovered mutations are
  // applied but not re-logged.
  IDM_RETURN_NOT_OK(
      module_.ReplayMutations(recovered.mutations).WithContext("WAL replay"));
  recovery_stats_ = recovered.stats;
  engine_ = std::move(recovered.engine);
  module_.AttachStorage(engine_.get());
  return Status::OK();
}

Status Dataspace::Checkpoint() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("dataspace has no storage engine");
  }
  IDM_RETURN_NOT_OK(engine_->Commit());
  return engine_->Checkpoint(module_.ExportSnapshot());
}

Status Dataspace::SyncStorage() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("dataspace has no storage engine");
  }
  return engine_->SyncNow();
}

void Dataspace::AttachSource(std::shared_ptr<rvm::DataSource> source) {
  sync_->AttachSource(std::move(source));
}

Result<rvm::SourceIndexStats> Dataspace::AddFileSystem(
    const std::string& name, std::shared_ptr<vfs::VirtualFileSystem> fs,
    const std::string& root_path) {
  return sync_->RegisterSource(std::make_shared<rvm::FileSystemSource>(
      name, std::move(fs), root_path));
}

Result<rvm::SourceIndexStats> Dataspace::AddImap(
    const std::string& name, std::shared_ptr<email::ImapServer> server) {
  return sync_->RegisterSource(
      std::make_shared<rvm::ImapSource>(name, std::move(server)));
}

Result<rvm::SourceIndexStats> Dataspace::AddRss(
    const std::string& name, std::shared_ptr<stream::FeedServer> server) {
  auto source = std::make_shared<rvm::RssSource>(name, std::move(server));
  // Prime the stream buffer with one poll so the initial index sees the
  // already-published items.
  IDM_RETURN_NOT_OK(source->Poll().status());
  return sync_->RegisterSource(std::move(source));
}

Result<rvm::SourceIndexStats> Dataspace::AddRelational(
    const std::string& name, std::shared_ptr<rel::RelationalDb> db) {
  return sync_->RegisterSource(
      std::make_shared<rvm::RelationalSource>(name, std::move(db)));
}

Result<rvm::SourceIndexStats> Dataspace::AddSource(
    std::shared_ptr<rvm::DataSource> source) {
  return sync_->RegisterSource(std::move(source));
}

Result<QueryResult> Dataspace::Query(const std::string& iql) const {
  return Query(iql, QueryOptions());
}

Result<QueryResult> Dataspace::Query(const std::string& iql,
                                     const QueryOptions& options) const {
  // Admission first: a shed query costs one mutex acquisition, not an
  // evaluation. The ticket is held (RAII) until the result is built.
  AdmissionController::Ticket ticket;
  if (!options.bypass_admission && admission_.enabled()) {
    IDM_ASSIGN_OR_RETURN(ticket, admission_.Admit());
  }

  IDM_ASSIGN_OR_RETURN(::idm::iql::Query parsed, ParseQuery(iql));

  // Governed queries run under an ExecContext on the dataspace clock; the
  // simulated evaluation cost they accumulate becomes simulated time.
  std::optional<util::ExecContext> ctx;
  if (options.limits.any()) ctx.emplace(&clock_, options.limits);
  util::ExecContext* ctx_ptr = ctx.has_value() ? &*ctx : nullptr;
  auto evaluate = [&]() -> Result<QueryResult> {
    Result<QueryResult> result = processor_->Evaluate(parsed, ctx_ptr);
    if (ctx_ptr != nullptr && ctx_ptr->charged_micros() > 0) {
      clock_.AdvanceMicros(ctx_ptr->charged_micros());
    }
    return result;
  };

  if (!cache_.enabled()) return evaluate();

  // Key on the normalized rendering (whitespace/escape variants share one
  // entry) and the current dataspace version: any Append to the VersionLog
  // — sync, notification, delete — advances the epoch and logically
  // invalidates every entry at once.
  const std::string normalized = ToString(parsed);
  const uint64_t epoch = module_.versions().current();
  const bool cacheable = IsCacheable(parsed);
  if (cacheable) {
    if (std::optional<QueryResult> hit = cache_.Lookup(normalized, epoch)) {
      hit->elapsed_micros = 0;  // served from cache; nothing was evaluated
      return *std::move(hit);
    }
  }
  IDM_ASSIGN_OR_RETURN(QueryResult result, evaluate());
  // Insert() itself also refuses incomplete results; partial answers must
  // never satisfy a later ungoverned lookup.
  if (cacheable) cache_.Insert(normalized, epoch, result);
  return result;
}

Result<Dataspace::UpdateResult> Dataspace::ExecuteUpdate(
    const std::string& statement) {
  std::string trimmed(Trim(statement));
  if (!EqualsIgnoreCase(trimmed.substr(0, 7), "delete ")) {
    return Status::ParseError(
        "unsupported update statement (expected: delete <query>)");
  }
  IDM_ASSIGN_OR_RETURN(QueryResult matched,
                       processor_->Execute(trimmed.substr(7)));
  if (matched.columns.size() != 1) {
    return Status::InvalidArgument("delete requires a unary query");
  }

  UpdateResult update;
  for (const auto& row : matched.rows) {
    const index::CatalogEntry* entry = module_.catalog().Entry(row[0]);
    if (entry == nullptr || entry->deleted) continue;
    if (entry->derived) {
      ++update.skipped_derived;
      continue;
    }
    rvm::DataSource* source =
        sync_->FindSource(module_.catalog().SourceName(entry->source));
    if (source == nullptr) {
      ++update.failed;
      continue;
    }
    Status deleted = source->DeleteItem(entry->uri);
    if (!deleted.ok()) {
      ++update.failed;
      continue;
    }
    ++update.deleted;
    IDM_ASSIGN_OR_RETURN(rvm::SyncStats removed,
                         module_.RemoveSubtree(entry->uri));
    update.views_removed += removed.removed;
  }
  // Deleting through a source raises its own change notifications; the
  // removals are already applied above, so drain the queue.
  IDM_RETURN_NOT_OK(sync_->ProcessNotifications().status());
  return update;
}

const std::string& Dataspace::UriOf(index::DocId id) const {
  static const std::string kEmpty;
  const index::CatalogEntry* entry = module_.catalog().Entry(id);
  return entry == nullptr ? kEmpty : entry->uri;
}

const std::string& Dataspace::NameOf(index::DocId id) const {
  return module_.names().NameOf(id);
}

}  // namespace idm::iql
