#include "iql/dataspace.h"

#include "iql/parser.h"
#include "iql/query_footprint.h"
#include "util/string_util.h"

namespace idm::iql {

namespace {

/// Change-record budget for proving a cached entry alive: beyond this,
/// scanning costs more than re-evaluating is likely to — give up.
constexpr size_t kMaxValidationScan = 64;

}  // namespace

Dataspace::Dataspace(Config config)
    : config_(std::move(config)),
      classes_(core::ClassRegistry::Standard()),
      cache_(config_.cache),
      admission_(config_.admission) {
  module_.SetClock(&clock_);
  sync_ = std::make_unique<rvm::SynchronizationManager>(
      &module_, rvm::ConverterRegistry::Standard(), config_.indexing);
  processor_ = std::make_unique<QueryProcessor>(&module_, &classes_, &clock_,
                                                config_.query);
  if (config_.observability.enabled) {
    // Created before InitStorage so startup recovery is traced and counted
    // like any later storage activity. Metric handles are resolved once
    // here; the per-query path then pays a single null test per site.
    obs_ = std::make_unique<obs::Observability>(&clock_, config_.observability);
    obs::MetricsRegistry& reg = obs_->metrics();
    qmetrics_.queries = reg.counter("iql.queries");
    qmetrics_.cache_hits = reg.counter("iql.cache.hits");
    qmetrics_.cache_misses = reg.counter("iql.cache.misses");
    qmetrics_.degraded = reg.counter("iql.degraded");
    qmetrics_.shed = reg.counter("iql.shed");
    qmetrics_.latency_micros = reg.histogram("iql.latency_micros");
    qmetrics_.queue_wait_micros = reg.histogram("iql.queue_wait_micros");
    smetrics_.opened = reg.counter("sub.opened");
    smetrics_.pumps = reg.counter("sub.pumps");
    smetrics_.deltas = reg.counter("sub.deltas");
    smetrics_.skipped = reg.counter("sub.skipped");
    smetrics_.fastpath = reg.counter("sub.fastpath");
    smetrics_.recomputes = reg.counter("sub.recomputes");
    smetrics_.degraded = reg.counter("sub.degraded");
    rmetrics_.defects = reg.counter("repair.defects");
    rmetrics_.quarantined = reg.counter("repair.quarantined");
    rmetrics_.rescues = reg.counter("repair.rescues");
    module_.SetObservability(obs_.get());
    sync_->SetObservability(obs_.get());
  }
  if (!config_.storage_dir.empty()) {
    storage_status_ = InitStorage();
    if (!storage_status_.ok()) engine_.reset();
  }
}

Result<std::unique_ptr<Dataspace>> Dataspace::Open(Config config) {
  auto dataspace = std::make_unique<Dataspace>(std::move(config));
  IDM_RETURN_NOT_OK(dataspace->storage_status());
  return dataspace;
}

Status Dataspace::InitStorage() {
  std::shared_ptr<obs::Trace> trace =
      obs_ != nullptr ? obs_->StartTrace(obs::kStorageTrace, "recovery")
                      : nullptr;
  obs::TraceSpan* root = trace == nullptr ? nullptr : trace->root();
  Status status = [&]() -> Status {
    storage::Env* env =
        config_.env != nullptr ? config_.env : storage::Env::Default();
    IDM_ASSIGN_OR_RETURN(
        storage::StorageEngine::Recovered recovered,
        storage::StorageEngine::Open(env, config_.storage_dir, config_.storage,
                                     &clock_, root));
    if (recovered.snapshot.has_value()) {
      obs::ScopedSpan restore_span(root, "snapshot.restore");
      IDM_RETURN_NOT_OK(module_.RestoreSnapshot(*recovered.snapshot)
                            .WithContext("restoring checkpoint"));
    }
    // Replay runs with the engine still detached, so recovered mutations are
    // applied but not re-logged.
    {
      obs::ScopedSpan replay_span(root, "wal.replay");
      if (replay_span) {
        replay_span.get()->SetAttr(
            "mutations", static_cast<int64_t>(recovered.mutations.size()));
      }
      IDM_RETURN_NOT_OK(module_.ReplayMutations(recovered.mutations)
                            .WithContext("WAL replay"));
    }
    recovery_stats_ = recovered.stats;
    engine_ = std::move(recovered.engine);
    module_.AttachStorage(engine_.get());
    engine_->SetObservability(obs_.get());
    if (obs_ != nullptr) {
      // Recovery outcomes as metrics: what startup found is part of the
      // unified introspection surface, not just the RecoveryStats struct.
      obs::MetricsRegistry& reg = obs_->metrics();
      reg.gauge("storage.recovery.generation")
          ->Set(static_cast<int64_t>(recovery_stats_.generation));
      reg.gauge("storage.recovery.had_checkpoint")
          ->Set(recovery_stats_.had_checkpoint ? 1 : 0);
      reg.gauge("storage.recovery.checkpoint_fallback")
          ->Set(recovery_stats_.checkpoint_fallback ? 1 : 0);
      reg.gauge("storage.recovery.last_commit_seq")
          ->Set(static_cast<int64_t>(recovery_stats_.last_commit_seq));
      reg.counter("storage.recovery.replayed_mutations")
          ->Inc(recovery_stats_.replayed_mutations);
      reg.gauge("storage.recovery.torn_tail_dropped")
          ->Set(recovery_stats_.torn_tail_dropped ? 1 : 0);
      reg.counter("storage.recovery.dropped_records")
          ->Inc(recovery_stats_.dropped_records);
      reg.counter("storage.recovery.quarantined_files")
          ->Inc(recovery_stats_.quarantined_files);
    }
    if (config_.scrub.enabled) {
      scrubber_ = std::make_unique<repair::Scrubber>(engine_.get(), &clock_,
                                                     config_.scrub);
      EnsurePostSyncHook();
    }
    return Status::OK();
  }();
  if (obs_ != nullptr) obs_->FinishTrace(obs::kStorageTrace, std::move(trace));
  return status;
}

Status Dataspace::Checkpoint() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("dataspace has no storage engine");
  }
  std::shared_ptr<obs::Trace> trace =
      obs_ != nullptr ? obs_->StartTrace(obs::kStorageTrace, "checkpoint")
                      : nullptr;
  obs::TraceSpan* root = trace == nullptr ? nullptr : trace->root();
  Status status = [&]() -> Status {
    IDM_RETURN_NOT_OK(engine_->Commit(root));
    storage::Snapshot snapshot;
    {
      obs::ScopedSpan export_span(root, "snapshot.export");
      snapshot = module_.ExportSnapshot();
    }
    return engine_->Checkpoint(snapshot, root);
  }();
  if (obs_ != nullptr) obs_->FinishTrace(obs::kStorageTrace, std::move(trace));
  return status;
}

Status Dataspace::SyncStorage() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("dataspace has no storage engine");
  }
  return engine_->SyncNow();
}

void Dataspace::AttachSource(std::shared_ptr<rvm::DataSource> source) {
  sync_->AttachSource(std::move(source));
}

Result<rvm::SourceIndexStats> Dataspace::AddFileSystem(
    const std::string& name, std::shared_ptr<vfs::VirtualFileSystem> fs,
    const std::string& root_path) {
  return sync_->RegisterSource(std::make_shared<rvm::FileSystemSource>(
      name, std::move(fs), root_path));
}

Result<rvm::SourceIndexStats> Dataspace::AddImap(
    const std::string& name, std::shared_ptr<email::ImapServer> server) {
  return sync_->RegisterSource(
      std::make_shared<rvm::ImapSource>(name, std::move(server)));
}

Result<rvm::SourceIndexStats> Dataspace::AddRss(
    const std::string& name, std::shared_ptr<stream::FeedServer> server) {
  auto source = std::make_shared<rvm::RssSource>(name, std::move(server));
  // Prime the stream buffer with one poll so the initial index sees the
  // already-published items.
  IDM_RETURN_NOT_OK(source->Poll().status());
  return sync_->RegisterSource(std::move(source));
}

Result<rvm::SourceIndexStats> Dataspace::AddRelational(
    const std::string& name, std::shared_ptr<rel::RelationalDb> db) {
  return sync_->RegisterSource(
      std::make_shared<rvm::RelationalSource>(name, std::move(db)));
}

Result<rvm::SourceIndexStats> Dataspace::AddSource(
    std::shared_ptr<rvm::DataSource> source) {
  return sync_->RegisterSource(std::move(source));
}

Result<QueryResult> Dataspace::Query(const std::string& iql) const {
  return Query(iql, QueryOptions());
}

Result<QueryResult> Dataspace::Query(const std::string& iql,
                                     const QueryOptions& options) const {
  return TracedQuery([&](obs::TraceSpan* root) {
    return QueryTraced(iql, options, root);
  });
}

Result<PreparedQuery> Dataspace::Prepare(const std::string& iql) const {
  IDM_ASSIGN_OR_RETURN(::idm::iql::Query parsed, ParseQuery(iql));
  auto query = std::make_shared<const ::idm::iql::Query>(std::move(parsed));
  std::shared_ptr<const PlanProgram> plan = processor_->Plan(*query);
  return PreparedQuery(this, std::move(query), std::move(plan));
}

Result<QueryResult> Dataspace::Execute(const PreparedQuery& prepared,
                                       const QueryOptions& options) const {
  if (!prepared.valid()) {
    return Status::FailedPrecondition("empty PreparedQuery");
  }
  if (prepared.dataspace_ != this) {
    return Status::InvalidArgument(
        "PreparedQuery belongs to a different dataspace");
  }
  return TracedQuery([&](obs::TraceSpan* root) -> Result<QueryResult> {
    AdmissionController::Ticket ticket;
    IDM_RETURN_NOT_OK(Admit(options, root, &ticket));
    return EvalPlanned(prepared.query(), prepared.plan(), options, root);
  });
}

Result<QueryResult> Dataspace::TracedQuery(
    const std::function<Result<QueryResult>(obs::TraceSpan*)>& body) const {
  std::shared_ptr<obs::Trace> trace =
      obs_ != nullptr ? obs_->StartTrace(obs::kQueryTrace, "query") : nullptr;
  obs::TraceSpan* root = trace == nullptr ? nullptr : trace->root();
  Result<QueryResult> result = body(root);
  if (obs_ != nullptr) {
    qmetrics_.queries->Inc();
    if (result.ok()) {
      qmetrics_.latency_micros->Observe(
          static_cast<uint64_t>(result->elapsed_micros));
      if (!result->meta.complete) qmetrics_.degraded->Inc();
    }
    if (root != nullptr && !result.ok()) {
      root->SetAttr("error", result.status().message());
    }
    obs_->FinishTrace(obs::kQueryTrace, std::move(trace));
  }
  return result;
}

Status Dataspace::Admit(const QueryOptions& options, obs::TraceSpan* root,
                        AdmissionController::Ticket* ticket) const {
  // Admission first: a shed query costs one mutex acquisition, not an
  // evaluation. The ticket is held (RAII) until the result is built.
  if (options.bypass_admission || !admission_.enabled()) return Status::OK();
  obs::ScopedSpan admit_span(root, "admission");
  int64_t waited = 0;
  Result<AdmissionController::Ticket> admitted = admission_.Admit(&waited);
  if (qmetrics_.queue_wait_micros != nullptr) {
    qmetrics_.queue_wait_micros->Observe(static_cast<uint64_t>(waited));
  }
  if (admit_span) {
    admit_span.get()->SetAttr("waited_micros", waited);
    admit_span.get()->SetAttr("outcome", admitted.ok() ? "admitted" : "shed");
  }
  if (!admitted.ok()) {
    if (qmetrics_.shed != nullptr) qmetrics_.shed->Inc();
    return admitted.status();
  }
  *ticket = std::move(*admitted);
  return Status::OK();
}

Result<QueryResult> Dataspace::QueryTraced(const std::string& iql,
                                           const QueryOptions& options,
                                           obs::TraceSpan* root) const {
  AdmissionController::Ticket ticket;
  IDM_RETURN_NOT_OK(Admit(options, root, &ticket));

  obs::TraceSpan* parse_span = root == nullptr ? nullptr : root->AddChild("parse");
  IDM_ASSIGN_OR_RETURN(::idm::iql::Query parsed, ParseQuery(iql));
  if (parse_span != nullptr) parse_span->End();

  obs::TraceSpan* plan_span = root == nullptr ? nullptr : root->AddChild("plan");
  std::unique_ptr<PlanProgram> plan = processor_->Plan(parsed);
  if (plan_span != nullptr) {
    plan_span->SetAttr("key", plan->cache_key);
    plan_span->SetAttr("ops", static_cast<int64_t>(plan->ops.size()));
    plan_span->End();
  }

  return EvalPlanned(parsed, *plan, options, root);
}

Result<QueryResult> Dataspace::EvalPlanned(const ::idm::iql::Query& parsed,
                                           const PlanProgram& plan,
                                           const QueryOptions& options,
                                           obs::TraceSpan* root) const {
  // Governed queries run under an ExecContext on the dataspace clock; the
  // simulated evaluation cost they accumulate becomes simulated time.
  std::optional<util::ExecContext> ctx;
  if (options.limits.any()) ctx.emplace(&clock_, options.limits);
  util::ExecContext* ctx_ptr = ctx.has_value() ? &*ctx : nullptr;
  auto evaluate = [&]() -> Result<QueryResult> {
    obs::ScopedSpan eval_span(root, "evaluate");
    Result<QueryResult> result =
        processor_->Evaluate(parsed, plan, ctx_ptr, eval_span.get());
    if (ctx_ptr != nullptr && ctx_ptr->charged_micros() > 0) {
      clock_.AdvanceMicros(ctx_ptr->charged_micros());
    }
    return result;
  };

  if (!cache_.enabled()) return evaluate();

  // Key on the plan's *canonical* key (DESIGN.md §16) and the current
  // dataspace version: semantically identical spellings — whitespace and
  // escape variants, reordered and/or conjuncts, reordered union/intersect
  // arms — share one entry, and any Append to the VersionLog (sync,
  // notification, delete) advances the epoch and logically invalidates
  // every entry at once. (The cached result carries the diagnostics —
  // plan text, probe counts — of the spelling that populated the entry.)
  const std::string& key = plan.cache_key;
  const uint64_t epoch = module_.versions().current();
  const bool cacheable = IsCacheable(parsed);
  // Epoch-stale entries with a scoped footprint get a survival proof
  // against the fine-grained epochs before being dropped (DESIGN.md §14).
  const QueryCache::Validator validator =
      [this](const sub::Footprint& footprint, uint64_t entry_epoch) {
        return FootprintSurvives(footprint, entry_epoch);
      };
  {
    obs::ScopedSpan lookup_span(root, "cache.lookup");
    if (!cacheable) {
      if (lookup_span) lookup_span.get()->SetAttr("outcome", "bypass");
    } else if (std::optional<QueryResult> hit =
                   cache_.Lookup(key, epoch, validator)) {
      hit->elapsed_micros = 0;  // served from cache; nothing was evaluated
      if (lookup_span) lookup_span.get()->SetAttr("outcome", "hit");
      if (qmetrics_.cache_hits != nullptr) qmetrics_.cache_hits->Inc();
      return *std::move(hit);
    } else {
      if (lookup_span) lookup_span.get()->SetAttr("outcome", "miss");
      if (qmetrics_.cache_misses != nullptr) qmetrics_.cache_misses->Inc();
    }
  }
  IDM_ASSIGN_OR_RETURN(QueryResult result, evaluate());
  // Insert() itself also refuses incomplete results; partial answers must
  // never satisfy a later ungoverned lookup. Complete results are stored
  // with their dependency footprint so unrelated-substrate writes don't
  // evict them.
  if (cacheable && result.meta.complete) {
    cache_.Insert(key, epoch, result, ComputeFootprint(parsed, module_));
  }
  return result;
}

void Dataspace::EnsureSubscriptionWiring() {
  if (sub_wired_) return;
  sub_wired_ = true;
  // Every live-path version append becomes one MutationEvent. The listener
  // is installed on first Subscribe so a dataspace without live queries
  // never pays the per-mutation fan-out; OnMutation itself drops events
  // when the registry is empty.
  module_.SetMutationListener([this](const index::ChangeRecord& record,
                                     uint32_t source, const std::string& uri,
                                     const std::string& name) {
    sub::MutationEvent event;
    event.version = record.version;
    event.op = record.op;
    event.id = record.id;
    event.source = source;
    event.uri = uri;
    event.name = name;
    subs_.OnMutation(std::move(event));
  });
  // Pump after every completed sync round: mutations land in batches
  // (poll / notification drain), so this is the natural delta boundary.
  EnsurePostSyncHook();
}

void Dataspace::EnsurePostSyncHook() {
  if (post_sync_hooked_) return;
  post_sync_hooked_ = true;
  sync_->SetPostSyncHook([this] { PostSync(); });
}

void Dataspace::PostSync() {
  if (sub_wired_) PumpSubscriptions();
  if (scrubber_ != nullptr) {
    std::vector<repair::ScrubFinding> findings = scrubber_->MaybeScrub();
    // Containment failure here has nowhere to return to — record it the
    // way recovery failures are recorded, and keep the store read-serving.
    Status contained = ContainFindings(findings);
    if (!contained.ok() && storage_status_.ok()) {
      storage_status_ = contained.WithContext("scrub containment");
    }
  }
}

Status Dataspace::ContainFindings(
    const std::vector<repair::ScrubFinding>& findings) {
  if (findings.empty() || engine_ == nullptr) return Status::OK();
  std::shared_ptr<obs::Trace> trace =
      obs_ != nullptr ? obs_->StartTrace(obs::kRepairTrace, "contain")
                      : nullptr;
  obs::TraceSpan* root = trace == nullptr ? nullptr : trace->root();
  Status status = [&]() -> Status {
    for (const repair::ScrubFinding& finding : findings) {
      obs::ScopedSpan q_span(root, "quarantine");
      if (q_span) {
        q_span.get()->SetAttr("artifact", finding.artifact);
        q_span.get()->SetAttr("defect", finding.defect);
      }
      // Copy, not move: the live file stays in place until the rescue
      // checkpoint retires its generation — recovery must keep working if
      // we crash mid-containment.
      IDM_RETURN_NOT_OK(engine_->quarantine()
                            ->CopyAside(finding.artifact, finding.defect)
                            .WithContext("quarantining " + finding.artifact));
      last_defect_ = finding.defect;
      if (rmetrics_.defects != nullptr) {
        rmetrics_.defects->Inc();
        rmetrics_.quarantined->Inc();
      }
    }
    // Rescue: the in-memory structures are authoritative (every committed
    // mutation was applied to them before it hit the damaged platter), so
    // a fresh checkpoint generation rebuilt from them is byte-good. The
    // damaged generation's files are deleted by the rotation — their
    // evidence copies are already in quarantine.
    obs::ScopedSpan rescue_span(root, "rescue.checkpoint");
    IDM_RETURN_NOT_OK(engine_->Commit(rescue_span ? rescue_span.get() : root));
    storage::Snapshot snapshot = module_.ExportSnapshot();
    IDM_RETURN_NOT_OK(
        engine_->Checkpoint(snapshot, rescue_span ? rescue_span.get() : root)
            .WithContext("rescue checkpoint"));
    ++rescues_;
    if (rmetrics_.rescues != nullptr) rmetrics_.rescues->Inc();
    return Status::OK();
  }();
  if (obs_ != nullptr) obs_->FinishTrace(obs::kRepairTrace, std::move(trace));
  return status;
}

Result<std::vector<repair::ScrubFinding>> Dataspace::ScrubNow() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("dataspace has no storage engine");
  }
  if (scrubber_ == nullptr) {
    // On-demand scrubbing works without background scheduling configured.
    scrubber_ = std::make_unique<repair::Scrubber>(engine_.get(), &clock_,
                                                   config_.scrub);
  }
  std::vector<repair::ScrubFinding> findings = scrubber_->ScrubPass();
  IDM_RETURN_NOT_OK(ContainFindings(findings));
  return findings;
}

Result<std::shared_ptr<sub::Subscription>> Dataspace::Subscribe(
    const std::string& iql, sub::SubscribeOptions options) {
  IDM_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(iql));
  return Subscribe(prepared, std::move(options));
}

Result<std::shared_ptr<sub::Subscription>> Dataspace::Subscribe(
    const PreparedQuery& prepared, sub::SubscribeOptions options) {
  if (!prepared.valid()) {
    return Status::FailedPrecondition("empty PreparedQuery");
  }
  if (prepared.dataspace_ != this) {
    return Status::InvalidArgument(
        "PreparedQuery belongs to a different dataspace");
  }
  // Plan once, recompute many: the handle's query AST and compiled
  // program are shared (immutably) by the initial snapshot and every
  // later maintenance recompute.
  std::shared_ptr<const ::idm::iql::Query> query = prepared.query_;
  std::shared_ptr<const PlanProgram> plan = prepared.plan_;
  const std::string& normalized = plan->normalized;
  EnsureSubscriptionWiring();

  // The maintenance recompute (and the initial snapshot below): evaluate
  // under the subscription's own governance limits, charging simulated
  // evaluation cost to the dataspace clock like any governed Query().
  sub::EvalFn eval = [this, query, plan,
                      limits = options.limits]() -> sub::EvalOutcome {
    sub::EvalOutcome out;
    std::optional<util::ExecContext> ctx;
    if (limits.any()) ctx.emplace(&clock_, limits);
    util::ExecContext* ctx_ptr = ctx.has_value() ? &*ctx : nullptr;
    Result<QueryResult> result =
        processor_->Evaluate(*query, *plan, ctx_ptr, nullptr);
    if (ctx_ptr != nullptr && ctx_ptr->charged_micros() > 0) {
      clock_.AdvanceMicros(ctx_ptr->charged_micros());
    }
    if (!result.ok()) {
      out.degraded_reason = result.status().ToString();
      return out;
    }
    out.ok = true;
    out.complete = result->meta.complete;
    out.degraded_reason = result->meta.degraded_reason;
    out.rows = std::move(result->rows);
    return out;
  };

  // Per-view fast path only for shapes where membership is a function of
  // the view itself AND the predicate is clock-independent (a now()-window
  // can silently expire members between events — those shapes recompute).
  sub::MatchFn match;
  if (QueryProcessor::SupportsMatchesDoc(*query) && IsCacheable(*query)) {
    match = [this, query](index::DocId id) {
      Result<bool> hit = processor_->MatchesDoc(*query, id);
      return hit.ok() && *hit;
    };
  }
  sub::RefreshFn refresh = [this, query] {
    return ComputeFootprint(*query, module_);
  };

  sub::EvalOutcome initial = eval();
  if (!initial.ok) {
    return Status::InvalidArgument("subscribe: initial evaluation failed: " +
                                   initial.degraded_reason);
  }
  sub::Footprint footprint = ComputeFootprint(*query, module_);
  if (smetrics_.opened != nullptr) smetrics_.opened->Inc();
  return subs_.Subscribe(normalized, std::move(footprint), std::move(eval),
                         std::move(match), std::move(refresh),
                         std::move(options), module_.versions().current(),
                         std::move(initial.rows));
}

bool Dataspace::Unsubscribe(uint64_t id) { return subs_.Unsubscribe(id); }

sub::SubscriptionManager::PumpStats Dataspace::PumpSubscriptions() {
  if (subs_.subscription_count() == 0 && subs_.pending_events() == 0) {
    return {};
  }
  std::shared_ptr<obs::Trace> trace =
      obs_ != nullptr ? obs_->StartTrace(obs::kSubTrace, "pump") : nullptr;
  sub::SubscriptionManager::PumpStats stats =
      subs_.Pump(module_.versions().current());
  if (obs_ != nullptr) {
    smetrics_.pumps->Inc();
    smetrics_.deltas->Inc(stats.deltas);
    smetrics_.skipped->Inc(stats.skipped);
    smetrics_.fastpath->Inc(stats.fastpath);
    smetrics_.recomputes->Inc(stats.recomputes);
    smetrics_.degraded->Inc(stats.degraded);
    if (trace != nullptr) {
      obs::TraceSpan* root = trace->root();
      root->SetAttr("pumped", static_cast<int64_t>(stats.pumped));
      root->SetAttr("deltas", static_cast<int64_t>(stats.deltas));
      root->SetAttr("skipped", static_cast<int64_t>(stats.skipped));
      root->SetAttr("fastpath", static_cast<int64_t>(stats.fastpath));
      root->SetAttr("recomputes", static_cast<int64_t>(stats.recomputes));
    }
    obs_->FinishTrace(obs::kSubTrace, std::move(trace));
  }
  return stats;
}

bool Dataspace::FootprintSurvives(const sub::Footprint& footprint,
                                  uint64_t entry_epoch) const {
  const index::EpochMap& epochs = module_.epochs();
  // Fine-grained epoch pre-filter: any write inside the footprint's own
  // substrates kills the entry without a record scan.
  for (uint32_t source : footprint.substrates) {
    if (epochs.SourceEpoch(source) > entry_epoch) return false;
  }
  // Everything since entry_epoch happened outside the substrates; prove
  // record by record that no mutation introduced a pattern match. Names
  // are read from the *current* replica, which is exactly what end-state
  // equivalence needs: the cached result is served only if the dataspace
  // now (not transiently) equals the state it was computed against, and a
  // view whose current name matches a pattern necessarily has a record in
  // this window bearing it.
  std::vector<index::ChangeRecord> records =
      module_.versions().ChangesSince(entry_epoch);
  if (records.size() > kMaxValidationScan) return false;  // churn: give up
  for (const index::ChangeRecord& record : records) {
    if (record.op == index::ChangeRecord::Op::kRemoved) continue;
    const index::CatalogEntry* entry = module_.catalog().Entry(record.id);
    if (entry == nullptr) return false;  // unknown id: be conservative
    sub::MutationEvent event;
    event.version = record.version;
    event.op = record.op;
    event.id = record.id;
    event.source = entry->source;
    event.name = module_.names().NameOf(record.id);
    if (sub::AffectedBy(footprint, event)) return false;
  }
  return true;
}

Result<Dataspace::UpdateResult> Dataspace::ExecuteUpdate(
    const std::string& statement) {
  std::string trimmed(Trim(statement));
  if (!EqualsIgnoreCase(trimmed.substr(0, 7), "delete ")) {
    return Status::ParseError(
        "unsupported update statement (expected: delete <query>)");
  }
  IDM_ASSIGN_OR_RETURN(QueryResult matched,
                       processor_->Execute(trimmed.substr(7)));
  if (matched.columns.size() != 1) {
    return Status::InvalidArgument("delete requires a unary query");
  }

  UpdateResult update;
  for (const auto& row : matched.rows) {
    const index::CatalogEntry* entry = module_.catalog().Entry(row[0]);
    if (entry == nullptr || entry->deleted) continue;
    if (entry->derived) {
      ++update.skipped_derived;
      continue;
    }
    rvm::DataSource* source =
        sync_->FindSource(module_.catalog().SourceName(entry->source));
    if (source == nullptr) {
      ++update.failed;
      continue;
    }
    Status deleted = source->DeleteItem(entry->uri);
    if (!deleted.ok()) {
      ++update.failed;
      continue;
    }
    ++update.deleted;
    IDM_ASSIGN_OR_RETURN(rvm::SyncStats removed,
                         module_.RemoveSubtree(entry->uri));
    update.views_removed += removed.removed;
  }
  // Deleting through a source raises its own change notifications; the
  // removals are already applied above, so drain the queue.
  IDM_RETURN_NOT_OK(sync_->ProcessNotifications().status());
  return update;
}

DataspaceStats Dataspace::Stats() const {
  DataspaceStats stats;
  stats.cache = cache_.stats();
  stats.admission = admission_.stats();
  stats.sync = sync_->totals();
  stats.subscriptions = subs_.GetStats();
  stats.mutations = module_.mutation_count();
  if (engine_ != nullptr) stats.storage = engine_->stats();
  stats.recovery = recovery_stats_;
  if (scrubber_ != nullptr) stats.repair.scrub = scrubber_->stats();
  if (engine_ != nullptr && engine_->quarantine() != nullptr) {
    const storage::QuarantineManager& q = *engine_->quarantine();
    stats.repair.quarantined = q.count();
    stats.repair.quarantined_bytes = q.total_bytes();
    stats.repair.last_quarantined = q.last_artifact();
  }
  stats.repair.rescues = rescues_;
  stats.repair.last_defect = last_defect_;
  if (processor_->pool() != nullptr) {
    stats.pool = processor_->pool()->telemetry();
  }
  if (obs_ != nullptr) stats.metrics = obs_->metrics().Snapshot();
  stats.engine = processor_->engine_stats();
  stats.postings = module_.content().block_stats();
  return stats;
}

std::shared_ptr<const obs::Trace> Dataspace::LastTrace(
    const std::string& category) const {
  return obs_ == nullptr ? nullptr : obs_->LastTrace(category);
}

const std::string& Dataspace::UriOf(index::DocId id) const {
  static const std::string kEmpty;
  const index::CatalogEntry* entry = module_.catalog().Entry(id);
  return entry == nullptr ? kEmpty : entry->uri;
}

const std::string& Dataspace::NameOf(index::DocId id) const {
  return module_.names().NameOf(id);
}

}  // namespace idm::iql
