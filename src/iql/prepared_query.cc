#include "iql/prepared_query.h"

#include <sstream>

#include "iql/dataspace.h"
#include "iql/query_footprint.h"

namespace idm::iql {

namespace {

const char* EngineName(QueryProcessor::Engine engine) {
  switch (engine) {
    case QueryProcessor::Engine::kInterp:
      return "interp";
    case QueryProcessor::Engine::kVm:
      return "vm";
    case QueryProcessor::Engine::kBoth:
      return "both";
  }
  return "?";
}

}  // namespace

Result<QueryResult> PreparedQuery::Execute(const QueryOptions& options) const {
  if (!valid()) {
    return Status::FailedPrecondition("empty PreparedQuery");
  }
  return dataspace_->Execute(*this, options);
}

std::string PreparedQuery::Explain() const {
  if (!valid()) return "(empty prepared query)\n";
  std::ostringstream os;
  os << "query: " << plan_->normalized << "\n";
  os << "key: " << plan_->cache_key << "\n";
  os << "fingerprint: " << std::hex << std::showbase << plan_->fingerprint
     << std::dec << std::noshowbase << "\n";
  os << "engine: "
     << EngineName(dataspace_->processor().options().engine) << "\n";
  os << ExplainProgram(*plan_);
  return os.str();
}

sub::Footprint PreparedQuery::Footprint() const {
  if (!valid()) return {};
  return ComputeFootprint(*query_, dataspace_->module());
}

}  // namespace idm::iql
