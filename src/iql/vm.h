// Bytecode VM (DESIGN.md §16): executes the PlanPrograms the Planner
// lowers, vector-at-a-time — every register holds one batch of sorted
// candidate view ids, shared (not copied) between ops that merely forward
// it. The VM is behavior-compatible with the tree-walking interpreter by
// construction: governed runs issue the same index calls with the same
// ExecContext in the same order (identical tick schedule and §10 prefix
// degradation at threads = 1), parallel sub-programs fan out over the same
// pool with the same input-order merges, and rule/probe/span bookkeeping
// matches the interpreter's names. Ungoverned runs take the fast lane:
// phrase predicates are answered from the inverted index's block-compressed
// postings (skip-pointer intersection, positions decoded only for
// survivors) instead of full posting-list decodes.

#ifndef IDM_IQL_VM_H_
#define IDM_IQL_VM_H_

#include "iql/plan.h"
#include "iql/query_processor.h"
#include "obs/trace.h"
#include "util/exec_context.h"

namespace idm::iql {

class Vm {
 public:
  /// Everything a program needs to execute; all pointers must outlive the
  /// call (they are the owning QueryProcessor's own members).
  struct Env {
    const rvm::ReplicaIndexesModule* module;
    const core::ClassRegistry* classes;
    Clock* clock;
    const QueryProcessor::Options* options;
    util::ThreadPool* pool;  ///< null when threads <= 1
  };

  /// Runs the root \p program. Like Evaluation::Run this returns the raw
  /// result — elapsed time, governance meta and root span attributes are
  /// filled in by QueryProcessor::Evaluate's shared epilogue.
  static Result<QueryResult> Run(const Env& env, const PlanProgram& program,
                                 util::ExecContext* ctx,
                                 obs::TraceSpan* span);
};

}  // namespace idm::iql

#endif  // IDM_IQL_VM_H_
