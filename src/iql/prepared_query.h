// PreparedQuery (DESIGN.md §16): a parse-once / plan-once query handle.
//
//   IDM_ASSIGN_OR_RETURN(PreparedQuery q, ds.Prepare("//PIM//*[\"budget\"]"));
//   auto r1 = q.Execute();                  // no parse, no plan
//   auto r2 = q.Execute({.limits = ...});   // same plan, governed run
//   std::cout << q.Explain();               // stable bytecode listing
//
// The handle owns an immutable parsed AST plus the compiled PlanProgram
// (iql/plan.h) and is therefore cheap to copy and safe to share across
// threads; Execute() routes through the owning Dataspace's full query path
// (admission, governance, result cache), so a handle behaves exactly like
// Query(text) minus the per-call parse + plan work. The plan's canonical
// cache key — insensitive to and/or/union/intersect operand order — is
// what the result cache is keyed on.

#ifndef IDM_IQL_PREPARED_QUERY_H_
#define IDM_IQL_PREPARED_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "iql/ast.h"
#include "iql/plan.h"
#include "iql/query_options.h"
#include "iql/query_processor.h"
#include "sub/footprint.h"

namespace idm::iql {

class Dataspace;

class PreparedQuery {
 public:
  /// An empty handle; valid() is false and Execute() fails. Assign a
  /// Dataspace::Prepare() result to make it useful.
  PreparedQuery() = default;

  bool valid() const { return plan_ != nullptr; }

  /// The normalized rendering of the parsed query (whitespace/escape
  /// variants of the same query normalize identically).
  const std::string& normalized() const { return plan_->normalized; }

  /// The canonical cache key: same-kind and/or chains and set-operator
  /// arms are sorted, so semantically identical reorderings share it.
  const std::string& cache_key() const { return plan_->cache_key; }

  /// 64-bit fingerprint of cache_key() (display / metrics identity).
  uint64_t fingerprint() const { return plan_->fingerprint; }

  /// Executes against the owning dataspace: admission, optional
  /// governance limits, result cache, tracing — the full Query() path
  /// with parse + plan already paid.
  Result<QueryResult> Execute(const QueryOptions& options = {}) const;

  /// Stable, golden-testable description of the compiled plan: the
  /// normalized query, canonical key, fingerprint, engine, and the full
  /// bytecode listing (ops, registers, sub-programs, join inputs).
  std::string Explain() const;

  /// The query's dependency footprint against the dataspace's *current*
  /// replica state (which substrates and name patterns it reads) — the
  /// same structure the cache and subscription engine use for
  /// fine-grained invalidation.
  sub::Footprint Footprint() const;

  const Query& query() const { return *query_; }
  const PlanProgram& plan() const { return *plan_; }

 private:
  friend class Dataspace;

  PreparedQuery(const Dataspace* dataspace,
                std::shared_ptr<const Query> query,
                std::shared_ptr<const PlanProgram> plan)
      : dataspace_(dataspace),
        query_(std::move(query)),
        plan_(std::move(plan)) {}

  const Dataspace* dataspace_ = nullptr;
  std::shared_ptr<const Query> query_;
  std::shared_ptr<const PlanProgram> plan_;
};

}  // namespace idm::iql

#endif  // IDM_IQL_PREPARED_QUERY_H_
