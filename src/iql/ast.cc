#include "iql/ast.h"

#include <cstdio>
#include <ctime>

namespace idm::iql {

namespace {

const char* OpText(index::CompareOp op) {
  switch (op) {
    case index::CompareOp::kEq: return "=";
    case index::CompareOp::kNe: return "!=";
    case index::CompareOp::kLt: return "<";
    case index::CompareOp::kLe: return "<=";
    case index::CompareOp::kGt: return ">";
    case index::CompareOp::kGe: return ">=";
  }
  return "?";
}

// Comparison literals must print in the lexer's own syntax: ToString is
// the query normalizer (and the result-cache key), so parse → print →
// reparse has to be a fixpoint. Dates render as @DD.MM.YYYY (the only date
// form the lexer accepts; parsed dates are always midnight UTC) and
// strings re-quote.
std::string LiteralText(const core::Value& literal) {
  switch (literal.domain()) {
    case core::Domain::kString:
      return "\"" + literal.AsString() + "\"";
    case core::Domain::kDate: {
      std::time_t secs = static_cast<std::time_t>(literal.AsDate() / 1000000);
      std::tm tm_utc{};
      gmtime_r(&secs, &tm_utc);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "@%02d.%02d.%04d", tm_utc.tm_mday,
                    tm_utc.tm_mon + 1, tm_utc.tm_year + 1900);
      return buf;
    }
    default:
      return literal.ToString();
  }
}

std::string RefText(const JoinRef& ref) {
  switch (ref.field) {
    case JoinRef::Field::kName: return ref.binding + ".name";
    case JoinRef::Field::kClass: return ref.binding + ".class";
    case JoinRef::Field::kContent: return ref.binding + ".content";
    case JoinRef::Field::kTupleAttr:
      return ref.binding + ".tuple." + ref.attribute;
  }
  return ref.binding;
}

}  // namespace

std::string ToString(const PredNode& pred) {
  switch (pred.kind) {
    case PredNode::Kind::kAnd:
      return "(" + ToString(*pred.children[0]) + " and " +
             ToString(*pred.children[1]) + ")";
    case PredNode::Kind::kOr:
      return "(" + ToString(*pred.children[0]) + " or " +
             ToString(*pred.children[1]) + ")";
    case PredNode::Kind::kNot:
      return "not " + ToString(*pred.children[0]);
    case PredNode::Kind::kPhrase:
      return "\"" + pred.text + "\"";
    case PredNode::Kind::kClassEq:
      return "class=\"" + pred.text + "\"";
    case PredNode::Kind::kNameEq:
      return "name=\"" + pred.text + "\"";
    case PredNode::Kind::kCompare: {
      std::string literal;
      switch (pred.literal_kind) {
        case PredNode::LiteralKind::kValue: literal = LiteralText(pred.literal); break;
        case PredNode::LiteralKind::kYesterday: literal = "yesterday()"; break;
        case PredNode::LiteralKind::kNow: literal = "now()"; break;
      }
      return pred.attribute + " " + OpText(pred.op) + " " + literal;
    }
  }
  return "?";
}

std::string ToString(const Query& query) {
  switch (query.kind) {
    case Query::Kind::kFilter:
      return query.filter ? ToString(*query.filter) : "<empty>";
    case Query::Kind::kPath: {
      std::string out;
      for (const PathStep& step : query.steps) {
        out += step.descendant ? "//" : "/";
        out += step.name_pattern;
        if (step.predicate) out += "[" + ToString(*step.predicate) + "]";
      }
      return out;
    }
    case Query::Kind::kUnion:
    case Query::Kind::kIntersect:
    case Query::Kind::kExcept: {
      std::string out = query.kind == Query::Kind::kUnion       ? "union("
                        : query.kind == Query::Kind::kIntersect ? "intersect("
                                                                : "except(";
      for (size_t i = 0; i < query.arms.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToString(*query.arms[i]);
      }
      return out + ")";
    }
    case Query::Kind::kJoin: {
      const JoinSpec& join = *query.join;
      return "join(" + ToString(*join.left) + " as " + join.left_binding +
             ", " + ToString(*join.right) + " as " + join.right_binding +
             ", " + RefText(join.left_ref) + "=" + RefText(join.right_ref) +
             ")";
    }
  }
  return "?";
}

}  // namespace idm::iql
