#include "iql/federation.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "iql/parser.h"

namespace idm::iql {

namespace {

Micros WallNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Federation::Federation(Clock* clock, Options options)
    : clock_(clock), options_(options), cache_(options.cache) {
  if (options_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
}

Federation::~Federation() = default;

void Federation::SetObservability(obs::Observability* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  obs::MetricsRegistry& reg = obs->metrics();
  metrics_.queries = reg.counter("fed.queries");
  metrics_.peer_rpcs = reg.counter("fed.peer.rpcs");
  metrics_.peer_failures = reg.counter("fed.peer.failures");
  metrics_.retries = reg.counter("fed.retries");
  metrics_.cache_hits = reg.counter("fed.cache.hits");
}

Status Federation::AddPeer(std::string name, const Dataspace* peer,
                           PeerLatency latency, FaultInjector* link) {
  if (peer == nullptr) return Status::InvalidArgument("null peer");
  for (const Peer& existing : peers_) {
    if (existing.name == name) {
      return Status::AlreadyExists("peer '" + name + "' already joined");
    }
  }
  peers_.push_back({std::move(name), peer, latency, link});
  return Status::OK();
}

Federation::PeerOutcome Federation::QueryPeer(
    const Peer& peer, const std::string& iql, const std::string& cache_key,
    bool cacheable, Rng* jitter, Clock* clock, util::ExecContext* ctx,
    obs::TraceSpan* span) const {
  PeerOutcome outcome;
  if (ctx != nullptr && ctx->doomed()) {
    // A sibling already overran the family budget: abandon this peer
    // before shipping anything.
    outcome.error = ctx->status();
    return outcome;
  }
  // Charges simulated network/backoff cost against the outcome (and, in
  // serial mode, incrementally against the clock) and the peer's deadline
  // budget.
  auto charge = [&](Micros micros) {
    if (clock != nullptr) clock->AdvanceMicros(micros);
    outcome.charged += micros;
  };

  // The peer's dataspace version pins the cache entry: any change on the
  // peer advances its epoch and invalidates.
  uint64_t epoch = peer.dataspace->module().versions().current();
  if (cacheable && cache_.enabled()) {
    std::string key = peer.name + '\n' + cache_key;
    if (std::optional<QueryResult> hit = cache_.Lookup(key, epoch)) {
      outcome.reached = true;
      outcome.cache_hit = true;
      if (metrics_.cache_hits != nullptr) metrics_.cache_hits->Inc();
      if (span != nullptr) span->SetAttr("outcome", "cache_hit");
      outcome.rows.reserve(hit->rows.size());
      for (size_t r = 0; r < hit->rows.size(); ++r) {
        FederatedRow row;
        row.peer = peer.name;
        row.id = hit->rows[r][0];
        row.uri = peer.dataspace->UriOf(row.id);
        row.name = peer.dataspace->NameOf(row.id);
        row.score = hit->ranked() ? hit->scores[r] : 0.0;
        outcome.rows.push_back(std::move(row));
      }
      return outcome;
    }
  }

  // Effective per-peer budget: the configured deadline, clamped to what
  // remains of the caller's deadline — a federation running out of time
  // gives each remaining peer only the leftover budget.
  Micros deadline = options_.per_peer_deadline_micros;
  if (ctx != nullptr) {
    Micros remaining = ctx->remaining_micros();
    if (remaining != std::numeric_limits<Micros>::max() &&
        (deadline == 0 || remaining < deadline)) {
      deadline = remaining;
    }
  }
  for (int attempt = 1; attempt <= options_.retry.max_attempts; ++attempt) {
    // Per-peer deadline: abandon the peer rather than let a dead link's
    // round trips dominate the federation's latency.
    if (deadline > 0 &&
        outcome.charged + peer.latency.per_query_micros > deadline) {
      outcome.error = Status::DeadlineExceeded(
          "peer '" + peer.name + "' exceeded its deadline of " +
          std::to_string(deadline) + "us");
      break;
    }
    charge(peer.latency.per_query_micros);  // one shipped round trip
    if (metrics_.peer_rpcs != nullptr) metrics_.peer_rpcs->Inc();

    // The network path may fail independently of the peer's evaluator.
    if (peer.link != nullptr) {
      Status link_status = peer.link->OnOperation("ship to " + peer.name);
      if (!link_status.ok()) {
        outcome.error = link_status;
        if (!link_status.IsRetryable() ||
            attempt == options_.retry.max_attempts) {
          break;
        }
        ++outcome.retries;
        if (metrics_.retries != nullptr) metrics_.retries->Inc();
        charge(options_.retry.BackoffMicros(attempt, jitter));
        continue;
      }
    }

    Dataspace::QueryOptions peer_options;
    if (ctx != nullptr) {
      // The peer evaluates under a deadline derived from what is left of
      // this peer's budget after the round trips already charged, and
      // inherits the caller's simulated per-step evaluation cost.
      if (deadline > 0) {
        peer_options.limits.deadline_micros =
            std::max<Micros>(deadline - outcome.charged, 1);
      }
      peer_options.limits.micros_per_step = ctx->limits().micros_per_step;
    }
    auto result = ctx != nullptr ? peer.dataspace->Query(iql, peer_options)
                                 : peer.dataspace->Query(iql);
    if (!result.ok()) {
      // Evaluation errors (parse, unsupported operator) are answers of
      // this peer, not link weather: no retry.
      outcome.error = result.status();
      break;
    }
    if (result->columns.size() != 1) {
      // Joins produce peer-local pairs; shipping them is future work, as
      // in the paper. Report the restriction instead of silent data loss.
      outcome.error = Status::Unimplemented(
          "federated joins are not supported; ship a unary query");
      break;
    }
    charge(static_cast<Micros>(result->rows.size()) *
           peer.latency.per_result_micros);
    outcome.reached = true;
    outcome.degraded = !result->meta.complete;
    outcome.rows.reserve(result->rows.size());
    for (size_t r = 0; r < result->rows.size(); ++r) {
      FederatedRow row;
      row.peer = peer.name;
      row.id = result->rows[r][0];
      row.uri = peer.dataspace->UriOf(row.id);
      row.name = peer.dataspace->NameOf(row.id);
      row.score = result->ranked() ? result->scores[r] : 0.0;
      outcome.rows.push_back(std::move(row));
    }
    if (cacheable && cache_.enabled()) {
      cache_.Insert(peer.name + '\n' + cache_key, epoch, *result);
    }
    break;
  }
  if (span != nullptr) {
    // The cache-hit path returned above, so "outcome" is still unset here.
    span->SetAttr("outcome", outcome.reached ? "reached" : "failed");
    span->SetAttr("rows", static_cast<int64_t>(outcome.rows.size()));
    span->SetAttr("retries", static_cast<int64_t>(outcome.retries));
    span->SetAttr("charged_micros", static_cast<int64_t>(outcome.charged));
  }
  if (!outcome.reached && metrics_.peer_failures != nullptr) {
    metrics_.peer_failures->Inc();
  }
  return outcome;
}

Result<FederatedResult> Federation::Query(const std::string& iql) const {
  return Query(iql, nullptr);
}

Result<FederatedResult> Federation::Query(const std::string& iql,
                                          util::ExecContext* ctx) const {
  if (peers_.empty()) {
    return Status::FailedPrecondition("federation has no peers");
  }
  Micros start = WallNow();
  std::shared_ptr<obs::Trace> trace =
      obs_ != nullptr ? obs_->StartTrace(obs::kFederationTrace, "federation")
                      : nullptr;
  obs::TraceSpan* root = trace == nullptr ? nullptr : trace->root();
  if (metrics_.queries != nullptr) metrics_.queries->Inc();

  // Normalize the query text once so cache keys are whitespace/escape
  // insensitive; unparseable or clock-dependent queries bypass the cache
  // (peers may still answer or fail them on their own terms).
  std::string cache_key = iql;
  bool cacheable = false;
  if (cache_.enabled()) {
    auto parsed = ParseQuery(iql);
    if (parsed.ok() && IsCacheable(*parsed)) {
      // The same canonical key the local result cache uses (DESIGN.md
      // §16): reordered conjuncts / set-op arms share per-peer entries.
      cache_key = CanonicalQueryKey(*parsed);
      cacheable = true;
    }
  }

  // One RPC span per peer, pre-created in registration order so the trace
  // tree is deterministic regardless of scatter scheduling.
  std::vector<obs::TraceSpan*> peer_spans(peers_.size(), nullptr);
  if (root != nullptr) {
    for (size_t i = 0; i < peers_.size(); ++i) {
      peer_spans[i] = root->AddChild("peer.rpc");
      if (peer_spans[i] != nullptr) {
        peer_spans[i]->SetAttr("peer", peers_[i].name);
      }
    }
  }

  std::vector<PeerOutcome> outcomes;
  if (pool_ != nullptr) {
    // Scatter: each peer's full ship/retry loop is one task with its own
    // deterministic jitter stream; the clock is charged at gather time.
    outcomes = util::OrderedParallelMap<PeerOutcome>(
        pool_.get(), peers_.size(), [&](size_t i) {
          Rng jitter(options_.jitter_seed ^
                     (0x9E3779B97F4A7C15ULL * (i + 1)));
          PeerOutcome outcome =
              QueryPeer(peers_[i], iql, cache_key, cacheable, &jitter,
                        /*clock=*/nullptr, ctx, peer_spans[i]);
          if (peer_spans[i] != nullptr) peer_spans[i]->End();
          return outcome;
        });
  } else {
    // Serial: one jitter stream across peers in registration order and
    // incremental clock charging — the pre-parallel behavior.
    Rng jitter(options_.jitter_seed);
    outcomes.reserve(peers_.size());
    for (size_t i = 0; i < peers_.size(); ++i) {
      outcomes.push_back(QueryPeer(peers_[i], iql, cache_key, cacheable,
                                   &jitter, clock_, ctx, peer_spans[i]));
      if (peer_spans[i] != nullptr) peer_spans[i]->End();
    }
  }

  // Gather in registration order: deterministic regardless of scheduling.
  FederatedResult merged;
  Status first_error;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    PeerOutcome& outcome = outcomes[i];
    if (pool_ != nullptr && clock_ != nullptr && outcome.charged > 0) {
      clock_->AdvanceMicros(outcome.charged);
    }
    merged.elapsed_micros += outcome.charged;
    merged.retries += outcome.retries;
    if (outcome.cache_hit) ++merged.cache_hits;
    if (outcome.degraded) ++merged.peers_degraded;
    if (outcome.reached) {
      ++merged.peers_reached;
      merged.rows.insert(merged.rows.end(),
                         std::make_move_iterator(outcome.rows.begin()),
                         std::make_move_iterator(outcome.rows.end()));
    } else {
      Status error = outcome.error.ok()
                         ? Status::Unavailable("peer '" + peers_[i].name +
                                               "' not reached")
                         : outcome.error;
      ++merged.peers_failed;
      if (merged.failures.size() < 8) {
        merged.failures.push_back(peers_[i].name + ": " + error.ToString());
      }
      if (first_error.ok()) first_error = error;
    }
  }
  auto finish_trace = [&]() {
    if (obs_ == nullptr) return;
    if (root != nullptr) {
      root->SetAttr("peers_reached",
                    static_cast<int64_t>(merged.peers_reached));
      root->SetAttr("peers_failed", static_cast<int64_t>(merged.peers_failed));
      root->SetAttr("rows", static_cast<int64_t>(merged.rows.size()));
    }
    obs_->FinishTrace(obs::kFederationTrace, std::move(trace));
  };
  if (merged.peers_reached == 0) {
    finish_trace();
    return first_error;
  }

  // Merge order: descending peer-local score, then peer, then uri —
  // deterministic across runs.
  std::sort(merged.rows.begin(), merged.rows.end(),
            [](const FederatedRow& a, const FederatedRow& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.peer != b.peer) return a.peer < b.peer;
              return a.uri < b.uri;
            });
  merged.elapsed_micros += WallNow() - start;
  finish_trace();
  return merged;
}

}  // namespace idm::iql
