#include "iql/federation.h"

#include <algorithm>
#include <chrono>

namespace idm::iql {

namespace {

Micros WallNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status Federation::AddPeer(std::string name, const Dataspace* peer,
                           PeerLatency latency, FaultInjector* link) {
  if (peer == nullptr) return Status::InvalidArgument("null peer");
  for (const Peer& existing : peers_) {
    if (existing.name == name) {
      return Status::AlreadyExists("peer '" + name + "' already joined");
    }
  }
  peers_.push_back({std::move(name), peer, latency, link});
  return Status::OK();
}

Result<FederatedResult> Federation::Query(const std::string& iql) const {
  if (peers_.empty()) {
    return Status::FailedPrecondition("federation has no peers");
  }
  Micros start = WallNow();
  FederatedResult merged;
  Status first_error;
  // Deterministic per-call jitter stream: retry schedules replay exactly.
  Rng jitter(options_.jitter_seed);

  auto fail_peer = [&](const Peer& peer, Status error) {
    if (error.ok()) {
      error = Status::Unavailable("peer '" + peer.name + "' not reached");
    }
    ++merged.peers_failed;
    if (merged.failures.size() < 8) {
      merged.failures.push_back(peer.name + ": " + error.ToString());
    }
    if (first_error.ok()) first_error = error;
  };
  // Charges simulated network/backoff cost against the clock, the merged
  // total, and the active peer's deadline budget.
  Micros peer_spent = 0;
  auto charge = [&](Micros micros) {
    if (clock_ != nullptr) clock_->AdvanceMicros(micros);
    merged.elapsed_micros += micros;
    peer_spent += micros;
  };

  for (const Peer& peer : peers_) {
    peer_spent = 0;
    const Micros deadline = options_.per_peer_deadline_micros;
    Status peer_error;
    bool reached = false;

    for (int attempt = 1; attempt <= options_.retry.max_attempts; ++attempt) {
      // Per-peer deadline: abandon the peer rather than let a dead link's
      // round trips dominate the federation's latency.
      if (deadline > 0 && peer_spent + peer.latency.per_query_micros > deadline) {
        peer_error = Status::Unavailable(
            "peer '" + peer.name + "' exceeded its deadline of " +
            std::to_string(deadline) + "us");
        break;
      }
      charge(peer.latency.per_query_micros);  // one shipped round trip

      // The network path may fail independently of the peer's evaluator.
      if (peer.link != nullptr) {
        Status link_status = peer.link->OnOperation("ship to " + peer.name);
        if (!link_status.ok()) {
          peer_error = link_status;
          if (!link_status.IsRetryable() ||
              attempt == options_.retry.max_attempts) {
            break;
          }
          ++merged.retries;
          charge(options_.retry.BackoffMicros(attempt, &jitter));
          continue;
        }
      }

      auto result = peer.dataspace->Query(iql);
      if (!result.ok()) {
        // Evaluation errors (parse, unsupported operator) are answers of
        // this peer, not link weather: no retry.
        peer_error = result.status();
        break;
      }
      if (result->columns.size() != 1) {
        // Joins produce peer-local pairs; shipping them is future work, as
        // in the paper. Report the restriction instead of silent data loss.
        peer_error = Status::Unimplemented(
            "federated joins are not supported; ship a unary query");
        break;
      }
      charge(static_cast<Micros>(result->rows.size()) *
             peer.latency.per_result_micros);
      reached = true;
      ++merged.peers_reached;
      for (size_t r = 0; r < result->rows.size(); ++r) {
        FederatedRow row;
        row.peer = peer.name;
        row.id = result->rows[r][0];
        row.uri = peer.dataspace->UriOf(row.id);
        row.name = peer.dataspace->NameOf(row.id);
        row.score = result->ranked() ? result->scores[r] : 0.0;
        merged.rows.push_back(std::move(row));
      }
      break;
    }

    if (!reached) fail_peer(peer, peer_error);
  }
  if (merged.peers_reached == 0) return first_error;

  // Merge order: descending peer-local score, then peer, then uri —
  // deterministic across runs.
  std::sort(merged.rows.begin(), merged.rows.end(),
            [](const FederatedRow& a, const FederatedRow& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.peer != b.peer) return a.peer < b.peer;
              return a.uri < b.uri;
            });
  merged.elapsed_micros += WallNow() - start;
  return merged;
}

}  // namespace idm::iql
