#include "iql/federation.h"

#include <algorithm>
#include <chrono>

namespace idm::iql {

namespace {

Micros WallNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status Federation::AddPeer(std::string name, const Dataspace* peer,
                           PeerLatency latency) {
  if (peer == nullptr) return Status::InvalidArgument("null peer");
  for (const Peer& existing : peers_) {
    if (existing.name == name) {
      return Status::AlreadyExists("peer '" + name + "' already joined");
    }
  }
  peers_.push_back({std::move(name), peer, latency});
  return Status::OK();
}

Result<FederatedResult> Federation::Query(const std::string& iql) const {
  if (peers_.empty()) {
    return Status::FailedPrecondition("federation has no peers");
  }
  Micros start = WallNow();
  FederatedResult merged;
  Status first_error;
  for (const Peer& peer : peers_) {
    auto result = peer.dataspace->Query(iql);
    // Network charge: one round trip plus per-row transfer.
    Micros network = peer.latency.per_query_micros;
    if (result.ok()) {
      network += static_cast<Micros>(result->rows.size()) *
                 peer.latency.per_result_micros;
    }
    if (clock_ != nullptr) clock_->AdvanceMicros(network);
    merged.elapsed_micros += network;

    if (!result.ok()) {
      ++merged.peers_failed;
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    ++merged.peers_reached;
    if (result->columns.size() != 1) {
      // Joins produce peer-local pairs; shipping them is future work, as
      // in the paper. Report the restriction instead of silent data loss.
      ++merged.peers_failed;
      --merged.peers_reached;
      if (first_error.ok()) {
        first_error = Status::Unimplemented(
            "federated joins are not supported; ship a unary query");
      }
      continue;
    }
    for (size_t r = 0; r < result->rows.size(); ++r) {
      FederatedRow row;
      row.peer = peer.name;
      row.id = result->rows[r][0];
      row.uri = peer.dataspace->UriOf(row.id);
      row.name = peer.dataspace->NameOf(row.id);
      row.score = result->ranked() ? result->scores[r] : 0.0;
      merged.rows.push_back(std::move(row));
    }
  }
  if (merged.peers_reached == 0) return first_error;

  // Merge order: descending peer-local score, then peer, then uri —
  // deterministic across runs.
  std::sort(merged.rows.begin(), merged.rows.end(),
            [](const FederatedRow& a, const FederatedRow& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.peer != b.peer) return a.peer < b.peer;
              return a.uri < b.uri;
            });
  merged.elapsed_micros += WallNow() - start;
  return merged;
}

}  // namespace idm::iql
