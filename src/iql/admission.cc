#include "iql/admission.h"

#include <chrono>

namespace idm::iql {

Result<AdmissionController::Ticket> AdmissionController::Admit() {
  if (!enabled()) return Ticket(nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < options_.max_concurrent) {
    ++running_;
    ++stats_.admitted;
    return Ticket(this);
  }
  if (queued_ >= options_.max_queue || options_.queue_timeout_micros <= 0) {
    ++stats_.shed_queue_full;
    return Status::ResourceExhausted(
        "query shed: admission queue full (" + std::to_string(queued_) +
        " waiting, " + std::to_string(running_) + " running)");
  }
  ++queued_;
  bool got_slot = cv_.wait_for(
      lock, std::chrono::microseconds(options_.queue_timeout_micros),
      [this] { return running_ < options_.max_concurrent; });
  --queued_;
  if (!got_slot) {
    ++stats_.shed_timeout;
    return Status::ResourceExhausted(
        "query shed: no slot within " +
        std::to_string(options_.queue_timeout_micros) + "us");
  }
  ++running_;
  ++stats_.admitted;
  return Ticket(this);
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_one();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.running = running_;
  stats.queued = queued_;
  return stats;
}

}  // namespace idm::iql
