#include "iql/admission.h"

#include <chrono>

namespace idm::iql {

Result<AdmissionController::Ticket> AdmissionController::Admit(
    int64_t* waited_micros) {
  if (waited_micros != nullptr) *waited_micros = 0;
  if (!enabled()) return Ticket(nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < options_.max_concurrent) {
    ++running_;
    ++stats_.admitted;
    return Ticket(this);
  }
  if (queued_ >= options_.max_queue || options_.queue_timeout_micros <= 0) {
    ++stats_.shed_queue_full;
    return Status::ResourceExhausted(
        "query shed: admission queue full (" + std::to_string(queued_) +
        " waiting, " + std::to_string(running_) + " running)");
  }
  ++queued_;
  auto wait_start = std::chrono::steady_clock::now();
  bool got_slot = cv_.wait_for(
      lock, std::chrono::microseconds(options_.queue_timeout_micros),
      [this] { return running_ < options_.max_concurrent; });
  int64_t waited = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - wait_start)
                       .count();
  --queued_;
  stats_.queue_wait_micros += static_cast<uint64_t>(waited);
  if (waited_micros != nullptr) *waited_micros = waited;
  if (!got_slot) {
    ++stats_.shed_timeout;
    return Status::ResourceExhausted(
        "query shed: no slot within " +
        std::to_string(options_.queue_timeout_micros) + "us");
  }
  ++running_;
  ++stats_.admitted;
  return Ticket(this);
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_one();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.running = running_;
  stats.queued = queued_;
  return stats;
}

}  // namespace idm::iql
