// iQL abstract syntax (paper §5.1, Table 4).

#ifndef IDM_IQL_AST_H_
#define IDM_IQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "index/tuple_index.h"

namespace idm::iql {

/// A boolean predicate over resource views.
struct PredNode {
  enum class Kind {
    kAnd,      ///< children all hold
    kOr,       ///< any child holds
    kNot,      ///< single child does not hold
    kPhrase,   ///< content component contains the phrase
    kCompare,  ///< tuple attribute `attribute op literal`
    kClassEq,  ///< view class equals (or specializes) `text`
    kNameEq,   ///< name component matches `text` (wildcards allowed)
  };

  /// How a comparison literal is obtained at evaluation time.
  enum class LiteralKind {
    kValue,      ///< `literal` below
    kYesterday,  ///< yesterday(): clock now minus 24h
    kNow,        ///< now(): clock now
  };

  Kind kind;
  std::vector<std::unique_ptr<PredNode>> children;  // kAnd/kOr/kNot
  std::string text;                                 // phrase/class/name
  std::string attribute;                            // kCompare
  index::CompareOp op = index::CompareOp::kEq;      // kCompare
  core::Value literal;                              // kCompare, kValue
  LiteralKind literal_kind = LiteralKind::kValue;   // kCompare
};

/// One step of a path expression: axis + name pattern + optional predicate.
struct PathStep {
  bool descendant = true;       ///< '//' (indirectly related) vs '/' (directly)
  std::string name_pattern;     ///< "" or "*" match any name
  std::unique_ptr<PredNode> predicate;  ///< may be null
};

/// A join condition reference: `<binding>.name`, `<binding>.class`,
/// `<binding>.tuple.<attr>`, or `<binding>.content`.
struct JoinRef {
  enum class Field { kName, kClass, kTupleAttr, kContent };
  std::string binding;
  Field field = Field::kName;
  std::string attribute;  // kTupleAttr
};

struct Query;

/// join(left as A, right as B, A.x = B.y)
struct JoinSpec {
  std::unique_ptr<Query> left;
  std::string left_binding;
  std::unique_ptr<Query> right;
  std::string right_binding;
  JoinRef left_ref;
  JoinRef right_ref;
};

/// Top-level query forms.
struct Query {
  enum class Kind {
    kPath,       ///< //a//b[pred]/c
    kFilter,     ///< "phrase", "a" and "b", [size > 42000 ...]
    kUnion,      ///< union(q1, q2, ...)
    kIntersect,  ///< intersect(q1, q2, ...)
    kExcept,     ///< except(q1, q2): results of q1 not in q2
    kJoin,       ///< join(q1 as A, q2 as B, A.x=B.y)
  };

  Kind kind = Kind::kFilter;
  std::vector<PathStep> steps;              // kPath
  std::unique_ptr<PredNode> filter;         // kFilter
  std::vector<std::unique_ptr<Query>> arms; // kUnion/kIntersect/kExcept
  std::unique_ptr<JoinSpec> join;           // kJoin
};

/// Renders the AST back to (normalized) iQL text, for plan display.
std::string ToString(const Query& query);
std::string ToString(const PredNode& pred);

}  // namespace idm::iql

#endif  // IDM_IQL_AST_H_
