// Dataspace: the PDSMS facade (paper §5, Figure 4). Wires together the
// standard class registry, the Content2iDM converters, the Replica&Indexes
// module, the Synchronization Manager and the iQL Query Processor behind
// one object — the "iMeMex" of this repository.
//
//   idm::iql::Dataspace ds;
//   ds.AddFileSystem("Filesystem", fs);
//   ds.AddImap("Email / IMAP", server);
//   auto result = ds.Query("//PIM//Introduction[class=\"latex_section\"]");
//
// Querying has ONE canonical entry point: Query(iql, QueryOptions). The
// one-argument Query(iql) is sugar for Query(iql, QueryOptions{}) — the
// default options reproduce the classic ungoverned behavior exactly, and
// every execution knob (resource limits, admission bypass) is a field of
// QueryOptions (iql/query_options.h), never a separate overload.
//
// Introspection likewise has one surface: Stats() returns a DataspaceStats
// snapshot covering cache, admission, sync, storage, thread pool, and the
// metrics registry; LastTrace() returns the most recent span tree when
// Config::observability is enabled (DESIGN.md §11).

#ifndef IDM_IQL_DATASPACE_H_
#define IDM_IQL_DATASPACE_H_

#include <functional>
#include <memory>
#include <string>

#include "index/inverted_index.h"
#include "iql/admission.h"
#include "iql/prepared_query.h"
#include "iql/query_cache.h"
#include "iql/query_options.h"
#include "iql/query_processor.h"
#include "obs/obs.h"
#include "repair/scrubber.h"
#include "rvm/rvm.h"
#include "storage/engine.h"
#include "sub/subscription.h"
#include "util/exec_context.h"

namespace idm::iql {

/// Integrity / self-healing activity (DESIGN.md §15). All zeros until a
/// scrub runs or something is quarantined; `last_quarantined` names the
/// most recent contained artifact — the "degrade loudly" surface.
struct RepairStats {
  repair::ScrubStats scrub;          ///< scrubber activity since start
  uint64_t quarantined = 0;          ///< artifacts in the quarantine stash
  uint64_t quarantined_bytes = 0;    ///< evidence bytes preserved
  uint64_t rescues = 0;              ///< rescue checkpoints taken
  std::string last_quarantined;      ///< most recent artifact ("" = none)
  std::string last_defect;           ///< what its failed check reported
};

/// One-call introspection snapshot (DESIGN.md §11): everything the
/// dataspace knows about itself, collected by Dataspace::Stats(). Plain
/// values — safe to copy, compare, and ship across threads.
struct DataspaceStats {
  QueryCache::Stats cache;                ///< result-cache hits/misses/…
  AdmissionController::Stats admission;   ///< admitted/shed/queued/…
  rvm::SyncTotals sync;                   ///< cumulative sync activity
  sub::SubscriptionManager::Stats subscriptions;  ///< live-query activity
  uint64_t mutations = 0;                 ///< module mutations since start
  storage::StorageEngine::Stats storage;  ///< zeros when not durable
  storage::RecoveryStats recovery;        ///< what startup recovery found
  RepairStats repair;                     ///< scrub/quarantine/self-heal
  util::ThreadPoolTelemetry pool;         ///< zeros when threads <= 1
  obs::MetricsSnapshot metrics;           ///< empty when observability off
  QueryProcessor::EngineStats engine;     ///< plan/interp/vm dispatch (§16)
  index::InvertedIndex::BlockStats postings;  ///< block-compression activity
};

class Dataspace {
 public:
  struct Config {
    rvm::IndexingOptions indexing;
    QueryProcessor::Options query;
    /// Result cache fronting the query processor, keyed on (normalized
    /// query text, VersionLog epoch). Enabled by default: every catalog
    /// mutation advances the epoch, so a hit is always exact; queries with
    /// yesterday()/now() literals bypass it (see IsCacheable).
    QueryCache::Options cache;
    /// When non-empty, the dataspace is durable: a storage engine in this
    /// directory write-ahead-logs every mutation, Checkpoint() snapshots
    /// the structures, and construction recovers whatever the directory
    /// holds. Empty (the default) keeps the classic in-memory dataspace —
    /// no storage code runs at all.
    std::string storage_dir;
    storage::StorageOptions storage;
    /// Storage environment; nullptr means the real file system. Tests pass
    /// a MemEnv to run durability and crash scenarios hermetically.
    storage::Env* env = nullptr;
    /// Admission control in front of Query() (DESIGN.md §10): concurrency
    /// limit + bounded wait queue with load shedding. Disabled by default
    /// (max_concurrent == 0) — every query runs immediately, as before.
    AdmissionController::Options admission;
    /// Tracing + metrics (DESIGN.md §11). Off by default: with
    /// enabled == false no Observability object is created, every
    /// instrumentation site sees a null pointer, and the hot path is
    /// byte-identical to a build without the feature.
    obs::Options observability;
    /// Background integrity scrubbing (DESIGN.md §15). Off by default: no
    /// Scrubber is constructed and the write/sync path is byte-identical
    /// to a build without it. Enabled, every sync round runs at most one
    /// interval-gated, ExecContext-budgeted verification slice; a verified
    /// defect is contained (quarantine + rescue checkpoint) immediately.
    repair::ScrubOptions scrub;
  };

  Dataspace() : Dataspace(Config()) {}
  explicit Dataspace(Config config);

  /// Constructs a dataspace and fails loudly when storage recovery fails
  /// (the plain constructor records the failure in storage_status()).
  static Result<std::unique_ptr<Dataspace>> Open(Config config);

  /// OK for in-memory dataspaces and after successful recovery; the
  /// recovery/open error otherwise (the dataspace then starts empty and
  /// NON-durable rather than silently double-applying history).
  const Status& storage_status() const { return storage_status_; }

  /// What recovery found (all zeros for in-memory dataspaces).
  const storage::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  storage::StorageEngine* storage_engine() { return engine_.get(); }

  /// Commits any staged batch and writes a new checkpoint generation.
  /// Fails with kFailedPrecondition when the dataspace is not durable.
  Status Checkpoint();

  /// Forces every committed batch to the platter (fsync), regardless of
  /// the configured fsync policy.
  Status SyncStorage();

  /// --- integrity (DESIGN.md §15) ------------------------------------------
  /// Runs one full scrub pass over the live generation NOW (works even
  /// with Config::scrub disabled) and contains every verified defect:
  /// damaged artifact copied into quarantine, then a rescue checkpoint
  /// rotates to a clean generation rebuilt from the authoritative
  /// in-memory state. Returns the findings (empty = store verified clean);
  /// fails only when containment itself cannot write.
  Result<std::vector<repair::ScrubFinding>> ScrubNow();

  /// The background scrubber (null when storage or Config::scrub is off).
  repair::Scrubber* scrubber() { return scrubber_.get(); }

  /// The simulated clock shared by all sources registered through this
  /// dataspace (timestamps, latency models, yesterday()).
  SimClock* clock() { return &clock_; }

  /// --- source registration (returns the initial-indexing stats) ----------
  Result<rvm::SourceIndexStats> AddFileSystem(
      const std::string& name, std::shared_ptr<vfs::VirtualFileSystem> fs,
      const std::string& root_path = "/");
  Result<rvm::SourceIndexStats> AddImap(
      const std::string& name, std::shared_ptr<email::ImapServer> server);
  Result<rvm::SourceIndexStats> AddRss(
      const std::string& name, std::shared_ptr<stream::FeedServer> server);
  Result<rvm::SourceIndexStats> AddRelational(
      const std::string& name, std::shared_ptr<rel::RelationalDb> db);
  Result<rvm::SourceIndexStats> AddSource(std::shared_ptr<rvm::DataSource> source);

  /// Re-attaches a source after a durable restart WITHOUT re-indexing it:
  /// the recovered catalog and indexes already describe it, so only the
  /// notification subscription is re-armed (drift is reconciled by the
  /// next sync().Poll()). This is what makes cold restart cheap compared
  /// to a full re-sync — bench_recovery measures exactly this gap.
  void AttachSource(std::shared_ptr<rvm::DataSource> source);

  /// --- querying -----------------------------------------------------------
  /// Per-query execution options (iql/query_options.h — shared with
  /// Federation). The nested name is kept as an alias so existing
  /// `Dataspace::QueryOptions` spellings keep compiling.
  using QueryOptions = ::idm::iql::QueryOptions;

  /// The canonical query entry point: admission control first (when
  /// configured and not bypassed; kResourceExhausted on shed — retryable),
  /// then parse, normalize, cache lookup at the current VersionLog epoch,
  /// and evaluation under the configured limits. A cache hit reports
  /// elapsed_micros = 0 (no evaluation ran). When Config::observability is
  /// enabled, every run records a span tree retrievable via LastTrace().
  Result<QueryResult> Query(const std::string& iql,
                            const QueryOptions& options) const;

  /// Sugar for Query(iql, QueryOptions{}): the classic ungoverned call.
  Result<QueryResult> Query(const std::string& iql) const;

  /// --- prepared queries (DESIGN.md §16) -----------------------------------
  /// Parses, normalizes, and compiles \p iql once into a reusable handle:
  /// Execute(prepared) runs the full Query() path (admission, governance,
  /// result cache, tracing) with parse + plan already paid, and
  /// PreparedQuery::Explain() renders the stable bytecode listing.
  /// Query(iql, options) itself is a thin Prepare + Execute wrapper, and
  /// the result cache is keyed on the plan's canonical key, so prepared
  /// and ad-hoc executions of the same query share cache entries.
  Result<PreparedQuery> Prepare(const std::string& iql) const;

  /// Executes a handle obtained from this dataspace's Prepare().
  Result<QueryResult> Execute(const PreparedQuery& prepared,
                              const QueryOptions& options = {}) const;

  /// --- live queries (continuous subscriptions, DESIGN.md §14) -------------
  using SubscribeOptions = sub::SubscribeOptions;
  using ResultDelta = sub::ResultDelta;
  using Subscription = sub::Subscription;

  /// Registers \p iql as a continuous query: the result set is evaluated
  /// once now (delivered as the handle's first, snapshot delta) and then
  /// maintained incrementally from the mutation stream — every sync round
  /// pumps buffered changes into ordered ResultDeltas, drainable via
  /// Subscription::Drain() or pushed through SubscribeOptions::on_delta.
  /// Maintenance work is charged to the subscription's governance limits;
  /// a degraded recompute delivers an incomplete delta (partial-result
  /// contract) and retries on the next pump. Subscriptions do not survive
  /// a durable restart: re-register after Open() — the recovered state is
  /// the new initial snapshot.
  Result<std::shared_ptr<sub::Subscription>> Subscribe(
      const std::string& iql, sub::SubscribeOptions options = {});

  /// Same, from an already prepared handle: the compiled plan is reused
  /// for the initial snapshot and for every maintenance recompute.
  Result<std::shared_ptr<sub::Subscription>> Subscribe(
      const PreparedQuery& prepared, sub::SubscribeOptions options = {});

  /// Closes a subscription; the handle stays drainable but receives
  /// nothing further. False for unknown ids.
  bool Unsubscribe(uint64_t id);

  /// Applies buffered mutation events to every subscription (one ordered
  /// delta each). Runs automatically after every sync round; call it
  /// directly after module-level mutations done behind the facade's back.
  sub::SubscriptionManager::PumpStats PumpSubscriptions();

  sub::SubscriptionManager& subscriptions() { return subs_; }
  const sub::SubscriptionManager& subscriptions() const { return subs_; }

  /// --- introspection ------------------------------------------------------
  /// One-call snapshot of everything the dataspace knows about itself.
  /// Cheap when observability is off (the metrics snapshot is empty).
  DataspaceStats Stats() const;

  /// The most recent finished trace in \p category (obs::kQueryTrace,
  /// obs::kStorageTrace, …), or null when observability is off / nothing
  /// has been traced yet. The returned tree is immutable and safe to keep
  /// across later queries.
  std::shared_ptr<const obs::Trace> LastTrace(
      const std::string& category = obs::kQueryTrace) const;

  /// The observability sink itself (metrics registry access, manual
  /// traces); null when Config::observability is disabled.
  obs::Observability* observability() const { return obs_.get(); }

  /// Drops all cached results (the epoch key makes this unnecessary for
  /// correctness; useful for measurements).
  void ClearQueryCache() { cache_.Clear(); }

  /// Outcome of an update statement.
  struct UpdateResult {
    size_t deleted = 0;          ///< base items removed from their sources
    size_t views_removed = 0;    ///< views dropped from the indexes
    size_t skipped_derived = 0;  ///< derived views (no independent existence)
    size_t failed = 0;           ///< items the source refused to delete
  };

  /// Executes an iQL update statement. Currently supported:
  ///   delete <query>
  /// which removes every *base* item matched by <query> from its data
  /// source (write-through) and drops it — and everything derived from it —
  /// from catalog and indexes. Derived views matched by the query are
  /// skipped: they have no independent existence (delete the base item
  /// instead). This is the "support for updates" §5.1 announces for iQL.
  Result<UpdateResult> ExecuteUpdate(const std::string& statement);

  /// Uri of a result id (for display), and its stored name.
  const std::string& UriOf(index::DocId id) const;
  const std::string& NameOf(index::DocId id) const;

  /// --- plumbing access ----------------------------------------------------
  rvm::ReplicaIndexesModule& module() { return module_; }
  const rvm::ReplicaIndexesModule& module() const { return module_; }
  rvm::SynchronizationManager& sync() { return *sync_; }
  const core::ClassRegistry& classes() const { return classes_; }
  const QueryProcessor& processor() const { return *processor_; }

 private:
  /// Opens the engine, restores the newest checkpoint, replays the WAL
  /// suffix and attaches the engine to the module.
  Status InitStorage();

  /// Query() body; \p root is the trace root (null when tracing is off)
  /// that admission / parse / plan / cache.lookup / evaluate spans attach
  /// to.
  Result<QueryResult> QueryTraced(const std::string& iql,
                                  const QueryOptions& options,
                                  obs::TraceSpan* root) const;

  /// Shared trace + query-metrics wrapper around one execution — used by
  /// Query() and Execute(PreparedQuery) so both surfaces are observed
  /// identically.
  Result<QueryResult> TracedQuery(
      const std::function<Result<QueryResult>(obs::TraceSpan*)>& body) const;

  /// Admission gate (when configured and not bypassed). On admission
  /// \p ticket holds the slot until the result is built; on shed returns
  /// kResourceExhausted.
  Status Admit(const QueryOptions& options, obs::TraceSpan* root,
               AdmissionController::Ticket* ticket) const;

  /// The tail of the query path for an already parsed + planned query:
  /// governed evaluation plus result-cache lookup/insert keyed on the
  /// plan's canonical key.
  Result<QueryResult> EvalPlanned(const ::idm::iql::Query& parsed,
                                  const PlanProgram& plan,
                                  const QueryOptions& options,
                                  obs::TraceSpan* root) const;

  /// Proves a cached entry's footprint unaffected by the mutations in
  /// (entry_epoch, now] — the query-cache survival validator.
  bool FootprintSurvives(const sub::Footprint& footprint,
                         uint64_t entry_epoch) const;

  /// Installs the module mutation listener + post-sync pump hook. Lazy
  /// (first Subscribe): a dataspace that never subscribes never pays the
  /// per-mutation event fan-out.
  void EnsureSubscriptionWiring();

  /// Installs the single post-sync hook (once). The hook fans out to the
  /// subscription pump and the scrub tick, whichever are armed — the two
  /// features share the SynchronizationManager's one slot.
  void EnsurePostSyncHook();
  /// The post-sync fan-out body.
  void PostSync();

  /// Contains \p findings: evidence into quarantine, rescue checkpoint,
  /// stats + metrics + a kRepairTrace trace. No-op for an empty list.
  Status ContainFindings(const std::vector<repair::ScrubFinding>& findings);

  /// Metric handles resolved once at construction (null when observability
  /// is off — the hot path then pays a single pointer test per site).
  struct QueryMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* shed = nullptr;
    obs::Histogram* latency_micros = nullptr;
    obs::Histogram* queue_wait_micros = nullptr;
  };

  /// sub.* metric handles (null when observability is off).
  struct SubMetrics {
    obs::Counter* opened = nullptr;
    obs::Counter* pumps = nullptr;
    obs::Counter* deltas = nullptr;
    obs::Counter* skipped = nullptr;
    obs::Counter* fastpath = nullptr;
    obs::Counter* recomputes = nullptr;
    obs::Counter* degraded = nullptr;
  };

  Config config_;
  /// mutable: governed const Query() applies its simulated evaluation cost
  /// (ExecContext::charged_micros) to the clock after evaluating.
  mutable SimClock clock_;
  core::ClassRegistry classes_;
  rvm::ReplicaIndexesModule module_;
  std::unique_ptr<rvm::SynchronizationManager> sync_;
  std::unique_ptr<QueryProcessor> processor_;
  mutable QueryCache cache_;  ///< internally synchronized
  mutable AdmissionController admission_;  ///< internally synchronized
  std::unique_ptr<storage::StorageEngine> engine_;
  storage::RecoveryStats recovery_stats_;
  Status storage_status_;
  std::unique_ptr<obs::Observability> obs_;  ///< null when disabled
  QueryMetrics qmetrics_;
  mutable sub::SubscriptionManager subs_;  ///< internally synchronized
  bool sub_wired_ = false;  ///< mutation listener + pump hook installed
  SubMetrics smetrics_;

  /// repair.* metric handles (null when observability is off).
  struct RepairMetrics {
    obs::Counter* defects = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* rescues = nullptr;
  };
  std::unique_ptr<repair::Scrubber> scrubber_;  ///< null when scrub off
  bool post_sync_hooked_ = false;
  uint64_t rescues_ = 0;
  std::string last_defect_;
  RepairMetrics rmetrics_;
};

}  // namespace idm::iql

#endif  // IDM_IQL_DATASPACE_H_
