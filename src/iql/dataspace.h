// Dataspace: the PDSMS facade (paper §5, Figure 4). Wires together the
// standard class registry, the Content2iDM converters, the Replica&Indexes
// module, the Synchronization Manager and the iQL Query Processor behind
// one object — the "iMeMex" of this repository.
//
//   idm::iql::Dataspace ds;
//   ds.AddFileSystem("Filesystem", fs);
//   ds.AddImap("Email / IMAP", server);
//   auto result = ds.Query("//PIM//Introduction[class=\"latex_section\"]");

#ifndef IDM_IQL_DATASPACE_H_
#define IDM_IQL_DATASPACE_H_

#include <memory>
#include <string>

#include "iql/admission.h"
#include "iql/query_cache.h"
#include "iql/query_processor.h"
#include "rvm/rvm.h"
#include "storage/engine.h"
#include "util/exec_context.h"

namespace idm::iql {

class Dataspace {
 public:
  struct Config {
    rvm::IndexingOptions indexing;
    QueryProcessor::Options query;
    /// Result cache fronting the query processor, keyed on (normalized
    /// query text, VersionLog epoch). Enabled by default: every catalog
    /// mutation advances the epoch, so a hit is always exact; queries with
    /// yesterday()/now() literals bypass it (see IsCacheable).
    QueryCache::Options cache;
    /// When non-empty, the dataspace is durable: a storage engine in this
    /// directory write-ahead-logs every mutation, Checkpoint() snapshots
    /// the structures, and construction recovers whatever the directory
    /// holds. Empty (the default) keeps the classic in-memory dataspace —
    /// no storage code runs at all.
    std::string storage_dir;
    storage::StorageOptions storage;
    /// Storage environment; nullptr means the real file system. Tests pass
    /// a MemEnv to run durability and crash scenarios hermetically.
    storage::Env* env = nullptr;
    /// Admission control in front of Query() (DESIGN.md §10): concurrency
    /// limit + bounded wait queue with load shedding. Disabled by default
    /// (max_concurrent == 0) — every query runs immediately, as before.
    AdmissionController::Options admission;
  };

  Dataspace() : Dataspace(Config()) {}
  explicit Dataspace(Config config);

  /// Constructs a dataspace and fails loudly when storage recovery fails
  /// (the plain constructor records the failure in storage_status()).
  static Result<std::unique_ptr<Dataspace>> Open(Config config);

  /// OK for in-memory dataspaces and after successful recovery; the
  /// recovery/open error otherwise (the dataspace then starts empty and
  /// NON-durable rather than silently double-applying history).
  const Status& storage_status() const { return storage_status_; }

  /// What recovery found (all zeros for in-memory dataspaces).
  const storage::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  storage::StorageEngine* storage_engine() { return engine_.get(); }

  /// Commits any staged batch and writes a new checkpoint generation.
  /// Fails with kFailedPrecondition when the dataspace is not durable.
  Status Checkpoint();

  /// Forces every committed batch to the platter (fsync), regardless of
  /// the configured fsync policy.
  Status SyncStorage();

  /// The simulated clock shared by all sources registered through this
  /// dataspace (timestamps, latency models, yesterday()).
  SimClock* clock() { return &clock_; }

  /// --- source registration (returns the initial-indexing stats) ----------
  Result<rvm::SourceIndexStats> AddFileSystem(
      const std::string& name, std::shared_ptr<vfs::VirtualFileSystem> fs,
      const std::string& root_path = "/");
  Result<rvm::SourceIndexStats> AddImap(
      const std::string& name, std::shared_ptr<email::ImapServer> server);
  Result<rvm::SourceIndexStats> AddRss(
      const std::string& name, std::shared_ptr<stream::FeedServer> server);
  Result<rvm::SourceIndexStats> AddRelational(
      const std::string& name, std::shared_ptr<rel::RelationalDb> db);
  Result<rvm::SourceIndexStats> AddSource(std::shared_ptr<rvm::DataSource> source);

  /// Re-attaches a source after a durable restart WITHOUT re-indexing it:
  /// the recovered catalog and indexes already describe it, so only the
  /// notification subscription is re-armed (drift is reconciled by the
  /// next sync().Poll()). This is what makes cold restart cheap compared
  /// to a full re-sync — bench_recovery measures exactly this gap.
  void AttachSource(std::shared_ptr<rvm::DataSource> source);

  /// --- querying -----------------------------------------------------------
  /// Per-query execution options. Default-constructed options reproduce
  /// the classic Query(iql) behavior exactly.
  struct QueryOptions {
    /// Resource limits for this query. When any limit is set, evaluation
    /// runs under an ExecContext on the dataspace clock; on overrun the
    /// query returns OK with meta.complete == false and a prefix partial
    /// result (see ResultMeta), and the result is not cached. All-zero
    /// limits (the default) run the ungoverned path, byte-identical to
    /// the two-argument overload.
    util::ExecContext::Limits limits;
    /// Skip the admission gate (internal / maintenance queries).
    bool bypass_admission = false;
  };

  /// Parses, normalizes and evaluates \p iql. Cacheable queries are served
  /// from / stored into the result cache at the current VersionLog epoch;
  /// a cache hit reports elapsed_micros = 0 (no evaluation ran).
  Result<QueryResult> Query(const std::string& iql) const;

  /// Query with governance: admission control first (kResourceExhausted on
  /// shed — retryable), then evaluation under the configured limits.
  Result<QueryResult> Query(const std::string& iql,
                            const QueryOptions& options) const;

  /// Cache observability (hits / misses / stale drops / evictions).
  QueryCache::Stats cache_stats() const { return cache_.stats(); }
  /// Admission gate observability (admitted / shed / running / queued).
  AdmissionController::Stats admission_stats() const {
    return admission_.stats();
  }
  /// Drops all cached results (the epoch key makes this unnecessary for
  /// correctness; useful for measurements).
  void ClearQueryCache() { cache_.Clear(); }

  /// Outcome of an update statement.
  struct UpdateResult {
    size_t deleted = 0;          ///< base items removed from their sources
    size_t views_removed = 0;    ///< views dropped from the indexes
    size_t skipped_derived = 0;  ///< derived views (no independent existence)
    size_t failed = 0;           ///< items the source refused to delete
  };

  /// Executes an iQL update statement. Currently supported:
  ///   delete <query>
  /// which removes every *base* item matched by <query> from its data
  /// source (write-through) and drops it — and everything derived from it —
  /// from catalog and indexes. Derived views matched by the query are
  /// skipped: they have no independent existence (delete the base item
  /// instead). This is the "support for updates" §5.1 announces for iQL.
  Result<UpdateResult> ExecuteUpdate(const std::string& statement);

  /// Uri of a result id (for display), and its stored name.
  const std::string& UriOf(index::DocId id) const;
  const std::string& NameOf(index::DocId id) const;

  /// --- plumbing access ----------------------------------------------------
  rvm::ReplicaIndexesModule& module() { return module_; }
  const rvm::ReplicaIndexesModule& module() const { return module_; }
  rvm::SynchronizationManager& sync() { return *sync_; }
  const core::ClassRegistry& classes() const { return classes_; }
  const QueryProcessor& processor() const { return *processor_; }

 private:
  /// Opens the engine, restores the newest checkpoint, replays the WAL
  /// suffix and attaches the engine to the module.
  Status InitStorage();

  Config config_;
  /// mutable: governed const Query() applies its simulated evaluation cost
  /// (ExecContext::charged_micros) to the clock after evaluating.
  mutable SimClock clock_;
  core::ClassRegistry classes_;
  rvm::ReplicaIndexesModule module_;
  std::unique_ptr<rvm::SynchronizationManager> sync_;
  std::unique_ptr<QueryProcessor> processor_;
  mutable QueryCache cache_;  ///< internally synchronized
  mutable AdmissionController admission_;  ///< internally synchronized
  std::unique_ptr<storage::StorageEngine> engine_;
  storage::RecoveryStats recovery_stats_;
  Status storage_status_;
};

}  // namespace idm::iql

#endif  // IDM_IQL_DATASPACE_H_
