// Version-epoch query result cache (DESIGN.md §8).
//
// Entries are keyed on the *normalized* query text (the parser round-trip:
// ToString(ParseQuery(q)), so whitespace/escape variants share one entry)
// and stamped with the VersionLog epoch they were computed at. Any catalog
// mutation appends to the VersionLog and thereby advances the epoch, which
// logically invalidates every cached entry at once — exact consistency
// with zero invalidation scanning. Stale entries are dropped lazily on
// lookup or by LRU eviction under the byte budget.
//
// Queries whose answer depends on the clock rather than the catalog
// (yesterday()/now() literals) must bypass the cache: IsCacheable().
//
// Footprint survival (DESIGN.md §14): entries may carry a dependency
// footprint. On an epoch-stale lookup the caller-supplied validator gets a
// chance to prove the intervening mutations could not have touched the
// entry's source set (fine-grained epochs + change-record scan); a proven
// entry is re-stamped to the current epoch and served as a hit
// (Stats::footprint_survived), instead of being dropped
// (Stats::stale_skipped). Global-footprint entries keep the classic
// whole-epoch behavior exactly.

#ifndef IDM_IQL_QUERY_CACHE_H_
#define IDM_IQL_QUERY_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "iql/ast.h"
#include "iql/query_processor.h"
#include "sub/footprint.h"

namespace idm::iql {

/// True when \p query's result is a pure function of the dataspace state —
/// i.e. it contains no yesterday()/now() literal whose value changes with
/// the clock alone (no epoch bump).
bool IsCacheable(const Query& query);

/// Thread-safe LRU cache of QueryResults keyed on (normalized text, epoch).
class QueryCache {
 public:
  struct Options {
    bool enabled = true;
    size_t max_bytes = 8U << 20;  ///< LRU byte budget over cached results
    /// Largest fraction of max_bytes one entry may occupy. A single huge
    /// result would otherwise evict the whole working set for one entry
    /// that is unlikely to amortize; such results are rejected and counted
    /// in Stats::oversized. Values >= 1.0 restore the old behavior (any
    /// result up to the full budget).
    double max_entry_fraction = 0.5;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;       ///< includes epoch-stale lookups
    uint64_t stale_drops = 0;  ///< entries invalidated by an epoch advance
    /// The epoch-stale split (stale_drops == stale_skipped; kept apart so
    /// the survival rate reads directly): entries actually dropped, vs.
    /// entries whose footprint proved the epoch advance irrelevant and
    /// that were re-stamped and served (counted under hits too).
    uint64_t stale_skipped = 0;
    uint64_t footprint_survived = 0;
    uint64_t evictions = 0;    ///< entries evicted by the byte budget
    uint64_t oversized = 0;    ///< inserts rejected by max_entry_fraction
    size_t entries = 0;
    size_t bytes = 0;
    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
    /// Of the epoch-stale lookups, the fraction saved by footprints.
    double survival_rate() const {
      uint64_t total = footprint_survived + stale_skipped;
      return total == 0 ? 0.0
                        : static_cast<double>(footprint_survived) / total;
    }
  };

  /// Proves (true) or declines to prove (false) that a cached entry with
  /// \p footprint, stored at \p entry_epoch, is still exact at the current
  /// epoch. Called under the cache lock — must not re-enter the cache.
  using Validator =
      std::function<bool(const sub::Footprint& footprint,
                         uint64_t entry_epoch)>;

  QueryCache() = default;
  explicit QueryCache(Options options) : options_(options) {}

  bool enabled() const { return options_.enabled; }

  /// Returns the cached result for \p normalized computed at \p epoch, or
  /// nullopt. An entry stored at an older epoch is offered to \p validator
  /// (when given): survival re-stamps it to \p epoch and serves it as a
  /// hit; otherwise it is dropped (stale) and reported as a miss.
  std::optional<QueryResult> Lookup(const std::string& normalized,
                                    uint64_t epoch,
                                    const Validator& validator = nullptr);

  /// Stores \p result for \p normalized at \p epoch and evicts LRU entries
  /// beyond the byte budget. Results larger than max_entry_fraction of the
  /// budget are not cached (Stats::oversized); incomplete (governed
  /// partial) results are never cached — a later ungoverned run must not
  /// be answered with a prefix. No-op when disabled. \p footprint (default:
  /// global) controls how the entry weathers later epoch advances.
  void Insert(const std::string& normalized, uint64_t epoch,
              const QueryResult& result, sub::Footprint footprint = {});

  Stats stats() const;
  void Clear();

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    size_t bytes = 0;
    QueryResult result;
    sub::Footprint footprint;  ///< default kGlobal: classic epoch behavior
  };
  using LruList = std::list<Entry>;

  static size_t ResultBytes(const std::string& key, const QueryResult& result);
  void EvictLocked();  // requires mu_

  Options options_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace idm::iql

#endif  // IDM_IQL_QUERY_CACHE_H_
