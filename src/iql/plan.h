// Compiled query plans (DESIGN.md §16): the physical form the Planner
// lowers an optimized logical query into, and the program the VM executes.
//
// A PlanProgram is a flat array of fixed-width PlanOps over virtual
// registers, each register holding one batch of sorted candidate view ids.
// Strings (phrases, name patterns, attributes) and comparison literals are
// interned into per-program pools; sub-queries that the interpreter would
// evaluate recursively (set-operator arms, join inputs, parallel and/or
// arms) become nested sub-programs referenced by index. Lowering is
// deterministic, so a program doubles as the query's *canonical* identity:
// CanonicalQueryKey() flattens and sorts commutative operands (and/or
// chains, union/intersect arms, except subtrahends), and its FNV-1a hash
// is the plan fingerprint the QueryCache and Explain() report — two
// spellings of the same conjunction share one cache entry (§10).
//
// The bytecode is an execution recipe, not a serialization format: ops
// hold indexes into the owning program only and programs never outlive
// the QueryProcessor that planned them.

#ifndef IDM_IQL_PLAN_H_
#define IDM_IQL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"
#include "iql/ast.h"

namespace idm::iql {

/// One bytecode operator. Register operands are indexes into the executing
/// program's register file; `str`, `aux` index the program's interned
/// pools (their meaning is per-opcode, see the enum comments).
enum class OpCode : uint8_t {
  kLoadLive,      ///< r[dst] = all live view ids (shared, not copied)
  kRootChildren,  ///< r[dst] = direct children of the parentless views
  kNameMatch,     ///< r[dst] = NameMatches(strings[str])  (R2 or ablation scan)
  kPhrase,        ///< r[dst] = content phrase strings[str] ∩ r[a]  (R1)
  kTupleScan,     ///< r[dst] = tuple scan ∩ r[a]  (R3); str = attribute,
                  ///< aux = literal index, flags = CompareOp | LiteralKind<<4
  kClassFilter,   ///< r[dst] = {id in r[a] : class conforms to strings[str]}
  kIntersect,     ///< r[dst] = r[a] ∩ r[b]
  kUnion,         ///< r[dst] = r[a] ∪ r[b]
  kDifference,    ///< r[dst] = r[a] \ r[b]
  kMove,          ///< r[dst] = r[a]
  kJumpIfEmpty,   ///< if r[a] is empty, continue at ops[aux]
  kParGroup,      ///< r[dst] = parallel and/or of subs[aux, aux+b) over r[a];
                  ///< flags: 0 = and, 1 = or
  kStepChild,     ///< r[dst] = (children of frontier r[a]) ∩ name set r[b]
  kExpand,        ///< r[dst] = descendant step: frontier r[a], names r[b]
                  ///< (R4 forward / R6 backward chosen at run time)
  kSetOp,         ///< r[dst] = fold of subs[aux, aux+b);
                  ///< flags: 0 = union, 1 = intersect, 2 = except
  kJoin,          ///< hash join per the program's JoinInfo (R5); writes the
                  ///< two-column result directly
  kMaterialize,   ///< result rows = r[a]; flags bit 0: governed root
                  ///< materialization (§10 prefix capture)
  kRankOrClear,   ///< tf-idf rank the result via the program's rank phrases,
                  ///< or clear it when the family is doomed (§10)
};

struct PlanOp {
  OpCode code;
  uint8_t flags = 0;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint32_t str = 0;
  uint32_t aux = 0;
};

struct PlanProgram;

/// Lowered join(left as A, right as B, A.x = B.y).
struct JoinInfo {
  std::unique_ptr<PlanProgram> left;
  std::unique_ptr<PlanProgram> right;
  std::string left_binding;
  std::string right_binding;
  JoinRef left_ref;
  JoinRef right_ref;
};

/// One compiled (sub-)program. Query-flavored programs produce a full
/// QueryResult (they end in kMaterialize / kRankOrClear / kJoin);
/// pred-flavored programs are parallel and/or arms: the executor seeds
/// r[0] with the universe and reads the id batch from out_reg.
struct PlanProgram {
  enum class Flavor { kQuery, kPred };

  Flavor flavor = Flavor::kQuery;
  Query::Kind kind = Query::Kind::kFilter;
  std::vector<PlanOp> ops;
  uint16_t num_regs = 0;
  uint16_t out_reg = 0;

  std::vector<std::string> strings;    ///< interned patterns/phrases/attrs
  std::vector<core::Value> literals;   ///< kTupleScan comparison operands

  /// Ranking metadata (§5.1): the filter's phrases in predicate-tree order
  /// and whether the query is a pure keyword query. Set on query-flavored
  /// filter programs only.
  std::vector<std::string> rank_phrases;
  bool rankable = false;

  std::vector<std::unique_ptr<PlanProgram>> subs;
  std::unique_ptr<JoinInfo> join;  ///< kind == kJoin only

  // Root-program identity (unset on sub-programs).
  std::string normalized;  ///< ToString of the source query
  std::string cache_key;   ///< canonical plan key (CanonicalQueryKey)
  uint64_t fingerprint = 0;  ///< FNV-1a 64 of cache_key
};

/// Canonical identity of \p query under plan equivalence: commutative
/// operands (and/or conjuncts, union/intersect arms, except subtrahends)
/// are flattened and sorted, everything else renders as ToString. Two
/// queries with equal keys produce identical complete results (rows,
/// columns and scores; diagnostics such as probe counts may differ).
std::string CanonicalQueryKey(const Query& query);

/// FNV-1a 64-bit hash — the displayed plan fingerprint.
uint64_t Fingerprint64(const std::string& key);

/// Stable, golden-testable rendering of a compiled program (Explain()).
/// Contains no pointers, sizes or timings — only the lowered structure.
std::string ExplainProgram(const PlanProgram& program);

}  // namespace idm::iql

#endif  // IDM_IQL_PLAN_H_
