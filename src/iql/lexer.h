// iQL lexer (paper §5.1). The language extends IR keyword search: quoted
// phrases, boolean connectives, bracketed attribute predicates, path steps
// with '*'/'?' wildcards, date literals (@12.06.2005), and the union/join
// constructs of Table 4.

#ifndef IDM_IQL_LEXER_H_
#define IDM_IQL_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace idm::iql {

enum class TokenType {
  kString,      // "Donald Knuth"
  kNumber,      // 42000
  kDate,        // @12.06.2005
  kIdent,       // size, VLDB200?, *.tex, A.name, yesterday
  kSlashSlash,  // //
  kSlash,       // /
  kLBracket,    // [
  kRBracket,    // ]
  kLParen,      // (
  kRParen,      // )
  kComma,       // ,
  kEq,          // =
  kNe,          // !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kAnd,         // and (case-insensitive)
  kOr,          // or
  kNot,         // not
  kUnion,       // union
  kJoin,        // join
  kAs,          // as
  kEnd,         // end of input
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // raw text (string contents unquoted)
  int64_t number = 0;   // kNumber
  size_t offset = 0;    // byte offset in the query, for error messages
};

/// Tokenizes \p query. Fails with ParseError on unterminated strings or
/// stray characters.
Result<std::vector<Token>> Lex(const std::string& query);

/// Name of a token type for diagnostics.
const char* TokenTypeName(TokenType type);

}  // namespace idm::iql

#endif  // IDM_IQL_LEXER_H_
