// Per-query execution options and result metadata — the shared vocabulary
// of the single options-driven query entry point (Dataspace::Query and
// Federation::Query both consume QueryOptions; every result carries a
// ResultMeta). Split out of dataspace.h / query_processor.h so the facade
// and the federation agree on one definition.

#ifndef IDM_IQL_QUERY_OPTIONS_H_
#define IDM_IQL_QUERY_OPTIONS_H_

#include <cstdint>
#include <string>

#include "util/clock.h"
#include "util/exec_context.h"

namespace idm::iql {

/// Which node of a replicated shard group may serve a read (DESIGN.md §12).
/// Meaningful when querying through a cluster::Cluster router; a standalone
/// Dataspace is its own primary and treats both modes identically.
enum class ReadMode {
  kLinearizable,  ///< primary only — never observes a stale epoch; degrades
                  ///< (per the partial-result contract) while a shard has no
                  ///< primary during failover
  kStaleOk,       ///< any replica — may lag the primary; the lag is reported
                  ///< in ResultMeta::staleness_epochs
};

/// Per-query execution options. Default-constructed options reproduce the
/// classic un-governed Query(iql) behavior exactly.
struct QueryOptions {
  /// Resource limits for this query. When any limit is set, evaluation
  /// runs under an ExecContext on the dataspace clock; on overrun the
  /// query returns OK with meta.complete == false and a prefix partial
  /// result (see ResultMeta), and the result is not cached. All-zero
  /// limits (the default) run the ungoverned path.
  util::ExecContext::Limits limits;
  /// Skip the admission gate (internal / maintenance queries).
  bool bypass_admission = false;
  /// Replica selection when the query is routed through a cluster; a
  /// standalone Dataspace ignores this field.
  ReadMode read_mode = ReadMode::kLinearizable;
};

/// Governance outcome of one evaluation (DESIGN.md §10). When a query runs
/// under an ExecContext that overruns (deadline, steps, memory,
/// cancellation), the evaluation stops cooperatively and returns an *OK*
/// result with complete == false instead of an error: partial answers are
/// answers. The partial-result contract: `rows` is then a prefix of the
/// serial-order complete result (possibly empty — ranked and join results
/// degrade to empty, because their output order is not a materialization
/// order). Incomplete results are never admitted into the QueryCache.
struct ResultMeta {
  bool complete = true;         ///< false iff governance stopped the query
  std::string degraded_reason;  ///< doom status text when !complete
  uint64_t steps_used = 0;      ///< evaluation steps counted by the context
  size_t bytes_peak = 0;        ///< memory budget high-water mark (bytes)
  /// Replica lag of the most-stale node that served part of this result, in
  /// VersionLog epochs behind its shard's best-known epoch. Always 0 for
  /// ReadMode::kLinearizable and for standalone dataspaces.
  uint64_t staleness_epochs = 0;
};

}  // namespace idm::iql

#endif  // IDM_IQL_QUERY_OPTIONS_H_
