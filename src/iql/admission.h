// Query admission control (DESIGN.md §10): a concurrency limit with a
// bounded wait queue in front of Dataspace::Query. Under overload the
// dataspace stays responsive for the queries it *does* admit by refusing
// the rest quickly (load shedding) instead of letting every request pile
// onto the same indexes: a request past the concurrency limit waits in a
// bounded FIFO queue for at most queue_timeout_micros of wall-clock time,
// and is rejected with kResourceExhausted (retryable — see IsRetryable)
// when the queue is full or the wait times out.

#ifndef IDM_IQL_ADMISSION_H_
#define IDM_IQL_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/result.h"

namespace idm::iql {

/// Counting-semaphore admission gate. Thread-safe; disabled by default.
class AdmissionController {
 public:
  struct Options {
    /// Queries evaluating at once. 0 disables admission control entirely
    /// (every Admit() succeeds immediately).
    size_t max_concurrent = 0;
    /// Requests allowed to wait for a slot; arrivals beyond this are shed
    /// immediately (queue full).
    size_t max_queue = 0;
    /// Longest wall-clock wait for a slot before a queued request is shed.
    /// 0 = shed immediately when no slot is free.
    int64_t queue_timeout_micros = 0;
  };

  struct Stats {
    uint64_t admitted = 0;         ///< tickets granted
    uint64_t shed_queue_full = 0;  ///< rejected: wait queue at max_queue
    uint64_t shed_timeout = 0;     ///< rejected: slot wait timed out
    size_t running = 0;            ///< tickets currently held
    size_t queued = 0;             ///< requests currently waiting
    uint64_t queue_wait_micros = 0;  ///< total wall time spent queued
  };

  /// RAII admission slot; releasing it wakes one queued waiter.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    void Release() {
      if (controller_ != nullptr) controller_->ReleaseSlot();
      controller_ = nullptr;
    }
    AdmissionController* controller_ = nullptr;
  };

  AdmissionController() = default;
  explicit AdmissionController(Options options) : options_(options) {}

  bool enabled() const { return options_.max_concurrent > 0; }

  /// Blocks until a slot is free (at most queue_timeout_micros), the queue
  /// is full (immediate), or the controller is disabled (immediate OK).
  /// Rejections carry kResourceExhausted. When \p waited_micros is
  /// non-null it receives the wall time this request spent queued (0 when
  /// admitted or shed without waiting).
  Result<Ticket> Admit(int64_t* waited_micros = nullptr);

  Stats stats() const;

 private:
  void ReleaseSlot();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t running_ = 0;  // guarded by mu_
  size_t queued_ = 0;   // guarded by mu_
  Stats stats_;         // counters guarded by mu_
};

}  // namespace idm::iql

#endif  // IDM_IQL_ADMISSION_H_
