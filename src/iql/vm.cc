#include "iql/vm.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "index/analyzer.h"
#include "util/string_util.h"

namespace idm::iql {

using index::DocId;

namespace {

/// One register: a shared, immutable batch of sorted view ids. Ops that
/// forward a batch (kMove, kLoadLive) share the pointer; ops that compute
/// allocate a fresh batch.
using Batch = std::shared_ptr<const std::vector<DocId>>;

Batch MakeBatch(std::vector<DocId> ids) {
  return std::make_shared<const std::vector<DocId>>(std::move(ids));
}

const Batch& EmptyBatch() {
  static const Batch empty = std::make_shared<const std::vector<DocId>>();
  return empty;
}

std::vector<DocId> Intersect(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<DocId> UnionSets(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Difference(const std::vector<DocId>& a,
                              const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// Live-id cache shared between a run and its parallel children, exactly
/// like the interpreter's (computed at most once per query).
struct LiveCache {
  std::once_flag once;
  Batch ids;
};

/// Mutable per-run state, the VM's analogue of one Evaluation object:
/// rule firings, probe counts and expansion work accumulate here and
/// parallel children get their own copies that the parent absorbs back in
/// input order.
struct VmState {
  const rvm::ReplicaIndexesModule& module;
  const core::ClassRegistry& classes;
  Clock* clock;
  const QueryProcessor::Options& options;
  util::ThreadPool* pool;
  LiveCache* live;
  util::ExecContext* ctx = nullptr;
  std::unique_ptr<util::ExecContext> ctx_owned;
  obs::TraceSpan* span = nullptr;
  size_t expanded = 0;
  index::ProbeCounts probes;
  std::set<std::string> rules;

  VmState(const Vm::Env& env, LiveCache* live_cache, util::ExecContext* c,
          obs::TraceSpan* s)
      : module(*env.module),
        classes(*env.classes),
        clock(env.clock),
        options(*env.options),
        pool(env.pool),
        live(live_cache),
        ctx(c),
        span(s) {}

  /// Child state for a parallel arm: shares the pool and live cache, runs
  /// under a Child() context (first overrun dooms the family), accumulates
  /// its own statistics for input-order absorption.
  VmState(VmState& parent, obs::TraceSpan* arm_span)
      : module(parent.module),
        classes(parent.classes),
        clock(parent.clock),
        options(parent.options),
        pool(parent.pool),
        live(parent.live),
        span(arm_span) {
    if (parent.ctx != nullptr) {
      ctx_owned = parent.ctx->Child();
      ctx = ctx_owned.get();
    }
  }

  bool Parallel() const { return pool != nullptr && pool->size() > 0; }
  size_t FanWays() const { return Parallel() ? pool->size() + 1 : 1; }

  void Absorb(VmState& child) {
    expanded += child.expanded;
    probes.Merge(child.probes);
    rules.insert(child.rules.begin(), child.rules.end());
  }

  const std::vector<DocId>& AllLive() {
    std::call_once(live->once, [this] {
      live->ids = std::make_shared<const std::vector<DocId>>(
          module.catalog().LiveIds());
    });
    return *live->ids;
  }
  Batch AllLiveBatch() {
    AllLive();
    return live->ids;
  }

  bool ClassMatches(const std::string& cls, const std::string& wanted) {
    if (cls == wanted) return true;
    return classes.IsSubclassOf(cls, wanted);
  }

  template <typename Fn>
  std::vector<DocId> ChunkedConcat(size_t n, Fn fn) {
    auto ranges = util::ChunkRanges(n, FanWays(), options.min_parallel_chunk);
    if (!Parallel() || ranges.size() <= 1) return fn(0, n);
    auto parts = util::OrderedParallelMap<std::vector<DocId>>(
        pool, ranges.size(),
        [&](size_t i) { return fn(ranges[i].first, ranges[i].second); });
    std::vector<DocId> out;
    for (auto& part : parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }
};

/// Redirects the state's span into a named child for the enclosing scope
/// (the interpreter's SpanScope).
struct SpanScope {
  SpanScope(VmState* st, const char* name) : st_(st), saved_(st->span) {
    span_ = saved_ == nullptr ? nullptr : saved_->AddChild(name);
    if (span_ != nullptr) st_->span = span_;
  }
  ~SpanScope() {
    if (span_ != nullptr) span_->End();
    st_->span = saved_;
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  obs::TraceSpan* get() const { return span_; }
  explicit operator bool() const { return span_ != nullptr; }

 private:
  VmState* st_;
  obs::TraceSpan* saved_;
  obs::TraceSpan* span_ = nullptr;
};

Result<QueryResult> RunQueryProgram(VmState& st, const PlanProgram& program);

Result<Batch> RunPredProgram(VmState& st, const PlanProgram& program,
                             const Batch& universe);

Batch NameMatch(VmState& st, const std::string& pattern) {
  if (pattern.empty() || pattern == "*") return st.AllLiveBatch();
  if (st.options.use_name_index) {
    st.rules.insert("R2:name-index");
    ++st.probes.name_lookups;
    obs::ScopedSpan probe_span(st.span, "index.name.lookup");
    std::vector<DocId> ids = st.module.names().LookupPattern(pattern);
    if (probe_span) {
      probe_span.get()->SetAttr("pattern", pattern);
      probe_span.get()->SetAttr("matches", static_cast<int64_t>(ids.size()));
    }
    return MakeBatch(std::move(ids));
  }
  const std::vector<DocId>& live = st.AllLive();
  return MakeBatch(st.ChunkedConcat(live.size(), [&](size_t begin,
                                                     size_t end) {
    std::vector<DocId> out;
    for (size_t i = begin; i < end; ++i) {
      if (st.ctx != nullptr && !st.ctx->TickAlive()) break;
      if (WildcardMatch(pattern, st.module.names().NameOf(live[i]))) {
        out.push_back(live[i]);
      }
    }
    return out;
  }));
}

core::Value ResolveLiteral(const VmState& st, const PlanProgram& program,
                           const PlanOp& op) {
  switch (static_cast<PredNode::LiteralKind>(op.flags >> 4)) {
    case PredNode::LiteralKind::kValue:
      return program.literals[op.aux];
    case PredNode::LiteralKind::kYesterday:
      return core::Value::Date(st.clock->NowMicros() - 86400LL * 1000000);
    case PredNode::LiteralKind::kNow:
      return core::Value::Date(st.clock->NowMicros());
  }
  return program.literals[op.aux];
}

/// Parallel and/or group: the interpreter's EvalChildrenParallel plus its
/// input-order fold (including the AND fold's short-circuit, which skips
/// absorbing the remaining children's statistics once the accumulator
/// empties — diagnostics must match the interpreter's, not just rows).
Result<Batch> ExecParGroup(VmState& st, const PlanProgram& program,
                           const PlanOp& op, const Batch& universe) {
  const size_t n = op.b;
  std::vector<obs::TraceSpan*> arm_spans(n, nullptr);
  if (st.span != nullptr) {
    for (auto& arm_span : arm_spans) arm_span = st.span->AddChild("pred");
  }
  struct ChildOut {
    Result<Batch> ids;
    std::unique_ptr<VmState> state;
  };
  auto outs = util::OrderedParallelMap<ChildOut>(st.pool, n, [&](size_t i) {
    auto child = std::make_unique<VmState>(st, arm_spans[i]);
    Result<Batch> ids =
        RunPredProgram(*child, *program.subs[op.aux + i], universe);
    if (arm_spans[i] != nullptr) arm_spans[i]->End();
    return ChildOut{std::move(ids), std::move(child)};
  });
  if (op.flags == 0) {  // and
    std::vector<DocId> acc = *universe;
    for (size_t i = 0; i < outs.size(); ++i) {
      if (i > 0 && acc.empty()) break;
      if (!outs[i].ids.ok()) return outs[i].ids.status();
      st.Absorb(*outs[i].state);
      acc = Intersect(acc, **outs[i].ids);
    }
    return MakeBatch(std::move(acc));
  }
  std::vector<DocId> acc;  // or
  for (auto& out : outs) {
    if (!out.ids.ok()) return out.ids.status();
    st.Absorb(*out.state);
    acc = UnionSets(acc, **out.ids);
  }
  return MakeBatch(std::move(acc));
}

/// Descendant step (the interpreter's R4/R6 branch of EvalPath).
Batch ExecExpand(VmState& st, const Batch& frontier_b, const Batch& names_b) {
  const std::vector<DocId>& frontier = *frontier_b;
  const std::vector<DocId>& name_set = *names_b;
  bool backward;
  switch (st.options.expansion) {
    case QueryProcessor::Expansion::kForward: backward = false; break;
    case QueryProcessor::Expansion::kBackward: backward = true; break;
    case QueryProcessor::Expansion::kAuto:
    default:
      backward = name_set.size() * 16 < frontier.size();
      break;
  }
  std::vector<DocId> matched;
  if (backward) {
    st.rules.insert("R6:backward-expansion");
    st.probes.graph_walks += name_set.size();
    SpanScope expand_scope(&st, "expand.backward");
    if (expand_scope) {
      expand_scope.get()->SetAttr("candidates",
                                  static_cast<int64_t>(name_set.size()));
    }
    std::unordered_set<DocId> sources(frontier.begin(), frontier.end());
    auto ranges = util::ChunkRanges(name_set.size(), st.FanWays(),
                                    st.options.min_parallel_chunk);
    struct ChunkOut {
      std::vector<DocId> matched;
      size_t expanded = 0;
    };
    auto probe = [&](size_t begin, size_t end) {
      ChunkOut out;
      for (size_t c = begin; c < end; ++c) {
        if (st.ctx != nullptr && st.ctx->doomed()) break;
        if (st.module.groups().ReachedFromAny(name_set[c], sources,
                                              st.options.max_expansion,
                                              &out.expanded, st.ctx)) {
          out.matched.push_back(name_set[c]);
        }
      }
      return out;
    };
    if (st.Parallel() && ranges.size() > 1) {
      auto parts = util::OrderedParallelMap<ChunkOut>(
          st.pool, ranges.size(), [&](size_t c) {
            return probe(ranges[c].first, ranges[c].second);
          });
      for (ChunkOut& part : parts) {
        matched.insert(matched.end(), part.matched.begin(),
                       part.matched.end());
        st.expanded += part.expanded;
      }
    } else {
      ChunkOut all = probe(0, name_set.size());
      matched = std::move(all.matched);
      st.expanded += all.expanded;
    }
  } else {
    st.rules.insert("R4:forward-expansion");
    ++st.probes.graph_walks;
    SpanScope expand_scope(&st, "expand.forward");
    size_t expanded = 0;
    std::unordered_set<DocId> descendants = st.module.groups().Descendants(
        frontier, st.options.max_expansion, &expanded, st.ctx);
    st.expanded += expanded;
    if (expand_scope) {
      expand_scope.get()->SetAttr("expanded", static_cast<int64_t>(expanded));
    }
    util::ScopedCharge descendants_charge(st.ctx);
    if (!descendants_charge.Add(descendants.size() * sizeof(DocId)).ok()) {
      descendants.clear();
    }
    matched = st.ChunkedConcat(name_set.size(), [&](size_t b, size_t e) {
      std::vector<DocId> out;
      for (size_t c = b; c < e; ++c) {
        if (st.ctx != nullptr && !st.ctx->TickAlive()) break;
        if (descendants.count(name_set[c]) > 0) out.push_back(name_set[c]);
      }
      return out;
    });
  }
  return MakeBatch(std::move(matched));
}

/// Child step ('/'): children of the frontier intersected with the name
/// match set.
Batch ExecStepChild(VmState& st, const Batch& frontier_b,
                    const Batch& names_b) {
  const std::vector<DocId>& frontier = *frontier_b;
  std::vector<DocId> children =
      st.ChunkedConcat(frontier.size(), [&](size_t b, size_t e) {
        std::vector<DocId> out;
        for (size_t c = b; c < e; ++c) {
          if (st.ctx != nullptr && !st.ctx->TickAlive()) break;
          const auto& ch = st.module.groups().Children(frontier[c]);
          out.insert(out.end(), ch.begin(), ch.end());
        }
        return out;
      });
  st.expanded += frontier.size();
  std::sort(children.begin(), children.end());
  children.erase(std::unique(children.begin(), children.end()),
                 children.end());
  return MakeBatch(Intersect(children, *names_b));
}

/// union/intersect/except fold over the sub-programs (the interpreter's
/// EvalSetOp: parallel arms in child states, serial arms on this state).
Result<Batch> ExecSetOp(VmState& st, const PlanProgram& program,
                        const PlanOp& op) {
  struct ArmOut {
    Result<QueryResult> result;
    std::unique_ptr<VmState> state;  ///< null when run in place
  };
  const size_t n = op.b;
  std::vector<ArmOut> arms;
  arms.reserve(n);
  if (st.Parallel() && n > 1) {
    std::vector<obs::TraceSpan*> arm_spans(n, nullptr);
    if (st.span != nullptr) {
      for (auto& arm_span : arm_spans) arm_span = st.span->AddChild("arm");
    }
    arms = util::OrderedParallelMap<ArmOut>(st.pool, n, [&](size_t i) {
      auto state = std::make_unique<VmState>(st, arm_spans[i]);
      Result<QueryResult> sub =
          RunQueryProgram(*state, *program.subs[op.aux + i]);
      if (arm_spans[i] != nullptr) arm_spans[i]->End();
      return ArmOut{std::move(sub), std::move(state)};
    });
  } else {
    for (size_t i = 0; i < n; ++i) {
      SpanScope arm_scope(&st, "arm");
      arms.push_back(ArmOut{RunQueryProgram(st, *program.subs[op.aux + i]),
                            nullptr});
      if (!arms.back().result.ok()) break;  // serial early-out
    }
  }

  std::vector<DocId> acc;
  bool first = true;
  for (ArmOut& arm : arms) {
    if (!arm.result.ok()) return arm.result.status();
    if (arm.state != nullptr) st.Absorb(*arm.state);
    QueryResult& sub = *arm.result;
    if (sub.columns.size() != 1) {
      return Status::Unimplemented("set operators over join results");
    }
    std::vector<DocId> ids;
    ids.reserve(sub.rows.size());
    for (const auto& row : sub.rows) ids.push_back(row[0]);
    std::sort(ids.begin(), ids.end());
    if (first) {
      acc = std::move(ids);
      first = false;
    } else if (op.flags == 0) {
      acc = UnionSets(acc, ids);
    } else if (op.flags == 1) {
      acc = Intersect(acc, ids);
    } else {
      acc = Difference(acc, ids);
    }
  }
  return MakeBatch(std::move(acc));
}

Result<std::optional<std::string>> JoinKey(VmState& st, DocId id,
                                           const JoinRef& ref) {
  switch (ref.field) {
    case JoinRef::Field::kName: {
      const std::string& name = st.module.names().NameOf(id);
      if (name.empty()) return std::optional<std::string>();
      return std::optional<std::string>(ToLower(name));
    }
    case JoinRef::Field::kClass: {
      const index::CatalogEntry* entry = st.module.catalog().Entry(id);
      if (entry == nullptr || entry->class_name.empty()) {
        return std::optional<std::string>();
      }
      return std::optional<std::string>(entry->class_name);
    }
    case JoinRef::Field::kTupleAttr: {
      auto value = st.module.tuples().TupleOf(id).Get(ref.attribute);
      if (!value.has_value() || value->is_null()) {
        return std::optional<std::string>();
      }
      return std::optional<std::string>(ToLower(value->ToString()));
    }
    case JoinRef::Field::kContent:
      return Status::Unimplemented("joins on content components");
  }
  return std::optional<std::string>();
}

/// Hash join (R5), the interpreter's EvalJoin including its doom handling.
Status ExecJoin(VmState& st, const PlanProgram& program, QueryResult* result) {
  const JoinInfo& join = *program.join;
  QueryResult left, right;
  if (st.Parallel()) {
    obs::TraceSpan* left_span =
        st.span == nullptr ? nullptr : st.span->AddChild("join.left");
    obs::TraceSpan* right_span =
        st.span == nullptr ? nullptr : st.span->AddChild("join.right");
    VmState left_state(st, left_span), right_state(st, right_span);
    std::optional<Result<QueryResult>> left_res, right_res;
    util::ThreadPool::RunAll(
        st.pool, {[&] {
                    left_res.emplace(RunQueryProgram(left_state, *join.left));
                    if (left_span != nullptr) left_span->End();
                  },
                  [&] {
                    right_res.emplace(
                        RunQueryProgram(right_state, *join.right));
                    if (right_span != nullptr) right_span->End();
                  }});
    if (!left_res->ok()) return left_res->status();
    if (!right_res->ok()) return right_res->status();
    st.Absorb(left_state);
    st.Absorb(right_state);
    left = std::move(**left_res);
    right = std::move(**right_res);
  } else {
    {
      SpanScope left_scope(&st, "join.left");
      IDM_ASSIGN_OR_RETURN(left, RunQueryProgram(st, *join.left));
    }
    {
      SpanScope right_scope(&st, "join.right");
      IDM_ASSIGN_OR_RETURN(right, RunQueryProgram(st, *join.right));
    }
  }
  if (left.columns.size() != 1 || right.columns.size() != 1) {
    return Status::Unimplemented("nested join inputs must be unary");
  }
  result->columns = {join.left_binding, join.right_binding};

  st.rules.insert("R5:hash-join");
  bool left_is_build = left.rows.size() <= right.rows.size();
  const QueryResult& build = left_is_build ? left : right;
  const QueryResult& probe = left_is_build ? right : left;
  const JoinRef& build_ref = left_is_build ? join.left_ref : join.right_ref;
  const JoinRef& probe_ref = left_is_build ? join.right_ref : join.left_ref;

  std::unordered_map<std::string, std::vector<DocId>> table;
  util::ScopedCharge table_charge(st.ctx);
  for (const auto& row : build.rows) {
    if (st.ctx != nullptr && !st.ctx->TickAlive()) break;
    IDM_ASSIGN_OR_RETURN(std::optional<std::string> key,
                         JoinKey(st, row[0], build_ref));
    if (!key.has_value()) continue;
    if (!table_charge.Add(key->size() + sizeof(DocId)).ok()) break;
    table[*key].push_back(row[0]);
  }

  struct ProbeOut {
    std::vector<std::vector<DocId>> rows;
    size_t matches = 0;
    Status error;
  };
  auto probe_chunk = [&](size_t begin, size_t end) {
    ProbeOut out;
    for (size_t r = begin; r < end; ++r) {
      if (st.ctx != nullptr && !st.ctx->TickAlive()) break;
      const auto& row = probe.rows[r];
      Result<std::optional<std::string>> key = JoinKey(st, row[0], probe_ref);
      if (!key.ok()) {
        out.error = key.status();
        return out;
      }
      if (!key->has_value()) continue;
      auto it = table.find(**key);
      if (it == table.end()) continue;
      for (DocId match : it->second) {
        ++out.matches;
        if (left_is_build) {
          out.rows.push_back({match, row[0]});
        } else {
          out.rows.push_back({row[0], match});
        }
      }
    }
    return out;
  };
  SpanScope probe_scope(&st, "join.probe");
  if (probe_scope) {
    probe_scope.get()->SetAttr("build_rows",
                               static_cast<int64_t>(build.rows.size()));
    probe_scope.get()->SetAttr("probe_rows",
                               static_cast<int64_t>(probe.rows.size()));
  }
  auto ranges = util::ChunkRanges(probe.rows.size(), st.FanWays(),
                                  st.options.min_parallel_chunk);
  std::vector<ProbeOut> parts;
  if (st.Parallel() && ranges.size() > 1) {
    parts =
        util::OrderedParallelMap<ProbeOut>(st.pool, ranges.size(), [&](size_t c) {
          return probe_chunk(ranges[c].first, ranges[c].second);
        });
  } else if (!probe.rows.empty()) {
    parts.push_back(probe_chunk(0, probe.rows.size()));
  }
  for (ProbeOut& part : parts) {
    if (!part.error.ok()) return part.error;
    st.expanded += part.matches;
    result->rows.insert(result->rows.end(),
                        std::make_move_iterator(part.rows.begin()),
                        std::make_move_iterator(part.rows.end()));
  }
  std::sort(result->rows.begin(), result->rows.end());
  // Join output is sorted after the probe: truncation is not a prefix, so
  // a doomed family degrades to the empty prefix (§10).
  if (st.ctx != nullptr && st.ctx->doomed()) {
    result->rows.clear();
    result->scores.clear();
  }
  return Status::OK();
}

/// tf-idf ranking (§5.1), the interpreter's RankIfKeywordQuery over the
/// program's precollected phrases.
void RankRows(VmState& st, const PlanProgram& program, QueryResult* result) {
  if (!program.rankable || program.rank_phrases.empty() ||
      result->rows.empty()) {
    return;
  }
  std::unordered_map<DocId, double> score;
  score.reserve(result->rows.size());
  for (const auto& row : result->rows) score.emplace(row[0], 0.0);

  const double n_docs =
      static_cast<double>(std::max<size_t>(st.module.content().doc_count(), 1));
  for (const std::string& phrase : program.rank_phrases) {
    for (const std::string& term : index::PhraseTerms(phrase)) {
      size_t df = st.module.content().DocumentFrequency(term);
      if (df == 0) continue;
      double idf = std::log(1.0 + n_docs / static_cast<double>(df));
      // Same pairs as TermQueryWithTf, without re-skipping position
      // varints (ranking never ticks, so no governed counterpart needed).
      for (const auto& [doc, tf] : st.module.content().TermTfDocs(term)) {
        auto it = score.find(doc);
        if (it != score.end()) it->second += tf * idf;
      }
    }
  }
  std::sort(result->rows.begin(), result->rows.end(),
            [&score](const std::vector<DocId>& a, const std::vector<DocId>& b) {
              double sa = score[a[0]], sb = score[b[0]];
              if (sa != sb) return sa > sb;
              return a[0] < b[0];
            });
  result->scores.reserve(result->rows.size());
  for (const auto& row : result->rows) {
    result->scores.push_back(score[row[0]]);
  }
}

Status ExecOps(VmState& st, const PlanProgram& program,
               std::vector<Batch>& regs, QueryResult* result) {
  for (size_t pc = 0; pc < program.ops.size(); ++pc) {
    const PlanOp& op = program.ops[pc];
    switch (op.code) {
      case OpCode::kLoadLive:
        regs[op.dst] = st.AllLiveBatch();
        break;
      case OpCode::kRootChildren: {
        std::vector<DocId> out;
        for (DocId id : st.AllLive()) {
          if (st.module.groups().Parents(id).empty()) {
            const auto& children = st.module.groups().Children(id);
            out.insert(out.end(), children.begin(), children.end());
          }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        regs[op.dst] = MakeBatch(std::move(out));
        break;
      }
      case OpCode::kNameMatch:
        regs[op.dst] = NameMatch(st, program.strings[op.str]);
        break;
      case OpCode::kPhrase: {
        st.rules.insert("R1:content-index");
        ++st.probes.content_phrases;
        obs::ScopedSpan probe_span(st.span, "index.content.phrase");
        const std::string& text = program.strings[op.str];
        // Ungoverned runs take the block-compressed fast path; governed
        // runs issue the classic per-posting-ticking scan so the step
        // schedule (and any truncation point) matches the interpreter.
        std::vector<DocId> hits =
            st.ctx == nullptr ? st.module.content().PhraseDocs(text)
                              : st.module.content().PhraseQuery(text, st.ctx);
        std::vector<DocId> ids = Intersect(hits, *regs[op.a]);
        if (probe_span) {
          probe_span.get()->SetAttr("matches",
                                    static_cast<int64_t>(ids.size()));
        }
        regs[op.dst] = MakeBatch(std::move(ids));
        break;
      }
      case OpCode::kTupleScan: {
        st.rules.insert("R3:tuple-index");
        ++st.probes.tuple_scans;
        obs::ScopedSpan probe_span(st.span, "index.tuple.scan");
        const std::string& attribute = program.strings[op.str];
        std::vector<DocId> ids = Intersect(
            st.module.tuples().Scan(attribute,
                                    static_cast<index::CompareOp>(op.flags &
                                                                  0xF),
                                    ResolveLiteral(st, program, op), st.ctx),
            *regs[op.a]);
        if (probe_span) {
          probe_span.get()->SetAttr("attribute", attribute);
          probe_span.get()->SetAttr("matches",
                                    static_cast<int64_t>(ids.size()));
        }
        regs[op.dst] = MakeBatch(std::move(ids));
        break;
      }
      case OpCode::kClassFilter: {
        const std::vector<DocId>& universe = *regs[op.a];
        const std::string& wanted = program.strings[op.str];
        regs[op.dst] =
            MakeBatch(st.ChunkedConcat(universe.size(), [&](size_t begin,
                                                            size_t end) {
              std::vector<DocId> out;
              for (size_t i = begin; i < end; ++i) {
                if (st.ctx != nullptr && !st.ctx->TickAlive()) break;
                DocId id = universe[i];
                const index::CatalogEntry* entry =
                    st.module.catalog().Entry(id);
                if (entry != nullptr &&
                    st.ClassMatches(entry->class_name, wanted)) {
                  out.push_back(id);
                }
              }
              return out;
            }));
        break;
      }
      case OpCode::kIntersect:
        regs[op.dst] = MakeBatch(Intersect(*regs[op.a], *regs[op.b]));
        break;
      case OpCode::kUnion:
        regs[op.dst] = MakeBatch(UnionSets(*regs[op.a], *regs[op.b]));
        break;
      case OpCode::kDifference:
        regs[op.dst] = MakeBatch(Difference(*regs[op.a], *regs[op.b]));
        break;
      case OpCode::kMove:
        regs[op.dst] = regs[op.a];
        break;
      case OpCode::kJumpIfEmpty:
        if (regs[op.a]->empty()) pc = static_cast<size_t>(op.aux) - 1;
        break;
      case OpCode::kParGroup: {
        IDM_ASSIGN_OR_RETURN(regs[op.dst],
                             ExecParGroup(st, program, op, regs[op.a]));
        break;
      }
      case OpCode::kStepChild:
        regs[op.dst] = ExecStepChild(st, regs[op.a], regs[op.b]);
        break;
      case OpCode::kExpand:
        regs[op.dst] = ExecExpand(st, regs[op.a], regs[op.b]);
        break;
      case OpCode::kSetOp: {
        IDM_ASSIGN_OR_RETURN(regs[op.dst], ExecSetOp(st, program, op));
        break;
      }
      case OpCode::kJoin:
        IDM_RETURN_NOT_OK(ExecJoin(st, program, result));
        break;
      case OpCode::kMaterialize: {
        result->columns = {""};
        const std::vector<DocId>& ids = *regs[op.a];
        // §10 prefix capture, the interpreter's Unary: only the root
        // materialization is governed; a family doomed before the loop
        // keeps the empty prefix.
        const bool governed = (op.flags & 1) != 0 && st.ctx != nullptr;
        if (governed && st.ctx->doomed()) break;
        result->rows.reserve(ids.size());
        for (DocId id : ids) {
          if (governed) {
            if (!st.ctx->TickAlive()) break;
            if (!st.ctx
                     ->ChargeMemory(sizeof(std::vector<DocId>) +
                                    sizeof(DocId))
                     .ok()) {
              break;
            }
          }
          result->rows.push_back({id});
        }
        break;
      }
      case OpCode::kRankOrClear:
        if (st.ctx == nullptr || !st.ctx->doomed()) {
          RankRows(st, program, result);
        } else {
          // Ranked order is not a materialization order: a truncated
          // ranked result is not a prefix, degrade to empty (§10).
          result->rows.clear();
          result->scores.clear();
        }
        break;
    }
  }
  return Status::OK();
}

Result<QueryResult> RunQueryProgram(VmState& st, const PlanProgram& program) {
  QueryResult result;
  result.plan = program.normalized;
  std::vector<Batch> regs(program.num_regs, EmptyBatch());
  IDM_RETURN_NOT_OK(ExecOps(st, program, regs, &result));
  result.expanded_views = st.expanded;
  result.probes = st.probes;
  if (!st.rules.empty()) {
    result.plan += "  [rules:";
    for (const std::string& rule : st.rules) result.plan += " " + rule;
    result.plan += "]";
  }
  return result;
}

Result<Batch> RunPredProgram(VmState& st, const PlanProgram& program,
                             const Batch& universe) {
  std::vector<Batch> regs(program.num_regs, EmptyBatch());
  regs[0] = universe;
  QueryResult scratch;  // pred programs have no materialize/rank ops
  IDM_RETURN_NOT_OK(ExecOps(st, program, regs, &scratch));
  return regs[program.out_reg];
}

}  // namespace

Result<QueryResult> Vm::Run(const Env& env, const PlanProgram& program,
                            util::ExecContext* ctx, obs::TraceSpan* span) {
  LiveCache live;
  VmState state(env, &live, ctx, span);
  return RunQueryProgram(state, program);
}

}  // namespace idm::iql
