#include "iql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace idm::iql {

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kString: return "string";
    case TokenType::kNumber: return "number";
    case TokenType::kDate: return "date";
    case TokenType::kIdent: return "identifier";
    case TokenType::kSlashSlash: return "'//'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kLBracket: return "'['";
    case TokenType::kRBracket: return "']'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kComma: return "','";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'!='";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kAnd: return "'and'";
    case TokenType::kOr: return "'or'";
    case TokenType::kNot: return "'not'";
    case TokenType::kUnion: return "'union'";
    case TokenType::kJoin: return "'join'";
    case TokenType::kAs: return "'as'";
    case TokenType::kEnd: return "end of query";
  }
  return "?";
}

namespace {

bool IsIdentChar(char c) {
  // Identifiers double as name patterns and dotted references: VLDB200?,
  // *.tex, ?onclusion*, A.name, B.tuple.label, yesterday.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '*' ||
         c == '?' || c == '.' || c == '-' || c == ':';
}

TokenType KeywordType(const std::string& word) {
  std::string lower = ToLower(word);
  if (lower == "and") return TokenType::kAnd;
  if (lower == "or") return TokenType::kOr;
  if (lower == "not") return TokenType::kNot;
  if (lower == "union") return TokenType::kUnion;
  if (lower == "join") return TokenType::kJoin;
  if (lower == "as") return TokenType::kAs;
  return TokenType::kIdent;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&tokens](TokenType type, std::string text, size_t offset,
                        int64_t number = 0) {
    tokens.push_back({type, std::move(text), number, offset});
  };
  while (i < query.size()) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '"') {
      size_t end = query.find('"', i + 1);
      if (end == std::string::npos) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(i));
      }
      push(TokenType::kString, query.substr(i + 1, end - i - 1), start);
      i = end + 1;
      continue;
    }
    if (c == '@') {
      ++i;
      std::string text;
      while (i < query.size() &&
             (std::isdigit(static_cast<unsigned char>(query[i])) ||
              query[i] == '.')) {
        text += query[i++];
      }
      if (text.empty()) {
        return Status::ParseError("malformed date literal at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kDate, std::move(text), start);
      continue;
    }
    if (c == '/') {
      if (i + 1 < query.size() && query[i + 1] == '/') {
        push(TokenType::kSlashSlash, "//", start);
        i += 2;
      } else {
        push(TokenType::kSlash, "/", start);
        ++i;
      }
      continue;
    }
    if (c == '[') { push(TokenType::kLBracket, "[", start); ++i; continue; }
    if (c == ']') { push(TokenType::kRBracket, "]", start); ++i; continue; }
    if (c == '(') { push(TokenType::kLParen, "(", start); ++i; continue; }
    if (c == ')') { push(TokenType::kRParen, ")", start); ++i; continue; }
    if (c == ',') { push(TokenType::kComma, ",", start); ++i; continue; }
    if (c == '=') { push(TokenType::kEq, "=", start); ++i; continue; }
    if (c == '!') {
      if (i + 1 < query.size() && query[i + 1] == '=') {
        push(TokenType::kNe, "!=", start);
        i += 2;
        continue;
      }
      return Status::ParseError("stray '!' at offset " + std::to_string(i));
    }
    if (c == '<') {
      if (i + 1 < query.size() && query[i + 1] == '=') {
        push(TokenType::kLe, "<=", start);
        i += 2;
      } else {
        push(TokenType::kLt, "<", start);
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < query.size() && query[i + 1] == '=') {
        push(TokenType::kGe, ">=", start);
        i += 2;
      } else {
        push(TokenType::kGt, ">", start);
        ++i;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Digits followed by ident chars (e.g. "2005papers") lex as an
      // identifier; pure digit runs are numbers.
      size_t j = i;
      while (j < query.size() &&
             std::isdigit(static_cast<unsigned char>(query[j]))) {
        ++j;
      }
      if (j < query.size() && IsIdentChar(query[j])) {
        std::string word;
        while (i < query.size() && IsIdentChar(query[i])) word += query[i++];
        push(TokenType::kIdent, std::move(word), start);
      } else {
        int64_t value = 0;
        while (i < j) value = value * 10 + (query[i++] - '0');
        push(TokenType::kNumber, query.substr(start, j - start), start, value);
      }
      continue;
    }
    if (IsIdentChar(c)) {
      std::string word;
      while (i < query.size() && IsIdentChar(query[i])) word += query[i++];
      // Multi-word attribute names ("last modified time") are written
      // without spaces in iQL ("lastmodified"); no further handling here.
      TokenType type = KeywordType(word);
      push(type, std::move(word), start);
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  push(TokenType::kEnd, "", query.size());
  return tokens;
}

}  // namespace idm::iql
