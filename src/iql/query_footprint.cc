#include "iql/query_footprint.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "iql/query_processor.h"

namespace idm::iql {
namespace {

bool IsMatchAll(const std::string& pattern) {
  return pattern.empty() || pattern == "*";
}

bool PredHasClockLiteral(const PredNode& pred) {
  if (pred.kind == PredNode::Kind::kCompare &&
      pred.literal_kind != PredNode::LiteralKind::kValue) {
    return true;
  }
  for (const auto& child : pred.children) {
    if (PredHasClockLiteral(*child)) return true;
  }
  return false;
}

bool QueryHasClockLiteral(const Query& query) {
  if (query.filter != nullptr && PredHasClockLiteral(*query.filter)) {
    return true;
  }
  for (const PathStep& step : query.steps) {
    if (step.predicate != nullptr && PredHasClockLiteral(*step.predicate)) {
      return true;
    }
  }
  for (const auto& arm : query.arms) {
    if (QueryHasClockLiteral(*arm)) return true;
  }
  return false;  // joins never reach here: they are global before this check
}

/// Anchoring for filter predicates: true when every view satisfying
/// \p pred matches one of the collected patterns. A name equality anchors
/// itself; one anchored conjunct anchors an `and` (members satisfy every
/// conjunct, so the first anchored one suffices — fewest patterns wins);
/// an `or` is anchored only when every branch is.
bool CollectPredPatterns(const PredNode& pred,
                         std::vector<std::string>* patterns) {
  switch (pred.kind) {
    case PredNode::Kind::kNameEq:
      if (IsMatchAll(pred.text)) return false;
      patterns->push_back(pred.text);
      return true;
    case PredNode::Kind::kAnd:
      for (const auto& child : pred.children) {
        std::vector<std::string> sub;
        if (CollectPredPatterns(*child, &sub)) {
          patterns->insert(patterns->end(), sub.begin(), sub.end());
          return true;
        }
      }
      return false;
    case PredNode::Kind::kOr: {
      std::vector<std::string> sub;
      for (const auto& child : pred.children) {
        if (!CollectPredPatterns(*child, &sub)) return false;
      }
      if (pred.children.empty()) return false;
      patterns->insert(patterns->end(), sub.begin(), sub.end());
      return true;
    }
    default:
      // kNot (complement escapes any pattern), kPhrase/kCompare/kClassEq
      // (no name constraint).
      return false;
  }
}

/// True when \p query is anchored: members AND structural bridges all
/// match one of \p patterns. Path steps contribute every step's pattern —
/// intermediate ("bridge") views must match them too, which is exactly
/// what makes ancestry rewires visible to the affect test.
bool CollectQueryPatterns(const Query& query,
                          std::vector<std::string>* patterns) {
  switch (query.kind) {
    case Query::Kind::kPath:
      if (query.steps.empty()) return false;
      for (const PathStep& step : query.steps) {
        if (IsMatchAll(step.name_pattern)) return false;
        patterns->push_back(step.name_pattern);
      }
      return true;
    case Query::Kind::kFilter:
      if (query.filter == nullptr) return false;
      if (QueryProcessor::IsRankedQuery(query)) return false;
      return CollectPredPatterns(*query.filter, patterns);
    case Query::Kind::kUnion:
    case Query::Kind::kIntersect:
    case Query::Kind::kExcept:
      if (query.arms.empty()) return false;
      for (const auto& arm : query.arms) {
        if (!CollectQueryPatterns(*arm, patterns)) return false;
      }
      return true;
    case Query::Kind::kJoin:
      return false;
  }
  return false;
}

}  // namespace

sub::Footprint ComputeFootprint(const Query& query,
                                const rvm::ReplicaIndexesModule& module) {
  sub::Footprint footprint;
  footprint.epoch = module.epoch();

  std::vector<std::string> patterns;
  if (!CollectQueryPatterns(query, &patterns) ||
      QueryHasClockLiteral(query)) {
    return footprint;  // kGlobal
  }
  std::sort(patterns.begin(), patterns.end());
  patterns.erase(std::unique(patterns.begin(), patterns.end()),
                 patterns.end());

  std::set<uint32_t> sources;
  for (const std::string& pattern : patterns) {
    for (index::DocId id : module.names().LookupPattern(pattern)) {
      const index::CatalogEntry* entry = module.catalog().Entry(id);
      if (entry != nullptr && !entry->deleted) sources.insert(entry->source);
    }
  }

  footprint.kind = sub::Footprint::Kind::kScoped;
  footprint.patterns = std::move(patterns);
  footprint.substrates.assign(sources.begin(), sources.end());
  return footprint;
}

}  // namespace idm::iql
