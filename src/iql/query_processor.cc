#include "iql/query_processor.h"

#include <algorithm>
#include <cmath>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "index/analyzer.h"
#include "iql/parser.h"
#include "iql/plan.h"
#include "iql/planner.h"
#include "iql/vm.h"
#include "util/string_util.h"

namespace idm::iql {

using index::DocId;

namespace {

Micros WallNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<DocId> Intersect(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<DocId> UnionSets(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Difference(const std::vector<DocId>& a,
                              const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// Live-id cache shared between an evaluation and the parallel child
/// evaluations it spawns: computed at most once per query, safely from any
/// thread.
struct LiveCache {
  std::once_flag once;
  std::vector<DocId> ids;
};

}  // namespace

// ---------------------------------------------------------------------------

class QueryProcessor::Evaluation {
 public:
  /// Root evaluation of one query. \p ctx (may be null) governs every
  /// loop this evaluation and its parallel children run; \p span (may be
  /// null) collects the evaluation's trace tree.
  Evaluation(const QueryProcessor& processor, util::ExecContext* ctx,
             obs::TraceSpan* span)
      : module_(*processor.module_),
        classes_(*processor.classes_),
        clock_(processor.clock_),
        options_(processor.options_),
        pool_(processor.pool_.get()),
        live_(&own_live_),
        ctx_(ctx),
        span_(span),
        root_(true) {}

  /// Child evaluation for a parallel sub-query: shares the parent's pool
  /// and live-id cache but accumulates its own statistics, which the
  /// parent merges back in input order after the fan-out completes. Under
  /// governance the child runs on a Child() context: same family (shared
  /// deadline, steps, cancellation — the first arm to overrun dooms the
  /// siblings) with its own memory sub-budget.
  /// \p span: a pre-created arm span the parent allocated in input order
  /// before fanning out (so the trace tree is deterministic under
  /// parallelism); null when untraced.
  explicit Evaluation(const Evaluation& parent, obs::TraceSpan* span = nullptr)
      : module_(parent.module_),
        classes_(parent.classes_),
        clock_(parent.clock_),
        options_(parent.options_),
        pool_(parent.pool_),
        live_(parent.live_),
        span_(span),
        root_(false) {
    if (parent.ctx_ != nullptr) {
      ctx_owned_ = parent.ctx_->Child();
      ctx_ = ctx_owned_.get();
    }
  }

  Result<QueryResult> Run(const Query& query) {
    ++depth_;
    Result<QueryResult> result = RunImpl(query);
    --depth_;
    return result;
  }

 private:
  Result<QueryResult> RunImpl(const Query& query) {
    QueryResult result;
    result.plan = iql::ToString(query);
    switch (query.kind) {
      case Query::Kind::kFilter: {
        IDM_ASSIGN_OR_RETURN(std::vector<DocId> ids,
                             EvalPred(*query.filter, AllLive()));
        Unary(&result, std::move(ids));
        if (ctx_ == nullptr || !ctx_->doomed()) {
          RankIfKeywordQuery(*query.filter, &result);
        } else if (IsRankable(*query.filter)) {
          // A ranked result is ordered by score, not by materialization:
          // a truncated one would not be a prefix of the complete answer.
          result.rows.clear();
          result.scores.clear();
        }
        break;
      }
      case Query::Kind::kPath: {
        IDM_ASSIGN_OR_RETURN(std::vector<DocId> ids, EvalPath(query.steps));
        Unary(&result, std::move(ids));
        break;
      }
      case Query::Kind::kUnion:
      case Query::Kind::kIntersect:
      case Query::Kind::kExcept: {
        IDM_ASSIGN_OR_RETURN(std::vector<DocId> acc, EvalSetOp(query));
        Unary(&result, std::move(acc));
        break;
      }
      case Query::Kind::kJoin: {
        IDM_RETURN_NOT_OK(EvalJoin(*query.join, &result));
        if (ctx_ != nullptr && ctx_->doomed()) {
          // Join output is sorted after the probe: truncation is not a
          // prefix. Degrade to the empty prefix.
          result.rows.clear();
          result.scores.clear();
        }
        break;
      }
    }
    result.expanded_views = expanded_;
    result.probes = probes_;
    if (!rules_.empty()) {
      result.plan += "  [rules:";
      for (const std::string& rule : rules_) result.plan += " " + rule;
      result.plan += "]";
    }
    return result;
  }

 private:
  /// Opens a child span and redirects this evaluation's span pointer into
  /// it for the enclosing scope — nested probes/steps attach underneath.
  /// A no-op (and no allocation) when the evaluation is untraced.
  struct SpanScope {
    SpanScope(Evaluation* eval, const char* name)
        : eval_(eval), saved_(eval->span_) {
      span_ = saved_ == nullptr ? nullptr : saved_->AddChild(name);
      if (span_ != nullptr) eval_->span_ = span_;
    }
    ~SpanScope() {
      if (span_ != nullptr) span_->End();
      eval_->span_ = saved_;
    }
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;
    obs::TraceSpan* get() const { return span_; }
    explicit operator bool() const { return span_ != nullptr; }

   private:
    Evaluation* eval_;
    obs::TraceSpan* saved_;
    obs::TraceSpan* span_ = nullptr;
  };

  /// True when this evaluation may fan work out. Nested fan-outs from
  /// worker threads degrade to inline execution inside ThreadPool::RunAll,
  /// so checking the pool here is sufficient.
  bool Parallel() const { return pool_ != nullptr && pool_->size() > 0; }

  /// Fan-out width for chunked scans: workers plus the contributing caller.
  size_t FanWays() const { return Parallel() ? pool_->size() + 1 : 1; }

  /// Splits an element-wise scan over [0, n) into pool-sized chunks,
  /// applies \p fn : (begin, end) -> vector<DocId> to each, and
  /// concatenates the chunk outputs in chunk order — the exact output of
  /// one serial `fn(0, n)` pass whenever fn is element-wise.
  template <typename Fn>
  std::vector<DocId> ChunkedConcat(size_t n, Fn fn) {
    auto ranges = util::ChunkRanges(n, FanWays(), options_.min_parallel_chunk);
    if (!Parallel() || ranges.size() <= 1) return fn(0, n);
    auto parts = util::OrderedParallelMap<std::vector<DocId>>(
        pool_, ranges.size(),
        [&](size_t i) { return fn(ranges[i].first, ranges[i].second); });
    std::vector<DocId> out;
    for (auto& part : parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  /// Collects the phrases of a predicate tree; sets *rankable to false when
  /// a non-keyword leaf (comparison, class, name) participates.
  static void CollectPhrases(const PredNode& pred,
                             std::vector<std::string>* phrases,
                             bool* rankable) {
    switch (pred.kind) {
      case PredNode::Kind::kPhrase:
        phrases->push_back(pred.text);
        return;
      case PredNode::Kind::kAnd:
      case PredNode::Kind::kOr:
      case PredNode::Kind::kNot:
        for (const auto& child : pred.children) {
          CollectPhrases(*child, phrases, rankable);
        }
        return;
      default:
        *rankable = false;
        return;
    }
  }

  /// The §5.1 ranking extension: pure keyword/phrase queries get tf-idf
  /// relevance scores and descending-score row order. Terms under a `not`
  /// still contribute nothing (they cannot occur in matching documents).
  /// True when the filter is a pure keyword query (would get ranked).
  static bool IsRankable(const PredNode& filter) {
    std::vector<std::string> phrases;
    bool rankable = true;
    CollectPhrases(filter, &phrases, &rankable);
    return rankable && !phrases.empty();
  }

  void RankIfKeywordQuery(const PredNode& filter, QueryResult* result) {
    std::vector<std::string> phrases;
    bool rankable = true;
    CollectPhrases(filter, &phrases, &rankable);
    if (!rankable || phrases.empty() || result->rows.empty()) return;

    std::unordered_map<DocId, double> score;
    score.reserve(result->rows.size());
    for (const auto& row : result->rows) score.emplace(row[0], 0.0);

    const double n_docs =
        static_cast<double>(std::max<size_t>(module_.content().doc_count(), 1));
    for (const std::string& phrase : phrases) {
      for (const std::string& term : index::PhraseTerms(phrase)) {
        size_t df = module_.content().DocumentFrequency(term);
        if (df == 0) continue;
        double idf = std::log(1.0 + n_docs / static_cast<double>(df));
        for (const auto& [doc, tf] : module_.content().TermQueryWithTf(term)) {
          auto it = score.find(doc);
          if (it != score.end()) it->second += tf * idf;
        }
      }
    }
    std::sort(result->rows.begin(), result->rows.end(),
              [&score](const std::vector<DocId>& a, const std::vector<DocId>& b) {
                double sa = score[a[0]], sb = score[b[0]];
                if (sa != sb) return sa > sb;
                return a[0] < b[0];
              });
    result->scores.reserve(result->rows.size());
    for (const auto& row : result->rows) result->scores.push_back(score[row[0]]);
  }

  void Unary(QueryResult* result, std::vector<DocId> ids) {
    result->columns = {""};
    // Prefix capture (DESIGN.md §10): only the *root* materialization of a
    // top-level unary query may stop mid-loop and keep what it built — its
    // input ids are complete (nothing doomed before), so the kept rows are
    // a prefix of the serial complete result. If the family was doomed
    // before this loop started, `ids` may itself be an arbitrary subset
    // (truncated index scans), so the only safe prefix is the empty one.
    const bool governed = ctx_ != nullptr && root_ && depth_ == 1;
    if (governed && ctx_->doomed()) return;
    result->rows.reserve(ids.size());
    for (DocId id : ids) {
      if (governed) {
        if (!ctx_->TickAlive()) return;
        if (!ctx_->ChargeMemory(sizeof(std::vector<DocId>) + sizeof(DocId))
                 .ok()) {
          return;
        }
      }
      result->rows.push_back({id});
    }
  }

  const std::vector<DocId>& AllLive() {
    std::call_once(live_->once,
                   [this] { live_->ids = module_.catalog().LiveIds(); });
    return live_->ids;
  }

  /// Merges a completed child evaluation's statistics (in fan-out input
  /// order, so the totals match the serial accumulation).
  void Absorb(Evaluation& child) {
    expanded_ += child.expanded_;
    probes_.Merge(child.probes_);
    rules_.insert(child.rules_.begin(), child.rules_.end());
  }

  /// R2: ids whose name matches the (possibly wildcarded) pattern.
  std::vector<DocId> NameMatches(const std::string& pattern) {
    if (pattern.empty() || pattern == "*") return AllLive();
    if (options_.use_name_index) {
      rules_.insert("R2:name-index");
      ++probes_.name_lookups;
      obs::ScopedSpan probe_span(span_, "index.name.lookup");
      std::vector<DocId> ids = module_.names().LookupPattern(pattern);
      if (probe_span) {
        probe_span.get()->SetAttr("pattern", pattern);
        probe_span.get()->SetAttr("matches", static_cast<int64_t>(ids.size()));
      }
      return ids;
    }
    // Ablation: full scan with per-view wildcard matching.
    const std::vector<DocId>& live = AllLive();
    return ChunkedConcat(live.size(), [&](size_t begin, size_t end) {
      std::vector<DocId> out;
      for (size_t i = begin; i < end; ++i) {
        if (ctx_ != nullptr && !ctx_->TickAlive()) break;
        if (WildcardMatch(pattern, module_.names().NameOf(live[i]))) {
          out.push_back(live[i]);
        }
      }
      return out;
    });
  }

  core::Value ResolveLiteral(const PredNode& pred) const {
    switch (pred.literal_kind) {
      case PredNode::LiteralKind::kValue:
        return pred.literal;
      case PredNode::LiteralKind::kYesterday:
        return core::Value::Date(clock_->NowMicros() - 86400LL * 1000000);
      case PredNode::LiteralKind::kNow:
        return core::Value::Date(clock_->NowMicros());
    }
    return pred.literal;
  }

  /// True iff \p cls equals or specializes \p wanted. Unregistered classes
  /// match only by exact string equality (schema-later tolerance).
  bool ClassMatches(const std::string& cls, const std::string& wanted) {
    if (cls == wanted) return true;
    return classes_.IsSubclassOf(cls, wanted);
  }

  /// Evaluates the children of an and/or node against \p universe, in
  /// parallel child evaluations, returning per-child id sets in child
  /// order (and the children themselves for stat absorption).
  ///
  /// Correctness of evaluating an and-child against the *incoming*
  /// universe instead of the narrowed accumulator: every predicate is
  /// intersective — EvalPred(p, X) == X ∩ EvalPred(p, U) for X ⊆ U (leaves
  /// intersect with their universe; and/or/not preserve the property) — so
  /// folding Intersect(acc, EvalPred(child, universe)) in child order
  /// reproduces the serial narrowing exactly.
  struct ChildEval {
    Result<std::vector<DocId>> ids;
    std::unique_ptr<Evaluation> eval;
  };
  std::vector<ChildEval> EvalChildrenParallel(
      const std::vector<std::unique_ptr<PredNode>>& children,
      const std::vector<DocId>& universe) {
    // Arm spans are allocated here, in input order, BEFORE the fan-out —
    // the trace tree shape is then independent of worker scheduling.
    std::vector<obs::TraceSpan*> arm_spans(children.size(), nullptr);
    if (span_ != nullptr) {
      for (auto& arm_span : arm_spans) arm_span = span_->AddChild("pred");
    }
    return util::OrderedParallelMap<ChildEval>(
        pool_, children.size(), [&](size_t i) {
          auto eval = std::make_unique<Evaluation>(*this, arm_spans[i]);
          Result<std::vector<DocId>> ids =
              eval->EvalPred(*children[i], universe);
          if (arm_spans[i] != nullptr) arm_spans[i]->End();
          return ChildEval{std::move(ids), std::move(eval)};
        });
  }

  Result<std::vector<DocId>> EvalPred(const PredNode& pred,
                                      const std::vector<DocId>& universe) {
    switch (pred.kind) {
      case PredNode::Kind::kPhrase: {
        rules_.insert("R1:content-index");
        ++probes_.content_phrases;
        obs::ScopedSpan probe_span(span_, "index.content.phrase");
        std::vector<DocId> ids =
            Intersect(module_.content().PhraseQuery(pred.text, ctx_), universe);
        if (probe_span) {
          probe_span.get()->SetAttr("matches",
                                    static_cast<int64_t>(ids.size()));
        }
        return ids;
      }
      case PredNode::Kind::kCompare: {
        rules_.insert("R3:tuple-index");
        ++probes_.tuple_scans;
        obs::ScopedSpan probe_span(span_, "index.tuple.scan");
        std::vector<DocId> ids =
            Intersect(module_.tuples().Scan(pred.attribute, pred.op,
                                            ResolveLiteral(pred), ctx_),
                      universe);
        if (probe_span) {
          probe_span.get()->SetAttr("attribute", pred.attribute);
          probe_span.get()->SetAttr("matches",
                                    static_cast<int64_t>(ids.size()));
        }
        return ids;
      }
      case PredNode::Kind::kClassEq: {
        return ChunkedConcat(universe.size(), [&](size_t begin, size_t end) {
          std::vector<DocId> out;
          for (size_t i = begin; i < end; ++i) {
            if (ctx_ != nullptr && !ctx_->TickAlive()) break;
            DocId id = universe[i];
            const index::CatalogEntry* entry = module_.catalog().Entry(id);
            if (entry != nullptr && ClassMatches(entry->class_name, pred.text)) {
              out.push_back(id);
            }
          }
          return out;
        });
      }
      case PredNode::Kind::kNameEq:
        return Intersect(NameMatches(pred.text), universe);
      case PredNode::Kind::kAnd: {
        if (Parallel() && pred.children.size() > 1) {
          std::vector<ChildEval> outs =
              EvalChildrenParallel(pred.children, universe);
          std::vector<DocId> acc = universe;
          for (size_t i = 0; i < outs.size(); ++i) {
            // Serial short-circuit: child i runs only while the
            // accumulator is non-empty.
            if (i > 0 && acc.empty()) break;
            if (!outs[i].ids.ok()) return outs[i].ids.status();
            Absorb(*outs[i].eval);
            acc = Intersect(acc, *outs[i].ids);
          }
          return acc;
        }
        std::vector<DocId> acc = universe;
        for (const auto& child : pred.children) {
          IDM_ASSIGN_OR_RETURN(acc, EvalPred(*child, acc));
          if (acc.empty()) break;
        }
        return acc;
      }
      case PredNode::Kind::kOr: {
        if (Parallel() && pred.children.size() > 1) {
          std::vector<ChildEval> outs =
              EvalChildrenParallel(pred.children, universe);
          std::vector<DocId> acc;
          for (auto& out : outs) {
            if (!out.ids.ok()) return out.ids.status();
            Absorb(*out.eval);
            acc = UnionSets(acc, *out.ids);
          }
          return acc;
        }
        std::vector<DocId> acc;
        for (const auto& child : pred.children) {
          IDM_ASSIGN_OR_RETURN(std::vector<DocId> ids,
                               EvalPred(*child, universe));
          acc = UnionSets(acc, ids);
        }
        return acc;
      }
      case PredNode::Kind::kNot: {
        IDM_ASSIGN_OR_RETURN(std::vector<DocId> ids,
                             EvalPred(*pred.children[0], universe));
        return Difference(universe, ids);
      }
    }
    return Status::Unimplemented("unknown predicate");
  }

  /// union/intersect/except over the arms, each arm optionally evaluated
  /// in a parallel child evaluation; the fold runs in arm order either
  /// way, so the result is identical to the serial loop.
  Result<std::vector<DocId>> EvalSetOp(const Query& query) {
    struct ArmEval {
      Result<QueryResult> result;
      std::unique_ptr<Evaluation> eval;  ///< null when run in place
    };
    std::vector<ArmEval> arms;
    arms.reserve(query.arms.size());
    if (Parallel() && query.arms.size() > 1) {
      // Arm spans allocated in input order before the fan-out (see
      // EvalChildrenParallel for why).
      std::vector<obs::TraceSpan*> arm_spans(query.arms.size(), nullptr);
      if (span_ != nullptr) {
        for (auto& arm_span : arm_spans) arm_span = span_->AddChild("arm");
      }
      arms = util::OrderedParallelMap<ArmEval>(
          pool_, query.arms.size(), [&](size_t i) {
            auto eval = std::make_unique<Evaluation>(*this, arm_spans[i]);
            Result<QueryResult> sub = eval->Run(*query.arms[i]);
            if (arm_spans[i] != nullptr) arm_spans[i]->End();
            return ArmEval{std::move(sub), std::move(eval)};
          });
    } else {
      for (const auto& arm : query.arms) {
        SpanScope arm_scope(this, "arm");
        arms.push_back(ArmEval{Run(*arm), nullptr});
        if (!arms.back().result.ok()) break;  // serial early-out
      }
    }

    std::vector<DocId> acc;
    bool first = true;
    for (ArmEval& arm : arms) {
      if (!arm.result.ok()) return arm.result.status();
      if (arm.eval != nullptr) Absorb(*arm.eval);
      QueryResult& sub = *arm.result;
      if (sub.columns.size() != 1) {
        return Status::Unimplemented("set operators over join results");
      }
      std::vector<DocId> ids;
      ids.reserve(sub.rows.size());
      for (const auto& row : sub.rows) ids.push_back(row[0]);
      std::sort(ids.begin(), ids.end());
      if (first) {
        acc = std::move(ids);
        first = false;
      } else if (query.kind == Query::Kind::kUnion) {
        acc = UnionSets(acc, ids);
      } else if (query.kind == Query::Kind::kIntersect) {
        acc = Intersect(acc, ids);
      } else {
        acc = Difference(acc, ids);
      }
    }
    return acc;
  }

  /// Direct children of the views that have no parents (the source roots).
  std::vector<DocId> RootChildren() {
    std::vector<DocId> out;
    for (DocId id : AllLive()) {
      if (module_.groups().Parents(id).empty()) {
        const auto& children = module_.groups().Children(id);
        out.insert(out.end(), children.begin(), children.end());
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  Result<std::vector<DocId>> EvalPath(const std::vector<PathStep>& steps) {
    std::vector<DocId> frontier;
    for (size_t i = 0; i < steps.size(); ++i) {
      const PathStep& step = steps[i];
      SpanScope step_scope(this, "step");
      if (step_scope) {
        step_scope.get()->SetAttr("pattern", step.name_pattern);
        step_scope.get()->SetAttr("descendant",
                                  step.descendant ? "true" : "false");
      }
      std::vector<DocId> name_set = NameMatches(step.name_pattern);
      std::vector<DocId> matched;
      if (i == 0) {
        if (step.descendant) {
          // Every indexed view is (indirectly) related to a source root.
          matched = std::move(name_set);
        } else {
          matched = Intersect(RootChildren(), name_set);
        }
      } else if (step.descendant) {
        // R4/R6: choose the expansion direction. Backward pays a bounded
        // parent-BFS per candidate; forward pays one full descendant BFS of
        // the frontier. Backward wins when candidates are few and shallow —
        // exactly the Q8 shape (huge frontier, tiny name-match set).
        bool backward;
        switch (options_.expansion) {
          case Expansion::kForward: backward = false; break;
          case Expansion::kBackward: backward = true; break;
          case Expansion::kAuto:
            backward = name_set.size() * 16 < frontier.size();
            break;
        }
        if (backward) {
          rules_.insert("R6:backward-expansion");
          probes_.graph_walks += name_set.size();
          SpanScope expand_scope(this, "expand.backward");
          if (expand_scope) {
            expand_scope.get()->SetAttr("candidates",
                                        static_cast<int64_t>(name_set.size()));
          }
          // Per-candidate parent-BFS probes are independent; fan them out
          // and keep per-chunk expansion counts (summed in chunk order).
          std::unordered_set<DocId> sources(frontier.begin(), frontier.end());
          auto ranges = util::ChunkRanges(name_set.size(), FanWays(),
                                          options_.min_parallel_chunk);
          struct ChunkOut {
            std::vector<DocId> matched;
            size_t expanded = 0;
          };
          auto probe = [&](size_t begin, size_t end) {
            ChunkOut out;
            for (size_t c = begin; c < end; ++c) {
              if (ctx_ != nullptr && ctx_->doomed()) break;
              if (module_.groups().ReachedFromAny(name_set[c], sources,
                                                  options_.max_expansion,
                                                  &out.expanded, ctx_)) {
                out.matched.push_back(name_set[c]);
              }
            }
            return out;
          };
          if (Parallel() && ranges.size() > 1) {
            auto parts = util::OrderedParallelMap<ChunkOut>(
                pool_, ranges.size(), [&](size_t c) {
                  return probe(ranges[c].first, ranges[c].second);
                });
            for (ChunkOut& part : parts) {
              matched.insert(matched.end(), part.matched.begin(),
                             part.matched.end());
              expanded_ += part.expanded;
            }
          } else {
            ChunkOut all = probe(0, name_set.size());
            matched = std::move(all.matched);
            expanded_ += all.expanded;
          }
        } else {
          rules_.insert("R4:forward-expansion");
          ++probes_.graph_walks;
          SpanScope expand_scope(this, "expand.forward");
          size_t expanded = 0;
          std::unordered_set<DocId> descendants = module_.groups().Descendants(
              frontier, options_.max_expansion, &expanded, ctx_);
          expanded_ += expanded;
          if (expand_scope) {
            expand_scope.get()->SetAttr("expanded",
                                        static_cast<int64_t>(expanded));
          }
          // Reserve the descendant set against the memory budget for the
          // time it is held — forward expansion is the paper's Q8 blowup.
          util::ScopedCharge descendants_charge(ctx_);
          if (!descendants_charge.Add(descendants.size() * sizeof(DocId)).ok()) {
            descendants.clear();
          }
          matched = ChunkedConcat(name_set.size(), [&](size_t b, size_t e) {
            std::vector<DocId> out;
            for (size_t c = b; c < e; ++c) {
              if (ctx_ != nullptr && !ctx_->TickAlive()) break;
              if (descendants.count(name_set[c]) > 0) out.push_back(name_set[c]);
            }
            return out;
          });
        }
      } else {
        std::vector<DocId> children =
            ChunkedConcat(frontier.size(), [&](size_t b, size_t e) {
              std::vector<DocId> out;
              for (size_t c = b; c < e; ++c) {
                if (ctx_ != nullptr && !ctx_->TickAlive()) break;
                const auto& ch = module_.groups().Children(frontier[c]);
                out.insert(out.end(), ch.begin(), ch.end());
              }
              return out;
            });
        expanded_ += frontier.size();
        std::sort(children.begin(), children.end());
        children.erase(std::unique(children.begin(), children.end()),
                       children.end());
        matched = Intersect(children, name_set);
      }
      if (step.predicate != nullptr) {
        IDM_ASSIGN_OR_RETURN(matched, EvalPred(*step.predicate, matched));
      }
      if (step_scope) {
        step_scope.get()->SetAttr("matched",
                                  static_cast<int64_t>(matched.size()));
      }
      frontier = std::move(matched);
      if (frontier.empty()) break;
    }
    return frontier;
  }

  /// Join key of a view under \p ref; nullopt when the view lacks the
  /// referenced component. Keys compare case-insensitively.
  Result<std::optional<std::string>> JoinKey(DocId id, const JoinRef& ref) {
    switch (ref.field) {
      case JoinRef::Field::kName: {
        const std::string& name = module_.names().NameOf(id);
        if (name.empty()) return std::optional<std::string>();
        return std::optional<std::string>(ToLower(name));
      }
      case JoinRef::Field::kClass: {
        const index::CatalogEntry* entry = module_.catalog().Entry(id);
        if (entry == nullptr || entry->class_name.empty()) {
          return std::optional<std::string>();
        }
        return std::optional<std::string>(entry->class_name);
      }
      case JoinRef::Field::kTupleAttr: {
        auto value = module_.tuples().TupleOf(id).Get(ref.attribute);
        if (!value.has_value() || value->is_null()) {
          return std::optional<std::string>();
        }
        return std::optional<std::string>(ToLower(value->ToString()));
      }
      case JoinRef::Field::kContent:
        return Status::Unimplemented("joins on content components");
    }
    return std::optional<std::string>();
  }

  Status EvalJoin(const JoinSpec& join, QueryResult* result) {
    QueryResult left, right;
    if (Parallel()) {
      // The two join inputs are independent sub-queries: evaluate them
      // concurrently in child evaluations, then absorb left-before-right.
      // Both arm spans are allocated before the fan-out, left first.
      obs::TraceSpan* left_span =
          span_ == nullptr ? nullptr : span_->AddChild("join.left");
      obs::TraceSpan* right_span =
          span_ == nullptr ? nullptr : span_->AddChild("join.right");
      Evaluation left_eval(*this, left_span), right_eval(*this, right_span);
      std::optional<Result<QueryResult>> left_res, right_res;
      util::ThreadPool::RunAll(
          pool_, {[&] {
                    left_res.emplace(left_eval.Run(*join.left));
                    if (left_span != nullptr) left_span->End();
                  },
                  [&] {
                    right_res.emplace(right_eval.Run(*join.right));
                    if (right_span != nullptr) right_span->End();
                  }});
      if (!left_res->ok()) return left_res->status();
      if (!right_res->ok()) return right_res->status();
      Absorb(left_eval);
      Absorb(right_eval);
      left = std::move(**left_res);
      right = std::move(**right_res);
    } else {
      {
        SpanScope left_scope(this, "join.left");
        IDM_ASSIGN_OR_RETURN(left, Run(*join.left));
      }
      {
        SpanScope right_scope(this, "join.right");
        IDM_ASSIGN_OR_RETURN(right, Run(*join.right));
      }
    }
    if (left.columns.size() != 1 || right.columns.size() != 1) {
      return Status::Unimplemented("nested join inputs must be unary");
    }
    result->columns = {join.left_binding, join.right_binding};

    // R5: hash the smaller input.
    rules_.insert("R5:hash-join");
    bool left_is_build = left.rows.size() <= right.rows.size();
    const QueryResult& build = left_is_build ? left : right;
    const QueryResult& probe = left_is_build ? right : left;
    const JoinRef& build_ref = left_is_build ? join.left_ref : join.right_ref;
    const JoinRef& probe_ref = left_is_build ? join.right_ref : join.left_ref;

    std::unordered_map<std::string, std::vector<DocId>> table;
    util::ScopedCharge table_charge(ctx_);
    for (const auto& row : build.rows) {
      if (ctx_ != nullptr && !ctx_->TickAlive()) break;
      IDM_ASSIGN_OR_RETURN(std::optional<std::string> key,
                           JoinKey(row[0], build_ref));
      if (!key.has_value()) continue;
      if (!table_charge.Add(key->size() + sizeof(DocId)).ok()) break;
      table[*key].push_back(row[0]);
    }

    // Probe chunks read the hash table concurrently (it is no longer
    // mutated); match rows concatenate in probe order, as serially.
    struct ProbeOut {
      std::vector<std::vector<DocId>> rows;
      size_t matches = 0;
      Status error;
    };
    auto probe_chunk = [&](size_t begin, size_t end) {
      ProbeOut out;
      for (size_t r = begin; r < end; ++r) {
        if (ctx_ != nullptr && !ctx_->TickAlive()) break;
        const auto& row = probe.rows[r];
        Result<std::optional<std::string>> key = JoinKey(row[0], probe_ref);
        if (!key.ok()) {
          out.error = key.status();
          return out;
        }
        if (!key->has_value()) continue;
        auto it = table.find(**key);
        if (it == table.end()) continue;
        for (DocId match : it->second) {
          ++out.matches;
          if (left_is_build) {
            out.rows.push_back({match, row[0]});
          } else {
            out.rows.push_back({row[0], match});
          }
        }
      }
      return out;
    };
    SpanScope probe_scope(this, "join.probe");
    if (probe_scope) {
      probe_scope.get()->SetAttr("build_rows",
                                 static_cast<int64_t>(build.rows.size()));
      probe_scope.get()->SetAttr("probe_rows",
                                 static_cast<int64_t>(probe.rows.size()));
    }
    auto ranges = util::ChunkRanges(probe.rows.size(), FanWays(),
                                    options_.min_parallel_chunk);
    std::vector<ProbeOut> parts;
    if (Parallel() && ranges.size() > 1) {
      parts = util::OrderedParallelMap<ProbeOut>(
          pool_, ranges.size(), [&](size_t c) {
            return probe_chunk(ranges[c].first, ranges[c].second);
          });
    } else if (!probe.rows.empty()) {
      parts.push_back(probe_chunk(0, probe.rows.size()));
    }
    for (ProbeOut& part : parts) {
      if (!part.error.ok()) return part.error;
      expanded_ += part.matches;
      result->rows.insert(result->rows.end(),
                          std::make_move_iterator(part.rows.begin()),
                          std::make_move_iterator(part.rows.end()));
    }
    std::sort(result->rows.begin(), result->rows.end());
    // Sub-runs already accumulated their expansion work into expanded_.
    return Status::OK();
  }

  const rvm::ReplicaIndexesModule& module_;
  const core::ClassRegistry& classes_;
  Clock* clock_;
  Options options_;
  util::ThreadPool* pool_;
  LiveCache* live_;
  LiveCache own_live_;
  util::ExecContext* ctx_ = nullptr;  ///< null = ungoverned (byte-identical)
  std::unique_ptr<util::ExecContext> ctx_owned_;  ///< child context, if any
  obs::TraceSpan* span_ = nullptr;  ///< null = untraced (byte-identical)
  bool root_ = false;  ///< true on the query's top-level evaluation
  int depth_ = 0;      ///< Run() nesting on *this* object (set-op arms)
  size_t expanded_ = 0;
  index::ProbeCounts probes_;
  std::set<std::string> rules_;

  friend class iql::QueryProcessor;  // MatchesDoc/IsRankedQuery helpers
};

// ---------------------------------------------------------------------------

QueryProcessor::QueryProcessor(const rvm::ReplicaIndexesModule* module,
                               const core::ClassRegistry* classes,
                               Clock* clock, Options options)
    : module_(module), classes_(classes), clock_(clock), options_(options) {
  if (const char* env = std::getenv("IDM_QUERY_ENGINE"); env != nullptr) {
    std::string name = env;
    if (name == "interp") {
      options_.engine = Engine::kInterp;
    } else if (name == "vm") {
      options_.engine = Engine::kVm;
    } else if (name == "both") {
      options_.engine = Engine::kBoth;
    }
  }
  if (options_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
}

QueryProcessor::~QueryProcessor() = default;

bool QueryProcessor::IsRankedQuery(const Query& query) {
  return query.kind == Query::Kind::kFilter && query.filter != nullptr &&
         Evaluation::IsRankable(*query.filter);
}

bool QueryProcessor::SupportsMatchesDoc(const Query& query) {
  switch (query.kind) {
    case Query::Kind::kFilter:
      // Un-ranked filters test only the view's own name/tuple/content/
      // class components. Ranked (pure keyword) results are ordered by
      // corpus-wide idf, so a single view cannot be judged in isolation.
      return query.filter != nullptr && !Evaluation::IsRankable(*query.filter);
    case Query::Kind::kPath:
      // `//name[pred]` — one descendant step has no ancestry constraint:
      // membership is name-match plus the step predicate on the view.
      return query.steps.size() == 1 && query.steps[0].descendant;
    default:
      return false;
  }
}

Result<bool> QueryProcessor::MatchesDoc(const Query& query,
                                        index::DocId id) const {
  if (!SupportsMatchesDoc(query)) {
    return Status::InvalidArgument(
        "MatchesDoc: query shape is not per-view maintainable");
  }
  const index::CatalogEntry* entry = module_->catalog().Entry(id);
  if (entry == nullptr || entry->deleted) return false;
  // EvalPred is intersective — EvalPred(p, {id}) == {id} ∩ EvalPred(p, U)
  // for any universe containing id — so the singleton universe answers
  // membership exactly (liveness was just checked; predicate leaves only
  // ever produce live ids, and kNot subtracts from the universe we pass).
  const PredNode* predicate = nullptr;
  if (query.kind == Query::Kind::kFilter) {
    predicate = query.filter.get();
  } else {
    const PathStep& step = query.steps[0];
    const std::string& pattern = step.name_pattern;
    if (!pattern.empty() && pattern != "*" &&
        !WildcardMatch(pattern, module_->names().NameOf(id))) {
      return false;
    }
    predicate = step.predicate.get();
  }
  if (predicate == nullptr) return true;
  Evaluation evaluation(*this, nullptr, nullptr);
  IDM_ASSIGN_OR_RETURN(std::vector<index::DocId> hit,
                       evaluation.EvalPred(*predicate, {id}));
  return !hit.empty();
}

Result<QueryResult> QueryProcessor::Execute(const std::string& iql) const {
  return Execute(iql, nullptr);
}

Result<QueryResult> QueryProcessor::Execute(const std::string& iql,
                                            util::ExecContext* ctx) const {
  IDM_ASSIGN_OR_RETURN(Query query, ParseQuery(iql));
  return Evaluate(query, ctx);
}

Result<QueryResult> QueryProcessor::Evaluate(const Query& query) const {
  return Evaluate(query, nullptr);
}

Result<QueryResult> QueryProcessor::Evaluate(const Query& query,
                                             util::ExecContext* ctx) const {
  return Evaluate(query, ctx, nullptr);
}

Result<QueryResult> QueryProcessor::Evaluate(const Query& query,
                                             util::ExecContext* ctx,
                                             obs::TraceSpan* span) const {
  switch (options_.engine) {
    case Engine::kInterp:
      return RunInterp(query, ctx, span);
    case Engine::kVm:
      return RunVm(query, nullptr, ctx, span);
    case Engine::kBoth:
      return RunBoth(query, nullptr, ctx, span);
  }
  return Status::Internal("unknown query engine");
}

Result<QueryResult> QueryProcessor::Evaluate(const Query& query,
                                             const PlanProgram& program,
                                             util::ExecContext* ctx,
                                             obs::TraceSpan* span) const {
  switch (options_.engine) {
    case Engine::kInterp:
      return RunInterp(query, ctx, span);
    case Engine::kVm:
      return RunVm(query, &program, ctx, span);
    case Engine::kBoth:
      return RunBoth(query, &program, ctx, span);
  }
  return Status::Internal("unknown query engine");
}

std::unique_ptr<PlanProgram> QueryProcessor::Plan(const Query& query) const {
  plans_.fetch_add(1, std::memory_order_relaxed);
  return Planner(pool_ != nullptr && pool_->size() > 0).Lower(query);
}

QueryProcessor::EngineStats QueryProcessor::engine_stats() const {
  EngineStats stats;
  stats.plans = plans_.load(std::memory_order_relaxed);
  stats.interp_runs = interp_runs_.load(std::memory_order_relaxed);
  stats.vm_runs = vm_runs_.load(std::memory_order_relaxed);
  stats.both_runs = both_runs_.load(std::memory_order_relaxed);
  stats.mismatches = mismatches_.load(std::memory_order_relaxed);
  return stats;
}

Result<QueryResult> QueryProcessor::RunInterp(const Query& query,
                                              util::ExecContext* ctx,
                                              obs::TraceSpan* span) const {
  interp_runs_.fetch_add(1, std::memory_order_relaxed);
  Micros start = WallNow();
  Evaluation evaluation(*this, ctx, span);
  return Finish(evaluation.Run(query), start, ctx, span);
}

Result<QueryResult> QueryProcessor::RunVm(const Query& query,
                                          const PlanProgram* program,
                                          util::ExecContext* ctx,
                                          obs::TraceSpan* span) const {
  vm_runs_.fetch_add(1, std::memory_order_relaxed);
  Micros start = WallNow();
  std::unique_ptr<PlanProgram> owned;
  if (program == nullptr) {
    owned = Plan(query);
    program = owned.get();
  }
  Vm::Env env{module_, classes_, clock_, &options_, pool_.get()};
  return Finish(Vm::Run(env, *program, ctx, span), start, ctx, span);
}

namespace {

/// Differential check for kBoth: every observable field except wall-clock
/// time must agree. Strict mode (threads <= 1, where even governed doom
/// points are deterministic) also compares incomplete results row-for-row;
/// under parallel evaluation a doomed run's partial prefix depends on
/// thread timing, so only then an incomplete pair is exempt.
Status CompareEngines(const Result<QueryResult>& interp,
                      const Result<QueryResult>& vm, bool strict) {
  auto fail = [](const std::string& what) {
    return Status::Internal("engine mismatch (interp vs vm): " + what);
  };
  if (interp.ok() != vm.ok()) {
    return fail(interp.ok() ? "vm errored: " + vm.status().ToString()
                            : "interp errored: " + interp.status().ToString());
  }
  if (!interp.ok()) {
    if (interp.status().ToString() != vm.status().ToString()) {
      return fail("errors differ: " + interp.status().ToString() + " vs " +
                  vm.status().ToString());
    }
    return Status::OK();
  }
  const QueryResult& a = *interp;
  const QueryResult& b = *vm;
  if (!strict && (!a.meta.complete || !b.meta.complete)) return Status::OK();
  if (a.meta.complete != b.meta.complete) return fail("meta.complete");
  if (a.columns != b.columns) return fail("columns");
  if (a.rows != b.rows) {
    std::ostringstream os;
    os << "rows (" << a.rows.size() << " vs " << b.rows.size() << ")";
    return fail(os.str());
  }
  if (a.scores != b.scores) return fail("scores");
  if (a.expanded_views != b.expanded_views) return fail("expanded_views");
  if (a.plan != b.plan) {
    return fail("plan: \"" + a.plan + "\" vs \"" + b.plan + "\"");
  }
  if (a.probes.name_lookups != b.probes.name_lookups ||
      a.probes.content_phrases != b.probes.content_phrases ||
      a.probes.tuple_scans != b.probes.tuple_scans ||
      a.probes.graph_walks != b.probes.graph_walks) {
    return fail("probe counts");
  }
  if (strict && a.meta.steps_used != b.meta.steps_used) {
    std::ostringstream os;
    os << "steps_used (" << a.meta.steps_used << " vs " << b.meta.steps_used
       << ")";
    return fail(os.str());
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> QueryProcessor::RunBoth(const Query& query,
                                            const PlanProgram* program,
                                            util::ExecContext* ctx,
                                            obs::TraceSpan* span) const {
  both_runs_.fetch_add(1, std::memory_order_relaxed);
  // The interpreter is the primary: it gets the caller's context and span,
  // and its result (or error) is what the caller sees. The VM runs second
  // under a fresh context with the same clock and limits — at threads = 1
  // both engines issue identical tick sequences, so even §10 degraded
  // prefixes must match byte-for-byte.
  Result<QueryResult> interp = RunInterp(query, ctx, span);
  std::unique_ptr<util::ExecContext> vm_ctx;
  if (ctx != nullptr) {
    vm_ctx = std::make_unique<util::ExecContext>(ctx->clock(), ctx->limits());
  }
  Result<QueryResult> vm = RunVm(query, program, vm_ctx.get(), nullptr);
  Status diff = CompareEngines(interp, vm, options_.threads <= 1);
  if (!diff.ok()) {
    mismatches_.fetch_add(1, std::memory_order_relaxed);
    return diff;
  }
  return interp;
}

Result<QueryResult> QueryProcessor::Finish(Result<QueryResult> run,
                                           Micros start, util::ExecContext* ctx,
                                           obs::TraceSpan* span) const {
  if (!run.ok()) {
    // A genuine evaluation error while the family was doomed is still an
    // error; governance never hides real failures.
    return run.status();
  }
  QueryResult result = std::move(*run);
  result.elapsed_micros = WallNow() - start;
  if (ctx != nullptr) {
    result.meta.steps_used = ctx->steps_used();
    result.meta.bytes_peak = ctx->bytes_peak();
    if (ctx->doomed()) {
      result.meta.complete = false;
      result.meta.degraded_reason = ctx->status().ToString();
    }
  }
  if (span != nullptr) {
    span->SetAttr("rows", static_cast<int64_t>(result.rows.size()));
    span->SetAttr("expanded", static_cast<int64_t>(result.expanded_views));
    span->SetAttr("probes", static_cast<int64_t>(result.probes.total()));
    if (!result.meta.complete) span->SetAttr("degraded", "true");
  }
  return result;
}

}  // namespace idm::iql
