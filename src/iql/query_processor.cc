#include "iql/query_processor.h"

#include <algorithm>
#include <cmath>
#include <chrono>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "index/analyzer.h"
#include "iql/parser.h"
#include "util/string_util.h"

namespace idm::iql {

using index::DocId;

namespace {

Micros WallNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<DocId> Intersect(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<DocId> UnionSets(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Difference(const std::vector<DocId>& a,
                              const std::vector<DocId>& b) {
  std::vector<DocId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------

class QueryProcessor::Evaluation {
 public:
  Evaluation(const QueryProcessor& processor)
      : module_(*processor.module_),
        classes_(*processor.classes_),
        clock_(processor.clock_),
        options_(processor.options_) {}

  Result<QueryResult> Run(const Query& query) {
    QueryResult result;
    result.plan = iql::ToString(query);
    switch (query.kind) {
      case Query::Kind::kFilter: {
        IDM_ASSIGN_OR_RETURN(std::vector<DocId> ids,
                             EvalPred(*query.filter, AllLive()));
        Unary(&result, std::move(ids));
        RankIfKeywordQuery(*query.filter, &result);
        break;
      }
      case Query::Kind::kPath: {
        IDM_ASSIGN_OR_RETURN(std::vector<DocId> ids, EvalPath(query.steps));
        Unary(&result, std::move(ids));
        break;
      }
      case Query::Kind::kUnion:
      case Query::Kind::kIntersect:
      case Query::Kind::kExcept: {
        std::vector<DocId> acc;
        bool first = true;
        for (const auto& arm : query.arms) {
          IDM_ASSIGN_OR_RETURN(QueryResult sub, Run(*arm));
          if (sub.columns.size() != 1) {
            return Status::Unimplemented("set operators over join results");
          }
          std::vector<DocId> ids;
          ids.reserve(sub.rows.size());
          for (const auto& row : sub.rows) ids.push_back(row[0]);
          std::sort(ids.begin(), ids.end());
          if (first) {
            acc = std::move(ids);
            first = false;
          } else if (query.kind == Query::Kind::kUnion) {
            acc = UnionSets(acc, ids);
          } else if (query.kind == Query::Kind::kIntersect) {
            acc = Intersect(acc, ids);
          } else {
            acc = Difference(acc, ids);
          }
        }
        Unary(&result, std::move(acc));
        break;
      }
      case Query::Kind::kJoin: {
        IDM_RETURN_NOT_OK(EvalJoin(*query.join, &result));
        break;
      }
    }
    result.expanded_views = expanded_;
    if (!rules_.empty()) {
      result.plan += "  [rules:";
      for (const std::string& rule : rules_) result.plan += " " + rule;
      result.plan += "]";
    }
    return result;
  }

 private:
  /// Collects the phrases of a predicate tree; sets *rankable to false when
  /// a non-keyword leaf (comparison, class, name) participates.
  static void CollectPhrases(const PredNode& pred,
                             std::vector<std::string>* phrases,
                             bool* rankable) {
    switch (pred.kind) {
      case PredNode::Kind::kPhrase:
        phrases->push_back(pred.text);
        return;
      case PredNode::Kind::kAnd:
      case PredNode::Kind::kOr:
      case PredNode::Kind::kNot:
        for (const auto& child : pred.children) {
          CollectPhrases(*child, phrases, rankable);
        }
        return;
      default:
        *rankable = false;
        return;
    }
  }

  /// The §5.1 ranking extension: pure keyword/phrase queries get tf-idf
  /// relevance scores and descending-score row order. Terms under a `not`
  /// still contribute nothing (they cannot occur in matching documents).
  void RankIfKeywordQuery(const PredNode& filter, QueryResult* result) {
    std::vector<std::string> phrases;
    bool rankable = true;
    CollectPhrases(filter, &phrases, &rankable);
    if (!rankable || phrases.empty() || result->rows.empty()) return;

    std::unordered_map<DocId, double> score;
    score.reserve(result->rows.size());
    for (const auto& row : result->rows) score.emplace(row[0], 0.0);

    const double n_docs =
        static_cast<double>(std::max<size_t>(module_.content().doc_count(), 1));
    for (const std::string& phrase : phrases) {
      for (const std::string& term : index::PhraseTerms(phrase)) {
        size_t df = module_.content().DocumentFrequency(term);
        if (df == 0) continue;
        double idf = std::log(1.0 + n_docs / static_cast<double>(df));
        for (const auto& [doc, tf] : module_.content().TermQueryWithTf(term)) {
          auto it = score.find(doc);
          if (it != score.end()) it->second += tf * idf;
        }
      }
    }
    std::sort(result->rows.begin(), result->rows.end(),
              [&score](const std::vector<DocId>& a, const std::vector<DocId>& b) {
                double sa = score[a[0]], sb = score[b[0]];
                if (sa != sb) return sa > sb;
                return a[0] < b[0];
              });
    result->scores.reserve(result->rows.size());
    for (const auto& row : result->rows) result->scores.push_back(score[row[0]]);
  }

  void Unary(QueryResult* result, std::vector<DocId> ids) {
    result->columns = {""};
    result->rows.reserve(ids.size());
    for (DocId id : ids) result->rows.push_back({id});
  }

  const std::vector<DocId>& AllLive() {
    if (all_live_.empty()) all_live_ = module_.catalog().LiveIds();
    return all_live_;
  }

  /// R2: ids whose name matches the (possibly wildcarded) pattern.
  std::vector<DocId> NameMatches(const std::string& pattern) {
    if (pattern.empty() || pattern == "*") return AllLive();
    if (options_.use_name_index) {
      rules_.insert("R2:name-index");
      return module_.names().LookupPattern(pattern);
    }
    // Ablation: full scan with per-view wildcard matching.
    std::vector<DocId> out;
    for (DocId id : AllLive()) {
      if (WildcardMatch(pattern, module_.names().NameOf(id))) {
        out.push_back(id);
      }
    }
    return out;
  }

  core::Value ResolveLiteral(const PredNode& pred) const {
    switch (pred.literal_kind) {
      case PredNode::LiteralKind::kValue:
        return pred.literal;
      case PredNode::LiteralKind::kYesterday:
        return core::Value::Date(clock_->NowMicros() - 86400LL * 1000000);
      case PredNode::LiteralKind::kNow:
        return core::Value::Date(clock_->NowMicros());
    }
    return pred.literal;
  }

  /// True iff \p cls equals or specializes \p wanted. Unregistered classes
  /// match only by exact string equality (schema-later tolerance).
  bool ClassMatches(const std::string& cls, const std::string& wanted) {
    if (cls == wanted) return true;
    return classes_.IsSubclassOf(cls, wanted);
  }

  Result<std::vector<DocId>> EvalPred(const PredNode& pred,
                                      const std::vector<DocId>& universe) {
    switch (pred.kind) {
      case PredNode::Kind::kPhrase:
        rules_.insert("R1:content-index");
        return Intersect(module_.content().PhraseQuery(pred.text), universe);
      case PredNode::Kind::kCompare:
        rules_.insert("R3:tuple-index");
        return Intersect(module_.tuples().Scan(pred.attribute, pred.op,
                                               ResolveLiteral(pred)),
                         universe);
      case PredNode::Kind::kClassEq: {
        std::vector<DocId> out;
        for (DocId id : universe) {
          const index::CatalogEntry* entry = module_.catalog().Entry(id);
          if (entry != nullptr && ClassMatches(entry->class_name, pred.text)) {
            out.push_back(id);
          }
        }
        return out;
      }
      case PredNode::Kind::kNameEq:
        return Intersect(NameMatches(pred.text), universe);
      case PredNode::Kind::kAnd: {
        std::vector<DocId> acc = universe;
        for (const auto& child : pred.children) {
          IDM_ASSIGN_OR_RETURN(acc, EvalPred(*child, acc));
          if (acc.empty()) break;
        }
        return acc;
      }
      case PredNode::Kind::kOr: {
        std::vector<DocId> acc;
        for (const auto& child : pred.children) {
          IDM_ASSIGN_OR_RETURN(std::vector<DocId> ids,
                               EvalPred(*child, universe));
          acc = UnionSets(acc, ids);
        }
        return acc;
      }
      case PredNode::Kind::kNot: {
        IDM_ASSIGN_OR_RETURN(std::vector<DocId> ids,
                             EvalPred(*pred.children[0], universe));
        return Difference(universe, ids);
      }
    }
    return Status::Unimplemented("unknown predicate");
  }

  /// Direct children of the views that have no parents (the source roots).
  std::vector<DocId> RootChildren() {
    std::vector<DocId> out;
    for (DocId id : AllLive()) {
      if (module_.groups().Parents(id).empty()) {
        const auto& children = module_.groups().Children(id);
        out.insert(out.end(), children.begin(), children.end());
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  Result<std::vector<DocId>> EvalPath(const std::vector<PathStep>& steps) {
    std::vector<DocId> frontier;
    for (size_t i = 0; i < steps.size(); ++i) {
      const PathStep& step = steps[i];
      std::vector<DocId> name_set = NameMatches(step.name_pattern);
      std::vector<DocId> matched;
      if (i == 0) {
        if (step.descendant) {
          // Every indexed view is (indirectly) related to a source root.
          matched = std::move(name_set);
        } else {
          matched = Intersect(RootChildren(), name_set);
        }
      } else if (step.descendant) {
        // R4/R6: choose the expansion direction. Backward pays a bounded
        // parent-BFS per candidate; forward pays one full descendant BFS of
        // the frontier. Backward wins when candidates are few and shallow —
        // exactly the Q8 shape (huge frontier, tiny name-match set).
        bool backward;
        switch (options_.expansion) {
          case Expansion::kForward: backward = false; break;
          case Expansion::kBackward: backward = true; break;
          case Expansion::kAuto:
            backward = name_set.size() * 16 < frontier.size();
            break;
        }
        if (backward) {
          rules_.insert("R6:backward-expansion");
          std::unordered_set<DocId> sources(frontier.begin(), frontier.end());
          for (DocId id : name_set) {
            if (module_.groups().ReachedFromAny(id, sources,
                                                options_.max_expansion,
                                                &expanded_)) {
              matched.push_back(id);
            }
          }
        } else {
          rules_.insert("R4:forward-expansion");
          size_t expanded = 0;
          std::unordered_set<DocId> descendants = module_.groups().Descendants(
              frontier, options_.max_expansion, &expanded);
          expanded_ += expanded;
          for (DocId id : name_set) {
            if (descendants.count(id) > 0) matched.push_back(id);
          }
        }
      } else {
        std::vector<DocId> children;
        for (DocId id : frontier) {
          const auto& ch = module_.groups().Children(id);
          children.insert(children.end(), ch.begin(), ch.end());
          ++expanded_;
        }
        std::sort(children.begin(), children.end());
        children.erase(std::unique(children.begin(), children.end()),
                       children.end());
        matched = Intersect(children, name_set);
      }
      if (step.predicate != nullptr) {
        IDM_ASSIGN_OR_RETURN(matched, EvalPred(*step.predicate, matched));
      }
      frontier = std::move(matched);
      if (frontier.empty()) break;
    }
    return frontier;
  }

  /// Join key of a view under \p ref; nullopt when the view lacks the
  /// referenced component. Keys compare case-insensitively.
  Result<std::optional<std::string>> JoinKey(DocId id, const JoinRef& ref) {
    switch (ref.field) {
      case JoinRef::Field::kName: {
        const std::string& name = module_.names().NameOf(id);
        if (name.empty()) return std::optional<std::string>();
        return std::optional<std::string>(ToLower(name));
      }
      case JoinRef::Field::kClass: {
        const index::CatalogEntry* entry = module_.catalog().Entry(id);
        if (entry == nullptr || entry->class_name.empty()) {
          return std::optional<std::string>();
        }
        return std::optional<std::string>(entry->class_name);
      }
      case JoinRef::Field::kTupleAttr: {
        auto value = module_.tuples().TupleOf(id).Get(ref.attribute);
        if (!value.has_value() || value->is_null()) {
          return std::optional<std::string>();
        }
        return std::optional<std::string>(ToLower(value->ToString()));
      }
      case JoinRef::Field::kContent:
        return Status::Unimplemented("joins on content components");
    }
    return std::optional<std::string>();
  }

  Status EvalJoin(const JoinSpec& join, QueryResult* result) {
    IDM_ASSIGN_OR_RETURN(QueryResult left, Run(*join.left));
    IDM_ASSIGN_OR_RETURN(QueryResult right, Run(*join.right));
    if (left.columns.size() != 1 || right.columns.size() != 1) {
      return Status::Unimplemented("nested join inputs must be unary");
    }
    result->columns = {join.left_binding, join.right_binding};

    // R5: hash the smaller input.
    rules_.insert("R5:hash-join");
    bool left_is_build = left.rows.size() <= right.rows.size();
    const QueryResult& build = left_is_build ? left : right;
    const QueryResult& probe = left_is_build ? right : left;
    const JoinRef& build_ref = left_is_build ? join.left_ref : join.right_ref;
    const JoinRef& probe_ref = left_is_build ? join.right_ref : join.left_ref;

    std::unordered_map<std::string, std::vector<DocId>> table;
    for (const auto& row : build.rows) {
      IDM_ASSIGN_OR_RETURN(std::optional<std::string> key,
                           JoinKey(row[0], build_ref));
      if (key.has_value()) table[*key].push_back(row[0]);
    }
    for (const auto& row : probe.rows) {
      IDM_ASSIGN_OR_RETURN(std::optional<std::string> key,
                           JoinKey(row[0], probe_ref));
      if (!key.has_value()) continue;
      auto it = table.find(*key);
      if (it == table.end()) continue;
      for (DocId match : it->second) {
        ++expanded_;
        if (left_is_build) {
          result->rows.push_back({match, row[0]});
        } else {
          result->rows.push_back({row[0], match});
        }
      }
    }
    std::sort(result->rows.begin(), result->rows.end());
    // Sub-runs already accumulated their expansion work into expanded_.
    return Status::OK();
  }

  const rvm::ReplicaIndexesModule& module_;
  const core::ClassRegistry& classes_;
  Clock* clock_;
  Options options_;
  std::vector<DocId> all_live_;
  size_t expanded_ = 0;
  std::set<std::string> rules_;
};

// ---------------------------------------------------------------------------

QueryProcessor::QueryProcessor(const rvm::ReplicaIndexesModule* module,
                               const core::ClassRegistry* classes,
                               Clock* clock, Options options)
    : module_(module), classes_(classes), clock_(clock), options_(options) {}

Result<QueryResult> QueryProcessor::Execute(const std::string& iql) const {
  IDM_ASSIGN_OR_RETURN(Query query, ParseQuery(iql));
  return Evaluate(query);
}

Result<QueryResult> QueryProcessor::Evaluate(const Query& query) const {
  Micros start = WallNow();
  Evaluation evaluation(*this);
  IDM_ASSIGN_OR_RETURN(QueryResult result, evaluation.Run(query));
  result.elapsed_micros = WallNow() - start;
  return result;
}

}  // namespace idm::iql
