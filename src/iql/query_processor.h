// iQL Query Processor (paper §5.1): parses queries, plans them with simple
// rewrite rules, and evaluates them against the Replica&Indexes module —
// queries never touch the underlying data sources (that is the point of
// the replicas, paper §5.2).
//
// Planning rules (rule-based optimization, as in the paper's prototype):
//   R1  Phrase predicates are answered by the positional content index.
//   R2  Non-wildcard (or wildcard) name steps are answered by the name
//       index instead of scanning the catalog.
//   R3  A top-level conjunction starting with an attribute comparison is
//       seeded from the vertically partitioned tuple index.
//   R4  Descendant steps run forward expansion (BFS over the group
//       replica) from the current frontier, testing membership against the
//       next step's name-match set; expansion work is reported in
//       QueryResult::expanded_views (the paper's Q8 discussion).
//   R5  Joins hash the smaller input.
//   R6  When the name-match set of a descendant step is much smaller than
//       the frontier, expansion runs *backward*: a parent-edge BFS from
//       each candidate with early exit on hitting the frontier. This is
//       the paper's proposed remedy ("backward or bidirectional
//       expansion") for Q8-style blowup, implemented.
//
// Parallel execution (DESIGN.md §8): with Options::threads > 1 the
// processor owns a fixed util::ThreadPool and fans independent work out
// across it — set-operator arms, or/and-children, join inputs, the probe
// side of hash joins, class-conformance filters, and per-candidate
// backward expansion. Every fan-out merges by *input order* (ordered
// merge), so rows, columns, scores, and expanded_views are identical to a
// serial run; only diagnostics (elapsed time, and in rare short-circuit
// corners the rule annotation inside `plan`) may differ.

#ifndef IDM_IQL_QUERY_PROCESSOR_H_
#define IDM_IQL_QUERY_PROCESSOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/view_class.h"
#include "index/probe_counts.h"
#include "iql/ast.h"
#include "iql/query_options.h"
#include "obs/trace.h"
#include "rvm/rvm.h"
#include "util/clock.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"

namespace idm::iql {

struct PlanProgram;  // iql/plan.h

/// Result of one query. Unary queries (paths, filters, unions) produce
/// one-column rows; joins produce one column per binding.
struct QueryResult {
  std::vector<std::string> columns;            ///< binding names; {""} unary
  std::vector<std::vector<index::DocId>> rows; ///< matched view ids
  /// tf-idf relevance scores, parallel to rows, when the query was a
  /// keyword/phrase search (the §5.1 ranking extension). Rows are then
  /// ordered by descending score. Empty for structural queries.
  std::vector<double> scores;
  size_t expanded_views = 0;  ///< forward-expansion work (intermediate results)
  Micros elapsed_micros = 0;  ///< wall-clock evaluation time
  std::string plan;           ///< normalized query text (plan display)
  ResultMeta meta;            ///< governance outcome (complete by default)
  index::ProbeCounts probes;  ///< index lookups this evaluation issued

  size_t size() const { return rows.size(); }
  bool ranked() const { return !scores.empty(); }
};

class QueryProcessor {
 public:
  /// Expansion strategy for descendant ('//') steps.
  enum class Expansion {
    kAuto,      ///< R6 heuristic: backward when candidates << frontier
    kForward,   ///< always BFS down from the frontier (the paper's default)
    kBackward,  ///< always BFS up from the candidates
  };

  /// Which execution engine evaluates queries (DESIGN.md §16).
  enum class Engine {
    kInterp,  ///< tree-walking interpreter (the original evaluator)
    kVm,      ///< planner + bytecode VM over batched postings (default)
    kBoth,    ///< run both, assert byte-identical results (differential)
  };

  struct Options {
    /// Cap on nodes touched by forward expansion per step.
    size_t max_expansion = 5U << 20;
    /// R2 off (ablation A3): name steps scan all catalog entries with
    /// per-name wildcard matching instead of using the name index.
    bool use_name_index = true;
    /// Descendant-step strategy (ablation A3.3 compares these).
    Expansion expansion = Expansion::kAuto;
    /// Evaluation threads. 1 (the default) keeps evaluation strictly
    /// serial — no pool is created. N > 1 spawns a pool of N workers that
    /// leaf scans and sub-queries fan out across; results are merged in
    /// input order and match the serial run view-for-view.
    size_t threads = 1;
    /// Minimum items per chunk before an element-wise scan is split
    /// across the pool (fan-out overhead guard).
    size_t min_parallel_chunk = 256;
    /// Execution engine. The IDM_QUERY_ENGINE environment variable
    /// ("interp" | "vm" | "both") overrides this at construction time.
    Engine engine = Engine::kVm;
  };

  /// All pointers must outlive the processor. \p clock provides now() /
  /// yesterday() (the paper's Q3).
  QueryProcessor(const rvm::ReplicaIndexesModule* module,
                 const core::ClassRegistry* classes, Clock* clock)
      : QueryProcessor(module, classes, clock, Options()) {}
  QueryProcessor(const rvm::ReplicaIndexesModule* module,
                 const core::ClassRegistry* classes, Clock* clock,
                 Options options);
  ~QueryProcessor();

  /// Parses, plans and evaluates \p iql. The governed overloads thread
  /// \p ctx through every evaluation loop (bounded-stride checks, see
  /// util/exec_context.h); parallel arms run under Child() contexts so the
  /// first overrun cancels the siblings. ctx == nullptr (and the
  /// two-argument forms) run exactly the ungoverned code paths.
  Result<QueryResult> Execute(const std::string& iql) const;
  Result<QueryResult> Execute(const std::string& iql,
                              util::ExecContext* ctx) const;

  /// Evaluates an already parsed query. The three-argument form
  /// additionally records the evaluation as children of \p span (node
  /// structure, set-op/join arms, index probes, expansion work); a null
  /// span runs the untraced path bit-for-bit.
  Result<QueryResult> Evaluate(const Query& query) const;
  Result<QueryResult> Evaluate(const Query& query,
                               util::ExecContext* ctx) const;
  Result<QueryResult> Evaluate(const Query& query, util::ExecContext* ctx,
                               obs::TraceSpan* span) const;

  /// Compiles \p query into a bytecode program (iql/plan.h): normalized
  /// text, canonical cache key, fingerprint and ops. Deterministic — the
  /// same query and processor configuration always produce the same
  /// program, so callers (PreparedQuery, the subscription engine) may plan
  /// once and execute many times.
  std::unique_ptr<PlanProgram> Plan(const Query& query) const;

  /// Evaluates a pre-compiled \p program for \p query, honoring the
  /// engine option exactly like the plain overload (the interpreter path
  /// still walks \p query; the VM path executes \p program).
  Result<QueryResult> Evaluate(const Query& query, const PlanProgram& program,
                               util::ExecContext* ctx,
                               obs::TraceSpan* span) const;

  const Options& options() const { return options_; }

  /// Engine-dispatch counters (cumulative since construction).
  struct EngineStats {
    uint64_t plans = 0;        ///< programs compiled by Plan()
    uint64_t interp_runs = 0;  ///< interpreter evaluations
    uint64_t vm_runs = 0;      ///< VM evaluations
    uint64_t both_runs = 0;    ///< differential double-evaluations
    uint64_t mismatches = 0;   ///< divergences detected in kBoth mode
  };
  EngineStats engine_stats() const;

  /// True when \p query is a pure keyword/phrase filter, i.e. one that
  /// gets tf-idf relevance ranking: its row *order* depends on corpus-wide
  /// statistics, not just on the matching views.
  static bool IsRankedQuery(const Query& query);

  /// True when membership of a single view in \p query's result is a
  /// function of that view's own components alone — un-ranked filters and
  /// single-descendant-step paths. These shapes support MatchesDoc and
  /// therefore O(changed views) incremental maintenance (DESIGN.md §14).
  static bool SupportsMatchesDoc(const Query& query);

  /// Per-view membership oracle for SupportsMatchesDoc shapes: true iff
  /// the live view \p id is in the query's (unordered) result set right
  /// now. Dead/unknown ids are simply not members. Unsupported shapes
  /// return InvalidArgument.
  Result<bool> MatchesDoc(const Query& query, index::DocId id) const;

  /// The evaluation pool (null when threads <= 1) — exposed so the facade
  /// can sample its telemetry for DataspaceStats.
  util::ThreadPool* pool() const { return pool_.get(); }

 private:
  class Evaluation;

  /// The three engine paths behind Evaluate(): RunInterp walks the tree,
  /// RunVm executes \p program (compiling on the spot when null), RunBoth
  /// runs both and compares. All share the Finish() epilogue.
  Result<QueryResult> RunInterp(const Query& query, util::ExecContext* ctx,
                                obs::TraceSpan* span) const;
  Result<QueryResult> RunVm(const Query& query, const PlanProgram* program,
                            util::ExecContext* ctx,
                            obs::TraceSpan* span) const;
  Result<QueryResult> RunBoth(const Query& query, const PlanProgram* program,
                              util::ExecContext* ctx,
                              obs::TraceSpan* span) const;
  Result<QueryResult> Finish(Result<QueryResult> run, Micros start,
                             util::ExecContext* ctx,
                             obs::TraceSpan* span) const;

  const rvm::ReplicaIndexesModule* module_;
  const core::ClassRegistry* classes_;
  Clock* clock_;
  Options options_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when threads <= 1
  mutable std::atomic<uint64_t> plans_{0};
  mutable std::atomic<uint64_t> interp_runs_{0};
  mutable std::atomic<uint64_t> vm_runs_{0};
  mutable std::atomic<uint64_t> both_runs_{0};
  mutable std::atomic<uint64_t> mismatches_{0};
};

}  // namespace idm::iql

#endif  // IDM_IQL_QUERY_PROCESSOR_H_
