// Federated queries over networks of PDSMS instances (paper §8: "we are
// planning to extend our system to enable networks of P2P instances").
//
// A Federation holds a set of named peers — independent Dataspace instances
// standing in for iMeMex nodes on other machines — and evaluates one iQL
// query against all of them (query shipping). Results are merged and
// attributed to the peer that produced them; a simulated per-peer network
// latency model charges the local clock, so federation benchmarks behave
// like the remote-IMAP model of Fig. 5.
//
// With Options::threads > 1 the federation scatter-gathers: per-peer
// sub-queries (including their retry/deadline loops) run concurrently on a
// fixed pool, and outcomes are merged in peer-registration order, so the
// merged rows equal the serial merge. An optional per-peer result cache
// keyed on (peer, query, peer VersionLog epoch) skips the simulated network
// round trip entirely while the peer's dataspace is unchanged.

#ifndef IDM_IQL_FEDERATION_H_
#define IDM_IQL_FEDERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "iql/dataspace.h"
#include "iql/query_cache.h"
#include "obs/obs.h"
#include "util/fault.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace idm::iql {

/// One row of a federated result: which peer matched, and what.
struct FederatedRow {
  std::string peer;
  index::DocId id = 0;   ///< id in that peer's catalog
  std::string uri;       ///< resolved eagerly: ids are peer-local
  std::string name;
  double score = 0.0;    ///< peer-local tf-idf score (0 when unranked)
};

struct FederatedResult {
  std::vector<FederatedRow> rows;
  size_t peers_reached = 0;
  size_t peers_failed = 0;
  size_t peers_degraded = 0;   ///< peers that returned a partial result
  size_t retries = 0;          ///< link retries across all peers
  size_t cache_hits = 0;       ///< peers answered from the federation cache
  Micros elapsed_micros = 0;   ///< wall + simulated network cost
  /// Names of peers that failed, with the reason ("peer: status").
  std::vector<std::string> failures;

  size_t size() const { return rows.size(); }
};

/// A query-shipping federation of Dataspace peers.
class Federation {
 public:
  struct PeerLatency {
    Micros per_query_micros = 25000;     ///< WAN round trip per shipped query
    Micros per_result_micros = 50;       ///< result-row transfer cost
  };

  /// Resilience knobs. Each peer gets its own retry budget and simulated
  /// time budget, so one dead or slow peer degrades the merged result
  /// (peers_failed) instead of dominating the federation's latency.
  struct Options {
    /// Link-level retry per peer; backoff is charged to the clock.
    RetryPolicy retry{/*max_attempts=*/3, /*initial_backoff_micros=*/10000,
                      /*backoff_multiplier=*/2.0,
                      /*max_backoff_micros=*/200000,
                      /*jitter_fraction=*/0.25};
    /// Simulated budget (network + backoff) per peer; 0 disables the
    /// deadline. A peer that would exceed it is abandoned as failed.
    Micros per_peer_deadline_micros = 2000000;
    /// Seed for deterministic backoff jitter. Serial execution draws one
    /// jitter stream across peers in registration order; scatter-gather
    /// derives an independent stream per peer from this seed (still fully
    /// deterministic, independent of scheduling).
    uint64_t jitter_seed = 7;
    /// Scatter-gather width. 1 (default) ships to peers sequentially,
    /// byte-for-byte the pre-parallel behavior; N > 1 queries up to N
    /// peers concurrently and merges outcomes in registration order.
    size_t threads = 1;
    /// Per-peer result cache, keyed on the peer's VersionLog epoch.
    /// Disabled by default: a cache hit legitimately skips the simulated
    /// network cost and link-fault schedule, which resilience tests that
    /// count per-call faults must not see unless they opt in.
    QueryCache::Options cache{/*enabled=*/false, /*max_bytes=*/8U << 20};
  };

  /// \p clock is charged with the simulated network cost (may be nullptr).
  explicit Federation(Clock* clock = nullptr) : Federation(clock, Options()) {}
  Federation(Clock* clock, Options options);
  ~Federation();

  /// Adds a peer. The Dataspace must outlive the federation. Peer names
  /// must be unique. \p link, when set, injects faults into the network
  /// path to this peer (shipping a query may fail with kIoError /
  /// kUnavailable and be retried under Options::retry); it must outlive
  /// the federation. Under scatter-gather each peer's link injector is
  /// consulted only from that peer's task — do not share one injector
  /// across peers when threads > 1.
  Status AddPeer(std::string name, const Dataspace* peer,
                 PeerLatency latency = PeerLatency{25000, 50},
                 FaultInjector* link = nullptr);

  size_t peer_count() const { return peers_.size(); }

  /// Ships \p iql to every peer and merges the unary results. Ranked
  /// results merge by descending peer-local score (cross-peer scores are
  /// comparable only loosely — idf statistics are peer-local; this is the
  /// standard federated-IR caveat and is preserved deliberately). Peers
  /// that fail to evaluate the query are counted, not fatal — unless every
  /// peer fails, in which case the first error (in registration order) is
  /// returned. Transient link faults are retried under Options::retry
  /// (backoff charged to the clock); each peer is bounded by
  /// Options::per_peer_deadline_micros of simulated time.
  Result<FederatedResult> Query(const std::string& iql) const;

  /// Governed federated query: each peer's simulated budget is the
  /// configured per-peer deadline clamped to what remains of \p ctx's
  /// deadline, and each peer evaluates under a derived Dataspace deadline —
  /// a slow peer returns a partial result (peers_degraded) rather than
  /// blowing the caller's budget. A doomed \p ctx abandons the remaining
  /// peers (counted failed with the doom reason). ctx == nullptr is the
  /// ungoverned overload above.
  Result<FederatedResult> Query(const std::string& iql,
                                util::ExecContext* ctx) const;

  /// Federation-side per-peer cache statistics.
  QueryCache::Stats cache_stats() const { return cache_.stats(); }

  /// Routes federation traces (obs::kFederationTrace — one span per peer
  /// RPC) and metrics into \p obs; nullptr detaches. The sink must outlive
  /// the federation. Typically the coordinator dataspace's observability().
  void SetObservability(obs::Observability* obs);

 private:
  struct Peer {
    std::string name;
    const Dataspace* dataspace;
    PeerLatency latency;
    FaultInjector* link;
  };
  /// Everything one peer contributes to the merge; produced serially or by
  /// a scatter task, consumed in registration order either way.
  struct PeerOutcome {
    std::vector<FederatedRow> rows;
    bool reached = false;
    bool cache_hit = false;
    bool degraded = false;  ///< peer answered with an incomplete result
    size_t retries = 0;
    Micros charged = 0;  ///< simulated network + backoff cost
    Status error;        ///< why the peer failed (when !reached)
  };

  /// Runs one peer's full ship/retry/deadline loop. \p clock, when set, is
  /// advanced incrementally (serial mode); scatter tasks pass nullptr and
  /// the accumulated charge is applied at merge time. \p ctx (may be null)
  /// is the caller's governance context; see Query(iql, ctx).
  PeerOutcome QueryPeer(const Peer& peer, const std::string& iql,
                        const std::string& cache_key, bool cacheable,
                        Rng* jitter, Clock* clock, util::ExecContext* ctx,
                        obs::TraceSpan* span) const;

  Clock* clock_;
  Options options_;
  std::vector<Peer> peers_;
  mutable QueryCache cache_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when threads <= 1
  obs::Observability* obs_ = nullptr;
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* peer_rpcs = nullptr;
    obs::Counter* peer_failures = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* cache_hits = nullptr;
  } metrics_;
};

}  // namespace idm::iql

#endif  // IDM_IQL_FEDERATION_H_
