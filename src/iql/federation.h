// Federated queries over networks of PDSMS instances (paper §8: "we are
// planning to extend our system to enable networks of P2P instances").
//
// A Federation holds a set of named peers — independent Dataspace instances
// standing in for iMeMex nodes on other machines — and evaluates one iQL
// query against all of them (query shipping). Results are merged and
// attributed to the peer that produced them; a simulated per-peer network
// latency model charges the local clock, so federation benchmarks behave
// like the remote-IMAP model of Fig. 5.

#ifndef IDM_IQL_FEDERATION_H_
#define IDM_IQL_FEDERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "iql/dataspace.h"
#include "util/fault.h"
#include "util/retry.h"

namespace idm::iql {

/// One row of a federated result: which peer matched, and what.
struct FederatedRow {
  std::string peer;
  index::DocId id = 0;   ///< id in that peer's catalog
  std::string uri;       ///< resolved eagerly: ids are peer-local
  std::string name;
  double score = 0.0;    ///< peer-local tf-idf score (0 when unranked)
};

struct FederatedResult {
  std::vector<FederatedRow> rows;
  size_t peers_reached = 0;
  size_t peers_failed = 0;
  size_t retries = 0;          ///< link retries across all peers
  Micros elapsed_micros = 0;   ///< wall + simulated network cost
  /// Names of peers that failed, with the reason ("peer: status").
  std::vector<std::string> failures;

  size_t size() const { return rows.size(); }
};

/// A query-shipping federation of Dataspace peers.
class Federation {
 public:
  struct PeerLatency {
    Micros per_query_micros = 25000;     ///< WAN round trip per shipped query
    Micros per_result_micros = 50;       ///< result-row transfer cost
  };

  /// Resilience knobs. Each peer gets its own retry budget and simulated
  /// time budget, so one dead or slow peer degrades the merged result
  /// (peers_failed) instead of dominating the federation's latency.
  struct Options {
    /// Link-level retry per peer; backoff is charged to the clock.
    RetryPolicy retry{/*max_attempts=*/3, /*initial_backoff_micros=*/10000,
                      /*backoff_multiplier=*/2.0,
                      /*max_backoff_micros=*/200000,
                      /*jitter_fraction=*/0.25};
    /// Simulated budget (network + backoff) per peer; 0 disables the
    /// deadline. A peer that would exceed it is abandoned as failed.
    Micros per_peer_deadline_micros = 2000000;
    /// Seed for deterministic backoff jitter.
    uint64_t jitter_seed = 7;
  };

  /// \p clock is charged with the simulated network cost (may be nullptr).
  explicit Federation(Clock* clock = nullptr) : Federation(clock, Options()) {}
  Federation(Clock* clock, Options options) : clock_(clock), options_(options) {}

  /// Adds a peer. The Dataspace must outlive the federation. Peer names
  /// must be unique. \p link, when set, injects faults into the network
  /// path to this peer (shipping a query may fail with kIoError /
  /// kUnavailable and be retried under Options::retry); it must outlive
  /// the federation.
  Status AddPeer(std::string name, const Dataspace* peer,
                 PeerLatency latency = PeerLatency{25000, 50},
                 FaultInjector* link = nullptr);

  size_t peer_count() const { return peers_.size(); }

  /// Ships \p iql to every peer and merges the unary results. Ranked
  /// results merge by descending peer-local score (cross-peer scores are
  /// comparable only loosely — idf statistics are peer-local; this is the
  /// standard federated-IR caveat and is preserved deliberately). Peers
  /// that fail to evaluate the query are counted, not fatal — unless every
  /// peer fails, in which case the first error is returned. Transient link
  /// faults are retried under Options::retry (backoff charged to the
  /// clock); each peer is bounded by Options::per_peer_deadline_micros of
  /// simulated time.
  Result<FederatedResult> Query(const std::string& iql) const;

 private:
  struct Peer {
    std::string name;
    const Dataspace* dataspace;
    PeerLatency latency;
    FaultInjector* link;
  };
  Clock* clock_;
  Options options_;
  std::vector<Peer> peers_;
};

}  // namespace idm::iql

#endif  // IDM_IQL_FEDERATION_H_
