// Federated queries over networks of PDSMS instances (paper §8: "we are
// planning to extend our system to enable networks of P2P instances").
//
// A Federation holds a set of named peers — independent Dataspace instances
// standing in for iMeMex nodes on other machines — and evaluates one iQL
// query against all of them (query shipping). Results are merged and
// attributed to the peer that produced them; a simulated per-peer network
// latency model charges the local clock, so federation benchmarks behave
// like the remote-IMAP model of Fig. 5.

#ifndef IDM_IQL_FEDERATION_H_
#define IDM_IQL_FEDERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "iql/dataspace.h"

namespace idm::iql {

/// One row of a federated result: which peer matched, and what.
struct FederatedRow {
  std::string peer;
  index::DocId id = 0;   ///< id in that peer's catalog
  std::string uri;       ///< resolved eagerly: ids are peer-local
  std::string name;
  double score = 0.0;    ///< peer-local tf-idf score (0 when unranked)
};

struct FederatedResult {
  std::vector<FederatedRow> rows;
  size_t peers_reached = 0;
  size_t peers_failed = 0;
  Micros elapsed_micros = 0;  ///< wall + simulated network cost

  size_t size() const { return rows.size(); }
};

/// A query-shipping federation of Dataspace peers.
class Federation {
 public:
  struct PeerLatency {
    Micros per_query_micros = 25000;     ///< WAN round trip per shipped query
    Micros per_result_micros = 50;       ///< result-row transfer cost
  };

  /// \p clock is charged with the simulated network cost (may be nullptr).
  explicit Federation(Clock* clock = nullptr) : clock_(clock) {}

  /// Adds a peer. The Dataspace must outlive the federation. Peer names
  /// must be unique.
  Status AddPeer(std::string name, const Dataspace* peer,
                 PeerLatency latency = PeerLatency{25000, 50});

  size_t peer_count() const { return peers_.size(); }

  /// Ships \p iql to every peer and merges the unary results. Ranked
  /// results merge by descending peer-local score (cross-peer scores are
  /// comparable only loosely — idf statistics are peer-local; this is the
  /// standard federated-IR caveat and is preserved deliberately). Peers
  /// that fail to evaluate the query are counted, not fatal — unless every
  /// peer fails, in which case the first error is returned.
  Result<FederatedResult> Query(const std::string& iql) const;

 private:
  struct Peer {
    std::string name;
    const Dataspace* dataspace;
    PeerLatency latency;
  };
  Clock* clock_;
  std::vector<Peer> peers_;
};

}  // namespace idm::iql

#endif  // IDM_IQL_FEDERATION_H_
