#include "iql/parser.h"

#include "iql/lexer.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace idm::iql {

using index::CompareOp;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    IDM_ASSIGN_OR_RETURN(Query query, ParseTop());
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing tokens after query");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Accept(TokenType type) {
    if (Peek().type != type) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenType type) {
    if (Accept(type)) return Status::OK();
    return Error(std::string("expected ") + TokenTypeName(type) + ", found " +
                 TokenTypeName(Peek().type));
  }
  Status Error(const std::string& message) const {
    return Status::ParseError("iQL at offset " + std::to_string(Peek().offset) +
                              ": " + message);
  }

  Result<Query> ParseTop() {
    switch (Peek().type) {
      case TokenType::kUnion: return ParseSetOp(Query::Kind::kUnion);
      case TokenType::kJoin: return ParseJoin();
      case TokenType::kSlashSlash:
      case TokenType::kSlash: return ParsePath();
      case TokenType::kIdent:
        // intersect(...) / except(...) are contextual keywords: plain
        // identifiers elsewhere, set operators before '('.
        if (Peek(1).type == TokenType::kLParen) {
          std::string lower = ToLower(Peek().text);
          if (lower == "intersect") return ParseSetOp(Query::Kind::kIntersect);
          if (lower == "except") return ParseSetOp(Query::Kind::kExcept);
        }
        return ParseFilter();
      default: return ParseFilter();
    }
  }

  Result<Query> ParseSetOp(Query::Kind kind) {
    Take();  // 'union' / 'intersect' / 'except'
    IDM_RETURN_NOT_OK(Expect(TokenType::kLParen));
    Query query;
    query.kind = kind;
    do {
      IDM_ASSIGN_OR_RETURN(Query arm, ParseTop());
      query.arms.push_back(std::make_unique<Query>(std::move(arm)));
    } while (Accept(TokenType::kComma));
    IDM_RETURN_NOT_OK(Expect(TokenType::kRParen));
    if (query.arms.size() < 2) {
      return Error("set operators need at least two arms");
    }
    if (kind == Query::Kind::kExcept && query.arms.size() != 2) {
      return Error("except takes exactly two arms");
    }
    return query;
  }

  Result<JoinRef> ParseJoinRef() {
    if (Peek().type != TokenType::kIdent) {
      return Error("expected a join reference like A.name");
    }
    std::string dotted = Take().text;
    auto parts = Split(dotted, '.');
    if (parts.size() < 2) {
      return Error("join reference '" + dotted + "' must be qualified");
    }
    JoinRef ref;
    ref.binding = parts[0];
    std::string field = ToLower(parts[1]);
    if (field == "name" && parts.size() == 2) {
      ref.field = JoinRef::Field::kName;
    } else if (field == "class" && parts.size() == 2) {
      ref.field = JoinRef::Field::kClass;
    } else if (field == "content" && parts.size() == 2) {
      ref.field = JoinRef::Field::kContent;
    } else if (field == "tuple" && parts.size() == 3) {
      ref.field = JoinRef::Field::kTupleAttr;
      ref.attribute = parts[2];
    } else {
      return Error("unsupported join reference '" + dotted + "'");
    }
    return ref;
  }

  Result<Query> ParseJoin() {
    Take();  // 'join'
    IDM_RETURN_NOT_OK(Expect(TokenType::kLParen));
    auto spec = std::make_unique<JoinSpec>();
    IDM_ASSIGN_OR_RETURN(Query left, ParseTop());
    spec->left = std::make_unique<Query>(std::move(left));
    IDM_RETURN_NOT_OK(Expect(TokenType::kAs));
    if (Peek().type != TokenType::kIdent) return Error("expected binding name");
    spec->left_binding = Take().text;
    IDM_RETURN_NOT_OK(Expect(TokenType::kComma));
    IDM_ASSIGN_OR_RETURN(Query right, ParseTop());
    spec->right = std::make_unique<Query>(std::move(right));
    IDM_RETURN_NOT_OK(Expect(TokenType::kAs));
    if (Peek().type != TokenType::kIdent) return Error("expected binding name");
    spec->right_binding = Take().text;
    IDM_RETURN_NOT_OK(Expect(TokenType::kComma));
    IDM_ASSIGN_OR_RETURN(JoinRef a, ParseJoinRef());
    IDM_RETURN_NOT_OK(Expect(TokenType::kEq));
    IDM_ASSIGN_OR_RETURN(JoinRef b, ParseJoinRef());
    IDM_RETURN_NOT_OK(Expect(TokenType::kRParen));

    // Normalize ref order to (left, right).
    if (a.binding == spec->left_binding && b.binding == spec->right_binding) {
      spec->left_ref = std::move(a);
      spec->right_ref = std::move(b);
    } else if (a.binding == spec->right_binding &&
               b.binding == spec->left_binding) {
      spec->left_ref = std::move(b);
      spec->right_ref = std::move(a);
    } else {
      return Error("join condition must reference both bindings");
    }
    Query query;
    query.kind = Query::Kind::kJoin;
    query.join = std::move(spec);
    return query;
  }

  Result<Query> ParsePath() {
    Query query;
    query.kind = Query::Kind::kPath;
    while (Peek().type == TokenType::kSlashSlash ||
           Peek().type == TokenType::kSlash) {
      PathStep step;
      step.descendant = Take().type == TokenType::kSlashSlash;
      if (Peek().type == TokenType::kIdent) {
        step.name_pattern = Take().text;
      }
      if (Accept(TokenType::kLBracket)) {
        IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> pred, ParseOr());
        IDM_RETURN_NOT_OK(Expect(TokenType::kRBracket));
        step.predicate = std::move(pred);
      }
      query.steps.push_back(std::move(step));
    }
    if (query.steps.empty()) return Error("empty path expression");
    return query;
  }

  Result<Query> ParseFilter() {
    IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> pred, ParseOr());
    Query query;
    query.kind = Query::Kind::kFilter;
    query.filter = std::move(pred);
    return query;
  }

  Result<std::unique_ptr<PredNode>> ParseOr() {
    IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> left, ParseAnd());
    while (Accept(TokenType::kOr)) {
      IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> right, ParseAnd());
      auto node = std::make_unique<PredNode>();
      node->kind = PredNode::Kind::kOr;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<PredNode>> ParseAnd() {
    IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> left, ParseUnary());
    while (Accept(TokenType::kAnd)) {
      IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> right, ParseUnary());
      auto node = std::make_unique<PredNode>();
      node->kind = PredNode::Kind::kAnd;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<PredNode>> ParseUnary() {
    if (Accept(TokenType::kNot)) {
      IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> child, ParseUnary());
      auto node = std::make_unique<PredNode>();
      node->kind = PredNode::Kind::kNot;
      node->children.push_back(std::move(child));
      return node;
    }
    return ParseAtom();
  }

  Result<std::unique_ptr<PredNode>> ParseAtom() {
    if (Peek().type == TokenType::kString) {
      auto node = std::make_unique<PredNode>();
      node->kind = PredNode::Kind::kPhrase;
      node->text = Take().text;
      return node;
    }
    if (Accept(TokenType::kLParen)) {
      IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> inner, ParseOr());
      IDM_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return inner;
    }
    if (Accept(TokenType::kLBracket)) {
      IDM_ASSIGN_OR_RETURN(std::unique_ptr<PredNode> inner, ParseOr());
      IDM_RETURN_NOT_OK(Expect(TokenType::kRBracket));
      return inner;
    }
    if (Peek().type != TokenType::kIdent) {
      return Error(std::string("expected a predicate, found ") +
                   TokenTypeName(Peek().type));
    }
    std::string ident = Take().text;
    std::string lower = ToLower(ident);

    // class = "..." and name = "..." special forms.
    if (lower == "class" || lower == "name") {
      IDM_RETURN_NOT_OK(Expect(TokenType::kEq));
      if (Peek().type != TokenType::kString &&
          Peek().type != TokenType::kIdent) {
        return Error("expected a value after '" + lower + " ='");
      }
      auto node = std::make_unique<PredNode>();
      node->kind = lower == "class" ? PredNode::Kind::kClassEq
                                    : PredNode::Kind::kNameEq;
      node->text = Take().text;
      return node;
    }

    // Attribute comparison.
    CompareOp op;
    switch (Peek().type) {
      case TokenType::kEq: op = CompareOp::kEq; break;
      case TokenType::kNe: op = CompareOp::kNe; break;
      case TokenType::kLt: op = CompareOp::kLt; break;
      case TokenType::kLe: op = CompareOp::kLe; break;
      case TokenType::kGt: op = CompareOp::kGt; break;
      case TokenType::kGe: op = CompareOp::kGe; break;
      default:
        return Error("expected a comparison operator after '" + ident + "'");
    }
    Take();

    auto node = std::make_unique<PredNode>();
    node->kind = PredNode::Kind::kCompare;
    node->attribute = ident;
    node->op = op;
    switch (Peek().type) {
      case TokenType::kNumber:
        node->literal = core::Value::Int(Take().number);
        break;
      case TokenType::kString:
        node->literal = core::Value::String(Take().text);
        break;
      case TokenType::kDate: {
        Micros micros = 0;
        Token token = Take();
        if (!ParseDate(token.text, &micros)) {
          return Error("malformed date '@" + token.text + "'");
        }
        node->literal = core::Value::Date(micros);
        break;
      }
      case TokenType::kIdent: {
        std::string fn = ToLower(Take().text);
        IDM_RETURN_NOT_OK(Expect(TokenType::kLParen));
        IDM_RETURN_NOT_OK(Expect(TokenType::kRParen));
        if (fn == "yesterday") {
          node->literal_kind = PredNode::LiteralKind::kYesterday;
        } else if (fn == "now" || fn == "today") {
          node->literal_kind = PredNode::LiteralKind::kNow;
        } else {
          return Error("unknown function '" + fn + "()'");
        }
        break;
      }
      default:
        return Error("expected a literal after the comparison operator");
    }
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& query) {
  IDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(query));
  return Parser(std::move(tokens)).Run();
}

}  // namespace idm::iql
