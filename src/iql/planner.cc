#include "iql/planner.h"

#include <utility>

namespace idm::iql {

namespace {

uint16_t NewReg(PlanProgram* program) {
  return program->num_regs++;
}

uint32_t Intern(PlanProgram* program, const std::string& text) {
  for (uint32_t i = 0; i < program->strings.size(); ++i) {
    if (program->strings[i] == text) return i;
  }
  program->strings.push_back(text);
  return static_cast<uint32_t>(program->strings.size() - 1);
}

uint32_t InternLiteral(PlanProgram* program, const core::Value& value) {
  program->literals.push_back(value);
  return static_cast<uint32_t>(program->literals.size() - 1);
}

void Emit(PlanProgram* program, PlanOp op) {
  program->ops.push_back(op);
}

/// Mirrors Evaluation::CollectPhrases: phrases in predicate-tree order;
/// rankable goes false on any non-keyword leaf.
void CollectPhrases(const PredNode& pred, std::vector<std::string>* phrases,
                    bool* rankable) {
  switch (pred.kind) {
    case PredNode::Kind::kPhrase:
      phrases->push_back(pred.text);
      return;
    case PredNode::Kind::kAnd:
    case PredNode::Kind::kOr:
    case PredNode::Kind::kNot:
      for (const auto& child : pred.children) {
        CollectPhrases(*child, phrases, rankable);
      }
      return;
    default:
      *rankable = false;
      return;
  }
}

}  // namespace

std::unique_ptr<PlanProgram> Planner::Lower(const Query& query) const {
  std::unique_ptr<PlanProgram> program = LowerQueryProgram(query);
  // Only the root program's materialization runs governed (§10 prefix
  // capture, the interpreter's root_ && depth_ == 1 condition): sub-program
  // materializations (set-op arms, join inputs) stay ungoverned.
  for (PlanOp& op : program->ops) {
    if (op.code == OpCode::kMaterialize) op.flags |= 1;
  }
  program->normalized = ToString(query);
  program->cache_key = CanonicalQueryKey(query);
  program->fingerprint = Fingerprint64(program->cache_key);
  return program;
}

std::unique_ptr<PlanProgram> Planner::LowerQueryProgram(
    const Query& query) const {
  auto program = std::make_unique<PlanProgram>();
  program->flavor = PlanProgram::Flavor::kQuery;
  program->kind = query.kind;
  switch (query.kind) {
    case Query::Kind::kFilter: {
      uint16_t live = NewReg(program.get());
      Emit(program.get(), {OpCode::kLoadLive, 0, live});
      uint16_t out = live;
      if (query.filter != nullptr) {
        out = LowerPred(*query.filter, live, program.get());
        bool rankable = true;
        CollectPhrases(*query.filter, &program->rank_phrases, &rankable);
        program->rankable = rankable && !program->rank_phrases.empty();
        if (!program->rankable) program->rank_phrases.clear();
      }
      Emit(program.get(), {OpCode::kMaterialize, 0, 0, out});
      if (program->rankable) {
        Emit(program.get(), {OpCode::kRankOrClear, 0});
      }
      break;
    }
    case Query::Kind::kPath: {
      uint16_t frontier = NewReg(program.get());
      std::vector<size_t> break_jumps;
      for (size_t i = 0; i < query.steps.size(); ++i) {
        const PathStep& step = query.steps[i];
        uint16_t names = NewReg(program.get());
        Emit(program.get(),
             {OpCode::kNameMatch, 0, names, 0, 0,
              Intern(program.get(), step.name_pattern)});
        if (i == 0) {
          if (step.descendant) {
            Emit(program.get(), {OpCode::kMove, 0, frontier, names});
          } else {
            uint16_t roots = NewReg(program.get());
            Emit(program.get(), {OpCode::kRootChildren, 0, roots});
            Emit(program.get(),
                 {OpCode::kIntersect, 0, frontier, roots, names});
          }
        } else if (step.descendant) {
          Emit(program.get(), {OpCode::kExpand, 0, frontier, frontier, names});
        } else {
          Emit(program.get(),
               {OpCode::kStepChild, 0, frontier, frontier, names});
        }
        if (step.predicate != nullptr) {
          uint16_t filtered =
              LowerPred(*step.predicate, frontier, program.get());
          Emit(program.get(), {OpCode::kMove, 0, frontier, filtered});
        }
        if (i + 1 < query.steps.size()) {
          break_jumps.push_back(program->ops.size());
          Emit(program.get(), {OpCode::kJumpIfEmpty, 0, 0, frontier});
        }
      }
      uint32_t end = static_cast<uint32_t>(program->ops.size());
      for (size_t pc : break_jumps) program->ops[pc].aux = end;
      Emit(program.get(), {OpCode::kMaterialize, 0, 0, frontier});
      break;
    }
    case Query::Kind::kUnion:
    case Query::Kind::kIntersect:
    case Query::Kind::kExcept: {
      uint32_t first = static_cast<uint32_t>(program->subs.size());
      for (const auto& arm : query.arms) {
        program->subs.push_back(LowerQueryProgram(*arm));
      }
      uint8_t op = query.kind == Query::Kind::kUnion       ? 0
                   : query.kind == Query::Kind::kIntersect ? 1
                                                           : 2;
      uint16_t out = NewReg(program.get());
      Emit(program.get(),
           {OpCode::kSetOp, op, out, 0,
            static_cast<uint16_t>(query.arms.size()), 0, first});
      Emit(program.get(), {OpCode::kMaterialize, 0, 0, out});
      break;
    }
    case Query::Kind::kJoin: {
      program->join = std::make_unique<JoinInfo>();
      program->join->left = LowerQueryProgram(*query.join->left);
      program->join->right = LowerQueryProgram(*query.join->right);
      program->join->left_binding = query.join->left_binding;
      program->join->right_binding = query.join->right_binding;
      program->join->left_ref = query.join->left_ref;
      program->join->right_ref = query.join->right_ref;
      Emit(program.get(), {OpCode::kJoin, 0});
      break;
    }
  }
  return program;
}

std::unique_ptr<PlanProgram> Planner::LowerPredProgram(
    const PredNode& pred) const {
  auto program = std::make_unique<PlanProgram>();
  program->flavor = PlanProgram::Flavor::kPred;
  uint16_t universe = NewReg(program.get());  // r0: seeded by the executor
  program->out_reg = LowerPred(pred, universe, program.get());
  return program;
}

uint16_t Planner::LowerPred(const PredNode& pred, uint16_t universe,
                            PlanProgram* program) const {
  switch (pred.kind) {
    case PredNode::Kind::kPhrase: {
      uint16_t out = NewReg(program);
      Emit(program, {OpCode::kPhrase, 0, out, universe, 0,
                     Intern(program, pred.text)});
      return out;
    }
    case PredNode::Kind::kCompare: {
      uint16_t out = NewReg(program);
      uint8_t flags = static_cast<uint8_t>(pred.op) |
                      static_cast<uint8_t>(pred.literal_kind) << 4;
      Emit(program, {OpCode::kTupleScan, flags, out, universe, 0,
                     Intern(program, pred.attribute),
                     InternLiteral(program, pred.literal)});
      return out;
    }
    case PredNode::Kind::kClassEq: {
      uint16_t out = NewReg(program);
      Emit(program, {OpCode::kClassFilter, 0, out, universe, 0,
                     Intern(program, pred.text)});
      return out;
    }
    case PredNode::Kind::kNameEq: {
      uint16_t names = NewReg(program);
      Emit(program,
           {OpCode::kNameMatch, 0, names, 0, 0, Intern(program, pred.text)});
      uint16_t out = NewReg(program);
      Emit(program, {OpCode::kIntersect, 0, out, names, universe});
      return out;
    }
    case PredNode::Kind::kAnd: {
      if (parallel_ && pred.children.size() > 1) {
        uint32_t first = static_cast<uint32_t>(program->subs.size());
        for (const auto& child : pred.children) {
          program->subs.push_back(LowerPredProgram(*child));
        }
        uint16_t out = NewReg(program);
        Emit(program, {OpCode::kParGroup, 0, out, universe,
                       static_cast<uint16_t>(pred.children.size()), 0, first});
        return out;
      }
      // Serial accumulator chain with the interpreter's short-circuit:
      // child i+1 runs only while the accumulator is non-empty.
      uint16_t acc = NewReg(program);
      Emit(program, {OpCode::kMove, 0, acc, universe});
      std::vector<size_t> jumps;
      for (size_t i = 0; i < pred.children.size(); ++i) {
        uint16_t child = LowerPred(*pred.children[i], acc, program);
        Emit(program, {OpCode::kMove, 0, acc, child});
        if (i + 1 < pred.children.size()) {
          jumps.push_back(program->ops.size());
          Emit(program, {OpCode::kJumpIfEmpty, 0, 0, acc});
        }
      }
      uint32_t end = static_cast<uint32_t>(program->ops.size());
      for (size_t pc : jumps) program->ops[pc].aux = end;
      return acc;
    }
    case PredNode::Kind::kOr: {
      if (parallel_ && pred.children.size() > 1) {
        uint32_t first = static_cast<uint32_t>(program->subs.size());
        for (const auto& child : pred.children) {
          program->subs.push_back(LowerPredProgram(*child));
        }
        uint16_t out = NewReg(program);
        Emit(program, {OpCode::kParGroup, 1, out, universe,
                       static_cast<uint16_t>(pred.children.size()), 0, first});
        return out;
      }
      uint16_t acc = NewReg(program);  // registers start out empty
      for (const auto& child : pred.children) {
        uint16_t ids = LowerPred(*child, universe, program);
        Emit(program, {OpCode::kUnion, 0, acc, acc, ids});
      }
      return acc;
    }
    case PredNode::Kind::kNot: {
      uint16_t child = LowerPred(*pred.children[0], universe, program);
      uint16_t out = NewReg(program);
      Emit(program, {OpCode::kDifference, 0, out, universe, child});
      return out;
    }
  }
  return universe;
}

}  // namespace idm::iql
