// Lowers parsed + rule-optimized iQL (the logical algebra of ast.h) into
// flat PlanPrograms (plan.h) for the VM. Lowering mirrors the interpreter's
// evaluation structure exactly — serial and/or chains become accumulator
// register chains with short-circuit jumps, pool-backed processors lower
// multi-child and/or nodes and set-operator arms to parallel sub-programs —
// so the VM's observable behavior (rows, scores, rule firings, governance
// tick schedule at threads=1) is byte-identical to the tree walker's.

#ifndef IDM_IQL_PLANNER_H_
#define IDM_IQL_PLANNER_H_

#include <memory>

#include "iql/ast.h"
#include "iql/plan.h"

namespace idm::iql {

class Planner {
 public:
  /// \p parallel: whether the executing processor owns a thread pool
  /// (QueryProcessor::Options::threads > 1). The flag is static per
  /// processor, so it is compiled into the program shape the same way the
  /// interpreter's Parallel() check selects its evaluation structure.
  explicit Planner(bool parallel) : parallel_(parallel) {}

  /// Compiles \p query into a root program (normalized text, canonical
  /// cache key and fingerprint filled in). Never fails: shapes the
  /// evaluator rejects (nested join inputs, set ops over joins) lower
  /// fine and produce the interpreter's runtime error when executed.
  std::unique_ptr<PlanProgram> Lower(const Query& query) const;

 private:
  std::unique_ptr<PlanProgram> LowerQueryProgram(const Query& query) const;
  std::unique_ptr<PlanProgram> LowerPredProgram(const PredNode& pred) const;
  uint16_t LowerPred(const PredNode& pred, uint16_t universe,
                     PlanProgram* program) const;

  bool parallel_;
};

}  // namespace idm::iql

#endif  // IDM_IQL_PLANNER_H_
