// Instantiation of email in iDM (paper §4.4.1).
//
// Email folders become emailfolder views, messages become emailmessage
// views (η = subject, τ = from/to/date/size headers, χ = body text) and
// attachments become attachment views — a subclass of file, so an attached
// .tex document is, to iDM, the same kind of node as a .tex file on disk.
// That is precisely what lets the paper's Query 2 and Q8 span the
// email/filesystem boundary.
//
// Both modelling options of §4.4.1 are provided:
//   Option 1 (state):  MakeInboxStateView — a finite Q of the messages
//                      currently in the folder; retrievable repeatedly.
//   Option 2 (stream): InboxStream — an infinite Q of messages delivered
//                      over the stream's lifetime; consuming a message
//                      expunges it from the server.

#ifndef IDM_EMAIL_EMAIL_VIEWS_H_
#define IDM_EMAIL_EMAIL_VIEWS_H_

#include <memory>
#include <string>

#include "core/resource_view.h"
#include "email/imap.h"

namespace idm::email {

/// URI of the view for a folder/message/attachment on \p server:
///   "imap://<folder>"            (folder)
///   "imap://<folder>/<uid>"      (message)
///   "imap://<folder>/<uid>/att/<i>" (attachment)
std::string ImapFolderUri(const std::string& folder);
std::string ImapMessageUri(const std::string& folder, uint64_t uid);

/// Root view over all folders of \p server (class emailfolder, name
/// "imap"). Folder hierarchy is derived from '/'-separated folder names;
/// children are computed lazily from the live server.
core::ViewPtr MakeImapRootView(std::shared_ptr<ImapServer> server);

/// View of one named folder ("" = the root); children (subfolders and
/// messages) are computed lazily.
core::ViewPtr MakeImapFolderView(std::shared_ptr<ImapServer> server,
                                 const std::string& folder);

/// One message as an emailmessage view; components fetch from the server
/// lazily (one FetchRaw per materialization).
core::ViewPtr MakeMessageView(std::shared_ptr<ImapServer> server,
                              const std::string& folder, uint64_t uid);

/// Option 1: the *state* of a folder as an inboxstate view with a finite,
/// lazily computed Q. Repeated group accesses observe the then-current
/// state.
core::ViewPtr MakeInboxStateView(std::shared_ptr<ImapServer> server,
                                 const std::string& folder);

/// Option 2: the *stream* of messages routed to a folder. Subscribes to the
/// server; each delivered message is fetched into the stream's buffer and
/// expunged from the server (single point of access, paper §4.4.1).
class InboxStream {
 public:
  /// Starts consuming \p folder on \p server: existing messages are drained
  /// immediately, future deliveries arrive via subscription.
  InboxStream(std::shared_ptr<ImapServer> server, std::string folder);

  /// The inboxstream view: an infinite Q whose i-th element is the i-th
  /// message ever delivered. Positions not yet delivered yield nullptr from
  /// the cursor (the simulation cannot block awaiting the future).
  core::ViewPtr View() const;

  /// Messages delivered so far.
  size_t delivered() const { return buffer_->size(); }

 private:
  void Drain();

  std::shared_ptr<ImapServer> server_;
  std::string folder_;
  std::shared_ptr<std::vector<core::ViewPtr>> buffer_;
};

}  // namespace idm::email

#endif  // IDM_EMAIL_EMAIL_VIEWS_H_
