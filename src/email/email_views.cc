#include "email/email_views.h"

#include <mutex>

#include "core/view_class.h"
#include "util/string_util.h"

namespace idm::email {

using core::ContentComponent;
using core::Domain;
using core::FunctionalResourceView;
using core::GroupComponent;
using core::Schema;
using core::TupleComponent;
using core::Value;
using core::ViewBuilder;
using core::ViewPtr;

std::string ImapFolderUri(const std::string& folder) {
  return "imap://" + folder;
}

std::string ImapMessageUri(const std::string& folder, uint64_t uid) {
  return "imap://" + folder + "/" + std::to_string(uid);
}

namespace {

/// W_EMAIL: the header schema of emailmessage views.
const Schema& EmailSchema() {
  static const Schema kSchema = Schema()
                                    .Add("from", Domain::kString)
                                    .Add("to", Domain::kString)
                                    .Add("date", Domain::kDate)
                                    .Add("size", Domain::kInt);
  return kSchema;
}

TupleComponent MessageTuple(const Message& message) {
  return TupleComponent::MakeUnchecked(
      EmailSchema(),
      {Value::String(message.from), Value::String(Join(message.to, ", ")),
       Value::Date(message.date),
       Value::Int(static_cast<int64_t>(message.PayloadBytes()))});
}

/// Attachments behave as files: τ carries W_FS with the message date as
/// both creation and modification time.
ViewPtr AttachmentToView(const Attachment& att, Micros date,
                         const std::string& uri) {
  return ViewBuilder(uri)
      .Class("attachment")
      .Name(att.filename)
      .Tuple(TupleComponent::MakeUnchecked(
          core::FileSystemSchema(),
          {Value::Int(static_cast<int64_t>(att.data.size())), Value::Date(date),
           Value::Date(date)}))
      .ContentString(att.data)
      .Build();
}

ViewPtr MessageToView(const Message& message, const std::string& uri) {
  std::vector<ViewPtr> attachments;
  attachments.reserve(message.attachments.size());
  for (size_t i = 0; i < message.attachments.size(); ++i) {
    attachments.push_back(AttachmentToView(message.attachments[i], message.date,
                                           uri + "/att/" + std::to_string(i)));
  }
  return ViewBuilder(uri)
      .Class("emailmessage")
      .Name(message.subject)
      .Tuple(MessageTuple(message))
      .ContentString(message.body)
      .GroupSet(std::move(attachments))
      .Build();
}

/// Fetches a message from the server at most once; all four component
/// getters of the lazy message view share this cache.
class LazyMessage {
 public:
  LazyMessage(std::shared_ptr<ImapServer> server, std::string folder,
              uint64_t uid)
      : server_(std::move(server)), folder_(std::move(folder)), uid_(uid) {}

  const Message& Get() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!message_.has_value()) {
      ImapClient client(server_.get());
      auto fetched = client.Fetch(folder_, uid_);
      message_ = fetched.ok() ? std::move(fetched).value() : Message{};
    }
    return *message_;
  }

  Micros date() { return Get().date; }

 private:
  std::mutex mu_;
  std::shared_ptr<ImapServer> server_;
  std::string folder_;
  uint64_t uid_;
  std::optional<Message> message_;
};

}  // namespace

ViewPtr MakeMessageView(std::shared_ptr<ImapServer> server,
                        const std::string& folder, uint64_t uid) {
  std::string uri = ImapMessageUri(folder, uid);
  auto lazy = std::make_shared<LazyMessage>(std::move(server), folder, uid);

  FunctionalResourceView::Providers providers;
  providers.name = [lazy]() { return lazy->Get().subject; };
  providers.tuple = [lazy]() { return MessageTuple(lazy->Get()); };
  providers.content = [lazy]() {
    return ContentComponent::OfLazy([lazy]() { return lazy->Get().body; });
  };
  providers.group = [lazy, uri]() {
    return GroupComponent::OfLazySet([lazy, uri]() {
      std::vector<ViewPtr> out;
      const Message& message = lazy->Get();
      for (size_t i = 0; i < message.attachments.size(); ++i) {
        out.push_back(AttachmentToView(message.attachments[i], message.date,
                                       uri + "/att/" + std::to_string(i)));
      }
      return out;
    });
  };
  return std::make_shared<FunctionalResourceView>(uri, "emailmessage",
                                                  std::move(providers));
}

namespace {

/// Child folders of \p parent among the server's flat folder list: those
/// exactly one '/'-segment deeper. \p parent == "" selects top-level ones.
std::vector<std::string> ChildFolders(const std::vector<std::string>& all,
                                      const std::string& parent) {
  std::vector<std::string> out;
  for (const std::string& name : all) {
    if (parent.empty()) {
      if (name.find('/') == std::string::npos) out.push_back(name);
    } else if (StartsWith(name, parent + "/") &&
               name.find('/', parent.size() + 1) == std::string::npos) {
      out.push_back(name);
    }
  }
  return out;
}

ViewPtr MakeFolderView(std::shared_ptr<ImapServer> server,
                       const std::string& folder) {
  FunctionalResourceView::Providers providers;
  providers.name = [folder]() {
    auto parts = SplitSkipEmpty(folder, '/');
    return parts.empty() ? std::string("imap") : parts.back();
  };
  providers.group = [server, folder]() {
    return GroupComponent::OfLazySet([server, folder]() {
      std::vector<ViewPtr> out;
      auto all = server->ListFolders();
      if (all.ok()) {
        for (const std::string& child : ChildFolders(*all, folder)) {
          out.push_back(MakeFolderView(server, child));
        }
      }
      if (!folder.empty()) {
        auto uids = server->ListUids(folder);
        if (uids.ok()) {
          for (uint64_t uid : *uids) {
            out.push_back(MakeMessageView(server, folder, uid));
          }
        }
      }
      return out;
    });
  };
  return std::make_shared<FunctionalResourceView>(
      ImapFolderUri(folder), "emailfolder", std::move(providers));
}

}  // namespace

ViewPtr MakeImapRootView(std::shared_ptr<ImapServer> server) {
  return MakeFolderView(std::move(server), "");
}

ViewPtr MakeImapFolderView(std::shared_ptr<ImapServer> server,
                           const std::string& folder) {
  return MakeFolderView(std::move(server), folder);
}

ViewPtr MakeInboxStateView(std::shared_ptr<ImapServer> server,
                           const std::string& folder) {
  // Option 1: γ.Q is the current window of the INBOX; lazily computed, and
  // retrievable multiple times (each view instantiation re-lists).
  return ViewBuilder(ImapFolderUri(folder) + "#state")
      .Class("inboxstate")
      .Group(GroupComponent::OfLazySequence([server, folder]() {
        std::vector<ViewPtr> out;
        auto uids = server->ListUids(folder);
        if (uids.ok()) {
          for (uint64_t uid : *uids) {
            out.push_back(MakeMessageView(server, folder, uid));
          }
        }
        return out;
      }))
      .Build();
}

InboxStream::InboxStream(std::shared_ptr<ImapServer> server, std::string folder)
    : server_(std::move(server)),
      folder_(std::move(folder)),
      buffer_(std::make_shared<std::vector<ViewPtr>>()) {
  Drain();
  auto server_weak = std::weak_ptr<ImapServer>(server_);
  auto buffer = buffer_;
  std::string my_folder = folder_;
  server_->Subscribe(
      [server_weak, buffer, my_folder](const std::string& folder, uint64_t uid) {
        if (folder != my_folder) return;
        auto server = server_weak.lock();
        if (server == nullptr) return;
        ImapClient client(server.get());
        auto message = client.Fetch(folder, uid);
        if (!message.ok()) return;
        buffer->push_back(
            MessageToView(*message, ImapMessageUri(folder, uid)));
        // Option 2 semantics: the stream is the single point of access;
        // delivered messages leave the server.
        (void)server->Expunge(folder, uid);
      });
}

void InboxStream::Drain() {
  auto uids = server_->ListUids(folder_);
  if (!uids.ok()) return;
  ImapClient client(server_.get());
  for (uint64_t uid : *uids) {
    auto message = client.Fetch(folder_, uid);
    if (!message.ok()) continue;
    buffer_->push_back(MessageToView(*message, ImapMessageUri(folder_, uid)));
    (void)server_->Expunge(folder_, uid);
  }
}

ViewPtr InboxStream::View() const {
  auto buffer = buffer_;
  return ViewBuilder(ImapFolderUri(folder_) + "#stream")
      .Class("inboxstream")
      .Group(GroupComponent::OfInfiniteSequence([buffer](uint64_t i) {
        return i < buffer->size() ? (*buffer)[i] : nullptr;
      }))
      .Build();
}

}  // namespace idm::email
