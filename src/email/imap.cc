#include "email/imap.h"

namespace idm::email {

ImapServer::ImapServer(Clock* clock, ImapLatencyModel latency)
    : clock_(clock), latency_(latency) {}

void ImapServer::Charge(uint64_t bytes) const {
  ++request_count_;
  Micros cost = latency_.per_request_micros +
                static_cast<Micros>(latency_.micros_per_kilobyte *
                                    (static_cast<double>(bytes) / 1024.0));
  access_micros_ += cost;
  if (clock_ != nullptr) clock_->AdvanceMicros(cost);
}

Status ImapServer::CreateFolder(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty folder name");
  // Create intermediate folders so that "Projects/OLAP" is reachable
  // through "Projects" in the hierarchy.
  size_t slash = 0;
  while ((slash = name.find('/', slash + 1)) != std::string::npos) {
    std::string prefix = name.substr(0, slash);
    folders_.try_emplace(prefix);
    next_uid_.try_emplace(prefix, 1);
  }
  folders_.try_emplace(name);
  next_uid_.try_emplace(name, 1);
  return Status::OK();
}

Result<uint64_t> ImapServer::Append(const std::string& folder,
                                    Message message) {
  IDM_RETURN_NOT_OK(CreateFolder(folder));
  uint64_t uid = next_uid_[folder]++;
  folders_[folder].emplace(uid, std::move(message));
  for (const auto& cb : subscribers_) cb(folder, uid);
  return uid;
}

Status ImapServer::Expunge(const std::string& folder, uint64_t uid) {
  auto it = folders_.find(folder);
  if (it == folders_.end() || it->second.erase(uid) == 0) {
    return Status::NotFound("no message " + std::to_string(uid) + " in '" +
                            folder + "'");
  }
  return Status::OK();
}

Result<std::vector<std::string>> ImapServer::ListFolders() const {
  Charge(0);
  std::vector<std::string> names;
  names.reserve(folders_.size());
  for (const auto& [name, messages] : folders_) names.push_back(name);
  return names;
}

Result<std::vector<uint64_t>> ImapServer::ListUids(
    const std::string& folder) const {
  Charge(0);
  auto it = folders_.find(folder);
  if (it == folders_.end()) {
    return Status::NotFound("no folder '" + folder + "'");
  }
  std::vector<uint64_t> uids;
  uids.reserve(it->second.size());
  for (const auto& [uid, message] : it->second) uids.push_back(uid);
  return uids;
}

Result<std::string> ImapServer::FetchRaw(const std::string& folder,
                                         uint64_t uid) const {
  auto it = folders_.find(folder);
  if (it == folders_.end()) {
    Charge(0);
    return Status::NotFound("no folder '" + folder + "'");
  }
  auto msg_it = it->second.find(uid);
  if (msg_it == it->second.end()) {
    Charge(0);
    return Status::NotFound("no message " + std::to_string(uid) + " in '" +
                            folder + "'");
  }
  std::string wire = SerializeMessage(msg_it->second);
  Charge(wire.size());
  return wire;
}

void ImapServer::Subscribe(
    std::function<void(const std::string&, uint64_t)> callback) {
  subscribers_.push_back(std::move(callback));
}

size_t ImapServer::MessageCount() const {
  size_t n = 0;
  for (const auto& [name, messages] : folders_) n += messages.size();
  return n;
}

uint64_t ImapServer::TotalWireBytes() const {
  uint64_t bytes = 0;
  for (const auto& [name, messages] : folders_) {
    for (const auto& [uid, message] : messages) {
      bytes += SerializeMessage(message).size();
    }
  }
  return bytes;
}

Result<Message> ImapClient::Fetch(const std::string& folder, uint64_t uid) {
  IDM_ASSIGN_OR_RETURN(std::string wire, server_->FetchRaw(folder, uid));
  return ParseMessage(wire);
}

}  // namespace idm::email
