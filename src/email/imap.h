// Simulated IMAP server and client.
//
// The paper's evaluation accesses the author's mailbox on a *remote* IMAP
// server, and finds (Fig. 5) that email indexing time is dominated by data
// source access over the network. This in-process substitute exercises the
// same pipeline — list folders, list messages, fetch wire bytes, parse —
// while charging a configurable request/bandwidth latency model to a
// simulated clock, so the benchmark can account "data source access" cost
// without a network.

#ifndef IDM_EMAIL_IMAP_H_
#define IDM_EMAIL_IMAP_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "email/message.h"
#include "util/clock.h"
#include "util/result.h"

namespace idm::email {

/// Cost model for remote access. Defaults approximate a 2006-era remote
/// IMAP server: ~40 ms per request plus ~2.5 MB/s of effective bandwidth.
struct ImapLatencyModel {
  Micros per_request_micros = 40000;
  double micros_per_kilobyte = 400.0;
};

/// The server: folders (hierarchical via '/'-separated names) holding
/// messages with per-folder UIDs. All client-visible operations charge the
/// latency model. Not thread-safe.
class ImapServer {
 public:
  explicit ImapServer(Clock* clock = nullptr, ImapLatencyModel latency = {});

  /// --- administration (no latency: this is the mailbox owner's side) ----
  Status CreateFolder(const std::string& name);
  /// Delivers a message; creates the folder if needed. Returns the UID.
  Result<uint64_t> Append(const std::string& folder, Message message);
  /// Removes one message.
  Status Expunge(const std::string& folder, uint64_t uid);

  /// --- protocol operations (each charges latency) ------------------------
  Result<std::vector<std::string>> ListFolders() const;
  Result<std::vector<uint64_t>> ListUids(const std::string& folder) const;
  /// Serialized RFC-2822/MIME bytes of a message; charges per-byte cost.
  Result<std::string> FetchRaw(const std::string& folder, uint64_t uid) const;

  /// New-message notifications (paper §5.2: the Synchronization Manager
  /// subscribes where sources support it). Callbacks run inside Append.
  void Subscribe(std::function<void(const std::string& folder, uint64_t uid)>
                     callback);

  /// --- accounting ---------------------------------------------------------
  Micros access_micros() const { return access_micros_; }
  uint64_t request_count() const { return request_count_; }
  size_t MessageCount() const;
  /// Sum of serialized message sizes (the "total size" of the source).
  uint64_t TotalWireBytes() const;

 private:
  void Charge(uint64_t bytes) const;

  Clock* clock_;
  ImapLatencyModel latency_;
  std::map<std::string, std::map<uint64_t, Message>> folders_;
  std::map<std::string, uint64_t> next_uid_;
  std::vector<std::function<void(const std::string&, uint64_t)>> subscribers_;
  mutable Micros access_micros_ = 0;
  mutable uint64_t request_count_ = 0;
};

/// Typed client: fetches wire bytes and parses them, like a real client
/// stack would.
class ImapClient {
 public:
  explicit ImapClient(ImapServer* server) : server_(server) {}

  Result<std::vector<std::string>> ListFolders() { return server_->ListFolders(); }
  Result<std::vector<uint64_t>> ListMessages(const std::string& folder) {
    return server_->ListUids(folder);
  }
  Result<Message> Fetch(const std::string& folder, uint64_t uid);

 private:
  ImapServer* server_;
};

}  // namespace idm::email

#endif  // IDM_EMAIL_IMAP_H_
