#include "email/message.h"

#include <cstdio>
#include <cstring>
#include <ctime>

#include "email/mime.h"
#include "util/string_util.h"

namespace idm::email {

namespace {

constexpr const char* kDayNames[] = {"Sun", "Mon", "Tue", "Wed",
                                     "Thu", "Fri", "Sat"};
constexpr const char* kMonthNames[] = {"Jan", "Feb", "Mar", "Apr",
                                       "May", "Jun", "Jul", "Aug",
                                       "Sep", "Oct", "Nov", "Dec"};

/// Deterministic multipart boundary — unique enough for the simulation and
/// stable for tests.
std::string Boundary(const Message& message) {
  size_t h = std::hash<std::string>()(message.subject + message.from) ^
             static_cast<size_t>(message.date);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "=_idm_%016zx", h);
  return buf;
}

}  // namespace

size_t Message::PayloadBytes() const {
  size_t total = body.size();
  for (const auto& att : attachments) total += att.data.size();
  return total;
}

std::string FormatRfcDate(Micros micros) {
  std::time_t secs = static_cast<std::time_t>(micros / 1000000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s, %02d %s %04d %02d:%02d:%02d +0000",
                kDayNames[tm_utc.tm_wday], tm_utc.tm_mday,
                kMonthNames[tm_utc.tm_mon], tm_utc.tm_year + 1900,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
  return buf;
}

Result<Micros> ParseRfcDate(const std::string& text) {
  char month[8] = {0};
  int day = 0, year = 0, hour = 0, minute = 0, second = 0;
  // Day-of-week prefix is optional.
  const char* s = text.c_str();
  const char* comma = std::strchr(s, ',');
  if (comma != nullptr) s = comma + 1;
  if (std::sscanf(s, " %d %3s %d %d:%d:%d", &day, month, &year, &hour, &minute,
                  &second) != 6) {
    return Status::ParseError("malformed date '" + text + "'");
  }
  int mon = -1;
  for (int i = 0; i < 12; ++i) {
    if (std::strcmp(month, kMonthNames[i]) == 0) mon = i;
  }
  if (mon < 0 || day < 1 || day > 31 || year < 1970) {
    return Status::ParseError("malformed date '" + text + "'");
  }
  std::tm tm_utc{};
  tm_utc.tm_mday = day;
  tm_utc.tm_mon = mon;
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_hour = hour;
  tm_utc.tm_min = minute;
  tm_utc.tm_sec = second;
  std::time_t secs = timegm(&tm_utc);
  if (secs == static_cast<std::time_t>(-1)) {
    return Status::ParseError("unrepresentable date '" + text + "'");
  }
  return static_cast<Micros>(secs) * 1000000;
}

std::string SerializeMessage(const Message& message) {
  std::string out;
  auto header = [&out](const std::string& name, const std::string& value) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  };
  header("From", message.from);
  if (!message.to.empty()) header("To", Join(message.to, ", "));
  if (!message.cc.empty()) header("Cc", Join(message.cc, ", "));
  // Bcc is intentionally serialized here: SerializeMessage produces the
  // *server-side* stored copy (the simulated IMAP store), not the copy
  // sent to recipients.
  if (!message.bcc.empty()) header("Bcc", Join(message.bcc, ", "));
  header("Subject", message.subject);
  header("Date", FormatRfcDate(message.date));
  for (const auto& [name, value] : message.extra_headers) header(name, value);
  header("MIME-Version", "1.0");

  if (message.attachments.empty()) {
    header("Content-Type", "text/plain; charset=utf-8");
    header("Content-Transfer-Encoding", "quoted-printable");
    out += "\r\n";
    out += QuotedPrintableEncode(message.body);
    out += "\r\n";
    return out;
  }

  std::string boundary = Boundary(message);
  header("Content-Type", "multipart/mixed; boundary=\"" + boundary + "\"");
  out += "\r\n";
  // Body part.
  out += "--" + boundary + "\r\n";
  out += "Content-Type: text/plain; charset=utf-8\r\n";
  out += "Content-Transfer-Encoding: quoted-printable\r\n\r\n";
  out += QuotedPrintableEncode(message.body);
  out += "\r\n";
  // Attachment parts.
  for (const auto& att : message.attachments) {
    out += "--" + boundary + "\r\n";
    out += "Content-Type: " + att.mime_type + "\r\n";
    out += "Content-Transfer-Encoding: base64\r\n";
    out += "Content-Disposition: attachment; filename=\"" + att.filename +
           "\"\r\n\r\n";
    out += Base64Encode(att.data);
    out += "\r\n";
  }
  out += "--" + boundary + "--\r\n";
  return out;
}

namespace {

/// Splits wire text into a header block and body at the first empty line.
/// Lines are normalized to LF.
void SplitHeadersAndBody(const std::string& wire, std::string* headers,
                         std::string* body) {
  std::string normalized = ReplaceAll(wire, "\r\n", "\n");
  size_t split = normalized.find("\n\n");
  if (split == std::string::npos) {
    *headers = normalized;
    body->clear();
    return;
  }
  *headers = normalized.substr(0, split);
  *body = normalized.substr(split + 2);
}

/// Parses a header block into (name, value) pairs; folded continuation
/// lines (leading whitespace) append to the previous value.
Result<std::vector<std::pair<std::string, std::string>>> ParseHeaders(
    const std::string& block) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& line : Split(block, '\n')) {
    if (line.empty()) continue;
    if (std::isspace(static_cast<unsigned char>(line[0]))) {
      if (out.empty()) return Status::ParseError("header starts with folding");
      out.back().second += ' ';
      out.back().second += Trim(line);
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("malformed header line '" + line + "'");
    }
    out.emplace_back(std::string(Trim(line.substr(0, colon))),
                     std::string(Trim(line.substr(colon + 1))));
  }
  return out;
}

const std::string* FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [n, v] : headers) {
    if (EqualsIgnoreCase(n, name)) return &v;
  }
  return nullptr;
}

/// Extracts an attribute from a structured header value, e.g.
/// boundary="..." from Content-Type, or filename="..." from
/// Content-Disposition.
std::string HeaderParam(const std::string& value, const std::string& param) {
  std::string lower = ToLower(value);
  std::string needle = param + "=";
  size_t pos = lower.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  if (pos < value.size() && value[pos] == '"') {
    size_t end = value.find('"', pos + 1);
    if (end == std::string::npos) return "";
    return value.substr(pos + 1, end - pos - 1);
  }
  size_t end = value.find_first_of("; \t", pos);
  return value.substr(pos, end == std::string::npos ? std::string::npos
                                                    : end - pos);
}

Result<std::string> DecodePayload(const std::string& encoding,
                                  const std::string& payload) {
  if (encoding.empty() || EqualsIgnoreCase(encoding, "7bit") ||
      EqualsIgnoreCase(encoding, "8bit")) {
    return payload;
  }
  if (EqualsIgnoreCase(encoding, "quoted-printable")) {
    return QuotedPrintableDecode(payload);
  }
  if (EqualsIgnoreCase(encoding, "base64")) {
    return Base64Decode(payload);
  }
  return Status::ParseError("unknown transfer encoding '" + encoding + "'");
}

/// Strips at most one trailing newline (parts are terminated by CRLF before
/// the next boundary).
std::string ChompNewline(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

}  // namespace

Result<Message> ParseMessage(const std::string& wire) {
  std::string header_block, body_block;
  SplitHeadersAndBody(wire, &header_block, &body_block);
  IDM_ASSIGN_OR_RETURN(auto headers, ParseHeaders(header_block));

  Message message;
  if (const std::string* v = FindHeader(headers, "From")) message.from = *v;
  if (const std::string* v = FindHeader(headers, "To")) {
    for (auto& part : Split(*v, ',')) {
      std::string trimmed(Trim(part));
      if (!trimmed.empty()) message.to.push_back(std::move(trimmed));
    }
  }
  if (const std::string* v = FindHeader(headers, "Cc")) {
    for (auto& part : Split(*v, ',')) {
      std::string trimmed(Trim(part));
      if (!trimmed.empty()) message.cc.push_back(std::move(trimmed));
    }
  }
  if (const std::string* v = FindHeader(headers, "Bcc")) {
    for (auto& part : Split(*v, ',')) {
      std::string trimmed(Trim(part));
      if (!trimmed.empty()) message.bcc.push_back(std::move(trimmed));
    }
  }
  if (const std::string* v = FindHeader(headers, "Subject")) {
    message.subject = *v;
  }
  if (const std::string* v = FindHeader(headers, "Date")) {
    IDM_ASSIGN_OR_RETURN(message.date, ParseRfcDate(*v));
  }
  for (const auto& [name, value] : headers) {
    static const char* kStandard[] = {"From", "To",   "Cc", "Bcc",
                                      "Subject", "Date", "MIME-Version",
                                      "Content-Type", "Content-Transfer-Encoding"};
    bool standard = false;
    for (const char* s : kStandard) {
      if (EqualsIgnoreCase(name, s)) standard = true;
    }
    if (!standard) message.extra_headers.emplace_back(name, value);
  }

  std::string content_type;
  if (const std::string* v = FindHeader(headers, "Content-Type")) {
    content_type = *v;
  }
  std::string encoding;
  if (const std::string* v = FindHeader(headers, "Content-Transfer-Encoding")) {
    encoding = *v;
  }

  if (ToLower(content_type).find("multipart/mixed") == std::string::npos) {
    IDM_ASSIGN_OR_RETURN(message.body,
                         DecodePayload(encoding, ChompNewline(body_block)));
    return message;
  }

  std::string boundary = HeaderParam(content_type, "boundary");
  if (boundary.empty()) {
    return Status::ParseError("multipart message without a boundary");
  }
  std::string open_marker = "--" + boundary;
  std::vector<std::string> parts;
  size_t pos = body_block.find(open_marker);
  while (pos != std::string::npos) {
    size_t start = body_block.find('\n', pos);
    if (start == std::string::npos) break;
    ++start;
    // Terminal marker "--boundary--"?
    if (body_block.compare(pos + open_marker.size(), 2, "--") == 0) break;
    size_t next = body_block.find(open_marker, start);
    if (next == std::string::npos) break;
    parts.push_back(body_block.substr(start, next - start));
    pos = next;
  }
  bool saw_body = false;
  for (const std::string& part : parts) {
    std::string part_headers_block, part_body;
    SplitHeadersAndBody(part, &part_headers_block, &part_body);
    IDM_ASSIGN_OR_RETURN(auto part_headers, ParseHeaders(part_headers_block));
    std::string part_type, part_encoding, disposition;
    if (const std::string* v = FindHeader(part_headers, "Content-Type")) {
      part_type = *v;
    }
    if (const std::string* v =
            FindHeader(part_headers, "Content-Transfer-Encoding")) {
      part_encoding = *v;
    }
    if (const std::string* v =
            FindHeader(part_headers, "Content-Disposition")) {
      disposition = *v;
    }
    IDM_ASSIGN_OR_RETURN(std::string decoded,
                         DecodePayload(part_encoding, ChompNewline(part_body)));
    if (!saw_body && ToLower(disposition).find("attachment") == std::string::npos) {
      message.body = std::move(decoded);
      saw_body = true;
    } else {
      Attachment att;
      att.filename = HeaderParam(disposition, "filename");
      size_t semi = part_type.find(';');
      att.mime_type = std::string(
          Trim(semi == std::string::npos ? part_type : part_type.substr(0, semi)));
      if (att.mime_type.empty()) att.mime_type = "application/octet-stream";
      att.data = std::move(decoded);
      message.attachments.push_back(std::move(att));
    }
  }
  return message;
}

}  // namespace idm::email
