// MIME transfer-encoding codecs (base64, quoted-printable) used by the
// email substrate to carry attachments and non-ASCII bodies, replacing the
// email parsing libraries the paper's Java prototype relied on.

#ifndef IDM_EMAIL_MIME_H_
#define IDM_EMAIL_MIME_H_

#include <string>

#include "util/result.h"

namespace idm::email {

/// Encodes \p data as base64 with lines folded at 76 characters.
std::string Base64Encode(const std::string& data);

/// Decodes base64; whitespace is ignored. Fails on invalid characters or a
/// malformed final quantum.
Result<std::string> Base64Decode(const std::string& encoded);

/// Encodes \p data as quoted-printable (soft line breaks at 76 chars;
/// '=' and non-printable bytes escaped; trailing space/tab protected).
std::string QuotedPrintableEncode(const std::string& data);

/// Decodes quoted-printable, honoring soft line breaks. Fails on a
/// malformed '=XX' escape.
Result<std::string> QuotedPrintableDecode(const std::string& encoded);

}  // namespace idm::email

#endif  // IDM_EMAIL_MIME_H_
