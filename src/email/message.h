// Email messages: an RFC-2822-style header block plus a MIME multipart body
// with attachments. Serialization/parsing is implemented from scratch (the
// paper's prototype leaned on Java mail libraries).

#ifndef IDM_EMAIL_MESSAGE_H_
#define IDM_EMAIL_MESSAGE_H_

#include <string>
#include <vector>

#include "util/clock.h"
#include "util/result.h"

namespace idm::email {

/// A file attached to a message. `data` is the decoded payload.
struct Attachment {
  std::string filename;
  std::string mime_type = "application/octet-stream";
  std::string data;
};

/// An email message. Header fields beyond the standard ones are kept in
/// `extra_headers` in order.
struct Message {
  std::string from;
  std::vector<std::string> to;
  std::vector<std::string> cc;
  std::vector<std::string> bcc;  ///< never serialized to recipients' copies
  std::string subject;
  Micros date = 0;  ///< microseconds since Unix epoch
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;  ///< text/plain part
  std::vector<Attachment> attachments;

  /// Total decoded payload bytes (body + attachments).
  size_t PayloadBytes() const;
};

/// Serializes to RFC-2822 + MIME wire format (CRLF line endings). Messages
/// with attachments become multipart/mixed with a deterministic boundary;
/// bodies are quoted-printable, attachments base64.
std::string SerializeMessage(const Message& message);

/// Parses the wire format produced by SerializeMessage (and tolerant of
/// LF-only input). Fails with ParseError on malformed headers, unknown
/// transfer encodings, or corrupt part payloads.
Result<Message> ParseMessage(const std::string& wire);

/// Formats/parses the Date header, RFC-2822 style with a fixed +0000 zone:
/// "Fri, 12 Sep 2005 14:30:00 +0000".
std::string FormatRfcDate(Micros micros);
Result<Micros> ParseRfcDate(const std::string& text);

}  // namespace idm::email

#endif  // IDM_EMAIL_MESSAGE_H_
