#include "email/mime.h"

#include <array>
#include <cctype>

namespace idm::email {

namespace {
constexpr char kBase64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int8_t, 256> BuildBase64Lut() {
  std::array<int8_t, 256> lut;
  lut.fill(-1);
  for (int i = 0; i < 64; ++i) {
    lut[static_cast<unsigned char>(kBase64Chars[i])] = static_cast<int8_t>(i);
  }
  return lut;
}

const std::array<int8_t, 256>& Base64Lut() {
  static const std::array<int8_t, 256> lut = BuildBase64Lut();
  return lut;
}

constexpr size_t kLineWidth = 76;
}  // namespace

std::string Base64Encode(const std::string& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4 + data.size() / 57 + 2);
  size_t line = 0;
  auto emit = [&out, &line](char c) {
    if (line == kLineWidth) {
      out += "\r\n";
      line = 0;
    }
    out += c;
    ++line;
  };
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8) |
                 static_cast<unsigned char>(data[i + 2]);
    emit(kBase64Chars[(n >> 18) & 63]);
    emit(kBase64Chars[(n >> 12) & 63]);
    emit(kBase64Chars[(n >> 6) & 63]);
    emit(kBase64Chars[n & 63]);
    i += 3;
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t n = static_cast<unsigned char>(data[i]) << 16;
    emit(kBase64Chars[(n >> 18) & 63]);
    emit(kBase64Chars[(n >> 12) & 63]);
    emit('=');
    emit('=');
  } else if (rest == 2) {
    uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8);
    emit(kBase64Chars[(n >> 18) & 63]);
    emit(kBase64Chars[(n >> 12) & 63]);
    emit(kBase64Chars[(n >> 6) & 63]);
    emit('=');
  }
  return out;
}

Result<std::string> Base64Decode(const std::string& encoded) {
  const auto& lut = Base64Lut();
  std::string out;
  out.reserve(encoded.size() / 4 * 3);
  uint32_t acc = 0;
  int bits = 0;
  bool done = false;  // '=' seen
  for (char c : encoded) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      done = true;
      continue;
    }
    if (done) return Status::ParseError("base64 data after '=' padding");
    int8_t v = lut[static_cast<unsigned char>(c)];
    if (v < 0) {
      return Status::ParseError(std::string("invalid base64 character '") +
                                c + "'");
    }
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out += static_cast<char>((acc >> bits) & 0xFF);
    }
  }
  if (bits >= 6) {
    return Status::ParseError("truncated base64 quantum");
  }
  return out;
}

std::string QuotedPrintableEncode(const std::string& data) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  size_t line = 0;
  auto soft_break = [&out, &line](size_t next_len) {
    if (line + next_len > kLineWidth - 1) {  // leave room for '='
      out += "=\r\n";
      line = 0;
    }
  };
  for (size_t i = 0; i < data.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(data[i]);
    if (c == '\n') {
      out += "\r\n";
      line = 0;
      continue;
    }
    bool printable = (c >= 33 && c <= 126 && c != '=') ||
                     ((c == ' ' || c == '\t') &&
                      i + 1 < data.size() && data[i + 1] != '\n');
    if (printable) {
      soft_break(1);
      out += static_cast<char>(c);
      ++line;
    } else {
      soft_break(3);
      out += '=';
      out += kHex[c >> 4];
      out += kHex[c & 0xF];
      line += 3;
    }
  }
  return out;
}

Result<std::string> QuotedPrintableDecode(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size();) {
    char c = encoded[i];
    if (c == '\r') {
      ++i;
      continue;  // normalize CRLF to '\n'
    }
    if (c != '=') {
      out += c;
      ++i;
      continue;
    }
    // '=': soft break or hex escape.
    if (i + 1 < encoded.size() &&
        (encoded[i + 1] == '\n' ||
         (encoded[i + 1] == '\r' && i + 2 < encoded.size() &&
          encoded[i + 2] == '\n'))) {
      i += (encoded[i + 1] == '\n') ? 2 : 3;  // soft line break: drop
      continue;
    }
    if (i + 2 >= encoded.size() ||
        !std::isxdigit(static_cast<unsigned char>(encoded[i + 1])) ||
        !std::isxdigit(static_cast<unsigned char>(encoded[i + 2]))) {
      return Status::ParseError("malformed quoted-printable escape at offset " +
                                std::to_string(i));
    }
    auto hex = [](char h) {
      if (h >= '0' && h <= '9') return h - '0';
      return std::toupper(static_cast<unsigned char>(h)) - 'A' + 10;
    };
    out += static_cast<char>(hex(encoded[i + 1]) * 16 + hex(encoded[i + 2]));
    i += 3;
  }
  return out;
}

}  // namespace idm::email
