#include "stream/rss.h"

#include "xml/xml.h"
#include "xml/xml_views.h"

namespace idm::stream {

std::string FeedToXml(const Feed& feed) {
  std::string out = "<rss version=\"2.0\"><channel>";
  out += "<title>" + xml::EscapeText(feed.title) + "</title>";
  out += "<link>" + xml::EscapeText(feed.link) + "</link>";
  out += "<description>" + xml::EscapeText(feed.description) + "</description>";
  for (const FeedItem& item : feed.items) {
    out += "<item>";
    out += "<title>" + xml::EscapeText(item.title) + "</title>";
    out += "<link>" + xml::EscapeText(item.link) + "</link>";
    out += "<description>" + xml::EscapeText(item.description) + "</description>";
    out += "<pubDate>" + FormatTimestamp(item.date) + "</pubDate>";
    out += "</item>";
  }
  out += "</channel></rss>";
  return out;
}

namespace {

std::string ChildText(const xml::XmlNode& node, const std::string& name) {
  for (const auto& child : node.children) {
    if (child->kind == xml::XmlNode::Kind::kElement && child->name == name) {
      return child->TextContent();
    }
  }
  return "";
}

Micros ParsePubDate(const std::string& text) {
  // FormatTimestamp emits "DD/MM/YYYY HH:MM"; reconstruct via ParseDate.
  if (text.size() < 16) return 0;
  std::string date_part = text.substr(0, 10);
  std::string normalized;
  for (char c : date_part) normalized += (c == '/') ? '.' : c;
  Micros micros = 0;
  if (!ParseDate(normalized, &micros)) return 0;
  int hh = std::atoi(text.substr(11, 2).c_str());
  int mm = std::atoi(text.substr(14, 2).c_str());
  return micros + (hh * 3600LL + mm * 60LL) * 1000000LL;
}

}  // namespace

Result<Feed> ParseFeed(const std::string& xml_text) {
  IDM_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(xml_text));
  if (doc.root->name != "rss") {
    return Status::ParseError("root element is <" + doc.root->name +
                              ">, expected <rss>");
  }
  Feed feed;
  const xml::XmlNode* channel = nullptr;
  for (const auto& child : doc.root->children) {
    if (child->kind == xml::XmlNode::Kind::kElement &&
        child->name == "channel") {
      channel = child.get();
    }
  }
  if (channel == nullptr) return Status::ParseError("<rss> has no <channel>");
  feed.title = ChildText(*channel, "title");
  feed.link = ChildText(*channel, "link");
  feed.description = ChildText(*channel, "description");
  for (const auto& child : channel->children) {
    if (child->kind != xml::XmlNode::Kind::kElement || child->name != "item") {
      continue;
    }
    FeedItem item;
    item.title = ChildText(*child, "title");
    item.link = ChildText(*child, "link");
    item.description = ChildText(*child, "description");
    item.date = ParsePubDate(ChildText(*child, "pubDate"));
    feed.items.push_back(std::move(item));
  }
  return feed;
}

FeedServer::FeedServer(Feed feed, Clock* clock, Latency latency)
    : feed_(std::move(feed)), clock_(clock), latency_(latency) {}

void FeedServer::Publish(FeedItem item) { feed_.items.push_back(std::move(item)); }

std::string FeedServer::FetchXml() const {
  std::string xml_text = FeedToXml(feed_);
  ++fetches_;
  Micros cost = latency_.per_request_micros +
                static_cast<Micros>(latency_.micros_per_kilobyte *
                                    (static_cast<double>(xml_text.size()) / 1024.0));
  access_micros_ += cost;
  if (clock_ != nullptr) clock_->AdvanceMicros(cost);
  return xml_text;
}

Result<size_t> RssPoller::Poll() {
  std::string xml_text = server_->FetchXml();
  IDM_ASSIGN_OR_RETURN(Feed feed, ParseFeed(xml_text));
  size_t published = 0;
  for (const FeedItem& item : feed.items) {
    if (!seen_links_.insert(item.link).second) continue;
    // Re-wrap the item as its own XML document view: the rssatom stream is
    // a sequence of xmldoc views (Table 1).
    std::string item_xml = "<item><title>" + xml::EscapeText(item.title) +
                           "</title><link>" + xml::EscapeText(item.link) +
                           "</link><description>" +
                           xml::EscapeText(item.description) +
                           "</description></item>";
    auto doc = xml::Parse(item_xml);
    if (!doc.ok()) continue;
    std::string uri = "rss:" + item.link + "#" + std::to_string(next_index_++);
    core::ViewPtr view = xml::XmlToViews(*doc, uri);
    bus_->Publish({ViewEvent::Kind::kAdded, view->uri(), view});
    ++published;
  }
  return published;
}

}  // namespace idm::stream
