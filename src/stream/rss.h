// RSS 2.0 feeds on top of the XML substrate (paper §3.4).
//
// As the paper notes, RSS/ATOM "streams" are really just XML documents
// republished on a web server: clients receive no notifications and must
// poll. This module provides a simulated feed server (an XML document with
// fetch latency), RSS serialization/parsing, and the polling pipeline that
// turns the feed into an rssatom pseudo data stream of xmldoc views.

#ifndef IDM_STREAM_RSS_H_
#define IDM_STREAM_RSS_H_

#include <memory>
#include <string>
#include <vector>

#include "stream/stream.h"
#include "util/clock.h"
#include "util/result.h"

namespace idm::stream {

/// One feed entry.
struct FeedItem {
  std::string title;
  std::string link;
  std::string description;
  Micros date = 0;
};

/// A feed: channel metadata plus items, newest last.
struct Feed {
  std::string title;
  std::string link;
  std::string description;
  std::vector<FeedItem> items;
};

/// Serializes \p feed as RSS 2.0 XML.
std::string FeedToXml(const Feed& feed);

/// Parses RSS 2.0 XML produced by FeedToXml (tolerates missing optional
/// elements). Fails with ParseError on malformed XML or a non-rss root.
Result<Feed> ParseFeed(const std::string& xml_text);

/// A web server hosting one feed document. Fetches charge the latency
/// model to the clock, mirroring remote HTTP polling.
class FeedServer {
 public:
  struct Latency {
    Micros per_request_micros = 30000;
    double micros_per_kilobyte = 300.0;
  };

  explicit FeedServer(Feed feed) : FeedServer(std::move(feed), nullptr) {}
  FeedServer(Feed feed, Clock* clock) : FeedServer(std::move(feed), clock, Latency()) {}
  FeedServer(Feed feed, Clock* clock, Latency latency);

  /// Appends an item (a new publication on the server side).
  void Publish(FeedItem item);

  /// The current feed document as XML; charges latency.
  std::string FetchXml() const;

  Micros access_micros() const { return access_micros_; }
  uint64_t fetch_count() const { return fetches_; }
  size_t item_count() const { return feed_.items.size(); }

  /// Size of the hosted document in bytes (no latency charged — this is
  /// server-side accounting, not a client fetch).
  uint64_t DocumentBytes() const { return FeedToXml(feed_).size(); }

 private:
  Feed feed_;
  Clock* clock_;
  Latency latency_;
  mutable Micros access_micros_ = 0;
  mutable uint64_t fetches_ = 0;
};

/// Polls a FeedServer and publishes each newly seen item into \p bus as an
/// xmldoc view of that item's <item> element (Table 1: an rssatom stream is
/// an infinite sequence of xmldoc views). Items are identified by link.
class RssPoller {
 public:
  RssPoller(std::shared_ptr<FeedServer> server, EventBus* bus)
      : server_(std::move(server)), bus_(bus) {}

  /// One polling round; returns newly published items. Malformed feed
  /// payloads are reported (and the round publishes nothing).
  Result<size_t> Poll();

 private:
  std::shared_ptr<FeedServer> server_;
  EventBus* bus_;
  std::set<std::string> seen_links_;
  uint64_t next_index_ = 0;
};

}  // namespace idm::stream

#endif  // IDM_STREAM_RSS_H_
