#include "stream/stream.h"

namespace idm::stream {

size_t PollingAdapter::Poll() {
  ++polls_;
  std::vector<core::ViewPtr> current = list_state_();
  std::set<std::string> seen;
  size_t events = 0;
  for (const core::ViewPtr& view : current) {
    if (view == nullptr) continue;
    seen.insert(view->uri());
    if (known_.insert(view->uri()).second) {
      bus_->Publish({ViewEvent::Kind::kAdded, view->uri(), view});
      ++events;
    }
  }
  for (auto it = known_.begin(); it != known_.end();) {
    if (seen.count(*it) == 0) {
      bus_->Publish({ViewEvent::Kind::kRemoved, *it, nullptr});
      ++events;
      it = known_.erase(it);
    } else {
      ++it;
    }
  }
  return events;
}

core::ViewPtr StreamBuffer::MakeStreamView(const std::string& uri,
                                           const std::string& class_name) const {
  auto views = views_;
  return core::ViewBuilder(uri)
      .Class(class_name)
      .Group(core::GroupComponent::OfInfiniteSequence([views](uint64_t i) {
        return i < views->size() ? (*views)[i] : nullptr;
      }))
      .Build();
}

core::ViewPtr MakeGeneratedStreamView(
    const std::string& uri, const std::string& class_name,
    std::function<core::ViewPtr(uint64_t)> generator) {
  return core::ViewBuilder(uri)
      .Class(class_name)
      .Group(core::GroupComponent::OfInfiniteSequence(std::move(generator)))
      .Build();
}

}  // namespace idm::stream
