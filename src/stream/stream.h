// Data stream substrate (paper §3.4, §4.4.2).
//
// Streams surface in iDM as views with infinite group sequences; to process
// them efficiently a system implementing iDM "has to provide push-based
// protocols". This module provides:
//   - ViewEvent / PushOperator: the push protocol — operators register for
//     changes and process incoming events immediately (DSMS-style).
//   - EventBus: fan-out of events to subscribed operators.
//   - Filter/Map/CountWindow operators and a CollectSink.
//   - PollingAdapter: the paper's "generic polling facility" that converts
//     a state source into a pseudo data stream.
//   - StreamBuffer + MakeStreamView: generator-backed infinite group
//     sequences over the events delivered so far.

#ifndef IDM_STREAM_STREAM_H_
#define IDM_STREAM_STREAM_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/resource_view.h"

namespace idm::stream {

/// A change event on the resource view layer (new email message, new tuple
/// on a data stream, modified file, ...).
struct ViewEvent {
  enum class Kind { kAdded, kModified, kRemoved };
  Kind kind = Kind::kAdded;
  std::string uri;          ///< identity of the affected view
  core::ViewPtr view;       ///< the view (nullptr for removals)
};

/// A push operator: receives events as they happen (paper §4.4.2).
class PushOperator {
 public:
  virtual ~PushOperator() = default;
  virtual void OnEvent(const ViewEvent& event) = 0;
};

/// Fans incoming events out to all subscribed operators, synchronously and
/// in subscription order.
class EventBus {
 public:
  void Subscribe(std::shared_ptr<PushOperator> op) {
    operators_.push_back(std::move(op));
  }
  void Publish(const ViewEvent& event) {
    ++published_;
    for (const auto& op : operators_) op->OnEvent(event);
  }
  uint64_t published_count() const { return published_; }

 private:
  std::vector<std::shared_ptr<PushOperator>> operators_;
  uint64_t published_ = 0;
};

/// Forwards events matching a predicate.
class FilterOperator : public PushOperator {
 public:
  FilterOperator(std::function<bool(const ViewEvent&)> predicate,
                 std::shared_ptr<PushOperator> downstream)
      : predicate_(std::move(predicate)), downstream_(std::move(downstream)) {}
  void OnEvent(const ViewEvent& event) override {
    if (predicate_(event)) downstream_->OnEvent(event);
  }

 private:
  std::function<bool(const ViewEvent&)> predicate_;
  std::shared_ptr<PushOperator> downstream_;
};

/// Rewrites events.
class MapOperator : public PushOperator {
 public:
  MapOperator(std::function<ViewEvent(const ViewEvent&)> fn,
              std::shared_ptr<PushOperator> downstream)
      : fn_(std::move(fn)), downstream_(std::move(downstream)) {}
  void OnEvent(const ViewEvent& event) override {
    downstream_->OnEvent(fn_(event));
  }

 private:
  std::function<ViewEvent(const ViewEvent&)> fn_;
  std::shared_ptr<PushOperator> downstream_;
};

/// Tumbling count window: collects \p size events, then emits the batch.
class CountWindowOperator : public PushOperator {
 public:
  CountWindowOperator(size_t size,
                      std::function<void(std::vector<ViewEvent>)> on_window)
      : size_(size), on_window_(std::move(on_window)) {}
  void OnEvent(const ViewEvent& event) override {
    window_.push_back(event);
    if (window_.size() >= size_) {
      std::vector<ViewEvent> batch;
      batch.swap(window_);
      on_window_(std::move(batch));
    }
  }
  size_t pending() const { return window_.size(); }

 private:
  size_t size_;
  std::function<void(std::vector<ViewEvent>)> on_window_;
  std::vector<ViewEvent> window_;
};

/// Terminal sink collecting everything it receives.
class CollectSink : public PushOperator {
 public:
  void OnEvent(const ViewEvent& event) override { events_.push_back(event); }
  const std::vector<ViewEvent>& events() const { return events_; }

 private:
  std::vector<ViewEvent> events_;
};

/// The paper's "generic polling facility": turns a state source (a function
/// listing the current views) into a pseudo data stream by diffing
/// successive polls on view URI. New URIs publish kAdded, vanished URIs
/// publish kRemoved.
class PollingAdapter {
 public:
  PollingAdapter(std::function<std::vector<core::ViewPtr>()> list_state,
                 EventBus* bus)
      : list_state_(std::move(list_state)), bus_(bus) {}

  /// One polling round; returns the number of events published.
  size_t Poll();

  uint64_t poll_count() const { return polls_; }

 private:
  std::function<std::vector<core::ViewPtr>()> list_state_;
  EventBus* bus_;
  std::set<std::string> known_;
  uint64_t polls_ = 0;
};

/// An append-only buffer of views delivered by a stream, exposable as an
/// infinite group sequence.
class StreamBuffer : public PushOperator {
 public:
  void OnEvent(const ViewEvent& event) override {
    if (event.kind == ViewEvent::Kind::kAdded && event.view != nullptr) {
      views_->push_back(event.view);
    }
  }
  void Push(core::ViewPtr view) { views_->push_back(std::move(view)); }
  size_t size() const { return views_->size(); }

  /// A view of class \p class_name whose infinite Q enumerates everything
  /// delivered so far (positions beyond the buffer yield nullptr — the
  /// simulation cannot block awaiting future items).
  core::ViewPtr MakeStreamView(const std::string& uri,
                               const std::string& class_name) const;

 private:
  std::shared_ptr<std::vector<core::ViewPtr>> views_ =
      std::make_shared<std::vector<core::ViewPtr>>();
};

/// A truly infinite generator-backed stream view (e.g. a synthetic tuple
/// stream): element i is produced by \p generator on demand.
core::ViewPtr MakeGeneratedStreamView(
    const std::string& uri, const std::string& class_name,
    std::function<core::ViewPtr(uint64_t)> generator);

}  // namespace idm::stream

#endif  // IDM_STREAM_STREAM_H_
