#include "storage/quarantine.h"

#include <algorithm>

namespace idm::storage {

namespace {

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kVersionTag = "v1";

// Parses the decimal field at *pos up to the next '|'; advances *pos past it.
bool ParseField(const std::string& line, size_t* pos, std::string_view* out) {
  if (*pos > line.size()) return false;
  size_t bar = line.find('|', *pos);
  if (bar == std::string::npos) return false;
  *out = std::string_view(line).substr(*pos, bar - *pos);
  *pos = bar + 1;
  return true;
}

bool ParseU64(std::string_view text, uint64_t* value) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

std::string Sanitize(const std::string& text) {
  std::string out = text;
  std::replace(out.begin(), out.end(), '\n', ' ');
  return out;
}

}  // namespace

QuarantineManager::QuarantineManager(Env* env, std::string store_dir)
    : env_(env), store_dir_(std::move(store_dir)) {}

std::string QuarantineManager::StashName(uint64_t id,
                                         const std::string& artifact) const {
  return "q" + std::to_string(id) + "-" + artifact;
}

Status QuarantineManager::Load() {
  entries_.clear();
  total_bytes_ = 0;
  next_id_ = 1;
  last_artifact_.clear();
  const std::string manifest = DirPath() + "/" + std::string(kManifestName);
  if (!env_->Exists(manifest)) return Status::OK();
  IDM_ASSIGN_OR_RETURN(std::string text, env_->ReadFile(manifest));
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;  // torn tail from a crash mid-append
    std::string line = text.substr(start, nl - start);
    start = nl + 1;
    size_t pos = 0;
    std::string_view tag, id_text, bytes_text, stored_as, artifact;
    if (!ParseField(line, &pos, &tag) || tag != kVersionTag) continue;
    if (!ParseField(line, &pos, &id_text)) continue;
    if (!ParseField(line, &pos, &bytes_text)) continue;
    if (!ParseField(line, &pos, &stored_as)) continue;
    if (!ParseField(line, &pos, &artifact)) continue;
    Entry entry;
    if (!ParseU64(id_text, &entry.id)) continue;
    if (!ParseU64(bytes_text, &entry.bytes)) continue;
    entry.stored_as = std::string(stored_as);
    entry.artifact = std::string(artifact);
    entry.reason = line.substr(pos);  // reason is the unescaped rest
    next_id_ = std::max(next_id_, entry.id + 1);
    total_bytes_ += entry.bytes;
    last_artifact_ = entry.artifact;
    entries_.push_back(std::move(entry));
  }
  return Status::OK();
}

Status QuarantineManager::Register(std::string_view stored_as,
                                   std::string_view artifact, uint64_t bytes,
                                   const std::string& reason) {
  Entry entry;
  entry.id = next_id_++;
  entry.bytes = bytes;
  entry.stored_as = std::string(stored_as);
  entry.artifact = std::string(artifact);
  entry.reason = Sanitize(reason);
  const std::string manifest = DirPath() + "/" + std::string(kManifestName);
  std::string line;
  line.reserve(64 + entry.stored_as.size() + entry.artifact.size() +
               entry.reason.size());
  line += kVersionTag;
  line += '|';
  line += std::to_string(entry.id);
  line += '|';
  line += std::to_string(entry.bytes);
  line += '|';
  line += entry.stored_as;
  line += '|';
  line += entry.artifact;
  line += '|';
  line += entry.reason;
  line += '\n';
  IDM_RETURN_NOT_OK(env_->Append(manifest, line));
  IDM_RETURN_NOT_OK(env_->Sync(manifest));
  total_bytes_ += entry.bytes;
  last_artifact_ = entry.artifact;
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status QuarantineManager::MoveAside(const std::string& artifact,
                                    const std::string& reason) {
  const std::string from = store_dir_ + "/" + artifact;
  uint64_t bytes = 0;
  if (auto data = env_->ReadFile(from); data.ok()) bytes = data->size();
  IDM_RETURN_NOT_OK(env_->CreateDir(DirPath()));
  const std::string stored_as = StashName(next_id_, artifact);
  IDM_RETURN_NOT_OK(env_->Rename(from, DirPath() + "/" + stored_as));
  return Register(stored_as, artifact, bytes, reason);
}

Status QuarantineManager::CopyAside(const std::string& artifact,
                                    const std::string& reason) {
  const std::string from = store_dir_ + "/" + artifact;
  IDM_ASSIGN_OR_RETURN(std::string data, env_->ReadFile(from));
  IDM_RETURN_NOT_OK(env_->CreateDir(DirPath()));
  const std::string stored_as = StashName(next_id_, artifact);
  const std::string to = DirPath() + "/" + stored_as;
  IDM_RETURN_NOT_OK(env_->Delete(to));
  IDM_RETURN_NOT_OK(env_->Append(to, data));
  IDM_RETURN_NOT_OK(env_->Sync(to));
  return Register(stored_as, artifact, data.size(), reason);
}

Status QuarantineManager::PreserveBytes(const std::string& artifact,
                                        std::string_view bytes,
                                        const std::string& reason) {
  IDM_RETURN_NOT_OK(env_->CreateDir(DirPath()));
  const std::string stored_as = StashName(next_id_, artifact);
  const std::string to = DirPath() + "/" + stored_as;
  IDM_RETURN_NOT_OK(env_->Delete(to));
  IDM_RETURN_NOT_OK(env_->Append(to, bytes));
  IDM_RETURN_NOT_OK(env_->Sync(to));
  return Register(stored_as, artifact, bytes.size(), reason);
}

}  // namespace idm::storage
