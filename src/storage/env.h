// Storage environment: the narrow file-system interface the storage engine
// is written against. Two implementations:
//
//   * DiskEnv — the real file system (POSIX fsync, atomic rename), used
//     when a Dataspace is opened with a storage_dir;
//   * MemEnv  — a deterministic in-memory file system with an explicit
//     durability model for crash testing: appended bytes sit in a volatile
//     buffer until Sync() makes them durable. A FaultInjector (PR 1) can
//     kill any mutating operation; the "machine" then loses every
//     unsynced byte except a scripted writeback prefix (modelling OS
//     page-cache writeback, which is what produces torn WAL tails), and
//     every subsequent call fails until Reboot().
//
// Metadata operations (create, rename, delete) are modelled as atomic and
// immediately durable — the standard idealization (see DESIGN.md §9 for
// the directory-fsync caveat on real file systems).

#ifndef IDM_STORAGE_ENV_H_
#define IDM_STORAGE_ENV_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/fault.h"
#include "util/result.h"

namespace idm::storage {

class Env {
 public:
  virtual ~Env() = default;

  /// Creates \p dir (and parents). Existing directories are OK.
  virtual Status CreateDir(const std::string& dir) = 0;
  /// File names (not paths) directly inside \p dir, sorted ascending.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  /// Appends \p data to \p path, creating the file if missing. The bytes
  /// are NOT durable until Sync(path) returns OK.
  virtual Status Append(const std::string& path, std::string_view data) = 0;
  /// Makes all previously appended bytes of \p path durable.
  virtual Status Sync(const std::string& path) = 0;
  /// Truncates \p path to \p size bytes (used to drop a torn WAL tail).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  /// Atomically replaces \p to with \p from.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Deletes \p path. Missing files are OK (idempotent cleanup).
  virtual Status Delete(const std::string& path) = 0;

  /// The process-wide DiskEnv.
  static Env* Default();
};

/// Real file system via <filesystem> + POSIX fsync.
class DiskEnv : public Env {
 public:
  Status CreateDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Delete(const std::string& path) override;
};

/// Deterministic in-memory environment with crash injection.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  /// Every mutating operation first consults \p injector (op names
  /// "env.append", "env.sync", "env.rename", ...). A non-OK verdict kills
  /// the machine: the op does not happen (bar the writeback prefix of a
  /// killed append) and every later call fails until Reboot(). A silent
  /// corruption verdict (kBitFlip / kTruncate, scripted or drawn from the
  /// env knobs) lets the op report OK while damaging the bytes it wrote —
  /// the device lied; only a later CRC check can tell.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// How many not-yet-synced buffered bytes per file survive a crash (the
  /// page-cache writeback prefix). 0 = strict "only fsynced data survives";
  /// a small value cuts mid-record and produces torn WAL tails.
  void set_crash_writeback_bytes(uint64_t n) { crash_writeback_bytes_ = n; }

  bool crashed() const { return crashed_; }
  /// Restarts the machine after a crash: volatile buffers are gone, only
  /// durable bytes remain visible.
  void Reboot();

  /// Kills the machine outright, without an injector: every unsynced byte
  /// beyond the writeback prefix is lost and all calls fail until Reboot().
  /// The cluster layer uses this to fence a dead (or deposed) primary.
  void CrashNow() {
    if (!crashed_) Crash();
  }

  /// Total mutating operations attempted so far (crash-matrix sizing).
  uint64_t mutating_ops() const { return mutating_ops_; }

  /// --- at-rest damage hooks (corruption-matrix tooling) -------------------
  /// Media decay after the fact: flips one bit of \p path's durable bytes
  /// at \p offset. Not an operation — consults no injector, counts toward
  /// nothing; the next reader simply sees the damaged byte. Returns false
  /// when \p path is missing or \p offset is past its durable size.
  bool CorruptDurable(const std::string& path, uint64_t offset);
  /// Media decay: cuts \p path's durable bytes to \p size (buffered bytes
  /// are dropped — the tail is gone, not pending). Same non-operation
  /// semantics as CorruptDurable.
  bool TruncateDurable(const std::string& path, uint64_t size);

  Status CreateDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Delete(const std::string& path) override;

 private:
  struct File {
    std::string durable;   ///< survives a crash
    std::string buffered;  ///< appended but not fsynced; lost on crash
  };

  /// Injector gate shared by all mutating ops. Returns non-OK (and marks
  /// the machine crashed) when the op is killed. When the injector hands
  /// down silent damage, \p corruption (if non-null) receives the kind;
  /// only the byte-writing ops (Append, Sync) pass it — a corrupted rename
  /// has no bytes to damage.
  Status CheckOp(const char* op_name, FaultKind* corruption = nullptr);
  void Crash();

  std::map<std::string, File> files_;
  std::vector<std::string> dirs_;
  FaultInjector* injector_ = nullptr;
  uint64_t crash_writeback_bytes_ = 0;
  uint64_t mutating_ops_ = 0;
  bool crashed_ = false;
};

}  // namespace idm::storage

#endif  // IDM_STORAGE_ENV_H_
