// Quarantine: the containment half of the integrity layer (DESIGN.md §15).
//
// A corrupt artifact is never deleted — deletion destroys the evidence and
// forecloses forensic recovery of bytes a CRC happened to damage. Instead it
// is moved (or copied) into `<store_dir>/quarantine/`, registered in an
// append-only MANIFEST, and counted, so `Dataspace::Stats().repair` can name
// exactly what was contained and recovery/GC never mistakes the stash for
// live state.
//
// The manifest is line-oriented (`v1|id|bytes|stored_as|artifact|reason`,
// reason last so it may contain anything but a newline) and crash-tolerant:
// a torn final line from a crash mid-append is skipped on Load(). Lives in
// storage rather than src/repair/ because StorageEngine::Open itself
// quarantines orphaned newer-generation files during degraded recovery.

#ifndef IDM_STORAGE_QUARANTINE_H_
#define IDM_STORAGE_QUARANTINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/env.h"
#include "util/result.h"

namespace idm::storage {

class QuarantineManager {
 public:
  /// One contained artifact, as recorded in the manifest.
  struct Entry {
    uint64_t id = 0;           ///< monotone per-store quarantine ordinal
    uint64_t bytes = 0;        ///< size of the preserved evidence
    std::string stored_as;     ///< file name inside quarantine/
    std::string artifact;      ///< original name, e.g. "wal-3.log"
    std::string reason;        ///< what check failed, human-readable
  };

  /// Manages `<store_dir>/quarantine/` through \p env (not owned).
  QuarantineManager(Env* env, std::string store_dir);

  /// Reads the manifest back (missing = empty store; torn tail skipped).
  /// Idempotent; called once right after construction.
  Status Load();

  /// Moves `<store_dir>/<artifact>` into the stash (atomic rename — the
  /// bytes are preserved exactly) and appends a manifest entry.
  Status MoveAside(const std::string& artifact, const std::string& reason);

  /// Copies the artifact's current bytes into the stash, leaving the live
  /// file in place — used when the live file is about to be rebuilt by a
  /// rescue checkpoint and the damaged original is the evidence.
  Status CopyAside(const std::string& artifact, const std::string& reason);

  /// Preserves loose bytes that never landed in a file (e.g. a corrupt
  /// shipped WAL chunk rejected before it reached the mirror).
  Status PreserveBytes(const std::string& artifact, std::string_view bytes,
                       const std::string& reason);

  const std::vector<Entry>& entries() const { return entries_; }
  uint64_t count() const { return entries_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }
  /// Name of the most recently quarantined artifact ("" when none) — the
  /// "degrade loudly" surface: Stats().repair names this.
  const std::string& last_artifact() const { return last_artifact_; }

  /// `<store_dir>/quarantine` — recovery GC must skip this name.
  std::string DirPath() const { return store_dir_ + "/" + kDirName; }

  static constexpr const char* kDirName = "quarantine";

 private:
  Status Register(std::string_view stored_as, std::string_view artifact,
                  uint64_t bytes, const std::string& reason);
  std::string StashName(uint64_t id, const std::string& artifact) const;

  Env* env_;
  std::string store_dir_;
  std::vector<Entry> entries_;
  uint64_t next_id_ = 1;
  uint64_t total_bytes_ = 0;
  std::string last_artifact_;
};

}  // namespace idm::storage

#endif  // IDM_STORAGE_QUARANTINE_H_
