#include "storage/snapshot.h"

#include "storage/crc32.h"
#include "util/codec.h"

namespace idm::storage {

namespace {

using codec::GetString;
using codec::GetU32;
using codec::GetU64;
using codec::PutString;
using codec::PutU32;
using codec::PutU64;

constexpr uint64_t kMagic = 0x69444D31434B5031ULL;  // "iDM1CKP1"
constexpr uint32_t kFormatVersion = 1;

}  // namespace

std::string Snapshot::Encode() const {
  std::string out;
  PutU64(&out, kMagic);
  PutU32(&out, kFormatVersion);
  PutU64(&out, last_commit_seq);
  PutString(&out, catalog);
  PutString(&out, names);
  PutString(&out, tuples);
  PutString(&out, content);
  PutString(&out, groups);
  PutString(&out, lineage);
  PutString(&out, versions);
  PutU32(&out, Crc32(out));  // seal: CRC of everything before it
  return out;
}

Result<Snapshot> Snapshot::Decode(const std::string& data) {
  if (data.size() < 4) return Status::ParseError("checkpoint too short");
  size_t body_size = data.size() - 4;
  size_t crc_pos = body_size;
  uint32_t stored_crc = 0;
  if (!GetU32(data, &crc_pos, &stored_crc)) {
    return Status::ParseError("checkpoint too short");
  }
  if (Crc32(std::string_view(data.data(), body_size)) != stored_crc) {
    return Status::ParseError("checkpoint CRC mismatch");
  }
  size_t pos = 0;
  uint64_t magic = 0;
  if (!GetU64(data, &pos, &magic) || magic != kMagic) {
    return Status::ParseError("not a checkpoint image");
  }
  uint32_t format = 0;
  if (!GetU32(data, &pos, &format) || format != kFormatVersion) {
    return Status::ParseError("unsupported checkpoint format version");
  }
  Snapshot snapshot;
  if (!GetU64(data, &pos, &snapshot.last_commit_seq) ||
      !GetString(data, &pos, &snapshot.catalog) ||
      !GetString(data, &pos, &snapshot.names) ||
      !GetString(data, &pos, &snapshot.tuples) ||
      !GetString(data, &pos, &snapshot.content) ||
      !GetString(data, &pos, &snapshot.groups) ||
      !GetString(data, &pos, &snapshot.lineage) ||
      !GetString(data, &pos, &snapshot.versions)) {
    return Status::ParseError("truncated checkpoint image");
  }
  if (pos != body_size) return Status::ParseError("trailing checkpoint bytes");
  return snapshot;
}

}  // namespace idm::storage
