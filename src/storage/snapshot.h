// Checkpoint image: the serialized state of every RVM structure plus the
// WAL commit sequence it reflects. Encode seals the image with a CRC32 so
// a torn checkpoint write is detected and recovery falls back to the
// previous generation.

#ifndef IDM_STORAGE_SNAPSHOT_H_
#define IDM_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace idm::storage {

struct Snapshot {
  /// WAL commit sequence this image reflects; replay resumes after it.
  uint64_t last_commit_seq = 0;

  // One deterministic Serialize() image per RVM structure.
  std::string catalog;
  std::string names;
  std::string tuples;
  std::string content;
  std::string groups;
  std::string lineage;
  std::string versions;

  std::string Encode() const;
  static Result<Snapshot> Decode(const std::string& data);

  bool operator==(const Snapshot&) const = default;
};

}  // namespace idm::storage

#endif  // IDM_STORAGE_SNAPSHOT_H_
