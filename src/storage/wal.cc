#include "storage/wal.h"

#include "storage/crc32.h"
#include "util/codec.h"

namespace idm::storage {

namespace {

constexpr char kTagMutation = 1;
constexpr char kTagCommit = 2;

}  // namespace

void FrameRecord(std::string_view payload, std::string* out) {
  codec::PutU32(out, static_cast<uint32_t>(payload.size()));
  codec::PutU32(out, Crc32(payload));
  out->append(payload);
}

WalScanResult ScanWal(std::string_view data) {
  WalScanResult result;
  std::vector<Mutation> pending;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t frame_start = pos;
    uint32_t len = 0, crc = 0;
    if (!codec::GetU32(data, &pos, &len) || !codec::GetU32(data, &pos, &crc) ||
        len > data.size() - pos) {
      result.torn_tail = true;
      break;
    }
    std::string_view payload = data.substr(pos, len);
    if (Crc32(payload) != crc || payload.empty()) {
      result.torn_tail = true;
      break;
    }
    pos += len;
    char tag = payload.front();
    if (tag == kTagMutation) {
      Mutation m;
      size_t mpos = 1;
      if (!Mutation::DecodeFrom(payload, &mpos, &m) || mpos != payload.size()) {
        // CRC passed but the payload is gibberish: treat as corruption and
        // stop at the last intact commit, like any torn tail.
        result.torn_tail = true;
        pos = frame_start;
        break;
      }
      pending.push_back(std::move(m));
    } else if (tag == kTagCommit) {
      size_t spos = 1;
      uint64_t seq = 0;
      if (!codec::GetU64(payload, &spos, &seq) || spos != payload.size()) {
        result.torn_tail = true;
        pos = frame_start;
        break;
      }
      for (Mutation& m : pending) result.mutations.push_back(std::move(m));
      pending.clear();
      result.last_commit_seq = seq;
      result.valid_bytes = pos;
      result.commits.push_back({seq, pos});
    } else {
      result.torn_tail = true;
      pos = frame_start;
      break;
    }
  }
  if (pos < data.size()) result.torn_tail = true;
  result.dropped_records = pending.size();
  if (result.dropped_records > 0) result.torn_tail = true;
  return result;
}

Status WalWriter::AppendBatch(const std::vector<Mutation>& batch,
                              uint64_t commit_seq, obs::TraceSpan* span) {
  std::string blob;
  std::string payload;
  for (const Mutation& m : batch) {
    payload.clear();
    payload.push_back(kTagMutation);
    m.EncodeTo(&payload);
    FrameRecord(payload, &blob);
  }
  payload.clear();
  payload.push_back(kTagCommit);
  codec::PutU64(&payload, commit_seq);
  FrameRecord(payload, &blob);

  {
    obs::ScopedSpan append_span(span, "wal.append");
    if (append_span) {
      append_span.get()->SetAttr("bytes", static_cast<int64_t>(blob.size()));
      append_span.get()->SetAttr("mutations",
                                 static_cast<int64_t>(batch.size()));
      append_span.get()->SetAttr("commit_seq",
                                 static_cast<int64_t>(commit_seq));
    }
    IDM_RETURN_NOT_OK(env_->Append(path_, blob));
  }
  last_appended_seq_ = commit_seq;
  appended_bytes_ += blob.size();
  unsynced_bytes_ += blob.size();

  bool sync = false;
  switch (policy_) {
    case FsyncPolicy::kEveryCommit:
      sync = true;
      break;
    case FsyncPolicy::kInterval: {
      Micros now = clock_ != nullptr ? clock_->NowMicros() : 0;
      if (now - last_sync_at_ >= fsync_interval_micros_) sync = true;
      break;
    }
    case FsyncPolicy::kBytes:
      if (unsynced_bytes_ >= fsync_bytes_) sync = true;
      break;
    case FsyncPolicy::kNever:
      break;
  }
  if (sync) return SyncNow(span);
  return Status::OK();
}

Status WalWriter::SyncNow(obs::TraceSpan* span) {
  if (unsynced_bytes_ == 0 && last_durable_seq_ == last_appended_seq_) {
    return Status::OK();
  }
  obs::ScopedSpan sync_span(span, "wal.fsync");
  if (sync_span) {
    sync_span.get()->SetAttr("unsynced_bytes",
                             static_cast<int64_t>(unsynced_bytes_));
  }
  IDM_RETURN_NOT_OK(env_->Sync(path_));
  last_durable_seq_ = last_appended_seq_;
  unsynced_bytes_ = 0;
  ++sync_count_;
  last_sync_at_ = clock_ != nullptr ? clock_->NowMicros() : 0;
  return Status::OK();
}

}  // namespace idm::storage
