#include "storage/record.h"

#include "core/tuple.h"
#include "util/codec.h"

namespace idm::storage {

using codec::GetString;
using codec::GetU32;
using codec::GetU64;
using codec::PutString;
using codec::PutU32;
using codec::PutU64;

void Mutation::EncodeTo(std::string* out) const {
  PutU32(out, static_cast<uint32_t>(kind));
  PutU64(out, a);
  PutU64(out, b);
  PutU64(out, c);
  PutString(out, s1);
  PutString(out, s2);
  PutU64(out, ids.size());
  for (uint64_t id : ids) PutU64(out, id);
}

bool Mutation::DecodeFrom(std::string_view in, size_t* pos, Mutation* out) {
  uint32_t kind = 0;
  if (!GetU32(in, pos, &kind)) return false;
  if (kind > static_cast<uint32_t>(Kind::kVersionAppend)) return false;
  out->kind = static_cast<Kind>(kind);
  if (!GetU64(in, pos, &out->a) || !GetU64(in, pos, &out->b) ||
      !GetU64(in, pos, &out->c) || !GetString(in, pos, &out->s1) ||
      !GetString(in, pos, &out->s2)) {
    return false;
  }
  uint64_t n = 0;
  if (!GetU64(in, pos, &n)) return false;
  if (*pos > in.size() || n > (in.size() - *pos) / 8) return false;
  out->ids.clear();
  out->ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!GetU64(in, pos, &id)) return false;
    out->ids.push_back(id);
  }
  return true;
}

Result<index::DocId> ApplyMutation(const Mutation& m, const Structures& s) {
  using Kind = Mutation::Kind;
  switch (m.kind) {
    case Kind::kInternSource:
      return static_cast<index::DocId>(s.catalog->InternSource(m.s1));
    case Kind::kRegister:
      return s.catalog->Register(m.s1, m.s2, static_cast<uint32_t>(m.a),
                                 m.b != 0);
    case Kind::kCatalogRemove:
      s.catalog->Remove(m.a);
      return index::DocId{0};
    case Kind::kNameAdd:
      s.names->Add(m.a, m.s1);
      return index::DocId{0};
    case Kind::kNameRemove:
      s.names->Remove(m.a);
      return index::DocId{0};
    case Kind::kTupleAdd: {
      size_t pos = 0;
      core::TupleComponent tuple;
      if (!core::TupleComponent::DeserializeFrom(m.s1, &pos, &tuple) ||
          pos != m.s1.size()) {
        return Status::ParseError("undecodable tuple image in mutation");
      }
      s.tuples->Add(m.a, tuple);
      return index::DocId{0};
    }
    case Kind::kTupleRemove:
      s.tuples->Remove(m.a);
      return index::DocId{0};
    case Kind::kContentAdd:
      s.content->AddDocument(m.a, m.s1);
      return index::DocId{0};
    case Kind::kContentRemove:
      s.content->RemoveDocument(m.a);
      return index::DocId{0};
    case Kind::kGroupSet:
      s.groups->SetChildren(
          m.a, std::vector<index::DocId>(m.ids.begin(), m.ids.end()));
      return index::DocId{0};
    case Kind::kGroupRemoveAll:
      s.groups->RemoveAllEdgesOf(m.a);
      return index::DocId{0};
    case Kind::kLineageRecord:
      s.lineage->Record(m.a, m.b, m.s1);
      return index::DocId{0};
    case Kind::kLineageForget:
      s.lineage->Forget(m.a);
      return index::DocId{0};
    case Kind::kVersionAppend: {
      if (m.a > 2) return Status::ParseError("invalid version-log op");
      s.versions->AppendAt(static_cast<index::ChangeRecord::Op>(m.a), m.b,
                           static_cast<Micros>(m.c));
      return index::DocId{0};
    }
  }
  return Status::ParseError("unknown mutation kind");
}

}  // namespace idm::storage
