#include "storage/crc32.h"

#include <array>

namespace idm::storage {

namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFF];
  }
  return ~crc;
}

}  // namespace idm::storage
