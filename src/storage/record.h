// The logical mutation log. Every change the Replica&Indexes module makes
// to its structures is expressed as one Mutation record; the SAME
// ApplyMutation function executes records on the live path (when a storage
// engine is attached) and during WAL replay, so a recovered dataspace goes
// through exactly the state transitions of the original run — including
// DocId assignment order and version-log timestamps — and ends up
// byte-identical under the deterministic Serialize() images.

#ifndef IDM_STORAGE_RECORD_H_
#define IDM_STORAGE_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "index/catalog.h"
#include "index/group_store.h"
#include "index/inverted_index.h"
#include "index/lineage.h"
#include "index/name_index.h"
#include "index/tuple_index.h"
#include "index/version_log.h"
#include "util/result.h"

namespace idm::storage {

struct Mutation {
  enum class Kind : uint32_t {
    kInternSource = 0,    ///< s1=source name
    kRegister = 1,        ///< s1=uri, s2=class name, a=source id, b=derived
    kCatalogRemove = 2,   ///< a=id
    kNameAdd = 3,         ///< a=id, s1=name
    kNameRemove = 4,      ///< a=id
    kTupleAdd = 5,        ///< a=id, s1=serialized TupleComponent
    kTupleRemove = 6,     ///< a=id
    kContentAdd = 7,      ///< a=id, s1=document text
    kContentRemove = 8,   ///< a=id
    kGroupSet = 9,        ///< a=parent id, ids=children
    kGroupRemoveAll = 10, ///< a=id
    kLineageRecord = 11,  ///< a=derived id, b=origin id, s1=transformation
    kLineageForget = 12,  ///< a=id
    kVersionAppend = 13,  ///< a=op, b=id, c=timestamp micros
  };

  Kind kind = Kind::kInternSource;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  std::string s1;
  std::string s2;
  std::vector<uint64_t> ids;

  void EncodeTo(std::string* out) const;
  /// Decodes one mutation starting at \p *pos; advances \p *pos past it.
  static bool DecodeFrom(std::string_view in, size_t* pos, Mutation* out);

  bool operator==(const Mutation&) const = default;
};

/// The mutable structures a mutation applies to (the RVM's members).
struct Structures {
  index::Catalog* catalog = nullptr;
  index::NameIndex* names = nullptr;
  index::TupleIndex* tuples = nullptr;
  index::InvertedIndex* content = nullptr;
  index::GroupStore* groups = nullptr;
  index::LineageStore* lineage = nullptr;
  index::VersionLog* versions = nullptr;
};

/// Executes \p m against \p s. Returns the produced id for kInternSource
/// (source id) and kRegister (DocId); 0 for all other kinds. Fails only on
/// malformed payloads (e.g. an undecodable tuple image).
Result<index::DocId> ApplyMutation(const Mutation& m, const Structures& s);

}  // namespace idm::storage

#endif  // IDM_STORAGE_RECORD_H_
