#include "storage/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace idm::storage {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// DiskEnv

Env* Env::Default() {
  static DiskEnv env;
  return &env;
}

Status DiskEnv::CreateDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("create_directories " + dir + ": " + ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> DiskEnv::ListDir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> names;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) return Status::IoError("list " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

bool DiskEnv::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<std::string> DiskEnv::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open " + path + " for read");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read " + path);
  return data;
}

Status DiskEnv::Append(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IoError("open " + path + " for append");
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IoError("append to " + path);
  }
  return Status::OK();
}

Status DiskEnv::Sync(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Status::IoError("open " + path + " for fsync");
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync " + path);
  return Status::OK();
}

Status DiskEnv::Truncate(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) return Status::IoError("truncate " + path + ": " + ec.message());
  return Status::OK();
}

Status DiskEnv::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("rename " + from + " -> " + to + ": " + ec.message());
  }
  return Status::OK();
}

Status DiskEnv::Delete(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // removing a missing file reports no error
  if (ec) return Status::IoError("delete " + path + ": " + ec.message());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MemEnv

namespace {
// Deterministic damage placement: the byte/bit hit by a silent corruption
// is a pure function of the op ordinal, not an Rng draw — a scripted
// kBitFlip replays bit-identically and consumes no randomness.
size_t DamageOffset(uint64_t ordinal, size_t size) {
  return static_cast<size_t>((ordinal * 1315423911ull) % size);
}
}  // namespace

Status MemEnv::CheckOp(const char* op_name, FaultKind* corruption) {
  if (crashed_) return Status::IoError("machine crashed (awaiting reboot)");
  ++mutating_ops_;
  if (injector_ != nullptr) {
    EnvVerdict verdict = injector_->OnEnvOperation(op_name);
    if (corruption != nullptr) *corruption = verdict.corruption;
    if (!verdict.status.ok()) {
      Crash();
      return Status::IoError(std::string("killed during ") + op_name);
    }
  }
  return Status::OK();
}

void MemEnv::Crash() {
  // The page cache dies with the machine: of every file's unsynced bytes,
  // only the scripted writeback prefix reaches the platter.
  for (auto& [path, file] : files_) {
    size_t keep = std::min<uint64_t>(crash_writeback_bytes_,
                                     file.buffered.size());
    file.durable.append(file.buffered, 0, keep);
    file.buffered.clear();
  }
  crashed_ = true;
}

void MemEnv::Reboot() { crashed_ = false; }

Status MemEnv::CreateDir(const std::string& dir) {
  IDM_RETURN_NOT_OK(CheckOp("env.create_dir"));
  if (std::find(dirs_.begin(), dirs_.end(), dir) == dirs_.end()) {
    dirs_.push_back(dir);
  }
  return Status::OK();
}

Result<std::vector<std::string>> MemEnv::ListDir(const std::string& dir) {
  if (crashed_) return Status::IoError("machine crashed (awaiting reboot)");
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, file] : files_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // map iteration is already sorted
}

bool MemEnv::Exists(const std::string& path) {
  return !crashed_ && files_.count(path) > 0;
}

Result<std::string> MemEnv::ReadFile(const std::string& path) {
  if (crashed_) return Status::IoError("machine crashed (awaiting reboot)");
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.durable + it->second.buffered;
}

Status MemEnv::Append(const std::string& path, std::string_view data) {
  // The bytes of a killed append are buffered first so the crash writeback
  // can preserve a prefix of them — that is the mid-record torn tail.
  if (!crashed_) files_[path].buffered.append(data);
  FaultKind corruption = FaultKind::kNone;
  Status gate = CheckOp("env.append", &corruption);
  if (!gate.ok()) return gate;
  if (corruption != FaultKind::kNone && !data.empty()) {
    // The device accepted the write and lied: damage lands in the slice
    // just buffered, silently. Deterministic placement (see DamageOffset).
    std::string& buffered = files_[path].buffered;
    size_t start = buffered.size() - data.size();
    if (corruption == FaultKind::kBitFlip) {
      size_t at = start + DamageOffset(mutating_ops_, data.size());
      buffered[at] = static_cast<char>(buffered[at] ^
                                       (1u << (mutating_ops_ % 8)));
    } else if (corruption == FaultKind::kTruncate) {
      // Half the slice reaches the medium; the rest was never written.
      buffered.resize(start + data.size() / 2);
    }
  }
  return Status::OK();
}

Status MemEnv::Sync(const std::string& path) {
  FaultKind corruption = FaultKind::kNone;
  IDM_RETURN_NOT_OK(CheckOp("env.sync", &corruption));
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  File& file = it->second;
  if (corruption != FaultKind::kNone && !file.buffered.empty()) {
    // Writeback mangles the bytes being sealed durable; fsync reports OK.
    if (corruption == FaultKind::kBitFlip) {
      size_t at = DamageOffset(mutating_ops_, file.buffered.size());
      file.buffered[at] = static_cast<char>(file.buffered[at] ^
                                            (1u << (mutating_ops_ % 8)));
    } else if (corruption == FaultKind::kTruncate) {
      file.buffered.resize(file.buffered.size() / 2);
    }
  }
  file.durable += file.buffered;
  file.buffered.clear();
  return Status::OK();
}

bool MemEnv::CorruptDurable(const std::string& path, uint64_t offset) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  std::string& durable = it->second.durable;
  if (offset >= durable.size()) return false;
  durable[offset] = static_cast<char>(durable[offset] ^ 0x40);
  return true;
}

bool MemEnv::TruncateDurable(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  File& file = it->second;
  if (size > file.durable.size()) return false;
  file.durable.resize(size);
  file.buffered.clear();
  return true;
}

Status MemEnv::Truncate(const std::string& path, uint64_t size) {
  IDM_RETURN_NOT_OK(CheckOp("env.truncate"));
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  File& file = it->second;
  uint64_t visible = file.durable.size() + file.buffered.size();
  if (size >= visible) return Status::OK();
  if (size <= file.durable.size()) {
    file.durable.resize(size);
    file.buffered.clear();
  } else {
    file.buffered.resize(size - file.durable.size());
  }
  return Status::OK();
}

Status MemEnv::Rename(const std::string& from, const std::string& to) {
  IDM_RETURN_NOT_OK(CheckOp("env.rename"));
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::Delete(const std::string& path) {
  IDM_RETURN_NOT_OK(CheckOp("env.delete"));
  files_.erase(path);
  return Status::OK();
}

}  // namespace idm::storage
