#include "storage/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace idm::storage {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// DiskEnv

Env* Env::Default() {
  static DiskEnv env;
  return &env;
}

Status DiskEnv::CreateDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("create_directories " + dir + ": " + ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> DiskEnv::ListDir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> names;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) return Status::IoError("list " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

bool DiskEnv::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<std::string> DiskEnv::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open " + path + " for read");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read " + path);
  return data;
}

Status DiskEnv::Append(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IoError("open " + path + " for append");
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IoError("append to " + path);
  }
  return Status::OK();
}

Status DiskEnv::Sync(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return Status::IoError("open " + path + " for fsync");
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync " + path);
  return Status::OK();
}

Status DiskEnv::Truncate(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) return Status::IoError("truncate " + path + ": " + ec.message());
  return Status::OK();
}

Status DiskEnv::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("rename " + from + " -> " + to + ": " + ec.message());
  }
  return Status::OK();
}

Status DiskEnv::Delete(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // removing a missing file reports no error
  if (ec) return Status::IoError("delete " + path + ": " + ec.message());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MemEnv

Status MemEnv::CheckOp(const char* op_name) {
  if (crashed_) return Status::IoError("machine crashed (awaiting reboot)");
  ++mutating_ops_;
  if (injector_ != nullptr) {
    Status verdict = injector_->OnOperation(op_name);
    if (!verdict.ok()) {
      Crash();
      return Status::IoError(std::string("killed during ") + op_name);
    }
  }
  return Status::OK();
}

void MemEnv::Crash() {
  // The page cache dies with the machine: of every file's unsynced bytes,
  // only the scripted writeback prefix reaches the platter.
  for (auto& [path, file] : files_) {
    size_t keep = std::min<uint64_t>(crash_writeback_bytes_,
                                     file.buffered.size());
    file.durable.append(file.buffered, 0, keep);
    file.buffered.clear();
  }
  crashed_ = true;
}

void MemEnv::Reboot() { crashed_ = false; }

Status MemEnv::CreateDir(const std::string& dir) {
  IDM_RETURN_NOT_OK(CheckOp("env.create_dir"));
  if (std::find(dirs_.begin(), dirs_.end(), dir) == dirs_.end()) {
    dirs_.push_back(dir);
  }
  return Status::OK();
}

Result<std::vector<std::string>> MemEnv::ListDir(const std::string& dir) {
  if (crashed_) return Status::IoError("machine crashed (awaiting reboot)");
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, file] : files_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // map iteration is already sorted
}

bool MemEnv::Exists(const std::string& path) {
  return !crashed_ && files_.count(path) > 0;
}

Result<std::string> MemEnv::ReadFile(const std::string& path) {
  if (crashed_) return Status::IoError("machine crashed (awaiting reboot)");
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.durable + it->second.buffered;
}

Status MemEnv::Append(const std::string& path, std::string_view data) {
  // The bytes of a killed append are buffered first so the crash writeback
  // can preserve a prefix of them — that is the mid-record torn tail.
  if (!crashed_) files_[path].buffered.append(data);
  Status gate = CheckOp("env.append");
  if (!gate.ok()) return gate;
  return Status::OK();
}

Status MemEnv::Sync(const std::string& path) {
  IDM_RETURN_NOT_OK(CheckOp("env.sync"));
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  it->second.durable += it->second.buffered;
  it->second.buffered.clear();
  return Status::OK();
}

Status MemEnv::Truncate(const std::string& path, uint64_t size) {
  IDM_RETURN_NOT_OK(CheckOp("env.truncate"));
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  File& file = it->second;
  uint64_t visible = file.durable.size() + file.buffered.size();
  if (size >= visible) return Status::OK();
  if (size <= file.durable.size()) {
    file.durable.resize(size);
    file.buffered.clear();
  } else {
    file.buffered.resize(size - file.durable.size());
  }
  return Status::OK();
}

Status MemEnv::Rename(const std::string& from, const std::string& to) {
  IDM_RETURN_NOT_OK(CheckOp("env.rename"));
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::Delete(const std::string& path) {
  IDM_RETURN_NOT_OK(CheckOp("env.delete"));
  files_.erase(path);
  return Status::OK();
}

}  // namespace idm::storage
