#include "storage/engine.h"

#include <algorithm>

namespace idm::storage {

namespace {

/// Parses "checkpoint-<g>.ckpt" / "wal-<g>.log" / CURRENT content.
bool ParseGen(std::string_view text, uint64_t* gen) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *gen = value;
  return true;
}

bool ParseNamedGen(const std::string& name, std::string_view prefix,
                   std::string_view suffix, uint64_t* gen) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return ParseGen(std::string_view(name).substr(
                      prefix.size(), name.size() - prefix.size() - suffix.size()),
                  gen);
}

}  // namespace

std::string StorageEngine::CheckpointPath(uint64_t gen) const {
  return dir_ + "/checkpoint-" + std::to_string(gen) + ".ckpt";
}

std::string StorageEngine::WalPath(uint64_t gen) const {
  return dir_ + "/wal-" + std::to_string(gen) + ".log";
}

std::string StorageEngine::CurrentPath() const { return dir_ + "/CURRENT"; }

Result<StorageEngine::Recovered> StorageEngine::Open(
    Env* env, const std::string& dir, const StorageOptions& options,
    Clock* clock, obs::TraceSpan* span) {
  IDM_RETURN_NOT_OK(env->CreateDir(dir));
  std::unique_ptr<StorageEngine> engine(
      new StorageEngine(env, dir, options, clock));

  // Inventory the directory: checkpoint generations present on disk.
  IDM_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  std::vector<uint64_t> ckpt_gens;
  for (const std::string& name : names) {
    uint64_t gen = 0;
    if (ParseNamedGen(name, "checkpoint-", ".ckpt", &gen)) {
      ckpt_gens.push_back(gen);
    }
  }
  std::sort(ckpt_gens.rbegin(), ckpt_gens.rend());  // newest first

  uint64_t current_gen = 0;
  bool have_current = false;
  if (env->Exists(engine->CurrentPath())) {
    IDM_ASSIGN_OR_RETURN(std::string text,
                         env->ReadFile(engine->CurrentPath()));
    have_current = ParseGen(text, &current_gen);
  }

  // Candidate generations in preference order: the one CURRENT points at,
  // then every other on-disk checkpoint newest-first, then the empty
  // baseline (generation 0 has no checkpoint image by construction).
  std::vector<uint64_t> candidates;
  if (have_current) candidates.push_back(current_gen);
  for (uint64_t gen : ckpt_gens) {
    if (!have_current || gen != current_gen) candidates.push_back(gen);
  }
  if (std::find(candidates.begin(), candidates.end(), 0ULL) ==
      candidates.end()) {
    candidates.push_back(0);
  }

  Recovered recovered;
  std::optional<Snapshot> snapshot;
  uint64_t chosen_gen = 0;
  bool fallback = false;
  bool chosen = false;
  obs::ScopedSpan load_span(span, "checkpoint.load");
  for (uint64_t gen : candidates) {
    if (gen == 0) {
      snapshot.reset();
      chosen_gen = 0;
      chosen = true;
      break;
    }
    auto image = env->ReadFile(engine->CheckpointPath(gen));
    if (!image.ok()) {
      fallback = true;
      continue;
    }
    auto decoded = Snapshot::Decode(*image);
    if (!decoded.ok()) {
      fallback = true;
      continue;
    }
    snapshot = std::move(decoded).value();
    chosen_gen = gen;
    chosen = true;
    break;
  }
  if (!chosen) return Status::IoError("no recoverable generation in " + dir);
  if (load_span) {
    load_span.get()->SetAttr("generation", static_cast<int64_t>(chosen_gen));
    load_span.get()->SetAttr("fallback", fallback ? "true" : "false");
    load_span.get()->End();  // scan/replay below is not checkpoint loading
  }
  recovered.stats.had_checkpoint = snapshot.has_value();
  recovered.stats.checkpoint_fallback = fallback;
  recovered.stats.generation = chosen_gen;
  recovered.snapshot = std::move(snapshot);

  // Replay the WAL of the chosen generation up to its last intact commit
  // marker and drop the torn tail.
  uint64_t base_seq =
      recovered.snapshot.has_value() ? recovered.snapshot->last_commit_seq : 0;
  const std::string wal_path = engine->WalPath(chosen_gen);
  obs::ScopedSpan scan_span(span, "wal.scan");
  if (env->Exists(wal_path)) {
    IDM_ASSIGN_OR_RETURN(std::string wal_image, env->ReadFile(wal_path));
    WalScanResult scan = ScanWal(wal_image);
    recovered.mutations = std::move(scan.mutations);
    recovered.stats.replayed_mutations = recovered.mutations.size();
    recovered.stats.torn_tail_dropped = scan.torn_tail;
    recovered.stats.dropped_records = scan.dropped_records;
    if (scan.torn_tail) {
      IDM_RETURN_NOT_OK(env->Truncate(wal_path, scan.valid_bytes));
    }
    base_seq = std::max(base_seq, scan.last_commit_seq);
  } else {
    IDM_RETURN_NOT_OK(env->Append(wal_path, ""));
  }
  if (scan_span) {
    scan_span.get()->SetAttr(
        "replayed", static_cast<int64_t>(recovered.stats.replayed_mutations));
    scan_span.get()->SetAttr(
        "torn_tail", recovered.stats.torn_tail_dropped ? "true" : "false");
    scan_span.get()->End();
  }
  recovered.stats.last_commit_seq = base_seq;

  engine->quarantine_ = std::make_unique<QuarantineManager>(env, dir);
  IDM_RETURN_NOT_OK(engine->quarantine_->Load());

  // Make the chosen generation authoritative and garbage-collect every
  // other file. Retired older generations and orphan tmp files are plain
  // garbage and are deleted; files of a generation NEWER than the chosen
  // one are evidence — either an undecodable checkpoint we fell back past
  // or a complete-but-unreferenced generation a crash left mid-dance —
  // and are quarantined (moved aside, manifest-registered), never deleted.
  {
    obs::ScopedSpan gc_span(span, "gc");
    if (!have_current || current_gen != chosen_gen) {
      IDM_RETURN_NOT_OK(engine->SwitchCurrent(chosen_gen));
    }
    uint64_t quarantined_before = engine->quarantine_->count();
    for (const std::string& name : names) {
      if (name == "CURRENT" || name == QuarantineManager::kDirName) continue;
      uint64_t gen = 0;
      bool is_ckpt = ParseNamedGen(name, "checkpoint-", ".ckpt", &gen);
      bool is_wal = !is_ckpt && ParseNamedGen(name, "wal-", ".log", &gen);
      if ((is_ckpt || is_wal) && gen == chosen_gen) continue;
      if ((is_ckpt || is_wal) && gen > chosen_gen) {
        IDM_RETURN_NOT_OK(engine->quarantine_->MoveAside(
            name, fallback ? "orphaned newer generation (fallback past "
                             "undecodable checkpoint)"
                           : "orphaned newer generation (crash mid-"
                             "checkpoint dance)"));
        continue;
      }
      IDM_RETURN_NOT_OK(env->Delete(dir + "/" + name));
    }
    recovered.stats.quarantined_files =
        engine->quarantine_->count() - quarantined_before;
    if (gc_span && recovered.stats.quarantined_files > 0) {
      gc_span.get()->SetAttr(
          "quarantined",
          static_cast<int64_t>(recovered.stats.quarantined_files));
    }
  }

  engine->generation_ = chosen_gen;
  engine->commit_seq_ = base_seq;
  engine->durable_floor_ = base_seq;  // everything recovered is on disk
  engine->wal_ = std::make_unique<WalWriter>(
      env, wal_path, options.fsync_policy, options.fsync_interval_micros,
      options.fsync_bytes, clock);
  recovered.engine = std::move(engine);
  return recovered;
}

Status StorageEngine::Commit(obs::TraceSpan* span) {
  if (pending_.empty()) return Status::OK();
  uint64_t seq = commit_seq_ + 1;
  std::vector<Mutation> batch;
  batch.swap(pending_);
  uint64_t bytes_before = wal_->appended_bytes();
  uint64_t syncs_before = wal_->sync_count();
  IDM_RETURN_NOT_OK(wal_->AppendBatch(batch, seq, span));
  commit_seq_ = seq;
  ++stats_.commits;
  stats_.mutations_logged += batch.size();
  stats_.wal_bytes = wal_->appended_bytes();
  stats_.fsyncs = fsync_floor_ + wal_->sync_count();
  if (metrics_.commits != nullptr) {
    metrics_.commits->Inc();
    metrics_.mutations->Inc(batch.size());
    metrics_.wal_bytes->Inc(wal_->appended_bytes() - bytes_before);
    metrics_.fsyncs->Inc(wal_->sync_count() - syncs_before);
    metrics_.batch_size->Observe(batch.size());
  }
  if (commit_listener_) commit_listener_(seq);
  return Status::OK();
}

Status StorageEngine::SyncNow(obs::TraceSpan* span) {
  uint64_t syncs_before = wal_->sync_count();
  IDM_RETURN_NOT_OK(wal_->SyncNow(span));
  stats_.fsyncs = fsync_floor_ + wal_->sync_count();
  if (metrics_.fsyncs != nullptr) {
    metrics_.fsyncs->Inc(wal_->sync_count() - syncs_before);
  }
  return Status::OK();
}

void StorageEngine::SetObservability(obs::Observability* obs) {
  if (obs == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  obs::MetricsRegistry& reg = obs->metrics();
  metrics_.commits = reg.counter("storage.commits");
  metrics_.mutations = reg.counter("storage.mutations_logged");
  metrics_.wal_bytes = reg.counter("storage.wal.appended_bytes");
  metrics_.fsyncs = reg.counter("storage.wal.fsyncs");
  metrics_.checkpoints = reg.counter("storage.checkpoints");
  metrics_.batch_size = reg.histogram("storage.commit.batch_size");
}

Status StorageEngine::SwitchCurrent(uint64_t gen) {
  const std::string tmp = CurrentPath() + ".tmp";
  IDM_RETURN_NOT_OK(env_->Delete(tmp));
  IDM_RETURN_NOT_OK(env_->Append(tmp, std::to_string(gen)));
  IDM_RETURN_NOT_OK(env_->Sync(tmp));
  return env_->Rename(tmp, CurrentPath());
}

Status StorageEngine::Checkpoint(const Snapshot& snapshot,
                                 obs::TraceSpan* span) {
  if (!pending_.empty()) {
    return Status::InvalidArgument(
        "checkpoint with a staged uncommitted batch");
  }
  uint64_t old_gen = generation_;
  uint64_t gen = generation_ + 1;
  const std::string tmp = CheckpointPath(gen) + ".tmp";

  {
    obs::ScopedSpan write_span(span, "snapshot.write");
    IDM_RETURN_NOT_OK(env_->Delete(tmp));
    std::string image = snapshot.Encode();
    if (write_span) {
      write_span.get()->SetAttr("bytes", static_cast<int64_t>(image.size()));
      write_span.get()->SetAttr("generation", static_cast<int64_t>(gen));
    }
    IDM_RETURN_NOT_OK(env_->Append(tmp, image));
    IDM_RETURN_NOT_OK(env_->Sync(tmp));
    IDM_RETURN_NOT_OK(env_->Rename(tmp, CheckpointPath(gen)));
  }
  {
    obs::ScopedSpan rotate_span(span, "wal.rotate");
    IDM_RETURN_NOT_OK(env_->Append(WalPath(gen), ""));
  }
  {
    obs::ScopedSpan switch_span(span, "current.switch");
    IDM_RETURN_NOT_OK(SwitchCurrent(gen));
    // The old generation is garbage from here on; a crash between these
    // deletes only leaves orphans for the next Open() to collect.
    IDM_RETURN_NOT_OK(env_->Delete(CheckpointPath(old_gen)));
    IDM_RETURN_NOT_OK(env_->Delete(WalPath(old_gen)));
  }

  generation_ = gen;
  durable_floor_ = std::max(durable_floor_, snapshot.last_commit_seq);
  fsync_floor_ += wal_->sync_count();
  wal_ = std::make_unique<WalWriter>(
      env_, WalPath(gen), options_.fsync_policy, options_.fsync_interval_micros,
      options_.fsync_bytes, clock_);
  ++stats_.checkpoints;
  stats_.wal_bytes = 0;
  if (metrics_.checkpoints != nullptr) metrics_.checkpoints->Inc();
  return Status::OK();
}

}  // namespace idm::storage
