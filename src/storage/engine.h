// The durable storage engine (DESIGN.md §9). Directory layout:
//
//   CURRENT                — decimal generation number of the live pair
//   checkpoint-<g>.ckpt    — sealed Snapshot image (absent for g = 0)
//   wal-<g>.log            — mutations committed after checkpoint <g>
//
// Checkpoint protocol (write tmp → fsync → atomic rename → switch CURRENT
// → delete the old generation) guarantees that at every instant either the
// old or the new generation is complete on disk; recovery follows CURRENT
// and falls back to the newest decodable checkpoint when the pointed-to
// image is unreadable.

#ifndef IDM_STORAGE_ENGINE_H_
#define IDM_STORAGE_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "storage/env.h"
#include "storage/quarantine.h"
#include "storage/record.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/clock.h"
#include "util/result.h"

namespace idm::storage {

struct StorageOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryCommit;
  /// kInterval: fsync when this much (clock) time passed since the last.
  Micros fsync_interval_micros = 1'000'000;
  /// kBytes: fsync when this many unsynced bytes accumulated.
  uint64_t fsync_bytes = 1ULL << 20;
  /// NeedsCheckpoint() turns true once the live WAL grows past this.
  uint64_t checkpoint_after_wal_bytes = 4ULL << 20;
};

/// What recovery found and did (surfaced via Dataspace::recovery_stats()).
struct RecoveryStats {
  bool had_checkpoint = false;
  bool checkpoint_fallback = false;  ///< CURRENT's image was unreadable
  uint64_t generation = 0;           ///< generation recovered from
  uint64_t last_commit_seq = 0;
  uint64_t replayed_mutations = 0;
  bool torn_tail_dropped = false;
  uint64_t dropped_records = 0;  ///< mutations whose commit never landed
  uint64_t quarantined_files = 0;  ///< orphans moved aside by recovery GC
};

class StorageEngine {
 public:
  struct Stats {
    uint64_t commits = 0;
    uint64_t mutations_logged = 0;
    uint64_t checkpoints = 0;
    uint64_t wal_bytes = 0;  ///< appended to the live WAL since open
    uint64_t fsyncs = 0;     ///< fsyncs issued since open (across rotations)
  };

  /// Everything Open() recovered. The caller restores `snapshot` (when
  /// present) into its structures, then applies `mutations` in order; the
  /// engine itself is already positioned after them.
  struct Recovered {
    std::unique_ptr<StorageEngine> engine;
    std::optional<Snapshot> snapshot;
    std::vector<Mutation> mutations;
    RecoveryStats stats;
  };

  /// Opens (creating if needed) the store in \p dir. A non-null \p span
  /// records recovery steps (checkpoint.load, wal.scan, gc) as children.
  static Result<Recovered> Open(Env* env, const std::string& dir,
                                const StorageOptions& options, Clock* clock,
                                obs::TraceSpan* span = nullptr);

  /// Stages \p m into the current batch (buffered, not yet on disk).
  void Log(Mutation m) { pending_.push_back(std::move(m)); }
  size_t pending() const { return pending_.size(); }

  /// Writes the staged batch plus its commit marker as one append and
  /// applies the fsync policy. Empty batches are a no-op. A non-null
  /// \p span records the wal.append (and wal.fsync) as children.
  Status Commit(obs::TraceSpan* span = nullptr);

  /// Forces all committed batches to the platter regardless of policy.
  Status SyncNow(obs::TraceSpan* span = nullptr);

  /// Writes \p snapshot as the next generation and retires the old one.
  /// The pending batch must be empty (commit first). A non-null \p span
  /// records snapshot.write / wal.rotate / current.switch children.
  Status Checkpoint(const Snapshot& snapshot, obs::TraceSpan* span = nullptr);

  bool NeedsCheckpoint() const {
    return wal_->appended_bytes() >= options_.checkpoint_after_wal_bytes;
  }

  /// Sequence of the last written commit marker.
  uint64_t commit_seq() const { return commit_seq_; }
  /// Sequence of the last commit known durable (checkpointed or fsynced).
  uint64_t last_durable_seq() const {
    return std::max(durable_floor_, wal_->last_durable_seq());
  }
  /// Last durable commit present in the live WAL itself (excludes the
  /// checkpoint's durable floor). The scrubber's cleanliness bar: a frame
  /// walk over the live WAL must reach this commit; bytes past it are an
  /// unsynced in-flight tail, not damage. 0 under FsyncPolicy::kNever —
  /// nothing is promised durable, so nothing can be called corrupt.
  uint64_t wal_durable_seq() const { return wal_->last_durable_seq(); }
  uint64_t generation() const { return generation_; }
  const Stats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

  /// --- replication hooks (DESIGN.md §12) ----------------------------------
  /// The environment the engine writes through, and the live generation's
  /// file paths. WAL shipping reads the primary's files through these to
  /// stream sealed prefixes / checkpoint images to replicas.
  Env* env() const { return env_; }
  std::string LiveWalPath() const { return WalPath(generation_); }
  std::string LiveCheckpointPath() const { return CheckpointPath(generation_); }

  /// --- integrity hooks (DESIGN.md §15) ------------------------------------
  /// The store's quarantine stash. Never null after Open(); recovery GC and
  /// the repair layer register contained artifacts through the same
  /// manifest, so Stats().repair sees one ledger.
  QuarantineManager* quarantine() const { return quarantine_.get(); }

  /// Invoked after every successful Commit() with its sequence — the
  /// crash-matrix oracle snapshots reference state from here.
  void set_commit_listener(std::function<void(uint64_t)> listener) {
    commit_listener_ = std::move(listener);
  }

  /// Attaches (or detaches, with nullptr) the metrics sink. Resolves the
  /// storage.* metric pointers once; afterwards each commit pays only the
  /// null check plus a few relaxed increments.
  void SetObservability(obs::Observability* obs);

 private:
  StorageEngine(Env* env, std::string dir, const StorageOptions& options,
                Clock* clock)
      : env_(env), dir_(std::move(dir)), options_(options), clock_(clock) {}

  std::string CheckpointPath(uint64_t gen) const;
  std::string WalPath(uint64_t gen) const;
  std::string CurrentPath() const;
  Status SwitchCurrent(uint64_t gen);

  Env* env_;
  std::string dir_;
  StorageOptions options_;
  Clock* clock_;

  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<QuarantineManager> quarantine_;
  std::vector<Mutation> pending_;
  uint64_t commit_seq_ = 0;
  uint64_t durable_floor_ = 0;  ///< commits made durable by a checkpoint
  uint64_t generation_ = 0;
  uint64_t fsync_floor_ = 0;  ///< fsyncs of retired WAL writers
  Stats stats_;
  std::function<void(uint64_t)> commit_listener_;

  /// Metric pointers resolved by SetObservability (null = metrics off).
  struct Metrics {
    obs::Counter* commits = nullptr;
    obs::Counter* mutations = nullptr;
    obs::Counter* wal_bytes = nullptr;
    obs::Counter* fsyncs = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Histogram* batch_size = nullptr;
  };
  Metrics metrics_;
};

}  // namespace idm::storage

#endif  // IDM_STORAGE_ENGINE_H_
