// CRC32 (IEEE 802.3 polynomial, the zlib/gzip checksum) used to frame WAL
// records and seal checkpoint images. Table-driven, no dependencies.

#ifndef IDM_STORAGE_CRC32_H_
#define IDM_STORAGE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace idm::storage {

/// CRC32 of \p data. Incremental use: pass the previous crc as \p seed.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace idm::storage

#endif  // IDM_STORAGE_CRC32_H_
