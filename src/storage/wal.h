// Write-ahead log framing, group commit, and torn-tail scanning.
//
// On-disk layout (DESIGN.md §9): a WAL file is a sequence of frames
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// where the payload's first byte is a tag: 1 = one encoded Mutation,
// 2 = commit marker carrying the u64 commit sequence. All mutations
// between two commit markers form one atomic batch; recovery replays
// only batches whose commit marker is intact. A frame whose length or
// CRC does not check out marks the torn tail — everything from there on
// is discarded (the standard ARIES/RocksDB tail rule).

#ifndef IDM_STORAGE_WAL_H_
#define IDM_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "storage/env.h"
#include "storage/record.h"
#include "util/clock.h"

namespace idm::storage {

/// When appended commit batches are forced to the platter.
enum class FsyncPolicy {
  kEveryCommit,  ///< fsync after every commit marker (durability = commit)
  kInterval,     ///< fsync when fsync_interval_micros elapsed since the last
  kBytes,        ///< fsync when fsync_bytes unsynced bytes accumulated
  kNever,        ///< rely on OS writeback only (crash may lose commits)
};

/// Frames \p payload and appends the frame to \p out.
void FrameRecord(std::string_view payload, std::string* out);

/// Byte boundary of one intact commit in a WAL image. Segment enumeration
/// for WAL shipping (DESIGN.md §12): a shippable prefix always ends at the
/// end_offset of some commit mark, so replicas only ever receive whole
/// batches.
struct CommitMark {
  uint64_t seq = 0;         ///< commit sequence of the marker
  uint64_t end_offset = 0;  ///< bytes up to and including the marker
};

/// Result of scanning a WAL image for committed batches.
struct WalScanResult {
  /// Mutations of every fully committed batch, in log order.
  std::vector<Mutation> mutations;
  /// One entry per intact commit marker, in log order.
  std::vector<CommitMark> commits;
  /// Sequence of the last intact commit marker (0 = none).
  uint64_t last_commit_seq = 0;
  /// Bytes up to and including the last intact commit marker; the engine
  /// truncates the file here to drop the torn tail.
  uint64_t valid_bytes = 0;
  /// True when trailing bytes after the last intact frame were discarded.
  bool torn_tail = false;
  /// Mutation records dropped because their commit marker never made it.
  uint64_t dropped_records = 0;
};

/// Scans a WAL image. Never fails: corruption terminates the scan at the
/// last intact commit marker and is reported via torn_tail/dropped_records.
WalScanResult ScanWal(std::string_view data);

/// Appends commit batches to one WAL file under a group-commit fsync
/// policy. Each batch — all mutation frames plus the commit marker — is
/// handed to the Env as a single Append, so a crash can tear at most the
/// tail of one batch.
class WalWriter {
 public:
  WalWriter(Env* env, std::string path, FsyncPolicy policy,
            Micros fsync_interval_micros, uint64_t fsync_bytes, Clock* clock)
      : env_(env),
        path_(std::move(path)),
        policy_(policy),
        fsync_interval_micros_(fsync_interval_micros),
        fsync_bytes_(fsync_bytes),
        clock_(clock) {}

  /// Appends one committed batch and applies the fsync policy. When
  /// \p span is non-null a "wal.append" child (and "wal.fsync" when the
  /// policy fires) records the write; null means no tracing (default).
  Status AppendBatch(const std::vector<Mutation>& batch, uint64_t commit_seq,
                     obs::TraceSpan* span = nullptr);

  /// Forces everything appended so far to the platter.
  Status SyncNow(obs::TraceSpan* span = nullptr);

  /// Sequence of the last commit known durable (fsynced). Under kNever
  /// this stays 0 even though commits may in fact survive.
  uint64_t last_durable_seq() const { return last_durable_seq_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t sync_count() const { return sync_count_; }

  const std::string& path() const { return path_; }

 private:
  Env* env_;
  std::string path_;
  FsyncPolicy policy_;
  Micros fsync_interval_micros_;
  uint64_t fsync_bytes_;
  Clock* clock_;

  uint64_t last_appended_seq_ = 0;
  uint64_t last_durable_seq_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t unsynced_bytes_ = 0;
  uint64_t sync_count_ = 0;
  Micros last_sync_at_ = 0;
};

}  // namespace idm::storage

#endif  // IDM_STORAGE_WAL_H_
