// Observability holder: one object owning the metrics registry and the
// per-category "last trace" slots. A Dataspace constructs one when
// `Config::observability` is set and threads a raw pointer through its
// subsystems; a null pointer means "off" and every instrumentation site
// short-circuits to the pre-observability hot path (the ≤2% contract in
// DESIGN.md §11 rests on that null check being the *only* added work).

#ifndef IDM_OBS_OBS_H_
#define IDM_OBS_OBS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace idm::obs {

/// Tuning for one Observability instance (embedded in Dataspace::Config).
struct Options {
  /// Master switch. When false the Dataspace behaves exactly as if no
  /// observability option had been given at all.
  bool enabled = false;
  /// Record a span tree per query / storage operation. Metrics stay on
  /// even when this is off.
  bool trace_queries = true;
  /// Span budget per trace; AddChild beyond it returns nullptr and the
  /// trace is marked truncated().
  size_t max_trace_spans = 4096;
};

/// Well-known trace categories (keys of LastTrace).
inline constexpr char kQueryTrace[] = "query";
inline constexpr char kStorageTrace[] = "storage";
inline constexpr char kFederationTrace[] = "federation";
inline constexpr char kSubTrace[] = "sub";
inline constexpr char kRepairTrace[] = "repair";

class Observability {
 public:
  Observability(const Clock* clock, Options options)
      : clock_(clock), options_(options) {}

  const Options& options() const { return options_; }
  const Clock* clock() const { return clock_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Starts a trace for \p category ("query", "storage", ...); returns
  /// nullptr when tracing is off so callers can pass the result straight
  /// into span-threading APIs. The trace is not visible via LastTrace
  /// until FinishTrace publishes it.
  std::shared_ptr<Trace> StartTrace(const std::string& category,
                                    std::string name);

  /// Ends the root span and publishes \p trace as the category's last
  /// trace. Null-safe (no-op on nullptr).
  void FinishTrace(const std::string& category, std::shared_ptr<Trace> trace);

  /// Most recently finished trace for \p category, or nullptr.
  std::shared_ptr<const Trace> LastTrace(const std::string& category) const;

 private:
  const Clock* clock_;
  Options options_;
  MetricsRegistry metrics_;
  mutable std::mutex mu_;  ///< guards last_
  std::map<std::string, std::shared_ptr<const Trace>> last_;
};

}  // namespace idm::obs

#endif  // IDM_OBS_OBS_H_
