#include "obs/obs.h"

namespace idm::obs {

std::shared_ptr<Trace> Observability::StartTrace(const std::string& category,
                                                std::string name) {
  (void)category;
  if (!options_.trace_queries) return nullptr;
  return std::make_shared<Trace>(clock_, std::move(name),
                                 options_.max_trace_spans);
}

void Observability::FinishTrace(const std::string& category,
                                std::shared_ptr<Trace> trace) {
  if (trace == nullptr) return;
  trace->root()->End();
  std::lock_guard<std::mutex> lock(mu_);
  last_[category] = std::move(trace);
}

std::shared_ptr<const Trace> Observability::LastTrace(
    const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_.find(category);
  return it == last_.end() ? nullptr : it->second;
}

}  // namespace idm::obs
