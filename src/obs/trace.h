// Deterministic tracing for the observability layer (DESIGN.md §11).
//
// A Trace is a tree of TraceSpans timestamped on the dataspace clock —
// usually the SimClock, so span timestamps (and therefore the exported
// JSON) are bit-for-bit reproducible across runs and machines. One trace
// records one operation: a query (parse → cache → evaluation arms → index
// probes), a checkpoint (wal append/fsync → snapshot write → rotation), a
// recovery, or a federated query (one span per peer RPC).
//
// Concurrency: parallel evaluation arms attach children to a shared parent
// span; AddChild/SetAttr lock the span they touch, nothing else. For a
// deterministic tree shape under fan-out, callers pre-create the arm spans
// in input order *before* scattering and hand each arm its span (the query
// processor and the federation both do this).
//
// Exports:
//   ToJson() — Chrome trace_event "Complete" events (load into
//              chrome://tracing or Perfetto). Timestamps are relative to
//              the root span so golden files survive clock re-basing.
//   ToText() — an indented tree for terminals and README examples.

#ifndef IDM_OBS_TRACE_H_
#define IDM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/clock.h"

namespace idm::obs {

class Trace;

/// One node of a trace tree. Created via Trace::root() / AddChild(); spans
/// are owned by their parent and live as long as the whole Trace.
class TraceSpan {
 public:
  const std::string& name() const { return name_; }
  Micros start_micros() const { return start_; }
  /// End timestamp; equals start_micros() until End() is called.
  Micros end_micros() const { return end_; }
  Micros duration_micros() const { return end_ - start_; }

  /// Child span starting now (on the trace's clock). Returns nullptr when
  /// the trace's span budget is exhausted (the trace is then marked
  /// truncated) — callers must tolerate a null child, and ScopedSpan does.
  TraceSpan* AddChild(std::string name);

  /// Stamps the end time from the trace's clock (first call wins).
  void End();

  /// Attaches a key/value annotation. Keys keep insertion order in the
  /// exports; values are strings (use the int64 overload for numbers).
  void SetAttr(std::string key, std::string value);
  void SetAttr(std::string key, int64_t value);

  /// --- read access (export, tests); safe once the operation finished ----
  std::vector<const TraceSpan*> children() const;
  std::vector<std::pair<std::string, std::string>> attrs() const;
  /// First attribute value for \p key, or "" when absent.
  std::string AttrOr(const std::string& key) const;
  /// First direct child named \p name, or nullptr.
  const TraceSpan* FindChild(const std::string& name) const;
  /// First span named \p name in this subtree (pre-order), or nullptr.
  const TraceSpan* FindDescendant(const std::string& name) const;
  /// Number of spans in this subtree, including this one.
  size_t SubtreeSize() const;

 private:
  friend class Trace;
  TraceSpan(Trace* trace, std::string name, Micros start)
      : trace_(trace), name_(std::move(name)), start_(start), end_(start) {}

  Trace* trace_;
  std::string name_;
  Micros start_;
  Micros end_;
  std::atomic<bool> ended_{false};
  mutable std::mutex mu_;  ///< guards children_ and attrs_
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<TraceSpan>> children_;
};

/// A bounded tree of spans on one clock. Thread-compatible: concurrent
/// mutation of *different* spans is safe, see the file comment.
class Trace {
 public:
  /// \p clock may be nullptr (all timestamps 0 — still a valid tree).
  /// \p max_spans bounds the tree; AddChild beyond it returns nullptr.
  Trace(const Clock* clock, std::string name, size_t max_spans = 4096);

  TraceSpan* root() { return root_.get(); }
  const TraceSpan& root() const { return *root_; }
  Micros NowMicros() const { return clock_ == nullptr ? 0 : clock_->NowMicros(); }

  size_t span_count() const { return span_count_.load(std::memory_order_relaxed); }
  /// True when the span budget refused at least one AddChild.
  bool truncated() const { return truncated_.load(std::memory_order_relaxed); }

  /// Chrome trace_event JSON ("Complete" events, ts relative to the root).
  std::string ToJson() const;
  /// Indented text rendering of the tree.
  std::string ToText() const;

 private:
  friend class TraceSpan;
  /// Reserves one span against the budget; false = refuse (and mark).
  bool ReserveSpan();

  const Clock* clock_;
  size_t max_spans_;
  std::atomic<size_t> span_count_{0};
  std::atomic<bool> truncated_{false};
  std::unique_ptr<TraceSpan> root_;
};

/// RAII child span. Null-safe end to end: with a null parent (tracing off
/// or span budget exhausted) construction does nothing and get() returns
/// nullptr, so instrumentation sites need no enabled-checks of their own.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceSpan* parent, std::string name)
      : span_(parent == nullptr ? nullptr : parent->AddChild(std::move(name))) {}
  ~ScopedSpan() {
    if (span_ != nullptr) span_->End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceSpan* get() const { return span_; }
  explicit operator bool() const { return span_ != nullptr; }

 private:
  TraceSpan* span_ = nullptr;
};

}  // namespace idm::obs

#endif  // IDM_OBS_TRACE_H_
