#include "obs/trace.h"

#include <cstdio>

namespace idm::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceSpan* TraceSpan::AddChild(std::string name) {
  if (!trace_->ReserveSpan()) return nullptr;
  auto child = std::unique_ptr<TraceSpan>(
      new TraceSpan(trace_, std::move(name), trace_->NowMicros()));
  TraceSpan* raw = child.get();
  std::lock_guard<std::mutex> lock(mu_);
  children_.push_back(std::move(child));
  return raw;
}

void TraceSpan::End() {
  bool expected = false;
  if (ended_.compare_exchange_strong(expected, true)) {
    end_ = trace_->NowMicros();
  }
}

void TraceSpan::SetAttr(std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  attrs_.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::SetAttr(std::string key, int64_t value) {
  SetAttr(std::move(key), std::to_string(value));
}

std::vector<const TraceSpan*> TraceSpan::children() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const TraceSpan*> out;
  out.reserve(children_.size());
  for (const auto& child : children_) out.push_back(child.get());
  return out;
}

std::vector<std::pair<std::string, std::string>> TraceSpan::attrs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attrs_;
}

std::string TraceSpan::AttrOr(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return "";
}

const TraceSpan* TraceSpan::FindChild(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

const TraceSpan* TraceSpan::FindDescendant(const std::string& name) const {
  if (name_ == name) return this;
  for (const TraceSpan* child : children()) {
    if (const TraceSpan* hit = child->FindDescendant(name)) return hit;
  }
  return nullptr;
}

size_t TraceSpan::SubtreeSize() const {
  size_t n = 1;
  for (const TraceSpan* child : children()) n += child->SubtreeSize();
  return n;
}

Trace::Trace(const Clock* clock, std::string name, size_t max_spans)
    : clock_(clock), max_spans_(max_spans == 0 ? 1 : max_spans) {
  span_count_.store(1, std::memory_order_relaxed);  // the root
  root_ = std::unique_ptr<TraceSpan>(
      new TraceSpan(this, std::move(name), NowMicros()));
}

bool Trace::ReserveSpan() {
  size_t n = span_count_.fetch_add(1, std::memory_order_relaxed);
  if (n >= max_spans_) {
    span_count_.fetch_sub(1, std::memory_order_relaxed);
    truncated_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

namespace {

// Emits one Complete ("X") event per span, pre-order, with timestamps
// relative to the trace root so two traces of the same operation compare
// equal regardless of the clock's absolute epoch.
void JsonDfs(const TraceSpan* span, Micros base, bool* first,
             std::string* out) {
  if (!*first) *out += ',';
  *first = false;
  *out += "{\"name\":\"" + JsonEscape(span->name()) + "\",\"ph\":\"X\",\"ts\":" +
          std::to_string(span->start_micros() - base) + ",\"dur\":" +
          std::to_string(span->duration_micros()) + ",\"pid\":1,\"tid\":1";
  auto attrs = span->attrs();
  if (!attrs.empty()) {
    *out += ",\"args\":{";
    bool afirst = true;
    for (const auto& [k, v] : attrs) {
      if (!afirst) *out += ',';
      afirst = false;
      *out += '"' + JsonEscape(k) + "\":\"" + JsonEscape(v) + '"';
    }
    *out += '}';
  }
  *out += '}';
  for (const TraceSpan* child : span->children()) {
    JsonDfs(child, base, first, out);
  }
}

void TextDfs(const TraceSpan* span, Micros base, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span->name() + "  +" + std::to_string(span->start_micros() - base) +
          "us dur=" + std::to_string(span->duration_micros()) + "us";
  for (const auto& [k, v] : span->attrs()) {
    *out += ' ' + k + '=' + v;
  }
  *out += '\n';
  for (const TraceSpan* child : span->children()) {
    TextDfs(child, base, depth + 1, out);
  }
}

}  // namespace

std::string Trace::ToJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  JsonDfs(root_.get(), root_->start_micros(), &first, &out);
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Trace::ToText() const {
  std::string out;
  TextDfs(root_.get(), root_->start_micros(), 0, &out);
  if (truncated()) out += "(trace truncated at span budget)\n";
  return out;
}

}  // namespace idm::obs
