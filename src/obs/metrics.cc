#include "obs/metrics.h"

#include <bit>
#include <cstdio>
#include <limits>

namespace idm::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return Histogram::BucketUpperEdge(i);
  }
  return Histogram::BucketUpperEdge(kBuckets - 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

size_t Histogram::BucketOf(uint64_t value) {
  if (value == 0) return 0;
  size_t bit = static_cast<size_t>(std::bit_width(value));  // in [1, 64]
  return bit < kBuckets ? bit : kBuckets - 1;
}

uint64_t Histogram::BucketUpperEdge(size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return (1ULL << i) - 1;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count();
  snap.sum = sum();
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::MergeFrom(const Histogram& other) {
  MergeSnapshot(other.Snapshot());
}

void Histogram::MergeSnapshot(const HistogramSnapshot& snap) {
  for (size_t i = 0; i < kBuckets; ++i) {
    if (snap.buckets[i] > 0) {
      buckets_[i].fetch_add(snap.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snap.count, std::memory_order_relaxed);
  sum_.fetch_add(snap.sum, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterOr(const std::string& name,
                                    uint64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(hist.count) + ",\"sum\":" + std::to_string(hist.sum) +
           ",\"buckets\":[";
    // Trailing empty buckets are elided; cell i is the count of samples in
    // [2^(i-1), 2^i) as documented on Histogram.
    size_t last = 0;
    for (size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (hist.buckets[i] > 0) last = i + 1;
    }
    for (size_t i = 0; i < last; ++i) {
      if (i > 0) out += ',';
      out += std::to_string(hist.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out += name + " = {count " + std::to_string(hist.count) + ", mean " +
           std::to_string(static_cast<uint64_t>(hist.mean())) + ", p99 " +
           std::to_string(hist.Quantile(0.99)) + "}\n";
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  MetricsSnapshot theirs = other.Snapshot();
  for (const auto& [name, value] : theirs.counters) {
    counter(name)->Inc(value);
  }
  for (const auto& [name, value] : theirs.gauges) {
    gauge(name)->Set(value);
  }
  for (const auto& [name, hist] : theirs.histograms) {
    histogram(name)->MergeSnapshot(hist);
  }
}

}  // namespace idm::obs
