// Lock-cheap metrics for the observability layer (DESIGN.md §11).
//
// Three primitives, all safe to hammer from any thread:
//   Counter    — monotonically increasing u64 (relaxed fetch_add).
//   Gauge      — last-written i64 level (queue depth, bytes held).
//   Histogram  — fixed power-of-two buckets over u64 samples; every cell is
//                an independent relaxed atomic, so concurrent Observe()
//                calls never lose counts and two histograms merge by plain
//                bucket-wise addition (the property the thread-sharded
//                tests exercise).
//
// A MetricsRegistry names metrics ("iql.cache.hits") and hands out stable
// pointers: instrumentation points resolve their metric once at setup and
// pay one relaxed atomic op per event afterwards — no map lookup, no lock
// on the hot path. Snapshot() produces a plain-value MetricsSnapshot for
// the introspection API (Dataspace::Stats()) and the JSON/text exporters.

#ifndef IDM_OBS_METRICS_H_
#define IDM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace idm::obs {

/// Monotonic event counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written level (may go down: queue depth, resident bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Plain-value image of a Histogram at one instant.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 48;

  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kBuckets> buckets{};  ///< bucket i: values in [2^(i-1), 2^i)

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
  /// Upper-bound estimate of the \p q quantile (q in [0, 1]): the inclusive
  /// upper edge of the bucket holding the q'th sample.
  uint64_t Quantile(double q) const;
  /// Folds \p other in bucket-wise (shard merging).
  void Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram of u64 samples. Bucket 0 holds the value 0;
/// bucket i >= 1 holds [2^(i-1), 2^i); the last bucket absorbs overflow.
class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  void Observe(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;
  /// Adds \p other's cells into this histogram (thread-shard merge).
  void MergeFrom(const Histogram& other);
  /// Adds an already-snapshotted histogram's cells into this one.
  void MergeSnapshot(const HistogramSnapshot& snap);

  /// Bucket index of \p value (exposed for the bucket-boundary tests).
  static size_t BucketOf(uint64_t value);
  /// Inclusive upper edge of bucket \p i (max() for the overflow bucket).
  static uint64_t BucketUpperEdge(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Plain-value image of a whole registry, suitable for copying around,
/// merging, and exporting. Returned by MetricsRegistry::Snapshot() and
/// embedded in DataspaceStats.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  uint64_t CounterOr(const std::string& name, uint64_t fallback = 0) const;
  /// Folds \p other in: counters and histogram cells add, gauges take the
  /// other side's value (last writer wins, as with Gauge::Set).
  void Merge(const MetricsSnapshot& other);
  std::string ToJson() const;
  std::string ToText() const;
};

/// Named metric directory. Lookup/creation takes a mutex; returned pointers
/// are stable for the registry's lifetime, so call sites resolve once and
/// then touch only their own atomic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Folds every metric of \p other into same-named metrics here, creating
  /// them as needed (counters/histograms add, gauges adopt other's value).
  void MergeFrom(const MetricsRegistry& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace idm::obs

#endif  // IDM_OBS_METRICS_H_
