#include "sub/subscription.h"

#include <algorithm>
#include <set>
#include <utility>

namespace idm::sub {

// ---------------------------------------------------------------------------
// Subscription

std::vector<ResultDelta> Subscription::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ResultDelta> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

size_t Subscription::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::vector<std::vector<index::DocId>> Subscription::Rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

index::Version Subscription::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

uint64_t Subscription::deltas_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

uint64_t Subscription::overflows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflows_;
}

// Requires mu_ held. Overflow collapses the whole queue into one snapshot
// delta carrying the full current rows: a lagging consumer loses
// per-write granularity, never state.
void Subscription::Enqueue(ResultDelta delta, size_t max_queue) {
  queue_.push_back(std::move(delta));
  ++delivered_;
  if (max_queue > 0 && queue_.size() > max_queue) {
    index::Version newest = queue_.back().version;
    queue_.clear();
    ResultDelta snapshot;
    snapshot.version = newest;
    snapshot.added = rows_;
    snapshot.snapshot = true;
    queue_.push_back(std::move(snapshot));
    ++overflows_;
  }
}

// ---------------------------------------------------------------------------
// SubscriptionManager

std::shared_ptr<Subscription> SubscriptionManager::Subscribe(
    std::string normalized_query, Footprint footprint, EvalFn eval,
    MatchFn match, RefreshFn refresh, SubscribeOptions options,
    index::Version version,
    std::vector<std::vector<index::DocId>> initial_rows) {
  auto sub = std::shared_ptr<Subscription>(new Subscription());
  sub->query_ = std::move(normalized_query);
  sub->footprint_ = std::move(footprint);
  sub->eval_ = std::move(eval);
  sub->match_ = std::move(match);
  sub->refresh_ = std::move(refresh);
  sub->options_ = std::move(options);

  ResultDelta initial;
  initial.version = version;
  initial.added = initial_rows;
  initial.snapshot = true;
  {
    std::lock_guard<std::mutex> sub_lock(sub->mu_);
    sub->rows_ = std::move(initial_rows);
    sub->version_ = version;
    sub->queue_.push_back(initial);
    ++sub->delivered_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    sub->id_ = next_id_++;
    registry_[sub->id_] = sub;
    ++stats_.opened;
    stats_.subscriptions = registry_.size();
  }
  if (sub->options_.on_delta) sub->options_.on_delta(initial);
  return sub;
}

bool SubscriptionManager::Unsubscribe(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  bool erased = registry_.erase(id) > 0;
  stats_.subscriptions = registry_.size();
  return erased;
}

void SubscriptionManager::OnMutation(MutationEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry_.empty()) return;  // nobody listening: drop, don't buffer
  buffer_.push_back(std::move(event));
  ++stats_.events;
}

SubscriptionManager::PumpStats SubscriptionManager::Pump(
    index::Version version) {
  // Serialize pumps: per-subscription maintenance state (rows, footprint,
  // needs_refresh) is only ever touched from inside a pump pass.
  std::lock_guard<std::mutex> pump_lock(pump_mu_);
  std::vector<MutationEvent> events;
  std::vector<std::shared_ptr<Subscription>> subs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = std::move(buffer_);
    buffer_.clear();
    subs.reserve(registry_.size());
    for (const auto& [id, sub] : registry_) subs.push_back(sub);
  }

  PumpStats pump;
  if (subs.empty()) return pump;
  bool any_refresh = false;
  for (const auto& sub : subs) any_refresh |= sub->needs_refresh_;
  if (events.empty() && !any_refresh) return pump;

  // Subscription-id order (registry_ is ordered): delivery order is a
  // function of registration order alone, never of evaluation threading.
  for (const auto& sub : subs) PumpOne(*sub, events, version, &pump);

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pumps;
    stats_.deltas += pump.deltas;
    stats_.skipped += pump.skipped;
    stats_.fastpath += pump.fastpath;
    stats_.recomputes += pump.recomputes;
    stats_.degraded += pump.degraded;
    uint64_t overflows = 0;
    for (const auto& sub : subs) overflows += sub->overflows();
    if (overflows > stats_.overflows) stats_.overflows = overflows;
  }
  return pump;
}

void SubscriptionManager::PumpOne(Subscription& sub,
                                  const std::vector<MutationEvent>& events,
                                  index::Version version, PumpStats* stats) {
  ++stats->pumped;
  std::vector<const MutationEvent*> affecting;
  for (const MutationEvent& event : events) {
    if (AffectedBy(sub.footprint_, event)) affecting.push_back(&event);
  }
  if (affecting.empty() && !sub.needs_refresh_) {
    ++stats->skipped;
    return;
  }

  ResultDelta delta;
  delta.version = version;
  bool deliver = false;

  if (sub.match_ != nullptr && !sub.needs_refresh_) {
    // Per-view fast path: membership is a function of the view itself, so
    // only the touched views can move. Coalesce events per view and
    // compare current membership (match on live state) with maintained
    // membership — the end-state comparison absorbs add+remove churn
    // within one pump.
    ++stats->fastpath;
    std::map<index::DocId, bool> touched;  // id -> saw a non-remove event
    for (const MutationEvent* event : affecting) {
      bool& alive = touched[event->id];
      alive = event->op != index::ChangeRecord::Op::kRemoved;
      // Growing the substrate set keeps the footprint invariant: an
      // affecting event may have introduced the first pattern match in a
      // previously irrelevant substrate.
      auto& substrates = sub.footprint_.substrates;
      auto it = std::lower_bound(substrates.begin(), substrates.end(),
                                 event->source);
      if (sub.footprint_.scoped() &&
          (it == substrates.end() || *it != event->source)) {
        substrates.insert(it, event->source);
      }
    }
    std::vector<index::DocId> add;
    std::vector<index::DocId> remove;
    std::lock_guard<std::mutex> lock(sub.mu_);
    auto member = [&sub](index::DocId id) {
      auto it = std::lower_bound(
          sub.rows_.begin(), sub.rows_.end(), id,
          [](const std::vector<index::DocId>& row, index::DocId target) {
            return row[0] < target;
          });
      return it != sub.rows_.end() && (*it)[0] == id;
    };
    for (const auto& [id, alive] : touched) {
      bool now = alive && sub.match_(id);
      bool was = member(id);
      if (now && !was) {
        add.push_back(id);
        delta.added.push_back({id});
      } else if (!now && was) {
        remove.push_back(id);
        delta.removed.push_back({id});
      } else if (now && was) {
        delta.updated.push_back({id});
      }
    }
    PatchSortedRows(&sub.rows_, add, remove);
    sub.version_ = version;
    sub.footprint_.epoch = version;
    if (!delta.empty()) {
      deliver = true;
      ++stats->deltas;
      sub.Enqueue(delta, sub.options_.max_queue);
    }
  } else {
    // Recompute path: full re-evaluation under the subscription's
    // governance limits, diffed against the maintained rows.
    ++stats->recomputes;
    EvalOutcome outcome = sub.eval_ ? sub.eval_() : EvalOutcome{};
    if (!outcome.ok || !outcome.complete) {
      ++stats->degraded;
      sub.needs_refresh_ = true;  // retry on the next pump
      delta.complete = false;
      delta.degraded_reason = outcome.degraded_reason.empty()
                                  ? "maintenance recompute degraded"
                                  : outcome.degraded_reason;
      std::lock_guard<std::mutex> lock(sub.mu_);
      sub.version_ = version;
      deliver = true;
      ++stats->deltas;
      sub.Enqueue(delta, sub.options_.max_queue);
    } else {
      std::set<index::DocId> event_ids;
      for (const MutationEvent* event : affecting) event_ids.insert(event->id);
      std::map<std::vector<index::DocId>, int> counts;
      std::lock_guard<std::mutex> lock(sub.mu_);
      for (const auto& row : sub.rows_) ++counts[row];
      for (const auto& row : outcome.rows) {
        auto it = counts.find(row);
        if (it != counts.end() && it->second > 0) {
          --it->second;
          // Survivor: report as updated when one of its views mutated.
          for (index::DocId id : row) {
            if (event_ids.count(id) > 0) {
              delta.updated.push_back(row);
              break;
            }
          }
        } else {
          delta.added.push_back(row);
        }
      }
      for (const auto& row : sub.rows_) {
        auto it = counts.find(row);
        if (it != counts.end() && it->second > 0) {
          --it->second;
          delta.removed.push_back(row);
        }
      }
      sub.rows_ = std::move(outcome.rows);
      sub.version_ = version;
      sub.needs_refresh_ = false;
      if (sub.refresh_) {
        sub.footprint_ = sub.refresh_();
      }
      sub.footprint_.epoch = version;
      if (!delta.empty()) {
        deliver = true;
        ++stats->deltas;
        sub.Enqueue(delta, sub.options_.max_queue);
      }
    }
  }

  if (deliver && sub.options_.on_delta) sub.options_.on_delta(delta);
}

void SubscriptionManager::PatchSortedRows(
    std::vector<std::vector<index::DocId>>* rows,
    const std::vector<index::DocId>& add,
    const std::vector<index::DocId>& remove) {
  if (add.empty() && remove.empty()) return;
  std::vector<std::vector<index::DocId>> out;
  out.reserve(rows->size() + add.size());
  auto next = add.begin();
  for (auto& row : *rows) {
    index::DocId id = row[0];
    while (next != add.end() && *next < id) out.push_back({*next++});
    if (std::binary_search(remove.begin(), remove.end(), id)) continue;
    out.push_back(std::move(row));
  }
  while (next != add.end()) out.push_back({*next++});
  *rows = std::move(out);
}

SubscriptionManager::Stats SubscriptionManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SubscriptionManager::subscription_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registry_.size();
}

size_t SubscriptionManager::pending_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_.size();
}

}  // namespace idm::sub
