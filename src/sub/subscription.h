// Continuous-query subscriptions (DESIGN.md §14). A Subscription is a
// registered query whose result set is maintained *from the mutation
// stream* instead of re-run on demand: every write appends a
// MutationEvent, and a pump pass (after each synchronization round)
// turns the buffered events into ordered ResultDeltas.
//
// The manager is deliberately query-language agnostic — it never sees an
// AST. The iQL layer injects three capabilities per subscription:
//
//   eval     full re-evaluation (the oracle; also the recompute path),
//   match    optional per-view membership test — present only for query
//            shapes where membership is a function of the view's own
//            components (un-ranked filters, single-step paths), enabling
//            the O(changed views) fast path,
//   refresh  rebuilds the dependency Footprint after a recompute (the
//            substrate set is a build-time property).
//
// Maintenance strategy per pump, per subscription (in subscription-id
// order, which makes delivery order independent of evaluation thread
// count):
//
//   1. events ∖ AffectedBy(footprint) → skipped entirely (this is where
//      fine-grained epochs pay: unrelated-substrate writes cost nothing);
//   2. per-view capable → coalesce events by view, test membership
//      end-state vs the maintained rows, patch in place;
//   3. otherwise → recompute under the subscription's governance limits
//      and diff against the maintained rows. A degraded (incomplete)
//      recompute keeps the old rows and emits an incomplete delta — the
//      partial-result contract, applied to maintenance.
//
// Delivery is dual: an optional on_delta callback fires during the pump,
// and every delta is queued for Subscription::Drain(). A consumer that
// falls behind (queue overflow) gets the queue collapsed into one
// snapshot delta (`snapshot = true`, full current rows) — lossy in
// granularity, never in state.

#ifndef IDM_SUB_SUBSCRIPTION_H_
#define IDM_SUB_SUBSCRIPTION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/version_log.h"
#include "sub/footprint.h"
#include "util/exec_context.h"

namespace idm::sub {

/// One batch of result-set changes, coalesced per pump. Unary queries
/// carry one-id rows; joins carry one id per binding. `updated` lists
/// rows that stayed members while one of their views changed.
struct ResultDelta {
  index::Version version = 0;  ///< dataspace version the delta brings you to
  std::vector<std::vector<index::DocId>> added;
  std::vector<std::vector<index::DocId>> removed;
  std::vector<std::vector<index::DocId>> updated;
  /// True when `added` is the *entire* current result and any prior state
  /// must be discarded (initial delivery, or resync after overflow).
  bool snapshot = false;
  bool complete = true;             ///< false: maintenance was degraded
  std::string degraded_reason;      ///< why, when !complete

  bool empty() const {
    return added.empty() && removed.empty() && updated.empty() && !snapshot;
  }
};

struct SubscribeOptions {
  /// Governance limits charged to every maintenance recompute (same
  /// contract as QueryOptions::limits; none() = ungoverned).
  util::ExecContext::Limits limits;
  /// Optional push sink, invoked during the pump (mutation-side thread)
  /// after the delta is queued. Keep it cheap.
  std::function<void(const ResultDelta&)> on_delta;
  /// Drain-queue capacity; overflowing collapses the queue to a snapshot.
  size_t max_queue = 64;
};

/// Full re-evaluation outcome, supplied by the query layer.
struct EvalOutcome {
  bool ok = false;                  ///< evaluation ran at all
  bool complete = true;             ///< governance verdict
  std::string degraded_reason;
  std::vector<std::vector<index::DocId>> rows;
};

using EvalFn = std::function<EvalOutcome()>;
using MatchFn = std::function<bool(index::DocId)>;
using RefreshFn = std::function<Footprint()>;

class SubscriptionManager;

class Subscription {
 public:
  uint64_t id() const { return id_; }
  const std::string& query() const { return query_; }
  bool per_view() const { return match_ != nullptr; }
  bool scoped() const { return footprint_.scoped(); }

  /// Removes and returns all queued deltas, oldest first.
  std::vector<ResultDelta> Drain();
  size_t pending() const;

  /// Copy of the maintained result rows (current as of the last pump).
  std::vector<std::vector<index::DocId>> Rows() const;
  index::Version version() const;

  uint64_t deltas_delivered() const;
  uint64_t overflows() const;

 private:
  friend class SubscriptionManager;
  Subscription() = default;

  void Enqueue(ResultDelta delta, size_t max_queue);

  uint64_t id_ = 0;
  std::string query_;
  Footprint footprint_;
  EvalFn eval_;
  MatchFn match_;
  RefreshFn refresh_;
  SubscribeOptions options_;
  bool needs_refresh_ = false;  ///< force a recompute on the next pump

  mutable std::mutex mu_;       ///< guards rows_/version_/queue_/counters
  std::vector<std::vector<index::DocId>> rows_;
  index::Version version_ = 0;
  std::deque<ResultDelta> queue_;
  uint64_t delivered_ = 0;
  uint64_t overflows_ = 0;
};

class SubscriptionManager {
 public:
  struct PumpStats {
    size_t pumped = 0;       ///< subscriptions examined
    size_t deltas = 0;       ///< non-empty deltas delivered
    size_t skipped = 0;      ///< subscriptions untouched by all events
    size_t fastpath = 0;     ///< served by per-view membership patching
    size_t recomputes = 0;   ///< served by full re-evaluation
    size_t degraded = 0;     ///< recomputes that came back incomplete
  };

  struct Stats {
    uint64_t subscriptions = 0;    ///< currently registered
    uint64_t opened = 0;           ///< lifetime registrations
    uint64_t events = 0;           ///< mutation events buffered
    uint64_t pumps = 0;            ///< pump passes that saw work
    uint64_t deltas = 0;
    uint64_t skipped = 0;
    uint64_t fastpath = 0;
    uint64_t recomputes = 0;
    uint64_t degraded = 0;
    uint64_t overflows = 0;
  };

  /// Registers a continuous query. \p initial_rows is the snapshot the
  /// query layer just evaluated at \p version; it is delivered to the
  /// subscriber as a snapshot delta so a fresh consumer starts aligned.
  /// \p match may be null (no per-view fast path); \p refresh may be null
  /// (footprint is never rebuilt — correct for global footprints).
  std::shared_ptr<Subscription> Subscribe(
      std::string normalized_query, Footprint footprint, EvalFn eval,
      MatchFn match, RefreshFn refresh, SubscribeOptions options,
      index::Version version,
      std::vector<std::vector<index::DocId>> initial_rows);

  /// Deregisters; outstanding handles stay drainable but receive nothing
  /// further. Returns false for unknown ids.
  bool Unsubscribe(uint64_t id);

  /// Buffers one mutation for the next pump. Called from the live
  /// mutation path — cheap (one lock, one move).
  void OnMutation(MutationEvent event);

  /// Applies all buffered events to every subscription, in subscription-id
  /// order, delivering at most one delta each, stamped \p version.
  PumpStats Pump(index::Version version);

  Stats GetStats() const;
  size_t subscription_count() const;
  size_t pending_events() const;

 private:
  void PumpOne(Subscription& sub, const std::vector<MutationEvent>& events,
               index::Version version, PumpStats* stats);
  static void PatchSortedRows(std::vector<std::vector<index::DocId>>* rows,
                              const std::vector<index::DocId>& add,
                              const std::vector<index::DocId>& remove);

  std::mutex pump_mu_;     ///< serializes Pump passes end-to-end
  mutable std::mutex mu_;  ///< guards registry_, buffer_, stats_
  std::map<uint64_t, std::shared_ptr<Subscription>> registry_;
  std::vector<MutationEvent> buffer_;
  uint64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace idm::sub

#endif  // IDM_SUB_SUBSCRIPTION_H_
