#include "sub/footprint.h"

#include <algorithm>

#include "util/string_util.h"

namespace idm::sub {

bool PatternMatchesName(const std::string& pattern, const std::string& name) {
  if (pattern.empty() || pattern == "*") return true;
  // WildcardMatch is case-insensitive and degrades to case-insensitive
  // equality without metacharacters — the same predicate LookupPattern
  // applies to its lower-cased keys.
  return WildcardMatch(pattern, name);
}

bool AffectedBy(const Footprint& footprint, const MutationEvent& event) {
  if (!footprint.scoped()) return true;
  if (std::binary_search(footprint.substrates.begin(),
                         footprint.substrates.end(), event.source)) {
    return true;
  }
  // Outside the footprint's substrates nothing matched any pattern when it
  // was built; only a mutation that *introduces* a match can matter, and
  // an introduction carries the matching name on its own record. Removals
  // there cannot un-match anything.
  if (event.op == index::ChangeRecord::Op::kRemoved) return false;
  for (const std::string& pattern : footprint.patterns) {
    if (PatternMatchesName(pattern, event.name)) return true;
  }
  return false;
}

}  // namespace idm::sub
