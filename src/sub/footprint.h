// Dependency footprints for continuous queries and cached results
// (DESIGN.md §14). A Footprint is a conservative summary of which
// mutations can change a query's result set; the matcher AffectedBy()
// answers "can this change record affect that result?" without
// re-evaluating the query.
//
// Soundness rests on two properties of this codebase, stated here because
// the matcher depends on them:
//
//   1. Source-locality of structure: group (parent/child) edges never
//      cross data sources — a view's ancestor chain lives entirely in its
//      own substrate.
//   2. Uri-encoded ancestry: a view's uri embeds its path, so reparenting
//      a subtree changes the uris (and hence produces change records) of
//      every moved view; an ancestry chain cannot be rewired without
//      change records on the views whose membership could change, or on a
//      view whose (new) name matches one of the query's name patterns.
//
// Given those, a *scoped* footprint — the query's name patterns plus the
// set of substrates that contained at least one pattern-matching view
// when the footprint was built — supports this exact test: a change
// record is irrelevant iff its substrate held no pattern match at build
// time, every record since then was likewise irrelevant, and the record's
// own (new) name matches no pattern. Queries this reasoning does not
// cover (joins, ranked keyword queries with their global idf terms,
// clock-dependent literals, un-anchored filters) get a *global* footprint:
// every mutation is assumed to affect them — exactly today's whole-epoch
// invalidation, so nothing gets less precise.

#ifndef IDM_SUB_FOOTPRINT_H_
#define IDM_SUB_FOOTPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/version_log.h"

namespace idm::sub {

/// One mutation, enriched with what the matcher needs. Built at
/// version-append time (the live path), where the catalog entry and the
/// name replica still/already describe the view: for adds and updates
/// `name` is the view's (new) name; for removals it is empty — the matcher
/// never needs a removed view's name.
struct MutationEvent {
  index::Version version = 0;
  index::ChangeRecord::Op op = index::ChangeRecord::Op::kAdded;
  index::DocId id = 0;
  uint32_t source = 0;   ///< owning substrate (catalog source id)
  std::string uri;       ///< view uri (kept for prefix epochs/diagnosis)
  std::string name;      ///< name component at event time ("" for removals)
};

/// Conservative dependency summary of one query, built at evaluation time.
struct Footprint {
  enum class Kind {
    kScoped,  ///< patterns + substrates support the precise test above
    kGlobal,  ///< every mutation may affect the result (classic epoch key)
  };

  Kind kind = Kind::kGlobal;
  /// The query's name patterns (path step names and conjunctive name
  /// predicates), verbatim — matching is the name index's own
  /// case-insensitive wildcard semantics.
  std::vector<std::string> patterns;
  /// Sorted source ids that contained >= 1 view matching any pattern when
  /// the footprint was built. Result members and structural "bridge"
  /// views always match a pattern, so membership can only change inside
  /// these substrates — or through a mutation whose new name matches.
  std::vector<uint32_t> substrates;
  /// The dataspace version the footprint (and its result) was built at.
  index::Version epoch = 0;

  bool scoped() const { return kind == Kind::kScoped; }
};

/// Name-index pattern semantics: case-insensitive, '*'/'?' wildcards,
/// ""/"*" match everything (mirrors NameIndex::LookupPattern).
bool PatternMatchesName(const std::string& pattern, const std::string& name);

/// True when \p event can affect a result described by \p footprint.
/// Global footprints are affected by everything. Scoped footprints are
/// affected iff the event hits one of the footprint's substrates, or the
/// event's (new) name matches one of the patterns (a match appearing in a
/// previously irrelevant substrate).
bool AffectedBy(const Footprint& footprint, const MutationEvent& event);

}  // namespace idm::sub

#endif  // IDM_SUB_FOOTPRINT_H_
