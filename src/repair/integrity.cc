#include "repair/integrity.h"

#include <algorithm>

#include "storage/crc32.h"
#include "storage/snapshot.h"
#include "util/codec.h"

namespace idm::repair {

namespace {

constexpr char kTagMutation = 1;  // mirrors wal.cc framing
constexpr char kTagCommit = 2;

}  // namespace

uint64_t VerifyWal(std::string_view image, WalVerifyCursor* cursor,
                   util::ExecContext* ctx, uint64_t bytes_per_step) {
  if (bytes_per_step == 0) bytes_per_step = 1;
  const uint64_t start = cursor->offset;
  uint64_t budget_debt = 0;  // bytes examined but not yet charged
  while (!cursor->halted && cursor->offset < image.size()) {
    if (ctx != nullptr && budget_debt >= bytes_per_step) {
      uint64_t steps = budget_debt / bytes_per_step;
      budget_debt %= bytes_per_step;
      if (!ctx->Tick(steps).ok()) return cursor->offset - start;
    }
    size_t pos = static_cast<size_t>(cursor->offset);
    uint32_t len = 0, crc = 0;
    if (!codec::GetU32(image, &pos, &len) || !codec::GetU32(image, &pos, &crc) ||
        len > image.size() - pos) {
      // Mid-frame end of image: either an in-flight append or a truncation.
      // The caller judges via WalIsDamaged; the walk itself just stops.
      break;
    }
    std::string_view payload = image.substr(pos, len);
    if (storage::Crc32(payload) != crc || payload.empty()) {
      cursor->halted = true;
      cursor->defect = "wal frame CRC mismatch at offset " +
                       std::to_string(cursor->offset);
      break;
    }
    char tag = payload.front();
    if (tag == kTagCommit) {
      size_t spos = 1;
      uint64_t seq = 0;
      if (!codec::GetU64(payload, &spos, &seq) || spos != payload.size()) {
        cursor->halted = true;
        cursor->defect = "malformed commit marker at offset " +
                         std::to_string(cursor->offset);
        break;
      }
      cursor->last_commit_seq = seq;
    } else if (tag != kTagMutation) {
      cursor->halted = true;
      cursor->defect = "unknown frame tag at offset " +
                       std::to_string(cursor->offset);
      break;
    }
    cursor->offset = pos + len;
    ++cursor->frames_verified;
    budget_debt += 8 + len;
  }
  return cursor->offset - start;
}

bool WalIsDamaged(const WalVerifyCursor& cursor, uint64_t image_size,
                  uint64_t required_seq) {
  (void)image_size;
  // Only meaningful once the walk finished (halted, or offset reached the
  // end / the first mid-frame byte). Commits the engine calls durable must
  // all be walkable; anything short of that — CRC halt, truncation, a
  // clean-looking but short log — is damage. A halt past required_seq is
  // an unsynced in-flight tail, which is not the device's fault.
  return cursor.last_commit_seq < required_seq;
}

bool VerifyCheckpoint(std::string_view image, uint32_t* crc,
                      std::string* defect) {
  auto decoded = storage::Snapshot::Decode(std::string(image));
  if (!decoded.ok()) {
    if (defect != nullptr) *defect = decoded.status().ToString();
    return false;
  }
  if (crc != nullptr) *crc = storage::Crc32(image);
  return true;
}

DigestLadder BuildLadder(uint64_t generation, std::string_view checkpoint,
                         std::string_view wal) {
  DigestLadder ladder;
  ladder.generation = generation;
  ladder.checkpoint_bytes = checkpoint.size();
  ladder.checkpoint_crc = checkpoint.empty() ? 0 : storage::Crc32(checkpoint);

  // Walk intact frames, cutting a rung at every commit marker. The range
  // CRC covers the raw bytes since the previous rung, so a flipped bit
  // anywhere in a batch changes exactly that batch's rung.
  uint64_t range_start = 0;
  size_t pos = 0;
  while (pos < wal.size()) {
    uint32_t len = 0, crc = 0;
    if (!codec::GetU32(wal, &pos, &len) || !codec::GetU32(wal, &pos, &crc) ||
        len > wal.size() - pos) {
      break;
    }
    std::string_view payload = wal.substr(pos, len);
    if (storage::Crc32(payload) != crc || payload.empty()) break;
    pos += len;
    char tag = payload.front();
    if (tag == kTagCommit) {
      size_t spos = 1;
      uint64_t seq = 0;
      if (!codec::GetU64(payload, &spos, &seq) || spos != payload.size()) break;
      DigestRung rung;
      rung.seq = seq;
      rung.end_offset = pos;
      rung.crc = storage::Crc32(
          wal.substr(static_cast<size_t>(range_start), pos - range_start));
      ladder.rungs.push_back(rung);
      range_start = pos;
    } else if (tag != kTagMutation) {
      break;
    }
  }
  return ladder;
}

LadderDelta CompareLadders(const DigestLadder& local,
                           const DigestLadder& remote) {
  LadderDelta delta;
  if (local.generation != remote.generation) {
    delta.generation_mismatch = true;
    return delta;
  }
  if (local.checkpoint_crc != remote.checkpoint_crc ||
      local.checkpoint_bytes != remote.checkpoint_bytes) {
    delta.checkpoint_mismatch = true;
    return delta;
  }
  size_t agree = 0;
  size_t shared = std::min(local.rungs.size(), remote.rungs.size());
  while (agree < shared && local.rungs[agree] == remote.rungs[agree]) ++agree;
  if (agree > 0) {
    delta.matched_seq = local.rungs[agree - 1].seq;
    delta.matched_end_offset = local.rungs[agree - 1].end_offset;
  }
  if (agree < shared) {
    delta.diverged = true;  // a rung both sides have differs: damage
  } else if (local.rungs.size() < remote.rungs.size()) {
    delta.local_behind = true;  // clean prefix, remote has more
  }
  return delta;
}

}  // namespace idm::repair
