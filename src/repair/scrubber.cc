#include "repair/scrubber.h"

namespace idm::repair {

namespace {

std::string BaseName(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Scrubber::Scrubber(storage::StorageEngine* engine, const Clock* clock,
                   const ScrubOptions& options)
    : engine_(engine), clock_(clock), options_(options) {
  last_slice_at_ = clock_ != nullptr ? clock_->NowMicros() : 0;
  RestartPass();
}

void Scrubber::RestartPass() {
  cursor_generation_ = engine_->generation();
  phase_ = Phase::kCheckpoint;
  wal_cursor_ = WalVerifyCursor{};
}

std::vector<ScrubFinding> Scrubber::MaybeScrub() {
  if (!options_.enabled) return {};
  Micros now = clock_ != nullptr ? clock_->NowMicros() : 0;
  if (now - last_slice_at_ < options_.interval_micros) return {};
  last_slice_at_ = now;
  return Slice();
}

std::vector<ScrubFinding> Scrubber::ScrubPass() {
  std::vector<ScrubFinding> findings;
  uint64_t target = stats_.passes + 1;
  while (stats_.passes < target) {
    std::vector<ScrubFinding> sliced = Slice();
    findings.insert(findings.end(), sliced.begin(), sliced.end());
  }
  return findings;
}

std::vector<ScrubFinding> Scrubber::Slice() {
  std::vector<ScrubFinding> findings;
  ++stats_.slices;

  // A checkpoint rotated under the pass: the old generation's files are
  // gone, the cursor is meaningless — start over on the new generation.
  if (engine_->generation() != cursor_generation_ || phase_ == Phase::kDone) {
    RestartPass();
  }

  util::ExecContext::Limits limits;
  limits.max_steps = options_.steps_per_slice;
  util::ExecContext ctx(nullptr, limits);
  storage::Env* env = engine_->env();

  if (phase_ == Phase::kCheckpoint) {
    if (cursor_generation_ == 0) {
      phase_ = Phase::kWal;  // generation 0 has no image by construction
    } else {
      const std::string path = engine_->LiveCheckpointPath();
      auto image = env->ReadFile(path);
      if (!image.ok()) {
        ++stats_.defects_found;
        findings.push_back(
            {BaseName(path), "checkpoint image unreadable: " +
                                 image.status().ToString()});
      } else {
        // Seal checks are all-or-nothing; charge the whole image against
        // the slice budget up front (the slice ends early if it overruns,
        // which keeps long-run accounting honest without splitting Decode).
        uint64_t bytes = image->size();
        uint64_t steps = bytes / options_.bytes_per_step + 1;
        bool budget_left = ctx.Tick(steps).ok();
        std::string defect;
        if (!VerifyCheckpoint(*image, nullptr, &defect)) {
          ++stats_.defects_found;
          findings.push_back({BaseName(path), "checkpoint seal: " + defect});
        }
        stats_.bytes_verified += bytes;
        phase_ = Phase::kWal;
        if (!budget_left) return findings;
      }
      phase_ = Phase::kWal;
    }
  }

  if (phase_ == Phase::kWal) {
    const std::string path = engine_->LiveWalPath();
    std::string image;
    if (auto data = env->ReadFile(path); data.ok()) image = std::move(*data);
    uint64_t frames_before = wal_cursor_.frames_verified;
    stats_.bytes_verified +=
        VerifyWal(image, &wal_cursor_, &ctx, options_.bytes_per_step);
    stats_.frames_verified += wal_cursor_.frames_verified - frames_before;
    // The walk stopped either because it is done (halt, EOF, mid-frame
    // bytes) or because the slice budget ran out; only a finished walk may
    // be judged — a budget stop resumes from the cursor next slice.
    bool finished = wal_cursor_.halted || wal_cursor_.offset >= image.size() ||
                    ctx.status().ok();
    if (finished) {
      if (WalIsDamaged(wal_cursor_, image.size(),
                       engine_->wal_durable_seq())) {
        ++stats_.defects_found;
        std::string defect = wal_cursor_.halted
                                 ? wal_cursor_.defect
                                 : "wal ends before durable commit " +
                                       std::to_string(
                                           engine_->wal_durable_seq());
        findings.push_back({BaseName(path), defect});
      }
      ++stats_.passes;
      phase_ = Phase::kDone;
    }
  }
  return findings;
}

}  // namespace idm::repair
