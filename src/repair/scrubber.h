// Background integrity scrubber (DESIGN.md §15). Detection only: the
// scrubber walks the live generation's artifacts — checkpoint image first,
// then the WAL frame-by-frame — re-verifying every CRC, and reports
// findings; containment (quarantine + rescue) belongs to the owner
// (Dataspace::ScrubNow, ShardGroup::ScrubAndRepair), because only the
// owner knows whether in-memory state is authoritative.
//
// Determinism rules:
//   * scheduled purely on the injected Clock (a SimClock in tests): a
//     slice runs iff interval_micros elapsed since the last — never on
//     wall time, never on a thread;
//   * budgeted per slice through a fresh ExecContext (max_steps =
//     steps_per_slice, one step per bytes_per_step bytes), so one slice
//     does O(budget) work regardless of store size and scrubbing cannot
//     move query p99;
//   * verdicts are pure functions of the bytes examined (repair/integrity);
//     the scrubber draws no randomness and consumes no Rng stream;
//   * disabled (the default) it is never constructed — the hot path is
//     byte-identical to a build without it.

#ifndef IDM_REPAIR_SCRUBBER_H_
#define IDM_REPAIR_SCRUBBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "repair/integrity.h"
#include "storage/engine.h"
#include "util/clock.h"

namespace idm::repair {

struct ScrubOptions {
  bool enabled = false;
  /// Minimum clock time between two budgeted slices.
  Micros interval_micros = 1'000'000;
  /// ExecContext step budget per slice; one step covers bytes_per_step.
  uint64_t steps_per_slice = 256;
  uint64_t bytes_per_step = 4096;
};

/// One verified-bad artifact, named for the quarantine manifest.
struct ScrubFinding {
  std::string artifact;  ///< file name relative to the store dir
  std::string defect;    ///< which check failed
};

struct ScrubStats {
  uint64_t slices = 0;          ///< budgeted slices executed
  uint64_t passes = 0;          ///< full store passes completed
  uint64_t bytes_verified = 0;
  uint64_t frames_verified = 0;
  uint64_t defects_found = 0;
};

class Scrubber {
 public:
  /// \p engine outlives the scrubber; \p clock drives scheduling.
  Scrubber(storage::StorageEngine* engine, const Clock* clock,
           const ScrubOptions& options);

  /// Runs one budgeted slice when the interval elapsed (cheap no-op
  /// otherwise). Returns the findings of any artifact whose verification
  /// *completed* bad this slice — an unfinished walk keeps its cursor and
  /// resumes next slice.
  std::vector<ScrubFinding> MaybeScrub();

  /// Runs slices back-to-back until one full pass over the live generation
  /// completes (scrub-on-demand; tests, repair entry points). Ignores the
  /// interval but keeps the per-slice budget, so governance accounting
  /// stays honest.
  std::vector<ScrubFinding> ScrubPass();

  const ScrubStats& stats() const { return stats_; }
  const ScrubOptions& options() const { return options_; }

 private:
  enum class Phase { kCheckpoint, kWal, kDone };

  /// Runs exactly one budgeted slice. Returns completed-bad findings.
  std::vector<ScrubFinding> Slice();
  void RestartPass();

  storage::StorageEngine* engine_;
  const Clock* clock_;
  ScrubOptions options_;
  ScrubStats stats_;

  Micros last_slice_at_ = 0;

  // Pass cursor. Valid for cursor_generation_ only: a checkpoint rotation
  // under the scrubber restarts the pass on the new generation.
  uint64_t cursor_generation_ = 0;
  Phase phase_ = Phase::kCheckpoint;
  WalVerifyCursor wal_cursor_;
};

}  // namespace idm::repair

#endif  // IDM_REPAIR_SCRUBBER_H_
