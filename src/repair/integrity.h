// Integrity verification primitives (the "detect" third of DESIGN.md §15's
// detect → quarantine → repair). Pure functions over artifact bytes — no
// clock, no Rng, no I/O — so every verdict is a deterministic function of
// the bytes examined:
//
//   * VerifyWal       — resumable frame-by-frame CRC walk over a WAL image,
//                       budgeted via an ExecContext so the scrubber can
//                       verify a multi-megabyte log in p99-neutral slices;
//   * VerifyCheckpoint— seal check of one checkpoint image;
//   * BuildLadder     — the anti-entropy digest ladder: per-commit-range
//                       CRC rungs over (generation, seq range, bytes) that
//                       primary and replicas exchange to locate exactly the
//                       damaged range instead of re-shipping everything;
//   * CompareLadders  — first divergence between two ladders.

#ifndef IDM_REPAIR_INTEGRITY_H_
#define IDM_REPAIR_INTEGRITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/exec_context.h"

namespace idm::repair {

/// Resumable cursor + verdict of a frame walk over one WAL image. The walk
/// stops at the first frame that fails its length or CRC check; whether
/// that constitutes *corruption* depends on context the walker cannot see:
/// an unsynced in-flight tail also ends in a non-frame. The caller judges —
/// sealed segments and the durable prefix of the live WAL must walk clean
/// through every commit the engine calls durable (see WalIsDamaged).
struct WalVerifyCursor {
  uint64_t offset = 0;           ///< next unexamined byte
  uint64_t last_commit_seq = 0;  ///< last intact commit marker walked over
  uint64_t frames_verified = 0;
  bool halted = false;           ///< hit a frame that does not check out
  std::string defect;            ///< what failed, when halted
};

/// Walks frames of \p image from \p cursor->offset, advancing the cursor.
/// Charges one ExecContext step per \p bytes_per_step bytes examined (via
/// Tick) and returns early — cursor mid-image, halted == false — when the
/// budget runs out; call again with a fresh budget to resume. A null \p ctx
/// walks to the end (or the first bad frame) in one call. Returns the
/// number of bytes examined by this call.
uint64_t VerifyWal(std::string_view image, WalVerifyCursor* cursor,
                   util::ExecContext* ctx, uint64_t bytes_per_step = 4096);

/// True when a finished walk proves damage: the walk halted (or the image
/// ended mid-frame) before reaching \p required_seq — commits the engine
/// already calls durable are unreadable. A halt *after* required_seq is an
/// in-flight tail, not corruption.
bool WalIsDamaged(const WalVerifyCursor& cursor, uint64_t image_size,
                  uint64_t required_seq);

/// Seal-checks one checkpoint image (Snapshot::Decode). Returns true and
/// sets \p crc (CRC32 of the raw image — the ladder's checkpoint rung) on
/// success; returns false with \p defect set when the seal is broken.
bool VerifyCheckpoint(std::string_view image, uint32_t* crc,
                      std::string* defect);

/// One rung of the digest ladder: the CRC of the WAL byte range
/// (prev rung's end_offset, end_offset], which is exactly one committed
/// batch. Two stores agree on a prefix of commits iff their rungs agree.
struct DigestRung {
  uint64_t seq = 0;         ///< commit sequence the range ends at
  uint64_t end_offset = 0;  ///< WAL byte offset after this commit's marker
  uint32_t crc = 0;         ///< CRC32 of the range's raw bytes
  bool operator==(const DigestRung&) const = default;
};

/// Compact integrity summary of one generation, cheap to exchange: a
/// replica sends its ladder, the primary answers with the bytes past the
/// last agreeing rung.
struct DigestLadder {
  uint64_t generation = 0;
  uint32_t checkpoint_crc = 0;    ///< 0 when the generation has no image
  uint64_t checkpoint_bytes = 0;
  std::vector<DigestRung> rungs;  ///< one per intact commit, in log order
};

/// Builds the ladder for one generation's on-disk artifacts. Only intact
/// frames contribute rungs: a damaged WAL yields a short ladder, which is
/// precisely what makes the divergence findable.
DigestLadder BuildLadder(uint64_t generation, std::string_view checkpoint,
                         std::string_view wal);

/// Where two ladders stop agreeing.
struct LadderDelta {
  bool generation_mismatch = false;   ///< different generations: reinstall
  bool checkpoint_mismatch = false;   ///< same gen, different base image
  bool diverged = false;              ///< some rung differs outright
  uint64_t matched_seq = 0;           ///< last commit both sides agree on
  uint64_t matched_end_offset = 0;    ///< its byte offset in the WAL
  /// True when \p local simply has fewer rungs than \p remote and agrees on
  /// all it has — the healthy "replica is behind" case.
  bool local_behind = false;
};

/// Compares \p local (the store asking for repair) against \p remote (the
/// healthy peer). matched_* bound the bytes that need no re-shipping.
LadderDelta CompareLadders(const DigestLadder& local,
                           const DigestLadder& remote);

}  // namespace idm::repair

#endif  // IDM_REPAIR_INTEGRITY_H_
