// Synthetic personal-dataspace generator.
//
// The paper evaluates on the private files and emails of one of its
// authors (Table 2: 4.4 GB, 150,480 resource views). That dataset is not
// available, so this generator synthesizes a dataspace with the same
// *shape*: the same base-item counts, the same number of XML and LaTeX
// documents (whose conversion produces the derived views), Zipf-distributed
// English-like text, folder hierarchies with links, and a remote IMAP
// mailbox with attachments. Byte volumes are scaled down (configurable) so
// the dataset fits comfortably in memory; Tables 2/3 report the scale
// factor alongside.
//
// The generator also plants the "needles" that the Table 4 queries (and
// the introduction's Query 1 and Query 2) look for: /papers with *Vision
// sections mentioning Franklin, VLDB2005/VLDB2006 project folders whose
// papers have labeled figures and \ref cross-references, OLAP figures
// captioned "Indexing Time", and .tex email attachments sharing names with
// /papers files (the Q8 join).
//
// Everything is deterministic given the seed.

#ifndef IDM_WORKLOAD_GENERATOR_H_
#define IDM_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>

#include "email/imap.h"
#include "util/clock.h"
#include "util/rng.h"
#include "vfs/vfs.h"

namespace idm::workload {

/// Scale and shape parameters.
struct DataspaceSpec {
  uint64_t seed = 42;

  // --- filesystem ----------------------------------------------------------
  size_t fs_folders = 60;        ///< folders beyond the planted skeleton
  size_t fs_text_files = 220;    ///< .txt notes
  size_t fs_binary_files = 25;   ///< unconvertible content (images etc.)
  size_t fs_latex_docs = 40;     ///< .tex documents (paper: 282)
  size_t fs_xml_docs = 8;        ///< .xml documents (paper: 47)

  size_t text_file_words = 300;      ///< mean words per .txt
  size_t binary_file_bytes = 40000;  ///< mean bytes per binary file
  size_t latex_sections = 5;         ///< top-level sections per .tex
  size_t latex_words_per_section = 120;
  size_t xml_target_nodes = 400;     ///< infoset items per .xml (paper: ~2500)

  // --- email ---------------------------------------------------------------
  size_t email_folders = 6;    ///< beyond INBOX
  size_t emails = 250;         ///< messages (paper: ~5600)
  size_t email_body_words = 80;
  double attachment_prob = 0.08;    ///< misc text attachments
  size_t email_tex_attachments = 7;   ///< .tex attachments (paper: 7)
  size_t email_xml_attachments = 13;  ///< .xml attachments (paper: 13)

  /// Paper-shaped configuration: reproduces Table 2's base-item and
  /// document counts with byte volumes scaled ~1:16. Indexing it takes on
  /// the order of a minute of wall-clock plus the simulated remote-access
  /// time. Used by the bench harness.
  static DataspaceSpec PaperScale();

  /// Tiny configuration for unit/integration tests (sub-second).
  static DataspaceSpec Small();
};

/// The generated substrates, ready to register with a Dataspace.
struct BuiltDataspace {
  std::shared_ptr<vfs::VirtualFileSystem> fs;
  std::shared_ptr<email::ImapServer> imap;
};

/// Generates the dataspace. \p clock drives file timestamps and latency
/// accounting; the generator advances it between items so that creation
/// dates spread over 2005 (which gives Q3's date predicate a selective
/// range to bite on).
BuiltDataspace Generate(const DataspaceSpec& spec, Clock* clock);

/// Zipf-vocabulary text generator used by Generate; exposed for tests and
/// custom workloads.
class TextGenerator {
 public:
  explicit TextGenerator(Rng* rng);

  /// \p words space-separated words, Zipf-sampled from a ~2300-word
  /// vocabulary seeded with the terms the evaluation queries search for.
  std::string Words(size_t words);

  /// Like Words, but guarantees \p phrase occurs verbatim once.
  std::string WordsWithPhrase(size_t words, const std::string& phrase);

 private:
  Rng* rng_;
};

}  // namespace idm::workload

#endif  // IDM_WORKLOAD_GENERATOR_H_
