#include "workload/generator.h"

#include <algorithm>

#include "util/string_util.h"
#include "xml/xml.h"

namespace idm::workload {

DataspaceSpec DataspaceSpec::PaperScale() {
  DataspaceSpec spec;
  spec.seed = 42;
  spec.fs_folders = 1250;
  spec.fs_text_files = 12000;
  spec.fs_binary_files = 700;
  spec.fs_latex_docs = 282;   // Table 2
  spec.fs_xml_docs = 47;      // Table 2
  spec.text_file_words = 2900;  // ≈18 KB/file: net input lands near the paper's 255 MB
  spec.binary_file_bytes = 350000;  // paper bytes scaled ~1:7
  spec.latex_sections = 6;
  spec.latex_words_per_section = 110;
  spec.xml_target_nodes = 2900;  // calibrates to ≈ 117k derived views over 47 docs
  spec.email_folders = 11;
  spec.emails = 5800;
  spec.email_body_words = 1300;  // ≈8 KB bodies: email net input ≈ paper's 43 MB share
  spec.attachment_prob = 0.08;
  spec.email_tex_attachments = 7;    // Table 2
  spec.email_xml_attachments = 13;   // Table 2
  return spec;
}

DataspaceSpec DataspaceSpec::Small() {
  DataspaceSpec spec;
  spec.seed = 7;
  spec.fs_folders = 10;
  spec.fs_text_files = 30;
  spec.fs_binary_files = 4;
  spec.fs_latex_docs = 6;
  spec.fs_xml_docs = 2;
  spec.text_file_words = 60;
  spec.binary_file_bytes = 4000;
  spec.latex_sections = 3;
  spec.latex_words_per_section = 40;
  spec.xml_target_nodes = 60;
  spec.email_folders = 3;
  spec.emails = 25;
  spec.email_body_words = 30;
  spec.attachment_prob = 0.1;
  spec.email_tex_attachments = 2;
  spec.email_xml_attachments = 2;
  return spec;
}

// ---------------------------------------------------------------------------
// Vocabulary and text

namespace {

/// Vocabulary head: filler words that shape natural-looking text. The terms
/// the evaluation queries search for are *placed* at specific Zipf ranks
/// below so their document frequencies resemble a real personal corpus
/// ("database" matches a fraction of a percent of views, like the paper's
/// Q1 = 941 of 150,480; "tuning" is rare). "franklin" is deliberately NOT
/// in the vocabulary: it only occurs where the generator plants it, keeping
/// the Q4/Query-1 result counts exact.
const char* const kFillerWords[] = {
    "the", "a",    "of",   "and",  "to",   "in",   "for",  "with",
    "on",  "is",   "are",  "we",   "this", "that", "it",   "as",
    "by",  "from", "at",   "or",   "an",   "be",   "can",  "which",
    "our", "all",  "data", "work", "more", "new",  "one",  "two",
};

/// (term, zipf rank) placements for the query needles and common jargon.
const std::pair<const char*, size_t> kPlacedWords[] = {
    {"time", 100},     {"section", 150},   {"systems", 250},
    {"project", 320},  {"documents", 400}, {"query", 480},
    {"indexing", 600}, {"information", 700}, {"database", 850},
    {"dataspace", 950}, {"model", 1050},   {"vision", 1200},
    {"search", 1350},  {"tuning", 1600},   {"personal", 1800},
    {"memex", 2000},   {"evaluation", 2100},
};

std::vector<std::string> BuildVocabulary() {
  std::vector<std::string> vocabulary;
  for (const char* word : kFillerWords) vocabulary.emplace_back(word);
  // Deterministic synthetic tail: wort1042-style tokens.
  for (size_t i = 0; vocabulary.size() < 2300; ++i) {
    vocabulary.push_back("wort" + std::to_string(1000 + i));
  }
  for (const auto& [word, rank] : kPlacedWords) vocabulary[rank] = word;
  return vocabulary;
}

const std::vector<std::string>& Vocabulary() {
  static const std::vector<std::string> kVocabulary = BuildVocabulary();
  return kVocabulary;
}

/// Names for generated people/hosts.
const char* const kPeople[] = {"jens", "marcos", "donald", "maria", "peter",
                               "lukas", "irene", "shant", "olivier", "rokas"};
const char* const kHosts[] = {"ethz.ch", "imemex.org", "berkeley.edu",
                              "example.com", "uni-sb.de"};

const char* const kSectionTitles[] = {
    "Introduction",  "Preliminaries", "Related Work", "Architecture",
    "Data Model",    "Evaluation",    "Experiments",  "Discussion",
    "The Problem",   "Conclusions"};

const char* const kXmlNames[] = {"article", "section", "item",  "entry",
                                 "record",  "list",    "meta",  "data",
                                 "title",   "author",  "note"};

}  // namespace

TextGenerator::TextGenerator(Rng* rng) : rng_(rng) {}

std::string TextGenerator::Words(size_t words) {
  const auto& vocabulary = Vocabulary();
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) out += (i % 13 == 0) ? ".\n" : " ";
    out += vocabulary[rng_->Zipf(vocabulary.size(), 1.07)];
  }
  return out;
}

std::string TextGenerator::WordsWithPhrase(size_t words,
                                           const std::string& phrase) {
  std::string out = Words(words / 2);
  out += " ";
  out += phrase;
  out += " ";
  out += Words(words - words / 2);
  return out;
}

// ---------------------------------------------------------------------------
// Document synthesis

namespace {

class Builder {
 public:
  Builder(const DataspaceSpec& spec, Clock* clock)
      : spec_(spec),
        clock_(clock),
        rng_(spec.seed),
        text_(&rng_),
        fs_(std::make_shared<vfs::VirtualFileSystem>(clock)),
        imap_(std::make_shared<email::ImapServer>(clock)) {}

  BuiltDataspace Run() {
    BuildPlantedFilesystem();
    BuildRandomFilesystem();
    BuildEmail();
    return {fs_, imap_};
  }

 private:
  /// Spreads timestamps across 2005: advance the shared clock a random
  /// 0–20 minutes between items (at paper scale, ~19k items cover most of
  /// the year, so Q3's @12.06.2005 cutoff is selective).
  void Tick() { clock_->AdvanceMicros(rng_.UniformRange(0, 1200) * 1000000); }

  std::string RandomWord() {
    const auto& vocabulary = Vocabulary();
    return vocabulary[rng_.Zipf(vocabulary.size(), 1.07)];
  }

  // --- LaTeX ---------------------------------------------------------------

  /// A synthetic paper. \p doc_tag makes labels unique; figures get labels
  /// and are \ref-erenced (feeding Q7's texref↔figure join); a fraction of
  /// sections carries the "database tuning" phrase (Q2).
  std::string LatexDoc(const std::string& doc_tag, size_t sections,
                       size_t words_per_section) {
    std::string out = "\\documentclass{article}\n\\title{" +
                      text_.Words(4) + "}\n\\begin{document}\n";
    size_t figure_count = 0;
    for (size_t s = 0; s < sections; ++s) {
      const char* title = kSectionTitles[rng_.Uniform(std::size(kSectionTitles))];
      out += "\\section{" + std::string(title) + "}\\label{sec:" + doc_tag +
             ":" + std::to_string(s) + "}\n";
      out += (rng_.Chance(0.015)
                  ? text_.WordsWithPhrase(words_per_section, "database tuning")
                  : text_.Words(words_per_section)) +
             "\n";
      // Subsections.
      size_t subs = 2 + rng_.Uniform(2);
      for (size_t j = 0; j < subs; ++j) {
        out += "\\subsection{" + text_.Words(3) + "}\n" +
               text_.Words(words_per_section / 2) + "\n";
      }
      // Figures with labels + references to them.
      if (rng_.Chance(0.8)) {
        std::string label = "fig:" + doc_tag + ":" + std::to_string(figure_count++);
        out += "\\begin{figure}\n\\caption{" + text_.Words(5) +
               "}\n\\label{" + label + "}\n\\end{figure}\n";
        out += "As shown in \\ref{" + label + "}, " + text_.Words(10) + ".\n";
      }
    }
    out += "\\end{document}\n";
    return out;
  }

  // --- XML -----------------------------------------------------------------

  void XmlElement(std::string* out, size_t* budget, size_t depth) {
    const char* name = kXmlNames[rng_.Uniform(std::size(kXmlNames))];
    *out += "<";
    *out += name;
    if (rng_.Chance(0.4)) {
      *out += " id=\"" + std::to_string(rng_.Uniform(100000)) + "\"";
    }
    if (rng_.Chance(0.2)) *out += " class=\"" + RandomWord() + "\"";
    *out += ">";
    --*budget;
    while (*budget > 1 && rng_.Chance(depth < 6 ? 0.7 : 0.2)) {
      if (rng_.Chance(0.45)) {
        *out += xml::EscapeText(text_.Words(4 + rng_.Uniform(8)));
        --*budget;
      } else {
        XmlElement(out, budget, depth + 1);
      }
    }
    *out += "</";
    *out += name;
    *out += ">";
  }

  std::string XmlDoc(size_t target_nodes) {
    std::string out = "<?xml version=\"1.0\"?><root>";
    size_t budget = target_nodes > 2 ? target_nodes - 2 : 1;
    while (budget > 1) XmlElement(&out, &budget, 1);
    out += "</root>";
    return out;
  }

  std::string BinaryBlob(size_t mean_bytes) {
    // Zipf-ish size spread so that Q3's `size > 420000` predicate has a
    // selective tail to find.
    size_t size = mean_bytes / 4 + rng_.Uniform(mean_bytes * 2);
    if (rng_.Chance(0.05)) size *= 4;
    std::string out;
    out.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      out += static_cast<char>(rng_.Next() & 0xFF);
    }
    return out;
  }

  // --- planted needles -----------------------------------------------------

  void BuildPlantedFilesystem() {
    // The paper's Figure 1 skeleton: Projects/{PIM, OLAP} with the VLDB
    // paper, a grant, and the folder link that closes a cycle.
    (void)fs_->CreateFolder("/Projects/PIM");
    (void)fs_->CreateFolder("/Projects/OLAP");
    Tick();
    (void)fs_->WriteFile(
        "/Projects/PIM/vldb 2006.tex",
        "\\documentclass{article}\n\\title{iDM: A Unified Data Model}\n"
        "\\begin{document}\n"
        "\\section{Introduction}\\label{sec:pim:intro}\n" +
            text_.WordsWithPhrase(80, "Mike Franklin") + "\n" +
            "\\subsection{The Problem}\nSee \\ref{sec:pim:prelim}. " +
            text_.Words(40) + "\n" +
            "\\section{Preliminaries}\\label{sec:pim:prelim}\n" +
            text_.Words(60) + "\n\\end{document}\n");
    Tick();
    (void)fs_->WriteFile("/Projects/PIM/Grant.doc",
                         text_.WordsWithPhrase(200, "Mike Franklin"));
    // Deterministic Q1/Q2 needle at every scale.
    (void)fs_->WriteFile("/Projects/PIM/tuning notes.txt",
                         text_.WordsWithPhrase(80, "database tuning"));
    (void)fs_->CreateLink("/Projects/PIM/All Projects", "/Projects");
    Tick();
    // OLAP project: figures captioned "Indexing Time" (intro Query 2).
    (void)fs_->WriteFile(
        "/Projects/OLAP/olap paper.tex",
        "\\documentclass{article}\n\\begin{document}\n"
        "\\section{Evaluation}\n" + text_.Words(50) + "\n"
        "\\begin{figure}\n\\caption{Indexing Time versus data size}\n"
        "\\label{fig:olap:indexing}\n\\end{figure}\n"
        "We discuss \\ref{fig:olap:indexing}. " + text_.Words(30) + "\n"
        "\\end{document}\n");
    Tick();

    // /papers with the *Vision sections for Q4 (paper reports 2 results).
    (void)fs_->CreateFolder("/papers");
    (void)fs_->WriteFile(
        "/papers/dataspaces.tex",
        "\\documentclass{article}\n\\begin{document}\n"
        "\\section{A PIM Vision}\n" + text_.Words(30) + "\n"
        "\\subsection{Background}\n" +
            text_.WordsWithPhrase(40, "Franklin") + "\n"
        "\\end{document}\n");
    Tick();
    (void)fs_->WriteFile(
        "/papers/principles.tex",
        "\\documentclass{article}\n\\begin{document}\n"
        "\\section{The Dataspace Vision}\n" + text_.Words(30) + "\n"
        "\\subsection{Roadmap}\n" + text_.WordsWithPhrase(40, "Franklin") +
            "\n\\end{document}\n");
    Tick();
    // More /papers .tex files; names are shared with the email .tex
    // attachments planted later, and older copies live in subfolders, so
    // the Q8 join (A.name = B.name) produces a small two-digit result set
    // like the paper's 16.
    (void)fs_->CreateFolder("/papers/old");
    (void)fs_->CreateFolder("/papers/old2");
    for (size_t i = 0; i < 12; ++i) {
      (void)fs_->WriteFile("/papers/draft" + std::to_string(i) + ".tex",
                           LatexDoc("papers" + std::to_string(i), 3, 50));
      Tick();
    }
    for (size_t i = 0; i < 9; ++i) {
      (void)fs_->WriteFile("/papers/old/draft" + std::to_string(i) + ".tex",
                           LatexDoc("old" + std::to_string(i), 2, 40));
      Tick();
    }
    for (size_t i = 0; i < 2; ++i) {
      (void)fs_->WriteFile("/papers/old2/draft" + std::to_string(i) + ".tex",
                           LatexDoc("old2" + std::to_string(i), 2, 40));
      Tick();
    }

    // VLDB project folders for Q5/Q6/Q7. The 2006 paper has 7 figures,
    // each \ref-erenced 3 times, so the Q7 texref↔figure join yields 21
    // pairs — the count the paper reports.
    for (const char* year : {"2005", "2006"}) {
      std::string folder = std::string("/VLDB") + year;
      (void)fs_->CreateFolder(folder);
      std::string tag = std::string("vldb") + year;
      size_t figures = (std::string(year) == "2006") ? 7 : 3;
      size_t refs_per_figure = (std::string(year) == "2006") ? 3 : 1;
      std::string doc =
          "\\documentclass{article}\n\\begin{document}\n"
          "\\section{Introduction}\n" +
          text_.WordsWithPhrase(60, "documents") + "\n";
      for (size_t f = 0; f < figures; ++f) {
        std::string label = "fig:" + tag + ":" + std::to_string(f);
        doc += "\\begin{figure}\n\\caption{" + text_.Words(4) +
               "}\n\\label{" + label + "}\n\\end{figure}\n";
        for (size_t r = 0; r < refs_per_figure; ++r) {
          doc += "Results appear in \\ref{" + label + "}. " +
                 text_.Words(6) + "\n";
        }
      }
      doc += "\\section{Conclusions}\n" + text_.Words(30) + "\n"
             "\\subsection{Future Work}\n" +
             text_.WordsWithPhrase(30, "systems") +
             "\n\\end{document}\n";
      (void)fs_->WriteFile(folder + "/" + tag + " paper.tex", doc);
      Tick();
      (void)fs_->WriteFile(folder + "/notes.txt",
                           text_.WordsWithPhrase(60, "documents"));
      Tick();
    }
  }

  void BuildRandomFilesystem() {
    // Random folder tree under a handful of top-level areas.
    std::vector<std::string> folders = {"/archive", "/teaching", "/misc",
                                        "/Projects"};
    for (const std::string& folder : folders) (void)fs_->CreateFolder(folder);
    for (size_t i = 0; i < spec_.fs_folders; ++i) {
      const std::string& parent = folders[rng_.Uniform(folders.size())];
      std::string path = parent + "/" + RandomWord() + std::to_string(i);
      if (fs_->CreateFolder(path).ok()) folders.push_back(path);
    }
    auto random_folder = [this, &folders]() -> const std::string& {
      return folders[rng_.Uniform(folders.size())];
    };

    for (size_t i = 0; i < spec_.fs_text_files; ++i) {
      size_t words = spec_.text_file_words / 2 +
                     rng_.Uniform(spec_.text_file_words);
      (void)fs_->WriteFile(
          random_folder() + "/" + RandomWord() + std::to_string(i) + ".txt",
          text_.Words(words));
      Tick();
    }
    for (size_t i = 0; i < spec_.fs_binary_files; ++i) {
      (void)fs_->WriteFile(
          random_folder() + "/img" + std::to_string(i) + ".jpg",
          BinaryBlob(spec_.binary_file_bytes));
      Tick();
    }
    for (size_t i = 0; i < spec_.fs_latex_docs; ++i) {
      (void)fs_->WriteFile(
          random_folder() + "/doc" + std::to_string(i) + ".tex",
          LatexDoc("d" + std::to_string(i), spec_.latex_sections,
                   spec_.latex_words_per_section));
      Tick();
    }
    for (size_t i = 0; i < spec_.fs_xml_docs; ++i) {
      (void)fs_->WriteFile(random_folder() + "/data" + std::to_string(i) + ".xml",
                           XmlDoc(spec_.xml_target_nodes));
      Tick();
    }
  }

  // --- email ---------------------------------------------------------------

  std::string RandomAddress() {
    return std::string(kPeople[rng_.Uniform(std::size(kPeople))]) + "@" +
           kHosts[rng_.Uniform(std::size(kHosts))];
  }

  email::Message RandomEmail() {
    email::Message message;
    message.from = RandomAddress();
    message.to = {RandomAddress()};
    if (rng_.Chance(0.3)) message.cc = {RandomAddress()};
    message.subject = text_.Words(4 + rng_.Uniform(4));
    message.date = clock_->NowMicros();
    message.body = text_.Words(spec_.email_body_words / 2 +
                               rng_.Uniform(spec_.email_body_words));
    if (rng_.Chance(spec_.attachment_prob)) {
      message.attachments.push_back(
          {"notes" + std::to_string(rng_.Uniform(1000)) + ".txt",
           "text/plain", text_.Words(60)});
    }
    return message;
  }

  void BuildEmail() {
    std::vector<std::string> folders = {"INBOX", "Sent"};
    (void)imap_->CreateFolder("INBOX");
    (void)imap_->CreateFolder("Sent");
    (void)imap_->CreateFolder("Projects/OLAP");  // the Query 2 needle
    const char* extra[] = {"Archive/2004", "Archive/2005", "Lists/dbworld",
                           "Drafts", "Projects/PIM", "Travel", "Admin",
                           "Lists/sigmod", "Archive/2003"};
    for (size_t i = 0; i < spec_.email_folders && i < std::size(extra); ++i) {
      (void)imap_->CreateFolder(extra[i]);
      folders.emplace_back(extra[i]);
    }

    // OLAP project mail: the "smaller projects live in email" scenario of
    // the paper's Example 2 — an attachment with an Indexing Time figure.
    email::Message olap;
    olap.from = "jens@ethz.ch";
    olap.to = {"marcos@ethz.ch"};
    olap.subject = "OLAP figures for the deadline";
    olap.date = clock_->NowMicros();
    olap.body = text_.WordsWithPhrase(40, "Indexing Time");
    olap.attachments.push_back(
        {"olap_eval.tex", "application/x-tex",
         "\\documentclass{article}\n\\begin{document}\n"
         "\\begin{figure}\n\\caption{Indexing Time for all sources}\n"
         "\\label{fig:olap:mail}\n\\end{figure}\n\\end{document}\n"});
    (void)imap_->Append("Projects/OLAP", std::move(olap));
    Tick();

    // The Q8 needles: .tex attachments whose names match /papers files.
    for (size_t i = 0; i < spec_.email_tex_attachments; ++i) {
      email::Message message = RandomEmail();
      message.subject = "draft review " + std::to_string(i);
      std::string name = "draft" + std::to_string(i % 12) + ".tex";
      message.attachments.push_back({name, "application/x-tex",
                                     LatexDoc("att" + std::to_string(i), 7, 60)});
      (void)imap_->Append(folders[rng_.Uniform(folders.size())],
                          std::move(message));
      Tick();
    }
    for (size_t i = 0; i < spec_.email_xml_attachments; ++i) {
      email::Message message = RandomEmail();
      message.attachments.push_back({"export" + std::to_string(i) + ".xml",
                                     "text/xml", XmlDoc(60)});
      (void)imap_->Append(folders[rng_.Uniform(folders.size())],
                          std::move(message));
      Tick();
    }

    // Bulk mail.
    for (size_t i = 0; i < spec_.emails; ++i) {
      (void)imap_->Append(folders[rng_.Uniform(folders.size())], RandomEmail());
      Tick();
    }
  }

  const DataspaceSpec& spec_;
  Clock* clock_;
  Rng rng_;
  TextGenerator text_;
  std::shared_ptr<vfs::VirtualFileSystem> fs_;
  std::shared_ptr<email::ImapServer> imap_;
};

}  // namespace

BuiltDataspace Generate(const DataspaceSpec& spec, Clock* clock) {
  return Builder(spec, clock).Run();
}

}  // namespace idm::workload
