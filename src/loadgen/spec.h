// Declarative workload specs for idm_loadgen (DESIGN.md §13).
//
// A workload — simulated users, mixed substrate traffic, named phases with
// open- and closed-loop arrival models — is fully described in a small
// line-oriented text file; no C++ is needed per scenario. The format is
// deliberately tiny (no external YAML dependency): one directive per line,
// `#` comments, `phase <name> … end` blocks, and an optional `schedule`
// line that orders the phases.
//
//   # steady-state read traffic over the small synthetic dataspace
//   workload steady_state
//   seed 42
//   capacity 2
//   queue 8
//   queue_timeout_ms 50
//
//   phase ingest
//     ingest
//   end
//
//   phase steady
//     duration_ms 2000
//     arrival open 120        # ops/sec across all users
//     users 8
//     op query.Q1 4
//     op query.any 2
//     op mail.send 1
//   end
//
//   schedule ingest steady
//
// ParseSpec returns line-numbered errors for malformed input (unknown key,
// bad phase reference, negative rate, …) and never crashes on arbitrary
// bytes (tests/property/fuzz_parsers_test.cc). DumpSpec renders the
// canonical form: ParseSpec ∘ DumpSpec is the identity on canonical dumps,
// which is what the golden-file tests pin.

#ifndef IDM_LOADGEN_SPEC_H_
#define IDM_LOADGEN_SPEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/clock.h"
#include "util/result.h"

namespace idm::loadgen {

/// The operation vocabulary actors draw from. Query ops evaluate an iQL
/// expression through Dataspace::Query; the others mutate a substrate (and
/// sync.poll reconciles them into the indexes).
enum class OpKind {
  kQueryQ1,    ///< Table 4 Q1 … Q8 (the paper's evaluation mix)
  kQueryQ2,
  kQueryQ3,
  kQueryQ4,
  kQueryQ5,
  kQueryQ6,
  kQueryQ7,
  kQueryQ8,
  kQueryAny,   ///< uniform pick over the Table 4 catalog
  kMailSend,   ///< append one message to the IMAP INBOX
  kMailBurst,  ///< append a burst of 2–6 messages (mailing-list spike)
  kRssTick,    ///< publish one item on the RSS feed
  kVfsWrite,   ///< create/overwrite a note file under /loadgen
  kVfsRemove,  ///< remove a previously written note (no-op when none)
  kVfsChurn,   ///< mixed create/overwrite/remove
  kSyncPoll,   ///< SynchronizationManager::Poll — reconcile substrate drift
  // Standing queries (DESIGN.md §14): `op subscribe.Q3 2` opens a live
  // subscription on the Table 4 query and holds it open for the rest of
  // the phase while churn runs; deltas delivered to it are counted in the
  // phase report. Kept after kSyncPoll so the kQueryQ1..kQueryAny range
  // test in the orchestrator stays valid.
  kSubscribeQ1,   ///< subscribe to Table 4 Q1 … Q8
  kSubscribeQ2,
  kSubscribeQ3,
  kSubscribeQ4,
  kSubscribeQ5,
  kSubscribeQ6,
  kSubscribeQ7,
  kSubscribeQ8,
  kSubscribeAny,  ///< uniform pick over the Table 4 catalog
};

/// "query.Q1", "mail.burst", … (the spelling used in spec files).
const char* OpKindName(OpKind kind);

/// Inverse of OpKindName. Returns false for unknown spellings.
bool ParseOpKind(const std::string& text, OpKind* out);

/// How a phase's actors generate arrivals.
enum class ArrivalKind {
  kOpen,    ///< open loop: Poisson arrivals at `rate` ops/sec, regardless of
            ///< completions — overload shows up as queueing/shedding
  kClosed,  ///< closed loop: each user issues the next op `think_ms` after
            ///< the previous one completes (or is shed)
};

/// Generator scale used by ingest phases (workload::DataspaceSpec).
enum class Scale { kSmall, kPaper };

/// One named phase: either an ingest phase (generate + register + index the
/// synthetic dataspace) or a traffic phase (arrival model + op mix).
struct PhaseSpec {
  std::string name;
  int line = 0;  ///< declaration line, for semantic error messages
  bool ingest = false;
  int64_t duration_ms = 0;  ///< simulated duration (traffic phases)
  ArrivalKind arrival = ArrivalKind::kOpen;
  double rate_per_sec = 0;  ///< aggregate arrival rate (open loop)
  int64_t think_ms = 0;     ///< per-user think time (closed loop)
  size_t users = 4;         ///< simulated users (actors), each with its own
                            ///< seeded RNG stream
  /// Weighted op mix, in declaration order.
  std::vector<std::pair<OpKind, uint32_t>> mix;
};

/// A parsed workload: global knobs + phases + schedule.
struct WorkloadSpec {
  std::string name;
  uint64_t seed = 42;
  size_t threads = 1;        ///< execution parallelism (does not affect the
                             ///< deterministic outputs — see DESIGN.md §13)
  Scale scale = Scale::kSmall;  ///< ingest scale
  /// Admission gate for query ops, mirroring iql::AdmissionController's
  /// policy (capacity slots, bounded FIFO queue, wait timeout) but measured
  /// in *simulated* time so shedding is deterministic. 0 = no gate.
  size_t capacity = 0;
  size_t queue = 0;
  int64_t queue_timeout_ms = 0;
  /// Per-query step budget (ExecContext::Limits::max_steps); queries that
  /// overrun degrade per the §10 partial-result contract and are counted
  /// in the per-phase `degraded` total. 0 = ungoverned.
  uint64_t step_limit = 0;

  std::vector<PhaseSpec> phases;  ///< in declaration order
  /// Execution order (phase names). Defaults to declaration order when the
  /// spec has no `schedule` line; always explicit in the canonical dump.
  std::vector<std::string> schedule;

  const PhaseSpec* FindPhase(const std::string& name) const;
};

/// Parses a spec. Errors are kInvalidArgument with "line N: …" messages;
/// arbitrary bytes never crash the parser.
Result<WorkloadSpec> ParseSpec(const std::string& text);

/// Canonical rendering: fixed key order, explicit schedule, normalized
/// numbers. ParseSpec(DumpSpec(s)) succeeds for every valid s and dumps to
/// the same bytes (the round-trip fixpoint the golden tests pin).
std::string DumpSpec(const WorkloadSpec& spec);

}  // namespace idm::loadgen

#endif  // IDM_LOADGEN_SPEC_H_
