#include "loadgen/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <queue>
#include <tuple>

#include "util/thread_pool.h"
#include "workload/generator.h"

namespace idm::loadgen {

namespace {

/// Modeled query service cost, in simulated micros. Built only from result
/// features that the §8 differential suite pins byte-identical across
/// thread counts; a degraded query is charged its full step budget because
/// the partial prefix it reached is thread-dependent.
constexpr Micros kQueryBaseMicros = 150;
constexpr Micros kMicrosPerRow = 25;
constexpr Micros kMicrosPerExpandedView = 2;
constexpr Micros kMicrosPerBudgetedStep = 2;

/// Open-loop query batches execute this many ops per thread-pool fan-out.
/// A constant (not a function of the thread count) so batch boundaries
/// cannot even in principle leak into the deterministic outputs.
constexpr size_t kMaxBatch = 64;

/// Outcome of actually executing one query op, reduced to the
/// thread-invariant features the latency model consumes.
struct QueryOutcome {
  bool failed = false;
  bool degraded = false;
  uint64_t rows = 0;
  uint64_t expanded = 0;
};

Micros ServiceMicros(const QueryOutcome& outcome, uint64_t step_limit) {
  if (outcome.degraded) {
    return kQueryBaseMicros +
           static_cast<Micros>(step_limit) * kMicrosPerBudgetedStep;
  }
  return kQueryBaseMicros +
         static_cast<Micros>(outcome.rows) * kMicrosPerRow +
         static_cast<Micros>(outcome.expanded) * kMicrosPerExpandedView;
}

bool IsQueryOp(OpKind kind) {
  return kind >= OpKind::kQueryQ1 && kind <= OpKind::kQueryAny;
}

bool IsSubscribeOp(OpKind kind) {
  return kind >= OpKind::kSubscribeQ1 && kind <= OpKind::kSubscribeAny;
}

/// Exponential inter-arrival draw (Poisson process), floored to 1us so
/// virtual time always advances. Deterministic for a given Rng state.
Micros ExpMicros(Rng* rng, double rate_per_sec) {
  double u = rng->NextDouble();
  double micros = -std::log(1.0 - u) * 1e6 / rate_per_sec;
  return std::max<Micros>(1, static_cast<Micros>(micros));
}

/// One scheduled op arrival. Ordered by (time, actor, seq): ties between
/// actors break deterministically, never by heap internals.
struct Event {
  Micros time = 0;
  size_t actor = 0;
  uint64_t seq = 0;
  Op op;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(a.time, a.actor, a.seq) > std::tie(b.time, b.actor,
                                                       b.seq);
  }
};

/// A query op waiting in the current execution batch.
struct PendingQuery {
  Event event;
  QueryOutcome outcome;  ///< filled by the parallel execution pass
};

}  // namespace

VirtualAdmissionGate::Decision VirtualAdmissionGate::Offer(Micros now,
                                                           Micros service) {
  Decision decision;
  if (options_.capacity == 0) return decision;  // gate disabled
  if (slot_free_.size() < options_.capacity) {
    slot_free_.resize(options_.capacity, 0);
  }
  // Waiters whose start time has passed have left the queue.
  queued_until_.erase(
      std::remove_if(queued_until_.begin(), queued_until_.end(),
                     [now](Micros start) { return start <= now; }),
      queued_until_.end());
  auto slot = std::min_element(slot_free_.begin(), slot_free_.end());
  if (*slot <= now) {
    *slot = now + service;
    return decision;  // free slot: admitted, no wait
  }
  Micros wait = *slot - now;
  if (queued_until_.size() >= options_.queue) {
    decision.admitted = false;
    decision.queue_full = true;
    return decision;  // shed immediately: queue at capacity
  }
  if (wait > options_.timeout) {
    decision.admitted = false;
    decision.wait = options_.timeout;  // waited the timeout out, then shed
    return decision;
  }
  // FIFO: this op takes the earliest-freeing slot at the moment it frees.
  decision.wait = wait;
  queued_until_.push_back(now + wait);
  *slot = now + wait + service;
  return decision;
}

struct Orchestrator::RunState {
  Substrates subs;
  VirtualAdmissionGate gate;
  util::ThreadPool* pool = nullptr;
  uint64_t step_limit = 0;
  SimClock* clock = nullptr;
  /// Catalog queries prepared once per run (parse + plan paid at ingest,
  /// not per issued op) — the Prepare/Execute pattern from DESIGN.md §16.
  std::vector<iql::PreparedQuery> prepared;

  explicit RunState(VirtualAdmissionGate::Options gate_options)
      : gate(gate_options) {}

  void PrepareCatalog() {
    prepared.clear();
    prepared.reserve(QueryCatalog().size());
    for (const CatalogQuery& entry : QueryCatalog()) {
      auto handle = subs.ds->Prepare(entry.iql);
      prepared.push_back(handle.ok() ? *std::move(handle)
                                     : iql::PreparedQuery());
    }
  }

  QueryOutcome RunQuery(const Op& op) const {
    QueryOutcome outcome;
    iql::QueryOptions options;
    if (step_limit > 0) options.limits.max_steps = step_limit;
    Result<iql::QueryResult> result =
        op.query_index < prepared.size() && prepared[op.query_index].valid()
            ? prepared[op.query_index].Execute(options)
            : subs.ds->Query(QueryCatalog()[op.query_index].iql, options);
    if (!result.ok()) {
      outcome.failed = true;
      return outcome;
    }
    outcome.degraded = !result->meta.complete;
    if (!outcome.degraded) {
      outcome.rows = result->rows.size();
      outcome.expanded = result->expanded_views;
    }
    return outcome;
  }
};

Status Orchestrator::RunIngestPhase(const WorkloadSpec& spec,
                                    const PhaseSpec& phase, RunState* state,
                                    PhaseReport* report) {
  (void)phase;  // ingest phases carry no traffic knobs
  SimClock* clock = state->clock;
  report->sim_start = clock->NowMicros();

  workload::DataspaceSpec wspec = spec.scale == Scale::kPaper
                                      ? workload::DataspaceSpec::PaperScale()
                                      : workload::DataspaceSpec::Small();
  wspec.seed = spec.seed;
  workload::BuiltDataspace built = workload::Generate(wspec, clock);
  fs_ = built.fs;
  imap_ = built.imap;

  // A small seeded RSS feed so rss.tick traffic has a registered stream
  // substrate to land on.
  stream::Feed feed;
  feed.title = "dbworld";
  feed.link = "http://dbworld.example.com/feed";
  feed.description = "calls for papers";
  Rng feed_rng(DeriveSeed(spec.seed, "rss-seed", 0));
  workload::TextGenerator feed_text(&feed_rng);
  for (int i = 0; i < 3; ++i) {
    feed.items.push_back({feed_text.Words(5),
                          "http://dbworld.example.com/item/seed" +
                              std::to_string(i),
                          feed_text.Words(12), clock->NowMicros()});
  }
  feed_ = std::make_shared<stream::FeedServer>(std::move(feed), clock);

  struct SourceAdd {
    const char* label;
    std::function<Result<rvm::SourceIndexStats>()> add;
  };
  const SourceAdd sources[] = {
      {"ingest.fs_views",
       [&] { return ds_->AddFileSystem("Filesystem", fs_); }},
      {"ingest.mail_views",
       [&] { return ds_->AddImap("Email / IMAP", imap_); }},
      {"ingest.rss_views",
       [&] { return ds_->AddRss("RSS / dbworld", feed_); }},
  };
  for (const SourceAdd& source : sources) {
    Micros before = clock->NowMicros();
    auto stats = source.add();
    if (!stats.ok()) return stats.status();
    report->mix[source.label] = stats->views_total;
    report->latencies.push_back(clock->NowMicros() - before);
    ++report->issued;
    ++report->served;
  }

  state->subs = {ds_.get(), fs_.get(), imap_.get(), feed_.get()};
  state->PrepareCatalog();
  report->sim_end = clock->NowMicros();
  return Status::OK();
}

Status Orchestrator::RunTrafficPhase(const WorkloadSpec& spec,
                                     const PhaseSpec& phase, RunState* state,
                                     PhaseReport* report) {
  SimClock* clock = state->clock;
  const Micros start = clock->NowMicros();
  const Micros end = start + phase.duration_ms * 1000;
  report->sim_start = start;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events;
  std::vector<Rng> op_rngs;
  std::vector<uint64_t> seqs(phase.users, 0);
  op_rngs.reserve(phase.users);
  for (size_t a = 0; a < phase.users; ++a) {
    op_rngs.emplace_back(DeriveSeed(spec.seed, phase.name + "/ops", a));
  }

  if (phase.arrival == ArrivalKind::kOpen) {
    // Pre-generate the whole Poisson schedule: arrivals are independent of
    // completions by definition of an open loop.
    const double per_actor_rate =
        phase.rate_per_sec / static_cast<double>(phase.users);
    for (size_t a = 0; a < phase.users; ++a) {
      Rng arrivals(DeriveSeed(spec.seed, phase.name + "/arrival", a));
      Micros t = start + ExpMicros(&arrivals, per_actor_rate);
      while (t < end) {
        events.push({t, a, seqs[a]++, SampleOp(phase, &op_rngs[a])});
        t += ExpMicros(&arrivals, per_actor_rate);
      }
    }
  } else {
    // Closed loop: each user starts after a deterministic stagger; the
    // next arrival is scheduled when the previous op completes.
    for (size_t a = 0; a < phase.users; ++a) {
      Micros t = start + static_cast<Micros>(a) * 997 + 1;
      if (t < end) {
        events.push({t, a, seqs[a]++, SampleOp(phase, &op_rngs[a])});
      }
    }
  }

  std::vector<PendingQuery> batch;
  const uint64_t step_limit = state->step_limit;
  // Standing queries opened by subscribe.* ops: held until the phase ends,
  // then drained so their deltas land in the phase mix.
  std::vector<std::shared_ptr<iql::Dataspace::Subscription>> standing;

  // Executes the batched query ops concurrently, then threads them through
  // the virtual gate in arrival order (batch order == pop order == time
  // order). Returns the completion time of the last batch member, for the
  // closed loop.
  auto flush = [&](std::vector<Micros>* completions) {
    if (batch.empty()) return;
    std::vector<QueryOutcome> outcomes = util::OrderedParallelMap<QueryOutcome>(
        state->pool, batch.size(),
        [&](size_t i) { return state->RunQuery(batch[i].event.op); });
    if (completions != nullptr) completions->clear();
    for (size_t i = 0; i < batch.size(); ++i) {
      const Event& event = batch[i].event;
      const QueryOutcome& outcome = outcomes[i];
      ++report->issued;
      ++report->mix[OpKindName(event.op.kind)];
      Micros completion = event.time;
      if (outcome.failed) {
        ++report->failed;
      } else {
        Micros service = ServiceMicros(outcome, step_limit);
        auto decision = state->gate.Offer(event.time, service);
        if (decision.admitted) {
          ++report->served;
          if (outcome.degraded) {
            ++report->degraded;
          } else {
            report->rows += outcome.rows;
          }
          report->latencies.push_back(decision.wait + service);
          completion = event.time + decision.wait + service;
        } else {
          if (decision.queue_full) {
            ++report->shed_queue_full;
          } else {
            ++report->shed_timeout;
          }
          completion = event.time + decision.wait;
        }
      }
      if (completions != nullptr) completions->push_back(completion);
    }
    batch.clear();
  };

  std::vector<Micros> completions;
  while (!events.empty()) {
    Event event = events.top();
    events.pop();
    const bool closed = phase.arrival == ArrivalKind::kClosed;

    if (IsQueryOp(event.op.kind)) {
      batch.push_back({event, {}});
      // Open loop: batch until a mutation (or the cap) forces a flush.
      // Closed loop: flush now — the completion feeds the next arrival.
      if (closed || batch.size() >= kMaxBatch) {
        flush(&completions);
        if (closed) {
          Micros next = completions.back() + phase.think_ms * 1000;
          if (next < end) {
            events.push({next, event.actor, seqs[event.actor]++,
                         SampleOp(phase, &op_rngs[event.actor])});
          }
        }
      }
      continue;
    }

    // Mutation/sync/subscribe op: drain the query batch first so the gate
    // sees offers in time order, then apply serially at virtual arrival
    // time.
    flush(nullptr);
    if (event.time > clock->NowMicros()) {
      clock->AdvanceMicros(event.time - clock->NowMicros());
    }
    Status status = Status::OK();
    if (IsSubscribeOp(event.op.kind)) {
      // Open a standing query and hold it for the rest of the phase; the
      // deltas it accumulates while churn runs are drained at phase end.
      auto sub = state->subs.ds->Subscribe(
          QueryCatalog()[event.op.query_index].iql);
      if (sub.ok()) {
        standing.push_back(*sub);
      } else {
        status = sub.status();
      }
    } else {
      status = ExecuteMutation(event.op, state->subs);
    }
    ++report->issued;
    ++report->mix[OpKindName(event.op.kind)];
    if (status.ok()) {
      // Mutations count toward served but not toward the latency
      // percentiles: a full sync.poll costs simulated *seconds* and would
      // bury the query tail the gate actually bounds. Their cost shows up
      // as sim clock advance (sim_ms) instead.
      ++report->served;
    } else {
      ++report->failed;
    }
    if (closed) {
      Micros next = clock->NowMicros() + phase.think_ms * 1000;
      if (next < end) {
        events.push({next, event.actor, seqs[event.actor]++,
                     SampleOp(phase, &op_rngs[event.actor])});
      }
    }
  }
  flush(nullptr);

  // Close out the phase's standing queries. Every delta delivered while
  // churn ran (plus each initial snapshot) is folded into the mix so
  // subscription activity is visible in reports; "sub.delta" stays out of
  // the latency percentiles for the same reason sync.poll does.
  for (const auto& sub : standing) {
    report->mix["sub.delta"] +=
        static_cast<uint64_t>(sub->Drain().size());
    state->subs.ds->Unsubscribe(sub->id());
  }

  if (end > clock->NowMicros()) {
    clock->AdvanceMicros(end - clock->NowMicros());
  }
  report->sim_end = clock->NowMicros();
  return Status::OK();
}

Result<RunReport> Orchestrator::Run(const WorkloadSpec& spec) {
  auto wall_start = std::chrono::steady_clock::now();
  const size_t threads = options_.threads > 0 ? options_.threads
                                              : spec.threads;

  iql::Dataspace::Config config;
  ds_ = std::make_unique<iql::Dataspace>(config);
  fs_.reset();
  imap_.reset();
  feed_.reset();

  VirtualAdmissionGate::Options gate_options;
  gate_options.capacity = spec.capacity;
  gate_options.queue = spec.queue;
  gate_options.timeout = spec.queue_timeout_ms * 1000;

  RunState state(gate_options);
  state.clock = ds_->clock();
  state.step_limit = spec.step_limit;
  util::ThreadPool pool(threads > 1 ? threads : 0);
  state.pool = threads > 1 ? &pool : nullptr;

  RunReport report;
  report.workload = spec.name;
  report.seed = spec.seed;
  report.scale = spec.scale == Scale::kPaper ? "paper" : "small";
  report.threads = threads;

  // A schedule with traffic but no ingest phase still needs a dataspace to
  // aim that traffic at: ingest the configured scale up front.
  bool has_ingest = false;
  for (const std::string& name : spec.schedule) {
    const PhaseSpec* phase = spec.FindPhase(name);
    if (phase != nullptr && phase->ingest) has_ingest = true;
  }
  std::vector<const PhaseSpec*> schedule;
  PhaseSpec auto_ingest;
  if (!has_ingest) {
    auto_ingest.name = "auto_ingest";
    auto_ingest.ingest = true;
    schedule.push_back(&auto_ingest);
  }
  for (const std::string& name : spec.schedule) {
    const PhaseSpec* phase = spec.FindPhase(name);
    if (phase == nullptr) {
      return Status::InvalidArgument("schedule references unknown phase '" +
                                     name + "'");
    }
    schedule.push_back(phase);
  }

  for (const PhaseSpec* phase : schedule) {
    auto phase_wall = std::chrono::steady_clock::now();
    if (options_.verbose) {
      std::fprintf(stderr, "[loadgen] phase %s...\n", phase->name.c_str());
    }
    report.phases.emplace_back();
    PhaseReport& phase_report = report.phases.back();
    phase_report.name = phase->name;
    Status status = phase->ingest
                        ? RunIngestPhase(spec, *phase, &state, &phase_report)
                        : RunTrafficPhase(spec, *phase, &state,
                                          &phase_report);
    if (!status.ok()) return status;
    phase_report.wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - phase_wall)
            .count();
  }

  report.pool = pool.telemetry();
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  const iql::QueryCache::Stats cache = ds_->Stats().cache;
  report.cache_hits = cache.hits;
  report.cache_misses = cache.misses;
  report.cache_stale_skipped = cache.stale_skipped;
  report.cache_footprint_survived = cache.footprint_survived;
  report.cache_survival_rate = cache.survival_rate();
  report.Finalize();
  return report;
}

}  // namespace idm::loadgen
