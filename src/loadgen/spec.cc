#include "loadgen/spec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "util/status.h"

namespace idm::loadgen {

namespace {

const struct {
  OpKind kind;
  const char* name;
} kOpKinds[] = {
    {OpKind::kQueryQ1, "query.Q1"},   {OpKind::kQueryQ2, "query.Q2"},
    {OpKind::kQueryQ3, "query.Q3"},   {OpKind::kQueryQ4, "query.Q4"},
    {OpKind::kQueryQ5, "query.Q5"},   {OpKind::kQueryQ6, "query.Q6"},
    {OpKind::kQueryQ7, "query.Q7"},   {OpKind::kQueryQ8, "query.Q8"},
    {OpKind::kQueryAny, "query.any"}, {OpKind::kMailSend, "mail.send"},
    {OpKind::kMailBurst, "mail.burst"}, {OpKind::kRssTick, "rss.tick"},
    {OpKind::kVfsWrite, "vfs.write"}, {OpKind::kVfsRemove, "vfs.remove"},
    {OpKind::kVfsChurn, "vfs.churn"}, {OpKind::kSyncPoll, "sync.poll"},
    {OpKind::kSubscribeQ1, "subscribe.Q1"},
    {OpKind::kSubscribeQ2, "subscribe.Q2"},
    {OpKind::kSubscribeQ3, "subscribe.Q3"},
    {OpKind::kSubscribeQ4, "subscribe.Q4"},
    {OpKind::kSubscribeQ5, "subscribe.Q5"},
    {OpKind::kSubscribeQ6, "subscribe.Q6"},
    {OpKind::kSubscribeQ7, "subscribe.Q7"},
    {OpKind::kSubscribeQ8, "subscribe.Q8"},
    {OpKind::kSubscribeAny, "subscribe.any"},
};

Status LineError(int line, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                 message);
}

/// Splits a physical line into whitespace-separated tokens, dropping a
/// `#`-to-end-of-line comment. Never throws on arbitrary bytes.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// Names (workload, phases) stay printable so canonical dumps re-parse:
/// alphanumerics plus `_ - .`, non-empty.
bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty() || !std::isdigit(static_cast<unsigned char>(token[0]))) {
    return false;  // rejects "-3", "+3", and stray bytes up front
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// Canonical number rendering: integers print without a decimal point,
/// everything else with %g (which re-parses to the same canonical form).
std::string FormatRate(double rate) {
  if (rate == std::floor(rate) && std::abs(rate) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(rate));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

/// Validates a finished phase block. \p line is the phase declaration line.
Status ValidatePhase(const PhaseSpec& phase) {
  if (phase.ingest) {
    if (phase.duration_ms != 0 || !phase.mix.empty()) {
      return LineError(phase.line,
                       "ingest phase '" + phase.name +
                           "' takes no duration_ms/arrival/op directives");
    }
    return Status::OK();
  }
  if (phase.duration_ms <= 0) {
    return LineError(phase.line, "phase '" + phase.name +
                                     "' needs a positive duration_ms");
  }
  if (phase.mix.empty()) {
    return LineError(phase.line,
                     "phase '" + phase.name + "' declares no 'op' mix");
  }
  if (phase.arrival == ArrivalKind::kOpen && phase.rate_per_sec <= 0) {
    return LineError(phase.line, "phase '" + phase.name +
                                     "' needs 'arrival open <rate>'"
                                     " or 'arrival closed <think_ms>'");
  }
  return Status::OK();
}

}  // namespace

const char* OpKindName(OpKind kind) {
  for (const auto& entry : kOpKinds) {
    if (entry.kind == kind) return entry.name;
  }
  return "?";
}

bool ParseOpKind(const std::string& text, OpKind* out) {
  for (const auto& entry : kOpKinds) {
    if (text == entry.name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

const PhaseSpec* WorkloadSpec::FindPhase(const std::string& name) const {
  for (const PhaseSpec& phase : phases) {
    if (phase.name == name) return &phase;
  }
  return nullptr;
}

Result<WorkloadSpec> ParseSpec(const std::string& text) {
  WorkloadSpec spec;
  bool have_workload = false;
  PhaseSpec* current = nullptr;  // open phase block, or null at top level
  std::set<std::string> top_seen;
  std::vector<std::pair<std::string, int>> schedule;  // name, line
  int schedule_line = 0;

  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    std::vector<std::string> tokens = Tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    const size_t args = tokens.size() - 1;

    // Directives that close an open phase block.
    if (current != nullptr &&
        (key == "end" || key == "phase" || key == "schedule")) {
      if (key == "end" && args != 0) {
        return LineError(line_no, "'end' takes no arguments");
      }
      Status valid = ValidatePhase(*current);
      if (!valid.ok()) return valid;
      current = nullptr;
      if (key == "end") continue;
      // fall through: `phase`/`schedule` handled at top level below
    }

    if (current == nullptr) {
      if (key == "workload") {
        if (args != 1 || !ValidName(tokens[1])) {
          return LineError(line_no, "'workload' takes one name");
        }
        if (have_workload) {
          return LineError(line_no, "duplicate 'workload' directive");
        }
        spec.name = tokens[1];
        have_workload = true;
      } else if (key == "seed" || key == "threads" || key == "capacity" ||
                 key == "queue" || key == "queue_timeout_ms" ||
                 key == "step_limit") {
        uint64_t value = 0;
        if (args != 1 || !ParseU64(tokens[1], &value)) {
          return LineError(line_no, "'" + key +
                                        "' takes one non-negative integer");
        }
        if (!top_seen.insert(key).second) {
          return LineError(line_no, "duplicate '" + key + "' directive");
        }
        if (key == "seed") {
          spec.seed = value;
        } else if (key == "threads") {
          if (value == 0) {
            return LineError(line_no, "'threads' must be at least 1");
          }
          spec.threads = static_cast<size_t>(value);
        } else if (key == "capacity") {
          spec.capacity = static_cast<size_t>(value);
        } else if (key == "queue") {
          spec.queue = static_cast<size_t>(value);
        } else if (key == "queue_timeout_ms") {
          spec.queue_timeout_ms = static_cast<int64_t>(value);
        } else {
          spec.step_limit = value;
        }
      } else if (key == "scale") {
        if (args != 1 || (tokens[1] != "small" && tokens[1] != "paper")) {
          return LineError(line_no, "'scale' takes 'small' or 'paper'");
        }
        if (!top_seen.insert(key).second) {
          return LineError(line_no, "duplicate 'scale' directive");
        }
        spec.scale = tokens[1] == "small" ? Scale::kSmall : Scale::kPaper;
      } else if (key == "phase") {
        if (args != 1 || !ValidName(tokens[1])) {
          return LineError(line_no, "'phase' takes one name");
        }
        for (const PhaseSpec& phase : spec.phases) {
          if (phase.name == tokens[1]) {
            return LineError(line_no, "duplicate phase '" + tokens[1] +
                                          "' (first declared at line " +
                                          std::to_string(phase.line) + ")");
          }
        }
        spec.phases.emplace_back();
        current = &spec.phases.back();
        current->name = tokens[1];
        current->line = line_no;
      } else if (key == "schedule") {
        if (args == 0) {
          return LineError(line_no, "'schedule' needs at least one phase");
        }
        if (schedule_line != 0) {
          return LineError(line_no, "duplicate 'schedule' directive");
        }
        schedule_line = line_no;
        for (size_t i = 1; i < tokens.size(); ++i) {
          schedule.emplace_back(tokens[i], line_no);
        }
      } else if (key == "end") {
        return LineError(line_no, "'end' outside a phase block");
      } else {
        return LineError(line_no, "unknown directive '" + key + "'");
      }
      continue;
    }

    // Inside a phase block.
    if (key == "ingest") {
      if (args != 0) return LineError(line_no, "'ingest' takes no arguments");
      current->ingest = true;
    } else if (key == "duration_ms") {
      uint64_t value = 0;
      if (args != 1 || !ParseU64(tokens[1], &value) || value == 0) {
        return LineError(line_no,
                         "'duration_ms' takes one positive integer");
      }
      current->duration_ms = static_cast<int64_t>(value);
    } else if (key == "arrival") {
      if (args != 2) {
        return LineError(line_no,
                         "'arrival' takes 'open <rate>' or"
                         " 'closed <think_ms>'");
      }
      if (tokens[1] == "open") {
        double rate = 0;
        if (!ParseDouble(tokens[2], &rate)) {
          return LineError(line_no, "bad arrival rate '" + tokens[2] + "'");
        }
        if (rate <= 0) {
          return LineError(line_no, "arrival rate must be positive");
        }
        current->arrival = ArrivalKind::kOpen;
        current->rate_per_sec = rate;
      } else if (tokens[1] == "closed") {
        uint64_t think = 0;
        if (!ParseU64(tokens[2], &think)) {
          return LineError(line_no,
                           "'arrival closed' takes a non-negative think"
                           " time in ms");
        }
        current->arrival = ArrivalKind::kClosed;
        current->think_ms = static_cast<int64_t>(think);
      } else {
        return LineError(line_no,
                         "arrival model must be 'open' or 'closed'");
      }
    } else if (key == "users") {
      uint64_t value = 0;
      if (args != 1 || !ParseU64(tokens[1], &value) || value == 0) {
        return LineError(line_no, "'users' takes one positive integer");
      }
      current->users = static_cast<size_t>(value);
    } else if (key == "op") {
      OpKind kind;
      uint64_t weight = 0;
      if (args != 2 || !ParseOpKind(tokens[1], &kind)) {
        return LineError(line_no, args >= 1 && !tokens[1].empty()
                                      ? "unknown op kind '" + tokens[1] + "'"
                                      : "'op' takes '<kind> <weight>'");
      }
      if (!ParseU64(tokens[2], &weight) || weight == 0 ||
          weight > 1u << 20) {
        return LineError(line_no, "op weight must be in [1, 1048576]");
      }
      current->mix.emplace_back(kind, static_cast<uint32_t>(weight));
    } else {
      return LineError(line_no, "unknown phase directive '" + key + "'");
    }
  }

  if (current != nullptr) {  // trailing `end` is optional
    Status valid = ValidatePhase(*current);
    if (!valid.ok()) return valid;
  }
  if (!have_workload) {
    return Status::InvalidArgument("spec has no 'workload' directive");
  }
  if (spec.phases.empty()) {
    return Status::InvalidArgument("spec declares no phases");
  }

  if (schedule.empty()) {
    for (const PhaseSpec& phase : spec.phases) {
      spec.schedule.push_back(phase.name);
    }
  } else {
    for (const auto& [name, line] : schedule) {
      if (spec.FindPhase(name) == nullptr) {
        return LineError(line, "schedule references unknown phase '" + name +
                                   "'");
      }
      spec.schedule.push_back(name);
    }
  }
  return spec;
}

std::string DumpSpec(const WorkloadSpec& spec) {
  std::ostringstream out;
  out << "workload " << spec.name << "\n";
  out << "seed " << spec.seed << "\n";
  out << "threads " << spec.threads << "\n";
  out << "scale " << (spec.scale == Scale::kSmall ? "small" : "paper")
      << "\n";
  out << "capacity " << spec.capacity << "\n";
  out << "queue " << spec.queue << "\n";
  out << "queue_timeout_ms " << spec.queue_timeout_ms << "\n";
  out << "step_limit " << spec.step_limit << "\n";
  for (const PhaseSpec& phase : spec.phases) {
    out << "\nphase " << phase.name << "\n";
    if (phase.ingest) {
      out << "  ingest\n";
    } else {
      out << "  duration_ms " << phase.duration_ms << "\n";
      if (phase.arrival == ArrivalKind::kOpen) {
        out << "  arrival open " << FormatRate(phase.rate_per_sec) << "\n";
      } else {
        out << "  arrival closed " << phase.think_ms << "\n";
      }
      out << "  users " << phase.users << "\n";
      for (const auto& [kind, weight] : phase.mix) {
        out << "  op " << OpKindName(kind) << " " << weight << "\n";
      }
    }
    out << "end\n";
  }
  out << "\nschedule";
  for (const std::string& name : spec.schedule) out << " " << name;
  out << "\n";
  return out.str();
}

}  // namespace idm::loadgen
