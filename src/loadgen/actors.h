// Actors for idm_loadgen (DESIGN.md §13): the op vocabulary, per-actor
// seeded RNG streams, weighted op sampling, and the substrate mutators.
//
// Every simulated user (actor) owns an Rng stream derived from
// (spec seed, phase name, actor index), so the op sequence each actor
// generates — kinds, payload sizes, text content — is independent of
// thread count and of every other actor. Query ops are executed by the
// orchestrator (possibly in parallel batches: Dataspace::Query is const
// and internally synchronized); mutation ops are executed serially through
// ExecuteMutation below, in virtual-arrival order, so substrate state
// evolves identically run over run.

#ifndef IDM_LOADGEN_ACTORS_H_
#define IDM_LOADGEN_ACTORS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "email/imap.h"
#include "iql/dataspace.h"
#include "loadgen/spec.h"
#include "stream/rss.h"
#include "util/rng.h"
#include "vfs/vfs.h"

namespace idm::loadgen {

/// One Table 4 query (same shapes as bench/harness.cc's Table4Queries —
/// loadgen keeps its own copy because src/ must not depend on bench/).
struct CatalogQuery {
  const char* id;   ///< "Q1" … "Q8"
  const char* iql;
};

/// The eight Table 4 queries, index 0 == Q1.
const std::vector<CatalogQuery>& QueryCatalog();

/// Deterministic seed derivation: one independent SplitMix stream per
/// (root seed, tag, index) triple. Used for actor arrival/op streams.
uint64_t DeriveSeed(uint64_t seed, const std::string& tag, uint64_t index);

/// A concrete operation instance produced by an actor.
struct Op {
  OpKind kind = OpKind::kQueryAny;
  size_t query_index = 0;  ///< into QueryCatalog() for query.* ops
  uint64_t salt = 0;       ///< seeds the mutation-content Rng stream
};

/// Samples the next op from \p phase's weighted mix using \p rng (the
/// actor's op stream). query.any resolves to a uniform catalog pick here,
/// so the choice is part of the actor's deterministic stream.
Op SampleOp(const PhaseSpec& phase, Rng* rng);

/// The substrate handles one run's actors mutate. All owned elsewhere
/// (the orchestrator); pointers may be null before ingest, in which case
/// mutations fail with kFailedPrecondition.
struct Substrates {
  iql::Dataspace* ds = nullptr;
  vfs::VirtualFileSystem* fs = nullptr;
  email::ImapServer* imap = nullptr;
  stream::FeedServer* feed = nullptr;
};

/// Executes a non-query op against the substrates. Content is generated
/// from a fresh Rng seeded with op.salt, so the mutation is a pure
/// function of the op — not of execution order. Callers serialize calls
/// (substrates are not thread-safe) and measure the simulated service
/// time as the SimClock delta around the call.
Status ExecuteMutation(const Op& op, const Substrates& subs);

}  // namespace idm::loadgen

#endif  // IDM_LOADGEN_ACTORS_H_
