// Phased load orchestrator for idm_loadgen (DESIGN.md §13).
//
// The orchestrator turns a WorkloadSpec into a deterministic discrete-event
// simulation on the dataspace's SimClock — the Genny Orchestrator/PhaseLoop
// shape, with virtual time in place of wall time:
//
//  - Each scheduled phase either ingests the synthetic dataspace
//    (workload::Generate → AddFileSystem/AddImap/AddRss) or generates
//    traffic from per-actor seeded RNG streams under an open- or
//    closed-loop arrival model.
//  - Events are processed in (time, actor, seq) order. Substrate mutations
//    run serially at their virtual arrival time; query ops accumulate into
//    batches that execute concurrently on a util::ThreadPool
//    (Dataspace::Query is const and internally synchronized), then flow
//    through the virtual admission gate in arrival order.
//  - The gate mirrors iql::AdmissionController's policy — capacity slots,
//    bounded FIFO queue, wait timeout — but measures waits on the SimClock.
//    The real gate's condition-variable waits are wall-clock and therefore
//    nondeterministic by construction; the virtual gate makes shed counts
//    and queue waits a pure function of (spec, seed).
//
// Determinism contract: the RunReport's non-wall fields are byte-identical
// across runs and across thread counts. Query service times are modeled
// from thread-invariant result features (row count, expansion work — the
// §8 differential suite pins those byte-identical across threads); degraded
// queries are charged their step budget, because the partial prefix an
// overrunning evaluation reaches *is* thread-dependent. Mutation service
// times are the SimClock access charges the substrates apply themselves.

#ifndef IDM_LOADGEN_ORCHESTRATOR_H_
#define IDM_LOADGEN_ORCHESTRATOR_H_

#include <memory>
#include <vector>

#include "loadgen/actors.h"
#include "loadgen/metrics.h"
#include "loadgen/spec.h"
#include "util/clock.h"
#include "util/result.h"

namespace idm::loadgen {

/// Admission control in virtual time: iql::AdmissionController's policy
/// (capacity concurrent slots, at most `queue` waiters, each waiting at
/// most `timeout`) evaluated against simulated timestamps. Offers must
/// arrive in non-decreasing virtual time; slot state persists across
/// phases, so a recovery phase drains the spike's backlog realistically.
class VirtualAdmissionGate {
 public:
  struct Options {
    size_t capacity = 0;  ///< 0 disables the gate (every op admitted)
    size_t queue = 0;
    Micros timeout = 0;
  };

  struct Decision {
    bool admitted = true;
    bool queue_full = false;  ///< shed reason when !admitted
    Micros wait = 0;          ///< queue wait (admitted) or time-to-shed
  };

  explicit VirtualAdmissionGate(Options options) : options_(options) {}

  /// Offers an op arriving at \p now needing \p service simulated micros.
  /// When admitted, a slot is reserved for [now + wait, now + wait +
  /// service).
  Decision Offer(Micros now, Micros service);

 private:
  Options options_;
  std::vector<Micros> slot_free_;     ///< per-slot busy-until timestamps
  std::vector<Micros> queued_until_;  ///< start times of waiting ops
};

/// Runs workload specs. One orchestrator per run: Run() builds the
/// dataspace, executes the schedule, and returns the report.
class Orchestrator {
 public:
  struct Options {
    /// Overrides the spec's `threads` (0 = use the spec). The override is
    /// an execution detail: it never changes the deterministic outputs.
    size_t threads = 0;
    /// Progress lines to stderr.
    bool verbose = false;
  };

  Orchestrator() = default;
  explicit Orchestrator(Options options) : options_(options) {}

  /// Executes \p spec's schedule and returns the finalized report.
  Result<RunReport> Run(const WorkloadSpec& spec);

  /// The dataspace of the last Run(), kept alive for inspection (tests).
  iql::Dataspace* dataspace() { return ds_.get(); }

 private:
  struct RunState;

  Status RunIngestPhase(const WorkloadSpec& spec, const PhaseSpec& phase,
                        RunState* state, PhaseReport* report);
  Status RunTrafficPhase(const WorkloadSpec& spec, const PhaseSpec& phase,
                         RunState* state, PhaseReport* report);

  Options options_;
  std::unique_ptr<iql::Dataspace> ds_;
  std::shared_ptr<vfs::VirtualFileSystem> fs_;
  std::shared_ptr<email::ImapServer> imap_;
  std::shared_ptr<stream::FeedServer> feed_;
};

}  // namespace idm::loadgen

#endif  // IDM_LOADGEN_ORCHESTRATOR_H_
