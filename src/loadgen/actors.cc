#include "loadgen/actors.h"

#include "workload/generator.h"

namespace idm::loadgen {

const std::vector<CatalogQuery>& QueryCatalog() {
  // Same query shapes as bench/harness.cc's Table4Queries (kept in sync by
  // tests/loadgen/orchestrator_test.cc): the paper's evaluation mix.
  static const std::vector<CatalogQuery> kCatalog = {
      {"Q1", "\"database\""},
      {"Q2", "\"database tuning\""},
      {"Q3", "[size > 420000 and lastmodified < @12.06.2005]"},
      {"Q4", "//papers//*Vision/*[\"Franklin\"]"},
      {"Q5", "//VLDB200?//?onclusion*/*[\"systems\"]"},
      {"Q6",
       "union( //VLDB2005//*[\"documents\"], //VLDB2006//*[\"documents\"])"},
      {"Q7",
       "join( //VLDB2006//*[class=\"texref\"] as A, "
       "//VLDB2006//*[class=\"environment\"]//figure* as B, "
       "A.name=B.tuple.label)"},
      {"Q8",
       "join ( //*[class = \"emailmessage\"]//*.tex as A, "
       "//papers//*.tex as B, A.name = B.name )"},
  };
  return kCatalog;
}

uint64_t DeriveSeed(uint64_t seed, const std::string& tag, uint64_t index) {
  // FNV-1a over the tag, folded with the root seed and a SplitMix-style
  // spread of the index: distinct (tag, index) pairs get independent
  // streams; identical triples get identical streams on every platform.
  uint64_t h = seed ^ 0x9E3779B97F4A7C15ULL;
  for (char c : tag) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h ^ ((index + 1) * 0xD6E8FEB86659FD93ULL);
}

Op SampleOp(const PhaseSpec& phase, Rng* rng) {
  Op op;
  uint64_t total = 0;
  for (const auto& [kind, weight] : phase.mix) total += weight;
  uint64_t pick = rng->Uniform(total);
  for (const auto& [kind, weight] : phase.mix) {
    if (pick < weight) {
      op.kind = kind;
      break;
    }
    pick -= weight;
  }
  if (op.kind >= OpKind::kQueryQ1 && op.kind <= OpKind::kQueryQ8) {
    op.query_index = static_cast<size_t>(op.kind) -
                     static_cast<size_t>(OpKind::kQueryQ1);
  } else if (op.kind == OpKind::kQueryAny) {
    op.query_index = rng->Uniform(QueryCatalog().size());
  } else if (op.kind >= OpKind::kSubscribeQ1 &&
             op.kind <= OpKind::kSubscribeQ8) {
    op.query_index = static_cast<size_t>(op.kind) -
                     static_cast<size_t>(OpKind::kSubscribeQ1);
  } else if (op.kind == OpKind::kSubscribeAny) {
    op.query_index = rng->Uniform(QueryCatalog().size());
  }
  op.salt = rng->Next();
  return op;
}

namespace {

/// The note files vfs.write/vfs.remove cycle through: a bounded namespace
/// so churn produces a mix of creates, overwrites, and removes.
std::string NotePath(uint64_t salt) {
  return "/loadgen/notes/note_" + std::to_string(salt % 199) + ".txt";
}

Status MailSend(const Substrates& subs, Rng* rng, size_t count) {
  workload::TextGenerator text(rng);
  for (size_t i = 0; i < count; ++i) {
    email::Message message;
    message.from = "loadgen@example.com";
    message.to.push_back("owner@example.com");
    message.subject = "[loadgen] " + text.Words(4);
    // The marker lands in the body too: the content index covers message
    // bodies, so tests can assert "loadgen" mail became query-visible.
    message.body = "loadgen " + text.Words(30 + rng->Uniform(50));
    message.date = subs.ds->clock()->NowMicros();
    auto uid = subs.imap->Append("INBOX", std::move(message));
    if (!uid.ok()) return uid.status();
  }
  return Status::OK();
}

Status VfsWrite(const Substrates& subs, Rng* rng, uint64_t salt) {
  IDM_RETURN_NOT_OK(subs.fs->CreateFolder("/loadgen/notes"));
  workload::TextGenerator text(rng);
  return subs.fs->WriteFile(NotePath(salt),
                            text.Words(20 + rng->Uniform(40)));
}

Status VfsRemove(const Substrates& subs, uint64_t salt) {
  std::string path = NotePath(salt);
  if (!subs.fs->Exists(path)) return Status::OK();  // nothing to churn yet
  return subs.fs->Remove(path);
}

}  // namespace

Status ExecuteMutation(const Op& op, const Substrates& subs) {
  if (subs.ds == nullptr || subs.fs == nullptr || subs.imap == nullptr ||
      subs.feed == nullptr) {
    return Status::FailedPrecondition(
        "mutation before the ingest phase registered the substrates");
  }
  Rng rng(op.salt);
  switch (op.kind) {
    case OpKind::kMailSend:
      return MailSend(subs, &rng, 1);
    case OpKind::kMailBurst:
      return MailSend(subs, &rng, 2 + rng.Uniform(5));
    case OpKind::kRssTick: {
      workload::TextGenerator text(&rng);
      stream::FeedItem item;
      item.title = text.Words(5);
      item.link = "http://dbworld.example.com/item/" +
                  std::to_string(op.salt % 100000);
      item.description = text.Words(15);
      item.date = subs.ds->clock()->NowMicros();
      subs.feed->Publish(std::move(item));
      return Status::OK();
    }
    case OpKind::kVfsWrite:
      return VfsWrite(subs, &rng, op.salt);
    case OpKind::kVfsRemove:
      return VfsRemove(subs, op.salt);
    case OpKind::kVfsChurn: {
      uint64_t dice = rng.Uniform(4);
      if (dice < 2) return VfsWrite(subs, &rng, rng.Next());
      if (dice == 2) return VfsRemove(subs, rng.Next());
      IDM_RETURN_NOT_OK(
          subs.fs->CreateFolder("/loadgen/dir_" +
                                std::to_string(rng.Uniform(37))));
      return VfsWrite(subs, &rng, rng.Next());
    }
    case OpKind::kSyncPoll: {
      auto stats = subs.ds->sync().Poll();
      return stats.status();
    }
    default:
      return Status::InvalidArgument("not a mutation op: " +
                                     std::string(OpKindName(op.kind)));
  }
}

}  // namespace idm::loadgen
