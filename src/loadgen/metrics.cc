#include "loadgen/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace idm::loadgen {

namespace {

Micros NearestRank(const std::vector<Micros>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t i = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[i];
}

}  // namespace

LatencyStats ComputeLatencyStats(std::vector<Micros>* samples) {
  LatencyStats stats;
  stats.count = samples->size();
  if (samples->empty()) return stats;
  std::sort(samples->begin(), samples->end());
  stats.p50 = NearestRank(*samples, 0.50);
  stats.p99 = NearestRank(*samples, 0.99);
  stats.p999 = NearestRank(*samples, 0.999);
  stats.max = samples->back();
  return stats;
}

void RunReport::Finalize() {
  total_issued = total_served = total_shed = total_degraded = total_failed =
      0;
  for (PhaseReport& phase : phases) {
    if (!phase.latencies.empty() || phase.latency.count == 0) {
      phase.latency = ComputeLatencyStats(&phase.latencies);
      phase.latencies.clear();
      phase.latencies.shrink_to_fit();
    }
    total_issued += phase.issued;
    total_served += phase.served;
    total_shed += phase.shed_queue_full + phase.shed_timeout;
    total_degraded += phase.degraded;
    total_failed += phase.failed;
  }
}

std::string RunReport::ToJson(bool include_wall) const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"loadgen\",\n";
  out << "  \"meta\": {\"workload\": \"" << workload << "\", \"seed\": "
      << seed << ", \"scale\": \"" << scale << "\"},\n";
  out << "  \"totals\": {\"issued\": " << total_issued << ", \"served\": "
      << total_served << ", \"shed\": " << total_shed << ", \"degraded\": "
      << total_degraded << ", \"failed\": " << total_failed << "},\n";
  out << "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseReport& p = phases[i];
    out << "    {\"phase\": \"" << p.name << "\", \"sim_ms\": "
        << (p.sim_end - p.sim_start) / 1000 << ", \"issued\": " << p.issued
        << ", \"served\": " << p.served << ", \"shed_queue_full\": "
        << p.shed_queue_full << ", \"shed_timeout\": " << p.shed_timeout
        << ", \"degraded\": " << p.degraded << ", \"failed\": " << p.failed
        << ", \"rows\": " << p.rows << ",\n";
    out << "     \"p50_us\": " << p.latency.p50 << ", \"p99_us\": "
        << p.latency.p99 << ", \"p999_us\": " << p.latency.p999
        << ", \"max_us\": " << p.latency.max << ",\n";
    out << "     \"mix\": {";
    bool first = true;
    for (const auto& [kind, count] : p.mix) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << kind << "\": " << count;
    }
    out << "}}" << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (include_wall) {
    out << ",\n  \"wall\": {\"threads\": " << threads
        << ", \"elapsed_seconds\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", wall_seconds);
    out << buf << ", \"pool_executed\": " << pool.executed
        << ", \"pool_inline\": " << pool.inline_tasks << ", \"phase_ms\": [";
    for (size_t i = 0; i < phases.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.1f", phases[i].wall_ms);
      out << (i ? ", " : "") << buf;
    }
    out << "]}";
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.4f", cache_survival_rate);
    out << ",\n  \"cache\": {\"hits\": " << cache_hits << ", \"misses\": "
        << cache_misses << ", \"stale_skipped\": " << cache_stale_skipped
        << ", \"footprint_survived\": " << cache_footprint_survived
        << ", \"survival_rate\": " << rate << "}";
  }
  out << "\n}\n";
  return out.str();
}

bool WriteReportJson(const std::string& path, const RunReport& report,
                     bool include_wall) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[loadgen] cannot write %s\n", path.c_str());
    return false;
  }
  std::string json = report.ToJson(include_wall);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[loadgen] wrote %s (%zu phases)\n", path.c_str(),
               report.phases.size());
  return true;
}

}  // namespace idm::loadgen
