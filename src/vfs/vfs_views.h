// Instantiation of the files&folders data model in iDM (paper §3.2).
//
// Each filesystem node is exposed as a lazy resource view:
//   V^file   = (η=N_f, τ=(W_FS, T_f), χ=C_f)
//   V^folder = (η=N_F, τ=(W_FS, T_F), γ=({children}, ⟨⟩))
// Folder links become folder-class views whose γ points at the view of the
// link target — which is what makes the resource view graph cyclic in the
// paper's 'All Projects' example.
//
// Views are adapters: components are fetched from the filesystem on demand
// (paper §4.1); the view URI is "vfs:<path>", so repeated instantiations of
// the same node are identity-equal for traversal purposes.

#ifndef IDM_VFS_VFS_VIEWS_H_
#define IDM_VFS_VFS_VIEWS_H_

#include <memory>
#include <string>

#include "core/resource_view.h"
#include "vfs/vfs.h"

namespace idm::vfs {

/// URI of the view representing \p path, i.e. "vfs:" + normalized path.
std::string VfsUri(const std::string& path);

/// Creates the lazy resource view for the node at \p path. The node must
/// exist at call time; its components re-read the filesystem on access.
/// Folder children (including links) are instantiated lazily.
Result<core::ViewPtr> MakeVfsView(std::shared_ptr<VirtualFileSystem> fs,
                                  const std::string& path);

}  // namespace idm::vfs

#endif  // IDM_VFS_VFS_VIEWS_H_
