#include "vfs/vfs.h"

#include "util/string_util.h"

namespace idm::vfs {

struct VirtualFileSystem::Node {
  std::string name;
  NodeType type = NodeType::kFolder;
  NodeMetadata meta;
  std::string content;      // files only
  std::string link_target;  // links only
  std::map<std::string, std::unique_ptr<Node>> children;  // folders only
};

namespace {
constexpr int64_t kFolderSize = 4096;  // conventional directory entry size
}

VirtualFileSystem::VirtualFileSystem(Clock* clock, LatencyModel latency)
    : root_(std::make_unique<Node>()), clock_(clock), latency_(latency) {
  root_->name = "/";
  root_->type = NodeType::kFolder;
  root_->meta.size = kFolderSize;
  root_->meta.created = root_->meta.modified = Now();
}

VirtualFileSystem::~VirtualFileSystem() = default;

Micros VirtualFileSystem::Now() const {
  return clock_ != nullptr ? clock_->NowMicros() : 0;
}

void VirtualFileSystem::Charge(uint64_t bytes) const {
  ++op_count_;
  Micros cost = latency_.per_op_micros +
                static_cast<Micros>(latency_.micros_per_kilobyte *
                                    (static_cast<double>(bytes) / 1024.0));
  access_micros_ += cost;
  if (clock_ != nullptr) clock_->AdvanceMicros(cost);
}

void VirtualFileSystem::Emit(FsEvent::Kind kind, const std::string& path) {
  FsEvent event{kind, path};
  for (const auto& cb : subscribers_) cb(event);
}

std::string VirtualFileSystem::NormalizePath(const std::string& path) {
  std::string out = "/";
  for (const auto& part : SplitSkipEmpty(path, '/')) {
    if (out.size() > 1) out += '/';
    out += part;
  }
  return out;
}

const VirtualFileSystem::Node* VirtualFileSystem::Find(
    const std::string& path) const {
  const Node* cur = root_.get();
  for (const auto& part : SplitSkipEmpty(NormalizePath(path), '/')) {
    if (cur->type != NodeType::kFolder) return nullptr;
    auto it = cur->children.find(part);
    if (it == cur->children.end()) return nullptr;
    cur = it->second.get();
  }
  return cur;
}

VirtualFileSystem::Node* VirtualFileSystem::FindMutable(
    const std::string& path) {
  return const_cast<Node*>(Find(path));
}

Status VirtualFileSystem::CreateFolder(const std::string& path) {
  Charge(0);
  std::string normalized = NormalizePath(path);
  Node* cur = root_.get();
  std::string so_far;
  for (const auto& part : SplitSkipEmpty(normalized, '/')) {
    so_far += '/' + part;
    auto it = cur->children.find(part);
    if (it == cur->children.end()) {
      auto node = std::make_unique<Node>();
      node->name = part;
      node->type = NodeType::kFolder;
      node->meta.size = kFolderSize;
      node->meta.created = node->meta.modified = Now();
      Node* raw = node.get();
      cur->children.emplace(part, std::move(node));
      cur->meta.modified = Now();
      Emit(FsEvent::Kind::kCreated, NormalizePath(so_far));
      cur = raw;
    } else {
      if (it->second->type != NodeType::kFolder) {
        return Status::AlreadyExists("'" + so_far + "' exists and is not a folder");
      }
      cur = it->second.get();
    }
  }
  return Status::OK();
}

Status VirtualFileSystem::WriteFile(const std::string& path,
                                    std::string content) {
  std::string normalized = NormalizePath(path);
  if (normalized == "/") return Status::InvalidArgument("cannot write to '/'");
  Charge(content.size());
  auto parts = SplitSkipEmpty(normalized, '/');
  std::string base = parts.back();
  parts.pop_back();
  Node* parent = FindMutable("/" + Join(parts, "/"));
  if (parent == nullptr || parent->type != NodeType::kFolder) {
    return Status::NotFound("parent folder of '" + normalized +
                            "' does not exist");
  }
  auto it = parent->children.find(base);
  if (it != parent->children.end()) {
    Node* node = it->second.get();
    if (node->type != NodeType::kFile) {
      return Status::AlreadyExists("'" + normalized + "' exists and is not a file");
    }
    node->content = std::move(content);
    node->meta.size = static_cast<int64_t>(node->content.size());
    node->meta.modified = Now();
    Emit(FsEvent::Kind::kModified, normalized);
    return Status::OK();
  }
  auto node = std::make_unique<Node>();
  node->name = base;
  node->type = NodeType::kFile;
  node->content = std::move(content);
  node->meta.size = static_cast<int64_t>(node->content.size());
  node->meta.created = node->meta.modified = Now();
  parent->children.emplace(base, std::move(node));
  parent->meta.modified = Now();
  Emit(FsEvent::Kind::kCreated, normalized);
  return Status::OK();
}

Status VirtualFileSystem::CreateLink(const std::string& path,
                                     const std::string& target) {
  std::string normalized = NormalizePath(path);
  if (normalized == "/") return Status::InvalidArgument("cannot link at '/'");
  Charge(0);
  auto parts = SplitSkipEmpty(normalized, '/');
  std::string base = parts.back();
  parts.pop_back();
  Node* parent = FindMutable("/" + Join(parts, "/"));
  if (parent == nullptr || parent->type != NodeType::kFolder) {
    return Status::NotFound("parent folder of '" + normalized +
                            "' does not exist");
  }
  if (parent->children.count(base) > 0) {
    return Status::AlreadyExists("'" + normalized + "' already exists");
  }
  auto node = std::make_unique<Node>();
  node->name = base;
  node->type = NodeType::kLink;
  node->link_target = NormalizePath(target);
  node->meta.size = kFolderSize;
  node->meta.created = node->meta.modified = Now();
  parent->children.emplace(base, std::move(node));
  parent->meta.modified = Now();
  Emit(FsEvent::Kind::kCreated, normalized);
  return Status::OK();
}

Status VirtualFileSystem::Remove(const std::string& path) {
  std::string normalized = NormalizePath(path);
  if (normalized == "/") return Status::InvalidArgument("cannot remove '/'");
  Charge(0);
  auto parts = SplitSkipEmpty(normalized, '/');
  std::string base = parts.back();
  parts.pop_back();
  Node* parent = FindMutable("/" + Join(parts, "/"));
  if (parent == nullptr || parent->children.count(base) == 0) {
    return Status::NotFound("'" + normalized + "' does not exist");
  }
  parent->children.erase(base);
  parent->meta.modified = Now();
  Emit(FsEvent::Kind::kRemoved, normalized);
  return Status::OK();
}

Result<NodeInfo> VirtualFileSystem::Stat(const std::string& path) const {
  Charge(0);
  const Node* node = Find(path);
  if (node == nullptr) {
    return Status::NotFound("'" + NormalizePath(path) + "' does not exist");
  }
  NodeInfo info;
  info.type = node->type;
  info.meta = node->meta;
  info.link_target = node->link_target;
  return info;
}

Result<std::vector<std::string>> VirtualFileSystem::List(
    const std::string& path) const {
  Charge(0);
  const Node* node = Find(path);
  if (node == nullptr) {
    return Status::NotFound("'" + NormalizePath(path) + "' does not exist");
  }
  if (node->type != NodeType::kFolder) {
    return Status::FailedPrecondition("'" + NormalizePath(path) +
                                      "' is not a folder");
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) names.push_back(name);
  return names;
}

Result<std::string> VirtualFileSystem::ReadFile(const std::string& path) const {
  const Node* node = Find(path);
  if (node == nullptr) {
    return Status::NotFound("'" + NormalizePath(path) + "' does not exist");
  }
  if (node->type != NodeType::kFile) {
    return Status::FailedPrecondition("'" + NormalizePath(path) +
                                      "' is not a file");
  }
  Charge(node->content.size());
  return node->content;
}

bool VirtualFileSystem::Exists(const std::string& path) const {
  return Find(path) != nullptr;
}

Result<std::string> VirtualFileSystem::ResolveLink(
    const std::string& path) const {
  std::string cur = NormalizePath(path);
  for (int hops = 0; hops < 16; ++hops) {
    const Node* node = Find(cur);
    if (node == nullptr) {
      return Status::NotFound("link chain dangles at '" + cur + "'");
    }
    if (node->type != NodeType::kLink) return cur;
    cur = node->link_target;
  }
  return Status::FailedPrecondition("link chain from '" +
                                    NormalizePath(path) + "' is too deep");
}

void VirtualFileSystem::Subscribe(
    std::function<void(const FsEvent&)> callback) {
  subscribers_.push_back(std::move(callback));
}

void VirtualFileSystem::AccumulateStats(const Node* node, uint64_t* bytes,
                                        size_t* count) {
  ++*count;
  if (node->type == NodeType::kFile) *bytes += node->content.size();
  for (const auto& [name, child] : node->children) {
    AccumulateStats(child.get(), bytes, count);
  }
}

uint64_t VirtualFileSystem::TotalContentBytes() const {
  uint64_t bytes = 0;
  size_t count = 0;
  AccumulateStats(root_.get(), &bytes, &count);
  return bytes;
}

size_t VirtualFileSystem::NodeCount() const {
  uint64_t bytes = 0;
  size_t count = 0;
  AccumulateStats(root_.get(), &bytes, &count);
  return count - 1;  // exclude the root itself
}

}  // namespace idm::vfs
