#include "vfs/vfs_views.h"

#include "core/view_class.h"
#include "util/string_util.h"

namespace idm::vfs {

using core::ContentComponent;
using core::FileSystemSchema;
using core::FunctionalResourceView;
using core::GroupComponent;
using core::TupleComponent;
using core::Value;
using core::ViewPtr;

std::string VfsUri(const std::string& path) {
  return "vfs:" + VirtualFileSystem::NormalizePath(path);
}

namespace {

std::string BaseName(const std::string& normalized) {
  if (normalized == "/") return "/";
  auto parts = SplitSkipEmpty(normalized, '/');
  return parts.back();
}

TupleComponent FsTuple(const NodeMetadata& meta) {
  return TupleComponent::MakeUnchecked(
      FileSystemSchema(),
      {Value::Int(meta.size), Value::Date(meta.created),
       Value::Date(meta.modified)});
}

ViewPtr MakeViewUnchecked(std::shared_ptr<VirtualFileSystem> fs,
                          const std::string& path, NodeType type) {
  std::string normalized = VirtualFileSystem::NormalizePath(path);
  FunctionalResourceView::Providers providers;

  providers.name = [normalized]() { return BaseName(normalized); };
  providers.tuple = [fs, normalized]() {
    auto info = fs->Stat(normalized);
    return info.ok() ? FsTuple(info->meta) : TupleComponent();
  };

  const char* class_name = "file";
  switch (type) {
    case NodeType::kFile:
      class_name = "file";
      providers.content = [fs, normalized]() {
        // χ = C_f, materialized lazily from the filesystem on first read.
        return ContentComponent::OfLazy([fs, normalized]() {
          auto content = fs->ReadFile(normalized);
          return content.ok() ? std::move(content).value() : std::string();
        });
      };
      break;
    case NodeType::kFolder:
      class_name = "folder";
      providers.group = [fs, normalized]() {
        // γ.S = the views of the children, computed on demand.
        return GroupComponent::OfLazySet([fs, normalized]() {
          std::vector<ViewPtr> children;
          auto names = fs->List(normalized);
          if (!names.ok()) return children;
          for (const std::string& name : *names) {
            std::string child_path =
                normalized == "/" ? "/" + name : normalized + "/" + name;
            auto child = MakeVfsView(fs, child_path);
            if (child.ok()) children.push_back(std::move(child).value());
          }
          return children;
        });
      };
      break;
    case NodeType::kLink:
      // A folder link is itself a folder-class view whose γ contains the
      // target's view (paper §2.3: V_All Projects → V_Projects).
      class_name = "folder";
      providers.group = [fs, normalized]() {
        return GroupComponent::OfLazySet([fs, normalized]() {
          std::vector<ViewPtr> out;
          auto target = fs->ResolveLink(normalized);
          if (!target.ok()) return out;  // dangling link: γ = (∅, ⟨⟩)
          auto view = MakeVfsView(fs, *target);
          if (view.ok()) out.push_back(std::move(view).value());
          return out;
        });
      };
      break;
  }
  return std::make_shared<FunctionalResourceView>(VfsUri(normalized),
                                                  class_name,
                                                  std::move(providers));
}

}  // namespace

Result<ViewPtr> MakeVfsView(std::shared_ptr<VirtualFileSystem> fs,
                            const std::string& path) {
  IDM_ASSIGN_OR_RETURN(NodeInfo info, fs->Stat(path));
  return MakeViewUnchecked(std::move(fs), path, info.type);
}

}  // namespace idm::vfs
