// In-memory virtual filesystem: the files&folders substrate (paper §3.2).
//
// The paper's evaluation indexes a real NTFS volume; this implementation
// substitutes a deterministic in-memory filesystem that carries the same
// per-node metadata schema W_FS (size, creation time, last modified time),
// supports folder links (which make the files&folders graph cyclic, as in
// the paper's 'All Projects' example), emits change-notification events for
// the Synchronization Manager, and charges a configurable access-latency
// model to a simulated clock so that data-source access cost can be
// accounted (paper Fig. 5).

#ifndef IDM_VFS_VFS_H_
#define IDM_VFS_VFS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/result.h"

namespace idm::vfs {

/// Node kinds. Links are folder links: named references to another path
/// (the paper's 'All Projects' → '/Projects').
enum class NodeType { kFile, kFolder, kLink };

/// Per-node W_FS metadata.
struct NodeMetadata {
  int64_t size = 0;          ///< bytes for files; 4096 for folders/links
  Micros created = 0;        ///< creation time
  Micros modified = 0;       ///< last modified time
};

/// Stat() result.
struct NodeInfo {
  NodeType type = NodeType::kFile;
  NodeMetadata meta;
  std::string link_target;   ///< absolute target path for links
};

/// A change notification (paper §5.2: the Synchronization Manager subscribes
/// to file events where the source supports them).
struct FsEvent {
  enum class Kind { kCreated, kModified, kRemoved };
  Kind kind;
  std::string path;
};

/// Cost model charged to the clock on every filesystem operation. Defaults
/// approximate a local IDE disk of the paper's era: cheap per operation,
/// with a modest per-byte cost on reads.
struct LatencyModel {
  Micros per_op_micros = 20;
  double micros_per_kilobyte = 8.0;
};

/// The virtual filesystem. Not thread-safe; callers serialize access (the
/// PDSMS pipeline is single-threaded per source).
class VirtualFileSystem {
 public:
  /// \p clock is charged per the latency model; it must outlive the
  /// filesystem. Pass nullptr to disable latency accounting.
  explicit VirtualFileSystem(Clock* clock = nullptr, LatencyModel latency = {});
  ~VirtualFileSystem();  // out-of-line: Node is incomplete here

  /// Creates a folder, creating missing intermediate folders (mkdir -p).
  /// Fails with AlreadyExists if a *file* occupies the path; an existing
  /// folder at the full path is OK (idempotent).
  Status CreateFolder(const std::string& path);

  /// Creates or overwrites a file. The parent folder must exist.
  Status WriteFile(const std::string& path, std::string content);

  /// Creates a folder link at \p path pointing at absolute \p target.
  /// The target need not exist yet (dangling links resolve to nothing).
  Status CreateLink(const std::string& path, const std::string& target);

  /// Removes a file, link, or folder (recursively). Fails on "/".
  Status Remove(const std::string& path);

  /// Node metadata; NotFound for missing paths.
  Result<NodeInfo> Stat(const std::string& path) const;

  /// Child names of a folder, in deterministic (lexicographic) order.
  Result<std::vector<std::string>> List(const std::string& path) const;

  /// Full content of a file. Charges per-byte read latency.
  Result<std::string> ReadFile(const std::string& path) const;

  bool Exists(const std::string& path) const;

  /// Resolves a link chain starting at \p path (at most 16 hops to bound
  /// cycles); non-link paths resolve to themselves. NotFound when the
  /// chain dangles.
  Result<std::string> ResolveLink(const std::string& path) const;

  /// Subscribes to change events; callbacks run synchronously inside the
  /// mutating call.
  void Subscribe(std::function<void(const FsEvent&)> callback);

  /// --- accounting --------------------------------------------------------
  /// Total simulated microseconds charged for access so far.
  Micros access_micros() const { return access_micros_; }
  /// Number of filesystem operations performed.
  uint64_t op_count() const { return op_count_; }
  /// Sum of file content bytes (folders count 0).
  uint64_t TotalContentBytes() const;
  /// Number of nodes, excluding the root folder.
  size_t NodeCount() const;

  /// Normalizes a path: ensures a single leading '/', collapses repeated
  /// separators, strips a trailing separator. "" and "/" both normalize
  /// to "/".
  static std::string NormalizePath(const std::string& path);

 private:
  struct Node;
  static void AccumulateStats(const Node* node, uint64_t* bytes, size_t* count);
  const Node* Find(const std::string& path) const;
  Node* FindMutable(const std::string& path);
  void Charge(uint64_t bytes) const;
  void Emit(FsEvent::Kind kind, const std::string& path);
  Micros Now() const;

  std::unique_ptr<Node> root_;
  Clock* clock_;
  LatencyModel latency_;
  std::vector<std::function<void(const FsEvent&)>> subscribers_;
  mutable Micros access_micros_ = 0;
  mutable uint64_t op_count_ = 0;
};

}  // namespace idm::vfs

#endif  // IDM_VFS_VFS_H_
