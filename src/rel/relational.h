// Minimal relational substrate and its iDM instantiation (paper §3,
// Table 1 rows 3-5):
//   tuple:    V = (τ=(W_R, t_i))
//   relation: V = (η=N_R, γ=({V^tuple...}, ⟨⟩))
//   reldb:    V = (η=N_DB, γ=({V^relation...}, ⟨⟩))
// The schema W_R is defined once per relation but, per iDM's definition of
// τ, travels with every tuple view.

#ifndef IDM_REL_RELATIONAL_H_
#define IDM_REL_RELATIONAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/resource_view.h"
#include "util/result.h"

namespace idm::rel {

/// A named relation: schema plus a bag of rows (insertion order kept).
class Relation {
 public:
  Relation(std::string name, core::Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const core::Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  const std::vector<core::Value>& row(size_t i) const { return rows_[i]; }

  /// Appends a row after validating arity and domains against the schema.
  Status Insert(std::vector<core::Value> row);

  /// Rows whose attribute \p attr equals \p value (simple scan).
  std::vector<size_t> Select(const std::string& attr,
                             const core::Value& value) const;

 private:
  std::string name_;
  core::Schema schema_;
  std::vector<std::vector<core::Value>> rows_;
};

/// A named collection of relations.
class RelationalDb {
 public:
  explicit RelationalDb(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates a relation; AlreadyExists on duplicates.
  Result<Relation*> CreateRelation(const std::string& relation_name,
                                   core::Schema schema);

  /// Lookup; nullptr when absent.
  Relation* Find(const std::string& relation_name);
  const Relation* Find(const std::string& relation_name) const;

  /// Relation names in creation order.
  std::vector<std::string> RelationNames() const { return order_; }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::vector<std::string> order_;
};

/// Instantiates one tuple of \p relation as a tuple-class resource view.
/// URI: "rel:<db>/<relation>/<row>".
core::ViewPtr MakeTupleView(const std::string& db_name,
                            const Relation& relation, size_t row_index);

/// Instantiates \p relation as a relation-class view whose group set holds
/// the tuple views (built lazily). The relation must outlive the view.
core::ViewPtr MakeRelationView(const std::string& db_name,
                               const Relation& relation);

/// Instantiates the whole database as a reldb-class view. The database must
/// outlive the view.
core::ViewPtr MakeRelDbView(const RelationalDb& db);

}  // namespace idm::rel

#endif  // IDM_REL_RELATIONAL_H_
