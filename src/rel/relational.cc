#include "rel/relational.h"

namespace idm::rel {

using core::GroupComponent;
using core::TupleComponent;
using core::Value;
using core::ViewBuilder;
using core::ViewPtr;

Status Relation::Insert(std::vector<Value> row) {
  // TupleComponent::Make performs exactly the arity/domain validation the
  // relational model requires; reuse it and discard the component.
  IDM_ASSIGN_OR_RETURN(TupleComponent checked,
                       TupleComponent::Make(schema_, std::move(row)));
  rows_.push_back(checked.values());
  return Status::OK();
}

std::vector<size_t> Relation::Select(const std::string& attr,
                                     const Value& value) const {
  std::vector<size_t> out;
  auto idx = schema_.IndexOf(attr);
  if (!idx.has_value()) return out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i][*idx] == value) out.push_back(i);
  }
  return out;
}

Result<Relation*> RelationalDb::CreateRelation(const std::string& relation_name,
                                               core::Schema schema) {
  if (relations_.count(relation_name) > 0) {
    return Status::AlreadyExists("relation '" + relation_name +
                                 "' already exists in '" + name_ + "'");
  }
  auto rel = std::make_unique<Relation>(relation_name, std::move(schema));
  Relation* raw = rel.get();
  relations_.emplace(relation_name, std::move(rel));
  order_.push_back(relation_name);
  return raw;
}

Relation* RelationalDb::Find(const std::string& relation_name) {
  auto it = relations_.find(relation_name);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* RelationalDb::Find(const std::string& relation_name) const {
  auto it = relations_.find(relation_name);
  return it == relations_.end() ? nullptr : it->second.get();
}

ViewPtr MakeTupleView(const std::string& db_name, const Relation& relation,
                      size_t row_index) {
  return ViewBuilder("rel:" + db_name + "/" + relation.name() + "/" +
                     std::to_string(row_index))
      .Class("tuple")
      .Tuple(TupleComponent::MakeUnchecked(relation.schema(),
                                           relation.row(row_index)))
      .Build();
}

ViewPtr MakeRelationView(const std::string& db_name, const Relation& relation) {
  const Relation* rel = &relation;
  return ViewBuilder("rel:" + db_name + "/" + relation.name())
      .Class("relation")
      .Name(relation.name())
      .Group(GroupComponent::OfLazySet([db_name, rel]() {
        std::vector<ViewPtr> tuples;
        tuples.reserve(rel->size());
        for (size_t i = 0; i < rel->size(); ++i) {
          tuples.push_back(MakeTupleView(db_name, *rel, i));
        }
        return tuples;
      }))
      .Build();
}

ViewPtr MakeRelDbView(const RelationalDb& db) {
  const RelationalDb* db_ptr = &db;
  return ViewBuilder("rel:" + db.name())
      .Class("reldb")
      .Name(db.name())
      .Group(GroupComponent::OfLazySet([db_ptr]() {
        std::vector<ViewPtr> relations;
        for (const std::string& name : db_ptr->RelationNames()) {
          const Relation* rel = db_ptr->Find(name);
          if (rel != nullptr) {
            relations.push_back(MakeRelationView(db_ptr->name(), *rel));
          }
        }
        return relations;
      }))
      .Build();
}

}  // namespace idm::rel
