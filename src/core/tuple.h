// The τ (tuple) component of a resource view (paper §2.2).
//
// τ = (W, T): W is a per-view schema (a sequence of named, typed attributes)
// and T is one single tuple conforming to W. Unlike the relational model the
// schema travels with each tuple; sets of views sharing a schema are
// expressed via resource view classes (§3).

#ifndef IDM_CORE_TUPLE_H_
#define IDM_CORE_TUPLE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/value.h"
#include "util/result.h"

namespace idm::core {

/// One attribute of a schema: the name of a role played by a domain.
struct Attribute {
  std::string name;
  Domain domain = Domain::kNull;

  bool operator==(const Attribute& other) const = default;
};

/// W: an ordered sequence of attributes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  /// Fluent construction: Schema().Add("size", Domain::kInt)...
  Schema& Add(std::string name, Domain domain) {
    attrs_.push_back({std::move(name), domain});
    return *this;
  }

  size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }
  const Attribute& at(size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attributes() const { return attrs_; }

  /// Position of the attribute named \p name (case-insensitive), or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const = default;

  /// "(size: int, creation time: date)" — diagnostic rendering.
  std::string ToString() const;

  size_t MemoryUsage() const;

 private:
  std::vector<Attribute> attrs_;
};

/// τ = (W, T). An empty TupleComponent (default-constructed) denotes τ = ().
class TupleComponent {
 public:
  TupleComponent() = default;

  /// Builds a tuple component, validating T against W: the arity must match
  /// and every non-null value must belong to its attribute's domain.
  static Result<TupleComponent> Make(Schema schema, std::vector<Value> values);

  /// Unchecked variant for trusted construction paths (generators, tests).
  static TupleComponent MakeUnchecked(Schema schema, std::vector<Value> values) {
    TupleComponent t;
    t.schema_ = std::move(schema);
    t.values_ = std::move(values);
    return t;
  }

  bool empty() const { return schema_.empty(); }
  const Schema& schema() const { return schema_; }
  const std::vector<Value>& values() const { return values_; }

  /// Value of the attribute named \p name (case-insensitive), or nullopt
  /// when no such attribute exists.
  std::optional<Value> Get(const std::string& name) const;

  /// "(size=4096, creation time=19/03/2005 11:54)" — diagnostic rendering.
  std::string ToString() const;

  bool operator==(const TupleComponent& other) const = default;

  size_t MemoryUsage() const;

  /// Binary serialization of (W, T), used by the tuple-index snapshot and
  /// the storage WAL. DeserializeFrom advances \p pos and returns false on
  /// truncated or malformed input.
  void SerializeTo(std::string* out) const;
  static bool DeserializeFrom(std::string_view in, size_t* pos,
                              TupleComponent* out);

 private:
  Schema schema_;
  std::vector<Value> values_;
};

}  // namespace idm::core

#endif  // IDM_CORE_TUPLE_H_
