#include "core/describe.h"

namespace idm::core {

namespace {

std::string NameOrUri(const ResourceView& view) {
  std::string name = view.GetNameComponent();
  return name.empty() ? view.uri() : name;
}

std::string DescribeRelated(const std::vector<ViewPtr>& views, size_t limit,
                            bool elide) {
  std::string out;
  for (size_t i = 0; i < views.size() && i < limit; ++i) {
    if (i > 0) out += ", ";
    out += "'" + NameOrUri(*views[i]) + "'";
  }
  if (elide || views.size() > limit) {
    if (!out.empty()) out += ", ";
    out += "...";
  }
  return out;
}

}  // namespace

std::string DescribeView(const ResourceView& view,
                         const DescribeOptions& options) {
  std::string out = "V = (";

  // η
  std::string name = view.GetNameComponent();
  out += name.empty() ? "⟨⟩" : "'" + name + "'";
  out += ", ";

  // τ
  out += view.GetTupleComponent().ToString();
  out += ", ";

  // χ
  ContentComponent content = view.GetContentComponent();
  if (content.empty()) {
    out += "⟨⟩";
  } else if (!content.finite()) {
    out += "⟨" + content.Prefix(options.max_content) + ", ...⟩_{l→∞}";
  } else {
    std::string prefix = content.Prefix(options.max_content + 1);
    bool elided = prefix.size() > options.max_content;
    if (elided) prefix.resize(options.max_content);
    out += "⟨" + prefix + (elided ? "..." : "") + "⟩";
  }
  out += ", ";

  // γ = (S, Q)
  GroupComponent group = view.GetGroupComponent();
  out += "(";
  if (!group.has_set() || group.set().empty()) {
    out += "∅";
  } else {
    out += "{" + DescribeRelated(group.set(), options.max_related, false) + "}";
  }
  out += ", ";
  if (!group.has_sequence()) {
    out += "⟨⟩";
  } else if (!group.sequence_finite()) {
    std::vector<ViewPtr> prefix;
    auto cursor = group.OpenSequence();
    for (size_t i = 0; i < options.infinite_prefix; ++i) {
      ViewPtr next = cursor->Next();
      if (next == nullptr) break;
      prefix.push_back(std::move(next));
    }
    out += "⟨" + DescribeRelated(prefix, options.max_related, true) +
           "⟩_{n→∞}";
  } else {
    auto seq = group.SequenceToVector();
    if (seq.ok() && !seq->empty()) {
      out += "⟨" + DescribeRelated(*seq, options.max_related, false) + "⟩";
    } else {
      out += "⟨⟩";
    }
  }
  out += "))";
  return out;
}

}  // namespace idm::core
