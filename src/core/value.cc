#include "core/value.h"

#include <cstdio>

namespace idm::core {

const char* DomainToString(Domain d) {
  switch (d) {
    case Domain::kNull: return "null";
    case Domain::kInt: return "int";
    case Domain::kDouble: return "double";
    case Domain::kString: return "string";
    case Domain::kBool: return "bool";
    case Domain::kDate: return "date";
  }
  return "unknown";
}

bool Value::ToNumeric(double* out) const {
  switch (domain()) {
    case Domain::kInt: *out = static_cast<double>(AsInt()); return true;
    case Domain::kDouble: *out = AsDouble(); return true;
    case Domain::kBool: *out = AsBool() ? 1.0 : 0.0; return true;
    case Domain::kDate: *out = static_cast<double>(AsDate()); return true;
    default: return false;
  }
}

std::string Value::ToString() const {
  switch (domain()) {
    case Domain::kNull: return "null";
    case Domain::kInt: return std::to_string(AsInt());
    case Domain::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case Domain::kString: return AsString();
    case Domain::kBool: return AsBool() ? "true" : "false";
    case Domain::kDate: return FormatTimestamp(AsDate());
  }
  return "";
}

int Value::Compare(const Value& other) const {
  double a = 0, b = 0;
  // Numeric domains (incl. dates) compare by value even across domains.
  if (ToNumeric(&a) && other.ToNumeric(&b)) {
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (domain() != other.domain()) {
    return static_cast<int>(domain()) < static_cast<int>(other.domain()) ? -1
                                                                         : 1;
  }
  if (domain() == Domain::kString) {
    return AsString().compare(other.AsString());
  }
  return 0;  // both null
}

size_t Value::MemoryUsage() const {
  size_t base = sizeof(Value);
  if (domain() == Domain::kString) base += AsString().capacity();
  return base;
}

}  // namespace idm::core
