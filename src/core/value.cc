#include "core/value.h"

#include <cstdio>

#include "util/codec.h"

namespace idm::core {

const char* DomainToString(Domain d) {
  switch (d) {
    case Domain::kNull: return "null";
    case Domain::kInt: return "int";
    case Domain::kDouble: return "double";
    case Domain::kString: return "string";
    case Domain::kBool: return "bool";
    case Domain::kDate: return "date";
  }
  return "unknown";
}

bool Value::ToNumeric(double* out) const {
  switch (domain()) {
    case Domain::kInt: *out = static_cast<double>(AsInt()); return true;
    case Domain::kDouble: *out = AsDouble(); return true;
    case Domain::kBool: *out = AsBool() ? 1.0 : 0.0; return true;
    case Domain::kDate: *out = static_cast<double>(AsDate()); return true;
    default: return false;
  }
}

std::string Value::ToString() const {
  switch (domain()) {
    case Domain::kNull: return "null";
    case Domain::kInt: return std::to_string(AsInt());
    case Domain::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case Domain::kString: return AsString();
    case Domain::kBool: return AsBool() ? "true" : "false";
    case Domain::kDate: return FormatTimestamp(AsDate());
  }
  return "";
}

int Value::Compare(const Value& other) const {
  double a = 0, b = 0;
  // Numeric domains (incl. dates) compare by value even across domains.
  if (ToNumeric(&a) && other.ToNumeric(&b)) {
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (domain() != other.domain()) {
    return static_cast<int>(domain()) < static_cast<int>(other.domain()) ? -1
                                                                         : 1;
  }
  if (domain() == Domain::kString) {
    return AsString().compare(other.AsString());
  }
  return 0;  // both null
}

size_t Value::MemoryUsage() const {
  size_t base = sizeof(Value);
  if (domain() == Domain::kString) base += AsString().capacity();
  return base;
}

void Value::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(domain()));
  switch (domain()) {
    case Domain::kNull: break;
    case Domain::kInt: codec::PutI64(out, AsInt()); break;
    case Domain::kDouble: codec::PutDouble(out, AsDouble()); break;
    case Domain::kString: codec::PutString(out, AsString()); break;
    case Domain::kBool: out->push_back(AsBool() ? 1 : 0); break;
    case Domain::kDate: codec::PutI64(out, AsDate()); break;
  }
}

bool Value::DeserializeFrom(std::string_view in, size_t* pos, Value* out) {
  if (*pos >= in.size()) return false;
  auto domain = static_cast<Domain>(static_cast<unsigned char>(in[(*pos)++]));
  switch (domain) {
    case Domain::kNull:
      *out = Value::Null();
      return true;
    case Domain::kInt: {
      int64_t v = 0;
      if (!codec::GetI64(in, pos, &v)) return false;
      *out = Value::Int(v);
      return true;
    }
    case Domain::kDouble: {
      double v = 0;
      if (!codec::GetDouble(in, pos, &v)) return false;
      *out = Value::Double(v);
      return true;
    }
    case Domain::kString: {
      std::string v;
      if (!codec::GetString(in, pos, &v)) return false;
      *out = Value::String(std::move(v));
      return true;
    }
    case Domain::kBool: {
      if (*pos >= in.size()) return false;
      *out = Value::Bool(in[(*pos)++] != 0);
      return true;
    }
    case Domain::kDate: {
      int64_t v = 0;
      if (!codec::GetI64(in, pos, &v)) return false;
      *out = Value::Date(v);
      return true;
    }
  }
  return false;  // unknown domain tag
}

}  // namespace idm::core
