// Atomic values and domains (paper §2.2, Definition 1, τ component).
//
// A Domain is "a set of atomic values" [Elmasri/Navathe]; iDM tuple
// components carry a sequence of atomic values, each drawn from the domain
// of the corresponding schema attribute.

#ifndef IDM_CORE_VALUE_H_
#define IDM_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/clock.h"

namespace idm::core {

/// The atomic domains supported by this iDM implementation. The paper leaves
/// domains open; we provide the ones its examples use (integers, dates,
/// strings) plus doubles and booleans for relational instantiations.
enum class Domain : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
  kDate = 5,  ///< microseconds since the Unix epoch (see util/clock.h)
};

/// Returns "int", "string", ... for diagnostics.
const char* DomainToString(Domain d);

/// A single atomic value, tagged with its domain.
///
/// Dates are stored as Micros but compare/order as their numeric value; the
/// distinct domain tag keeps "size > 42000" from silently comparing against
/// a date column.
class Value {
 public:
  /// Null value (empty component slot).
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(std::in_place_index<1>, v)); }
  static Value Double(double v) { return Value(Repr(std::in_place_index<2>, v)); }
  static Value String(std::string v) {
    return Value(Repr(std::in_place_index<3>, std::move(v)));
  }
  static Value Bool(bool v) { return Value(Repr(std::in_place_index<4>, v)); }
  static Value Date(Micros micros) {
    return Value(Repr(std::in_place_index<5>, DateRepr{micros}));
  }

  Domain domain() const { return static_cast<Domain>(repr_.index()); }
  bool is_null() const { return domain() == Domain::kNull; }

  /// Typed accessors. Calling the wrong accessor is a programming error;
  /// callers check domain() first (asserts in debug builds).
  int64_t AsInt() const { return std::get<1>(repr_); }
  double AsDouble() const { return std::get<2>(repr_); }
  const std::string& AsString() const { return std::get<3>(repr_); }
  bool AsBool() const { return std::get<4>(repr_); }
  Micros AsDate() const { return std::get<5>(repr_).micros; }

  /// Numeric view used by comparison predicates: ints, doubles, bools and
  /// dates coerce to double; strings and nulls do not (returns false).
  bool ToNumeric(double* out) const;

  /// Human-readable rendering (dates use the paper's DD/MM/YYYY HH:MM form).
  std::string ToString() const;

  /// Total ordering inside a single domain; cross-domain comparisons order
  /// by domain tag (stable but arbitrary), except numeric domains which
  /// compare by numeric value.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Approximate heap + inline footprint in bytes, for index accounting.
  size_t MemoryUsage() const;

  /// Binary serialization (domain tag + payload), used by the tuple-index
  /// snapshot and the storage WAL. Deserialize advances \p pos and returns
  /// false on truncated or malformed input.
  void SerializeTo(std::string* out) const;
  static bool DeserializeFrom(std::string_view in, size_t* pos, Value* out);

 private:
  struct DateRepr {
    Micros micros;
  };
  using Repr = std::variant<std::monostate, int64_t, double, std::string, bool,
                            DateRepr>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

}  // namespace idm::core

#endif  // IDM_CORE_VALUE_H_
