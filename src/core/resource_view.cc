#include "core/resource_view.h"

namespace idm::core {

bool IsDirectlyRelated(const ResourceView& from, const ResourceView& to,
                       size_t infinite_prefix) {
  for (const ViewPtr& v : from.GetGroupComponent().DirectlyRelated(infinite_prefix)) {
    if (v != nullptr && v->uri() == to.uri()) return true;
  }
  return false;
}

}  // namespace idm::core
