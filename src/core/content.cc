#include "core/content.h"

#include <mutex>

namespace idm::core {

// ---------------------------------------------------------------------------
// Providers

class ContentComponent::Provider {
 public:
  virtual ~Provider() = default;
  virtual bool finite() const = 0;
  virtual std::optional<size_t> SizeHint() const = 0;
  virtual std::unique_ptr<ContentReader> OpenReader() = 0;
};

namespace {

/// Reader that yields one pre-built string then ends.
class OneShotReader : public ContentReader {
 public:
  explicit OneShotReader(std::string data) : data_(std::move(data)) {}
  std::optional<std::string> NextChunk() override {
    if (done_) return std::nullopt;
    done_ = true;
    if (data_.empty()) return std::nullopt;
    return std::move(data_);
  }

 private:
  std::string data_;
  bool done_ = false;
};

}  // namespace

class ContentComponent::StringProvider : public ContentComponent::Provider {
 public:
  explicit StringProvider(std::string data) : data_(std::move(data)) {}
  bool finite() const override { return true; }
  std::optional<size_t> SizeHint() const override { return data_.size(); }
  std::unique_ptr<ContentReader> OpenReader() override {
    return std::make_unique<OneShotReader>(data_);
  }

 private:
  std::string data_;
};

class ContentComponent::LazyProvider : public ContentComponent::Provider {
 public:
  explicit LazyProvider(std::function<std::string()> thunk)
      : thunk_(std::move(thunk)) {}
  bool finite() const override { return true; }
  std::optional<size_t> SizeHint() const override {
    std::lock_guard<std::mutex> lock(mu_);
    if (cached_.has_value()) return cached_->size();
    return std::nullopt;
  }
  std::unique_ptr<ContentReader> OpenReader() override {
    return std::make_unique<OneShotReader>(Materialize());
  }

 private:
  std::string Materialize() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cached_.has_value()) {
      cached_ = thunk_();
      thunk_ = nullptr;  // release captured resources
    }
    return *cached_;
  }

  mutable std::mutex mu_;
  std::function<std::string()> thunk_;
  std::optional<std::string> cached_;
};

class ContentComponent::InfiniteProvider : public ContentComponent::Provider {
 public:
  explicit InfiniteProvider(std::function<std::string(uint64_t)> generator)
      : generator_(std::move(generator)) {}
  bool finite() const override { return false; }
  std::optional<size_t> SizeHint() const override { return std::nullopt; }
  std::unique_ptr<ContentReader> OpenReader() override {
    class GeneratorReader : public ContentReader {
     public:
      explicit GeneratorReader(std::function<std::string(uint64_t)> gen)
          : gen_(std::move(gen)) {}
      std::optional<std::string> NextChunk() override { return gen_(next_++); }

     private:
      std::function<std::string(uint64_t)> gen_;
      uint64_t next_ = 0;
    };
    return std::make_unique<GeneratorReader>(generator_);
  }

 private:
  std::function<std::string(uint64_t)> generator_;
};

// ---------------------------------------------------------------------------
// ContentComponent

ContentComponent ContentComponent::OfString(std::string data) {
  return ContentComponent(std::make_shared<StringProvider>(std::move(data)));
}

ContentComponent ContentComponent::OfLazy(std::function<std::string()> thunk) {
  return ContentComponent(std::make_shared<LazyProvider>(std::move(thunk)));
}

ContentComponent ContentComponent::OfInfinite(
    std::function<std::string(uint64_t)> generator) {
  return ContentComponent(
      std::make_shared<InfiniteProvider>(std::move(generator)));
}

bool ContentComponent::finite() const {
  return provider_ == nullptr || provider_->finite();
}

std::optional<size_t> ContentComponent::SizeHint() const {
  if (provider_ == nullptr) return 0;
  return provider_->SizeHint();
}

Result<std::string> ContentComponent::ToString() const {
  if (provider_ == nullptr) return std::string();
  if (!provider_->finite()) {
    return Status::FailedPrecondition(
        "cannot materialize an infinite content component");
  }
  std::string out;
  auto reader = provider_->OpenReader();
  while (auto chunk = reader->NextChunk()) out += *chunk;
  return out;
}

std::string ContentComponent::Prefix(size_t n) const {
  if (provider_ == nullptr || n == 0) return "";
  std::string out;
  auto reader = provider_->OpenReader();
  while (out.size() < n) {
    auto chunk = reader->NextChunk();
    if (!chunk.has_value()) break;
    out += *chunk;
  }
  if (out.size() > n) out.resize(n);
  return out;
}

std::string ContentComponent::GuardedPrefix(size_t n,
                                            util::ExecContext* ctx) const {
  if (ctx == nullptr) return Prefix(n);
  if (provider_ == nullptr || n == 0) return "";
  std::string out;
  util::ScopedCharge reservation(ctx);
  auto reader = provider_->OpenReader();
  while (out.size() < n) {
    if (!ctx->TickAlive()) break;  // one step per chunk expansion
    auto chunk = reader->NextChunk();
    if (!chunk.has_value()) break;
    if (!reservation.Add(chunk->size()).ok()) break;
    out += *chunk;
  }
  if (out.size() > n) out.resize(n);
  return out;
}

std::unique_ptr<ContentReader> ContentComponent::OpenReader() const {
  if (provider_ == nullptr) return std::make_unique<OneShotReader>("");
  return provider_->OpenReader();
}

}  // namespace idm::core
