// Service calls: the intensional-data primitive (paper §4.3).
//
// An intensional component is computed by running a query or calling a
// (possibly remote) service. The ServiceRegistry maps service names to
// handlers; the ActiveXML use-case (paper §4.3.1) resolves <sc> elements
// against it, and lazy resource view providers may capture calls into it.

#ifndef IDM_CORE_SERVICE_H_
#define IDM_CORE_SERVICE_H_

#include <functional>
#include <map>
#include <string>

#include "util/result.h"

namespace idm::core {

/// A service handler: argument string in, payload (e.g. an XML fragment)
/// out. Handlers may fail, e.g. to model an unreachable remote host.
using ServiceFn = std::function<Result<std::string>(const std::string& args)>;

/// Name → handler registry for intensional component computation.
class ServiceRegistry {
 public:
  /// Registers \p fn under \p name, replacing any previous handler.
  void Register(std::string name, ServiceFn fn) {
    services_[std::move(name)] = std::move(fn);
  }

  bool Has(const std::string& name) const { return services_.count(name) > 0; }

  /// Invokes the service. Unknown services fail with Unavailable (the
  /// remote host cannot be resolved).
  Result<std::string> Call(const std::string& name,
                           const std::string& args) const {
    auto it = services_.find(name);
    if (it == services_.end()) {
      return Status::Unavailable("service '" + name + "' is not reachable");
    }
    ++calls_;
    return it->second(args);
  }

  /// Number of successful dispatches (for lazy-evaluation tests: proves a
  /// component was or was not computed).
  uint64_t call_count() const { return calls_; }

 private:
  std::map<std::string, ServiceFn> services_;
  mutable uint64_t calls_ = 0;
};

}  // namespace idm::core

#endif  // IDM_CORE_SERVICE_H_
