// Resource view classes (paper §3.1, Definition 2).
//
// A resource view class is a set of formal restrictions on the η, τ, χ, γ
// components of the views that obey it: (1) emptiness of components,
// (2) the schema of τ, (3) finiteness of χ and of γ's S and Q, and
// (4) the classes acceptable for directly related views.
//
// Classes form generalization hierarchies: a view obeying class C also obeys
// every generalization of C. A subclass may *refine* inherited restrictions
// (e.g. `xmlfile` specializes `file` by requiring Q = ⟨V_doc^xmldoc⟩ where
// the base class leaves Q empty); refinement is expressed by the subclass
// overriding the restriction fields it sets.

#ifndef IDM_CORE_VIEW_CLASS_H_
#define IDM_CORE_VIEW_CLASS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/resource_view.h"
#include "util/status.h"

namespace idm::core {

/// Restriction on whether a component must be empty / non-empty.
enum class Presence {
  kEmpty,     ///< component must be ⟨⟩ / ()
  kNonEmpty,  ///< component must be present
  kAny,       ///< unrestricted
};

/// Restriction on finiteness of χ, S, or Q.
enum class Finiteness {
  kEmpty,     ///< must be structurally empty
  kFinite,    ///< must be present only as finite
  kInfinite,  ///< must be an infinite sequence/content
  kAny,       ///< unrestricted
};

/// The restriction fields of Definition 2. Unset fields (nullopt) are
/// inherited from the superclass; the root default is "unrestricted".
struct ClassRestrictions {
  std::optional<Presence> name;
  std::optional<Presence> tuple;
  /// Exact schema W that τ must carry (implies tuple = kNonEmpty).
  std::optional<Schema> tuple_schema;
  std::optional<Finiteness> content;
  std::optional<Finiteness> group_set;       ///< S
  std::optional<Finiteness> group_sequence;  ///< Q
  /// Classes acceptable for directly related views; a related view conforms
  /// if its class equals, or is a specialization of, any listed class.
  /// Views with no class never satisfy a non-nullopt restriction.
  std::optional<std::set<std::string>> related_classes;
};

class ClassRegistry;

/// A named resource view class with an optional superclass.
class ResourceViewClass {
 public:
  ResourceViewClass(std::string name, std::string parent,
                    ClassRestrictions restrictions)
      : name_(std::move(name)),
        parent_(std::move(parent)),
        restrictions_(std::move(restrictions)) {}

  const std::string& name() const { return name_; }
  /// Name of the direct generalization; "" for a root class.
  const std::string& parent() const { return parent_; }
  const ClassRestrictions& restrictions() const { return restrictions_; }

 private:
  std::string name_;
  std::string parent_;
  ClassRestrictions restrictions_;
};

/// Registry of resource view classes; owns the generalization hierarchy and
/// performs conformance checking.
class ClassRegistry {
 public:
  /// Registers \p cls. Fails with AlreadyExists on a duplicate name and
  /// NotFound when the declared parent is unknown (parents register first).
  Status Register(ResourceViewClass cls);

  /// Looks up a class by name; nullptr when absent.
  const ResourceViewClass* Lookup(const std::string& name) const;

  /// True iff \p cls equals \p ancestor or is a (transitive)
  /// specialization of it. Unknown names are not related to anything.
  bool IsSubclassOf(const std::string& cls, const std::string& ancestor) const;

  /// The effective restrictions of \p cls: fields set by the deepest class
  /// in the generalization chain win. Fails with NotFound on unknown class.
  Result<ClassRestrictions> EffectiveRestrictions(const std::string& cls) const;

  /// Checks that \p view conforms to the class named by its class_name().
  /// Views with no class always conform (schema-never data, paper §3.1).
  /// For infinite group sequences, only the first \p infinite_prefix
  /// elements are checked against the related-class restriction.
  Status CheckConformance(const ResourceView& view,
                          size_t infinite_prefix = 8) const;

  /// Checks conformance of \p view against an explicit class \p cls
  /// (the view's own class_name() is ignored).
  Status CheckConformanceAs(const ResourceView& view, const std::string& cls,
                            size_t infinite_prefix = 8) const;

  /// All registered class names in registration order.
  std::vector<std::string> ClassNames() const;

  /// Registry pre-populated with the paper's Table 1 classes plus the
  /// LaTeX, email, and ActiveXML classes used by this implementation:
  ///   file, folder, tuple, relation, reldb, xmltext, xmlelem, xmldoc,
  ///   xmlfile, datstream, tupstream, rssatom,
  ///   latexfile, latex_document, latex_section, latex_subsection,
  ///   latex_subsubsection, environment, figure, texref, textblock,
  ///   emailfolder, emailmessage, attachment, inboxstate, inboxstream,
  ///   axml, sc, scresult.
  static ClassRegistry Standard();

 private:
  std::map<std::string, ResourceViewClass> classes_;
  std::vector<std::string> order_;
};

/// W_FS: the filesystem-level schema shared by file/folder views
/// (paper §3.2): ⟨size: int, creation time: date, last modified time: date⟩.
const Schema& FileSystemSchema();

}  // namespace idm::core

#endif  // IDM_CORE_VIEW_CLASS_H_
