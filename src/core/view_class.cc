#include "core/view_class.h"

namespace idm::core {

const Schema& FileSystemSchema() {
  static const Schema kSchema = Schema()
                                    .Add("size", Domain::kInt)
                                    .Add("creation time", Domain::kDate)
                                    .Add("last modified time", Domain::kDate);
  return kSchema;
}

Status ClassRegistry::Register(ResourceViewClass cls) {
  if (classes_.count(cls.name()) > 0) {
    return Status::AlreadyExists("resource view class '" + cls.name() +
                                 "' is already registered");
  }
  if (!cls.parent().empty() && classes_.count(cls.parent()) == 0) {
    return Status::NotFound("superclass '" + cls.parent() + "' of '" +
                            cls.name() + "' is not registered");
  }
  order_.push_back(cls.name());
  classes_.emplace(cls.name(), std::move(cls));
  return Status::OK();
}

const ResourceViewClass* ClassRegistry::Lookup(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

bool ClassRegistry::IsSubclassOf(const std::string& cls,
                                 const std::string& ancestor) const {
  const ResourceViewClass* cur = Lookup(cls);
  while (cur != nullptr) {
    if (cur->name() == ancestor) return true;
    cur = cur->parent().empty() ? nullptr : Lookup(cur->parent());
  }
  return false;
}

Result<ClassRestrictions> ClassRegistry::EffectiveRestrictions(
    const std::string& cls) const {
  // Walk root -> leaf so that deeper classes override.
  std::vector<const ResourceViewClass*> chain;
  const ResourceViewClass* cur = Lookup(cls);
  if (cur == nullptr) {
    return Status::NotFound("unknown resource view class '" + cls + "'");
  }
  while (cur != nullptr) {
    chain.push_back(cur);
    cur = cur->parent().empty() ? nullptr : Lookup(cur->parent());
  }
  ClassRestrictions effective;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const ClassRestrictions& r = (*it)->restrictions();
    if (r.name) effective.name = r.name;
    if (r.tuple) effective.tuple = r.tuple;
    if (r.tuple_schema) effective.tuple_schema = r.tuple_schema;
    if (r.content) effective.content = r.content;
    if (r.group_set) effective.group_set = r.group_set;
    if (r.group_sequence) effective.group_sequence = r.group_sequence;
    if (r.related_classes) effective.related_classes = r.related_classes;
  }
  return effective;
}

namespace {

Status CheckPresence(Presence required, bool is_empty, const char* component) {
  if (required == Presence::kEmpty && !is_empty) {
    return Status::ConformanceError(std::string(component) +
                                    " component must be empty");
  }
  if (required == Presence::kNonEmpty && is_empty) {
    return Status::ConformanceError(std::string(component) +
                                    " component must be non-empty");
  }
  return Status::OK();
}

Status CheckFiniteness(Finiteness required, bool is_empty, bool is_finite,
                       const char* component) {
  switch (required) {
    case Finiteness::kAny:
      return Status::OK();
    case Finiteness::kEmpty:
      if (!is_empty) {
        return Status::ConformanceError(std::string(component) +
                                        " must be empty");
      }
      return Status::OK();
    case Finiteness::kFinite:
      if (!is_finite) {
        return Status::ConformanceError(std::string(component) +
                                        " must be finite");
      }
      return Status::OK();
    case Finiteness::kInfinite:
      if (is_empty || is_finite) {
        return Status::ConformanceError(std::string(component) +
                                        " must be infinite");
      }
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace

Status ClassRegistry::CheckConformanceAs(const ResourceView& view,
                                         const std::string& cls,
                                         size_t infinite_prefix) const {
  IDM_ASSIGN_OR_RETURN(ClassRestrictions r, EffectiveRestrictions(cls));
  const std::string context = "view '" + view.uri() + "' (class " + cls + ")";

  // (1) Emptyness of η and τ.
  if (r.name) {
    IDM_RETURN_NOT_OK(CheckPresence(*r.name, view.GetNameComponent().empty(),
                                    "name (η)")
                          .WithContext(context));
  }
  TupleComponent tuple = view.GetTupleComponent();
  if (r.tuple) {
    IDM_RETURN_NOT_OK(
        CheckPresence(*r.tuple, tuple.empty(), "tuple (τ)").WithContext(context));
  }
  // (2) Schema of τ.
  if (r.tuple_schema) {
    if (tuple.schema() != *r.tuple_schema) {
      return Status::ConformanceError(
          context + ": tuple schema " + tuple.schema().ToString() +
          " does not match required schema " + r.tuple_schema->ToString());
    }
  }
  // (3) Finiteness of χ and γ.
  ContentComponent content = view.GetContentComponent();
  if (r.content) {
    IDM_RETURN_NOT_OK(CheckFiniteness(*r.content, content.empty(),
                                      content.finite(), "content (χ)")
                          .WithContext(context));
  }
  GroupComponent group = view.GetGroupComponent();
  if (r.group_set) {
    // The set part is always finite in this implementation; emptiness is
    // structural (no provider) or an empty materialized set.
    bool set_empty = !group.has_set() || group.set().empty();
    IDM_RETURN_NOT_OK(CheckFiniteness(*r.group_set, set_empty, true,
                                      "group set (γ.S)")
                          .WithContext(context));
  }
  if (r.group_sequence) {
    bool seq_empty = !group.has_sequence();
    if (group.has_sequence() && group.sequence_finite()) {
      auto hint = group.SequenceSizeHint();
      if (hint.has_value() && *hint == 0) seq_empty = true;
    }
    IDM_RETURN_NOT_OK(CheckFiniteness(*r.group_sequence, seq_empty,
                                      group.sequence_finite(),
                                      "group sequence (γ.Q)")
                          .WithContext(context));
  }
  // (4) Classes of directly related views.
  if (r.related_classes) {
    for (const ViewPtr& related : group.DirectlyRelated(infinite_prefix)) {
      if (related == nullptr) continue;
      bool acceptable = false;
      for (const std::string& allowed : *r.related_classes) {
        if (IsSubclassOf(related->class_name(), allowed)) {
          acceptable = true;
          break;
        }
      }
      if (!acceptable) {
        return Status::ConformanceError(
            context + ": directly related view '" + related->uri() +
            "' has class '" + related->class_name() +
            "', which is not acceptable for this class");
      }
    }
  }
  return Status::OK();
}

Status ClassRegistry::CheckConformance(const ResourceView& view,
                                       size_t infinite_prefix) const {
  if (view.class_name().empty()) return Status::OK();  // schema-never
  return CheckConformanceAs(view, view.class_name(), infinite_prefix);
}

std::vector<std::string> ClassRegistry::ClassNames() const { return order_; }

ClassRegistry ClassRegistry::Standard() {
  ClassRegistry reg;
  auto add = [&reg](std::string name, std::string parent,
                    ClassRestrictions r) {
    Status s = reg.Register(ResourceViewClass(std::move(name),
                                              std::move(parent), std::move(r)));
    (void)s;  // Standard() definitions are internally consistent.
  };

  // --- Files & folders (paper §3.2, Table 1 rows 1-2) ---------------------
  {
    ClassRestrictions r;
    r.name = Presence::kNonEmpty;
    r.tuple_schema = FileSystemSchema();
    r.content = Finiteness::kAny;  // C_f; empty files are files too
    r.group_set = Finiteness::kEmpty;
    r.group_sequence = Finiteness::kEmpty;
    add("file", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.name = Presence::kNonEmpty;
    r.tuple_schema = FileSystemSchema();
    r.content = Finiteness::kEmpty;
    r.group_set = Finiteness::kFinite;
    r.group_sequence = Finiteness::kEmpty;
    r.related_classes = std::set<std::string>{"file", "folder"};
    add("folder", "", std::move(r));
  }

  // --- Relational (Table 1 rows 3-5) ---------------------------------------
  {
    ClassRestrictions r;
    r.name = Presence::kEmpty;
    r.tuple = Presence::kNonEmpty;
    r.content = Finiteness::kEmpty;
    r.group_set = Finiteness::kEmpty;
    r.group_sequence = Finiteness::kEmpty;
    add("tuple", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.name = Presence::kNonEmpty;
    r.tuple = Presence::kEmpty;
    r.content = Finiteness::kEmpty;
    r.group_set = Finiteness::kFinite;
    r.group_sequence = Finiteness::kEmpty;
    r.related_classes = std::set<std::string>{"tuple"};
    add("relation", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.name = Presence::kNonEmpty;
    r.tuple = Presence::kEmpty;
    r.content = Finiteness::kEmpty;
    r.group_set = Finiteness::kFinite;
    r.group_sequence = Finiteness::kEmpty;
    r.related_classes = std::set<std::string>{"relation"};
    add("reldb", "", std::move(r));
  }

  // --- XML (paper §3.3, Table 1 rows 6-9) ----------------------------------
  {
    ClassRestrictions r;
    r.name = Presence::kEmpty;
    r.tuple = Presence::kEmpty;
    r.content = Finiteness::kFinite;
    r.group_set = Finiteness::kEmpty;
    r.group_sequence = Finiteness::kEmpty;
    add("xmltext", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.name = Presence::kNonEmpty;
    r.content = Finiteness::kEmpty;
    r.group_set = Finiteness::kEmpty;
    r.group_sequence = Finiteness::kFinite;
    r.related_classes = std::set<std::string>{"xmltext", "xmlelem"};
    add("xmlelem", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.name = Presence::kEmpty;
    r.tuple = Presence::kEmpty;
    r.content = Finiteness::kEmpty;
    r.group_set = Finiteness::kEmpty;
    r.group_sequence = Finiteness::kFinite;
    r.related_classes = std::set<std::string>{"xmlelem"};
    add("xmldoc", "", std::move(r));
  }
  {
    ClassRestrictions r;  // specializes file: Q = ⟨V_doc^xmldoc⟩
    r.group_sequence = Finiteness::kFinite;
    r.related_classes = std::set<std::string>{"xmldoc"};
    add("xmlfile", "file", std::move(r));
  }

  // --- Streams (paper §3.4, Table 1 rows 10-12) ----------------------------
  {
    ClassRestrictions r;
    r.name = Presence::kEmpty;
    r.tuple = Presence::kEmpty;
    r.content = Finiteness::kEmpty;
    r.group_set = Finiteness::kEmpty;
    r.group_sequence = Finiteness::kInfinite;
    add("datstream", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.related_classes = std::set<std::string>{"tuple"};
    add("tupstream", "datstream", std::move(r));
  }
  {
    ClassRestrictions r;
    r.related_classes = std::set<std::string>{"xmldoc"};
    add("rssatom", "datstream", std::move(r));
  }

  // --- LaTeX (paper §2.3: latex documents yield graph-structured views) ----
  {
    ClassRestrictions r;  // unstructured text inside LaTeX structure
    r.name = Presence::kEmpty;
    r.tuple = Presence::kEmpty;
    r.content = Finiteness::kFinite;
    r.group_set = Finiteness::kEmpty;
    r.group_sequence = Finiteness::kEmpty;
    add("textblock", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.group_sequence = Finiteness::kFinite;
    add("latex_document", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.name = Presence::kNonEmpty;
    r.group_sequence = Finiteness::kFinite;
    add("latex_section", "", std::move(r));
  }
  add("latex_subsection", "latex_section", ClassRestrictions{});
  add("latex_subsubsection", "latex_subsection", ClassRestrictions{});
  {
    ClassRestrictions r;
    r.group_sequence = Finiteness::kFinite;
    add("environment", "", std::move(r));
  }
  add("figure", "environment", ClassRestrictions{});
  {
    ClassRestrictions r;  // \ref{..}: group points at the referenced view
    r.name = Presence::kNonEmpty;
    r.content = Finiteness::kEmpty;
    add("texref", "", std::move(r));
  }
  {
    ClassRestrictions r;  // specializes file: Q = ⟨latex_document⟩
    r.group_sequence = Finiteness::kFinite;
    r.related_classes = std::set<std::string>{"latex_document"};
    add("latexfile", "file", std::move(r));
  }

  // --- Email (paper §4.4.1) -------------------------------------------------
  {
    ClassRestrictions r;
    r.name = Presence::kNonEmpty;
    r.group_set = Finiteness::kFinite;
    add("emailfolder", "", std::move(r));
  }
  {
    ClassRestrictions r;
    r.name = Presence::kNonEmpty;  // subject
    r.tuple = Presence::kNonEmpty; // from/to/date headers
    r.group_set = Finiteness::kFinite;  // attachments
    add("emailmessage", "", std::move(r));
  }
  {
    ClassRestrictions r;  // an attachment behaves as a file
    add("attachment", "file", std::move(r));
  }
  {
    ClassRestrictions r;  // Option 1: finite state of the INBOX
    r.group_sequence = Finiteness::kFinite;
    r.related_classes = std::set<std::string>{"emailmessage"};
    add("inboxstate", "", std::move(r));
  }
  {
    ClassRestrictions r;  // Option 2: infinite message stream
    r.related_classes = std::set<std::string>{"emailmessage"};
    add("inboxstream", "datstream", std::move(r));
  }

  // --- ActiveXML (paper §4.3.1): AXML specializes xmlelem ------------------
  add("sc", "xmlelem", ClassRestrictions{});
  add("scresult", "xmlelem", ClassRestrictions{});
  {
    ClassRestrictions r;
    r.related_classes = std::set<std::string>{"sc", "scresult"};
    add("axml", "xmlelem", std::move(r));
  }

  return reg;
}

}  // namespace idm::core
