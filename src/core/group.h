// The γ (group) component of a resource view (paper §2.2).
//
// γ = (S, Q): S is an unordered set of resource views, Q an ordered
// sequence; either may be empty, finite, lazy, or infinite. γ induces the
// edges of the resource view graph: V_i → V_k iff V_k ∈ S ∪ Q.

#ifndef IDM_CORE_GROUP_H_
#define IDM_CORE_GROUP_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/result.h"

namespace idm::core {

class ResourceView;
/// Resource views are shared, immutable-after-construction graph nodes.
using ViewPtr = std::shared_ptr<ResourceView>;

/// Pull cursor over the sequence part Q. Single-pass.
class ViewCursor {
 public:
  virtual ~ViewCursor() = default;
  /// Next view in Q, or nullptr at end. Infinite sequences never end.
  virtual ViewPtr Next() = 0;
};

/// Value-type handle on a γ component; copies share the provider state.
class GroupComponent {
 public:
  /// γ = (∅, ⟨⟩).
  GroupComponent() = default;

  /// Extensional finite set S.
  static GroupComponent OfSet(std::vector<ViewPtr> set);

  /// Intensional set S: \p thunk runs at most once, on first access
  /// (paper §4.1: group components may be computed lazily).
  static GroupComponent OfLazySet(std::function<std::vector<ViewPtr>()> thunk);

  /// Extensional finite sequence Q.
  static GroupComponent OfSequence(std::vector<ViewPtr> seq);

  /// Intensional finite sequence Q, computed on first access.
  static GroupComponent OfLazySequence(
      std::function<std::vector<ViewPtr>()> thunk);

  /// Infinite sequence Q: \p generator maps index 0,1,2,... to a view.
  /// A nullptr return is a programming error (infinite means infinite);
  /// use a finite variant for bounded data.
  static GroupComponent OfInfiniteSequence(
      std::function<ViewPtr(uint64_t index)> generator);

  /// Both parts at once (e.g. a folder with unordered children plus an
  /// ordered reading list).
  static GroupComponent Make(GroupComponent set_part, GroupComponent seq_part);

  /// True iff S = ∅ and Q = ⟨⟩ *structurally* (no set/sequence provider).
  /// A lazy provider that would compute an empty vector still counts as
  /// present until materialized.
  bool empty() const;

  /// --- Set part S ------------------------------------------------------
  bool has_set() const;
  /// Materializes (and caches) the set. Always finite in this
  /// implementation; infinite *sets* have no natural cursor order and the
  /// paper uses infinite sequences for streams.
  const std::vector<ViewPtr>& set() const;

  /// --- Sequence part Q -------------------------------------------------
  bool has_sequence() const;
  bool sequence_finite() const;
  /// Size of Q when known without full materialization.
  std::optional<size_t> SequenceSizeHint() const;
  /// Opens a fresh cursor over Q (empty cursor when Q = ⟨⟩).
  std::unique_ptr<ViewCursor> OpenSequence() const;
  /// Materializes a finite Q. Fails with FailedPrecondition if Q is infinite.
  Result<std::vector<ViewPtr>> SequenceToVector() const;

  /// All *currently enumerable* directly related views: S ∪ Q for finite Q,
  /// S ∪ (first \p infinite_prefix elements of Q) for infinite Q. This is
  /// the expansion step used by graph traversal and query forward expansion.
  std::vector<ViewPtr> DirectlyRelated(size_t infinite_prefix = 0) const;

 private:
  class SetProvider;
  class SeqProvider;
  std::shared_ptr<SetProvider> set_;
  std::shared_ptr<SeqProvider> seq_;
};

}  // namespace idm::core

#endif  // IDM_CORE_GROUP_H_
