#include "core/tuple.h"

#include "util/string_util.h"

namespace idm::core {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (EqualsIgnoreCase(attrs_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    out += ": ";
    out += DomainToString(attrs_[i].domain);
  }
  out += ")";
  return out;
}

size_t Schema::MemoryUsage() const {
  size_t total = sizeof(Schema) + attrs_.capacity() * sizeof(Attribute);
  for (const auto& a : attrs_) total += a.name.capacity();
  return total;
}

Result<TupleComponent> TupleComponent::Make(Schema schema,
                                            std::vector<Value> values) {
  if (schema.size() != values.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values.size()) +
        " does not match schema arity " + std::to_string(schema.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!values[i].is_null() && values[i].domain() != schema.at(i).domain) {
      return Status::InvalidArgument(
          "value for attribute '" + schema.at(i).name + "' has domain " +
          DomainToString(values[i].domain()) + ", schema requires " +
          DomainToString(schema.at(i).domain));
    }
  }
  return MakeUnchecked(std::move(schema), std::move(values));
}

std::optional<Value> TupleComponent::Get(const std::string& name) const {
  auto idx = schema_.IndexOf(name);
  if (!idx.has_value()) return std::nullopt;
  return values_[*idx];
}

std::string TupleComponent::ToString() const {
  if (empty()) return "()";
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.at(i).name;
    out += "=";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

size_t TupleComponent::MemoryUsage() const {
  size_t total = schema_.MemoryUsage() + values_.capacity() * sizeof(Value);
  for (const auto& v : values_) total += v.MemoryUsage() - sizeof(Value);
  return total;
}

}  // namespace idm::core
