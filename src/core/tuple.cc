#include "core/tuple.h"

#include "util/codec.h"
#include "util/string_util.h"

namespace idm::core {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (EqualsIgnoreCase(attrs_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    out += ": ";
    out += DomainToString(attrs_[i].domain);
  }
  out += ")";
  return out;
}

size_t Schema::MemoryUsage() const {
  size_t total = sizeof(Schema) + attrs_.capacity() * sizeof(Attribute);
  for (const auto& a : attrs_) total += a.name.capacity();
  return total;
}

Result<TupleComponent> TupleComponent::Make(Schema schema,
                                            std::vector<Value> values) {
  if (schema.size() != values.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values.size()) +
        " does not match schema arity " + std::to_string(schema.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!values[i].is_null() && values[i].domain() != schema.at(i).domain) {
      return Status::InvalidArgument(
          "value for attribute '" + schema.at(i).name + "' has domain " +
          DomainToString(values[i].domain()) + ", schema requires " +
          DomainToString(schema.at(i).domain));
    }
  }
  return MakeUnchecked(std::move(schema), std::move(values));
}

std::optional<Value> TupleComponent::Get(const std::string& name) const {
  auto idx = schema_.IndexOf(name);
  if (!idx.has_value()) return std::nullopt;
  return values_[*idx];
}

std::string TupleComponent::ToString() const {
  if (empty()) return "()";
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.at(i).name;
    out += "=";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

size_t TupleComponent::MemoryUsage() const {
  size_t total = schema_.MemoryUsage() + values_.capacity() * sizeof(Value);
  for (const auto& v : values_) total += v.MemoryUsage() - sizeof(Value);
  return total;
}

void TupleComponent::SerializeTo(std::string* out) const {
  codec::PutU64(out, schema_.size());
  for (const Attribute& attr : schema_.attributes()) {
    codec::PutString(out, attr.name);
    out->push_back(static_cast<char>(attr.domain));
  }
  codec::PutU64(out, values_.size());
  for (const Value& value : values_) value.SerializeTo(out);
}

bool TupleComponent::DeserializeFrom(std::string_view in, size_t* pos,
                                     TupleComponent* out) {
  uint64_t n_attrs = 0;
  if (!codec::GetU64(in, pos, &n_attrs)) return false;
  if (n_attrs > in.size() - *pos) return false;  // each attribute is >= 1 byte
  std::vector<Attribute> attrs;
  attrs.reserve(n_attrs);
  for (uint64_t i = 0; i < n_attrs; ++i) {
    Attribute attr;
    if (!codec::GetString(in, pos, &attr.name)) return false;
    if (*pos >= in.size()) return false;
    attr.domain = static_cast<Domain>(static_cast<unsigned char>(in[(*pos)++]));
    if (attr.domain > Domain::kDate) return false;
    attrs.push_back(std::move(attr));
  }
  uint64_t n_values = 0;
  if (!codec::GetU64(in, pos, &n_values)) return false;
  if (n_values > in.size() - *pos) return false;
  std::vector<Value> values;
  values.reserve(n_values);
  for (uint64_t i = 0; i < n_values; ++i) {
    Value value;
    if (!Value::DeserializeFrom(in, pos, &value)) return false;
    values.push_back(std::move(value));
  }
  *out = MakeUnchecked(Schema(std::move(attrs)), std::move(values));
  return true;
}

}  // namespace idm::core
