// The χ (content) component of a resource view (paper §2.2).
//
// χ is a sequence of symbols that may be finite (file bytes, an XML text
// node) or infinite (a media stream). All variants are exposed behind one
// value-type handle, and all of them may be computed lazily (paper §4.1):
// nothing is materialized until a reader asks for bytes.

#ifndef IDM_CORE_CONTENT_H_
#define IDM_CORE_CONTENT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "util/exec_context.h"
#include "util/result.h"

namespace idm::core {

/// Pull-based reader over a content component. Obtained from
/// ContentComponent::OpenReader(); single-pass.
class ContentReader {
 public:
  virtual ~ContentReader() = default;

  /// Returns the next chunk of symbols, or nullopt at end-of-content.
  /// Infinite content never returns nullopt.
  virtual std::optional<std::string> NextChunk() = 0;
};

/// Value-type handle on a χ component. Copies share the underlying provider
/// (and its lazy-materialization cache).
class ContentComponent {
 public:
  /// χ = ⟨⟩, the empty content.
  ContentComponent() = default;

  /// Extensional finite content: the symbols are the given string.
  static ContentComponent OfString(std::string data);

  /// Intensional finite content: \p thunk runs at most once, on first
  /// access, and its result is cached (paper §4.3: intensional components
  /// may be materialized to speed up repeated access).
  static ContentComponent OfLazy(std::function<std::string()> thunk);

  /// Infinite content: \p generator maps a chunk index (0,1,2,...) to the
  /// symbols of that chunk. Each OpenReader() restarts from chunk 0.
  static ContentComponent OfInfinite(
      std::function<std::string(uint64_t chunk_index)> generator);

  /// True iff this is the empty content ⟨⟩. Lazy content counts as
  /// non-empty: the component exists even before it is computed.
  bool empty() const { return provider_ == nullptr; }

  /// True iff the symbol sequence is finite (always true for empty).
  bool finite() const;

  /// Known size in bytes, when cheaply available (extensional or already
  /// materialized content). Infinite content has no size.
  std::optional<size_t> SizeHint() const;

  /// Materializes the full content. Fails with FailedPrecondition on
  /// infinite content. Empty content yields "".
  Result<std::string> ToString() const;

  /// First min(n, size) symbols. Works on infinite content.
  std::string Prefix(size_t n) const;

  /// Governed Prefix: materializes up to \p n symbols under \p ctx. Each
  /// produced chunk counts one execution step and charges its byte size to
  /// the memory budget (released again on return — the reservation guards
  /// the expansion, the returned string belongs to the caller). Stops early
  /// — returning the symbols materialized so far, always a prefix — when
  /// the context's deadline, step or memory budget overruns; the overrun
  /// is then visible in ctx->status(). This is the lazy-iteration guard
  /// hook that lets infinite/intensional χ components (paper §4.1, §4.3)
  /// be expanded inside a bounded query. \p ctx == nullptr degrades to
  /// Prefix(n).
  std::string GuardedPrefix(size_t n, util::ExecContext* ctx) const;

  /// Opens a fresh single-pass reader.
  std::unique_ptr<ContentReader> OpenReader() const;

 private:
  class Provider;
  class StringProvider;
  class LazyProvider;
  class InfiniteProvider;

  explicit ContentComponent(std::shared_ptr<Provider> provider)
      : provider_(std::move(provider)) {}

  std::shared_ptr<Provider> provider_;
};

}  // namespace idm::core

#endif  // IDM_CORE_CONTENT_H_
