#include "core/group.h"

#include <cassert>
#include <mutex>

namespace idm::core {

// ---------------------------------------------------------------------------
// Set provider: finite, possibly lazy.

class GroupComponent::SetProvider {
 public:
  explicit SetProvider(std::vector<ViewPtr> views) : views_(std::move(views)) {}
  explicit SetProvider(std::function<std::vector<ViewPtr>()> thunk)
      : thunk_(std::move(thunk)) {}

  const std::vector<ViewPtr>& Get() {
    std::lock_guard<std::mutex> lock(mu_);
    if (thunk_) {
      views_ = thunk_();
      thunk_ = nullptr;
    }
    return views_;
  }

 private:
  std::mutex mu_;
  std::function<std::vector<ViewPtr>()> thunk_;
  std::vector<ViewPtr> views_;
};

// ---------------------------------------------------------------------------
// Sequence provider: finite (possibly lazy) or infinite generator.

class GroupComponent::SeqProvider {
 public:
  explicit SeqProvider(std::vector<ViewPtr> views)
      : finite_(true), views_(std::move(views)), materialized_(true) {}
  explicit SeqProvider(std::function<std::vector<ViewPtr>()> thunk)
      : finite_(true), thunk_(std::move(thunk)) {}
  explicit SeqProvider(std::function<ViewPtr(uint64_t)> generator)
      : finite_(false), generator_(std::move(generator)) {}

  bool finite() const { return finite_; }

  std::optional<size_t> SizeHint() {
    if (!finite_) return std::nullopt;
    std::lock_guard<std::mutex> lock(mu_);
    if (materialized_) return views_.size();
    return std::nullopt;
  }

  const std::vector<ViewPtr>& MaterializeFinite() {
    assert(finite_);
    std::lock_guard<std::mutex> lock(mu_);
    if (!materialized_) {
      views_ = thunk_();
      thunk_ = nullptr;
      materialized_ = true;
    }
    return views_;
  }

  std::unique_ptr<ViewCursor> OpenCursor();

 private:
  const bool finite_;
  std::mutex mu_;
  std::function<std::vector<ViewPtr>()> thunk_;
  std::vector<ViewPtr> views_;
  bool materialized_ = false;
  std::function<ViewPtr(uint64_t)> generator_;
};

namespace {

class VectorCursor : public ViewCursor {
 public:
  explicit VectorCursor(std::vector<ViewPtr> views) : views_(std::move(views)) {}
  ViewPtr Next() override {
    if (pos_ >= views_.size()) return nullptr;
    return views_[pos_++];
  }

 private:
  std::vector<ViewPtr> views_;
  size_t pos_ = 0;
};

class GeneratorCursor : public ViewCursor {
 public:
  explicit GeneratorCursor(std::function<ViewPtr(uint64_t)> gen)
      : gen_(std::move(gen)) {}
  ViewPtr Next() override { return gen_(next_++); }

 private:
  std::function<ViewPtr(uint64_t)> gen_;
  uint64_t next_ = 0;
};

}  // namespace

std::unique_ptr<ViewCursor> GroupComponent::SeqProvider::OpenCursor() {
  if (finite_) return std::make_unique<VectorCursor>(MaterializeFinite());
  return std::make_unique<GeneratorCursor>(generator_);
}

// ---------------------------------------------------------------------------
// GroupComponent

GroupComponent GroupComponent::OfSet(std::vector<ViewPtr> set) {
  GroupComponent g;
  g.set_ = std::make_shared<SetProvider>(std::move(set));
  return g;
}

GroupComponent GroupComponent::OfLazySet(
    std::function<std::vector<ViewPtr>()> thunk) {
  GroupComponent g;
  g.set_ = std::make_shared<SetProvider>(std::move(thunk));
  return g;
}

GroupComponent GroupComponent::OfSequence(std::vector<ViewPtr> seq) {
  GroupComponent g;
  g.seq_ = std::make_shared<SeqProvider>(std::move(seq));
  return g;
}

GroupComponent GroupComponent::OfLazySequence(
    std::function<std::vector<ViewPtr>()> thunk) {
  GroupComponent g;
  g.seq_ = std::make_shared<SeqProvider>(std::move(thunk));
  return g;
}

GroupComponent GroupComponent::OfInfiniteSequence(
    std::function<ViewPtr(uint64_t)> generator) {
  GroupComponent g;
  g.seq_ = std::make_shared<SeqProvider>(std::move(generator));
  return g;
}

GroupComponent GroupComponent::Make(GroupComponent set_part,
                                    GroupComponent seq_part) {
  GroupComponent g;
  g.set_ = std::move(set_part.set_);
  g.seq_ = std::move(seq_part.seq_);
  return g;
}

bool GroupComponent::empty() const {
  return set_ == nullptr && seq_ == nullptr;
}

bool GroupComponent::has_set() const { return set_ != nullptr; }

const std::vector<ViewPtr>& GroupComponent::set() const {
  static const std::vector<ViewPtr> kEmpty;
  if (set_ == nullptr) return kEmpty;
  return set_->Get();
}

bool GroupComponent::has_sequence() const { return seq_ != nullptr; }

bool GroupComponent::sequence_finite() const {
  return seq_ == nullptr || seq_->finite();
}

std::optional<size_t> GroupComponent::SequenceSizeHint() const {
  if (seq_ == nullptr) return 0;
  return seq_->SizeHint();
}

std::unique_ptr<ViewCursor> GroupComponent::OpenSequence() const {
  if (seq_ == nullptr) return std::make_unique<VectorCursor>(std::vector<ViewPtr>{});
  return seq_->OpenCursor();
}

Result<std::vector<ViewPtr>> GroupComponent::SequenceToVector() const {
  if (seq_ == nullptr) return std::vector<ViewPtr>{};
  if (!seq_->finite()) {
    return Status::FailedPrecondition(
        "cannot materialize an infinite group sequence");
  }
  return seq_->MaterializeFinite();
}

std::vector<ViewPtr> GroupComponent::DirectlyRelated(
    size_t infinite_prefix) const {
  std::vector<ViewPtr> out = set();
  if (seq_ != nullptr) {
    if (seq_->finite()) {
      const auto& q = seq_->MaterializeFinite();
      out.insert(out.end(), q.begin(), q.end());
    } else if (infinite_prefix > 0) {
      auto cursor = seq_->OpenCursor();
      for (size_t i = 0; i < infinite_prefix; ++i) {
        ViewPtr v = cursor->Next();
        if (v == nullptr) break;
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

}  // namespace idm::core
