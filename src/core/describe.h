// Rendering of resource views in the paper's formal notation (§2.2/§2.3),
// e.g. for the PIM folder of Figure 1:
//
//   V = ('PIM', (creation time=19/03/2005 11:54, size=4096, ...),
//        ⟨⟩, ({'vldb 2006.tex', 'Grant.doc', 'All Projects'}, ⟨⟩))
//
// Useful in examples, logs and test diagnostics.

#ifndef IDM_CORE_DESCRIBE_H_
#define IDM_CORE_DESCRIBE_H_

#include <string>

#include "core/resource_view.h"

namespace idm::core {

/// Options for DescribeView.
struct DescribeOptions {
  /// Max related views listed per group part before eliding with "...".
  size_t max_related = 4;
  /// Max content symbols shown before eliding.
  size_t max_content = 24;
  /// How many elements of an infinite Q to materialize for display.
  size_t infinite_prefix = 2;
};

/// Renders V = (η, τ, χ, γ) with empty components as ⟨⟩ / (), infinite
/// content as ⟨c₁, ...⟩_{l→∞}, and related views by their names.
std::string DescribeView(const ResourceView& view,
                         const DescribeOptions& options = {});

}  // namespace idm::core

#endif  // IDM_CORE_DESCRIBE_H_
