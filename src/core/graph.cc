#include "core/graph.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace idm::core {

TraversalStats Traverse(const std::vector<ViewPtr>& roots,
                        const TraversalOptions& options,
                        const ViewVisitor& visitor) {
  TraversalStats stats;
  std::unordered_set<std::string> visited;
  std::deque<std::pair<ViewPtr, size_t>> queue;

  for (const ViewPtr& root : roots) {
    if (root == nullptr) continue;
    if (visited.insert(root->uri()).second) queue.emplace_back(root, 0);
  }

  while (!queue.empty()) {
    auto [view, depth] = queue.front();
    queue.pop_front();

    if (stats.views_visited >= options.max_views) {
      stats.truncated = true;
      break;
    }
    ++stats.views_visited;

    VisitAction action = visitor(view, depth);
    if (action == VisitAction::kStop) {
      stats.truncated = true;
      break;
    }
    if (action == VisitAction::kSkipChildren) continue;
    if (depth >= options.max_depth) {
      stats.truncated = true;
      continue;
    }

    GroupComponent group = view->GetGroupComponent();
    if (group.has_sequence() && !group.sequence_finite()) {
      stats.truncated = true;  // an infinite Q can never be fully expanded
    }
    for (ViewPtr& child : group.DirectlyRelated(options.infinite_prefix)) {
      if (child == nullptr) continue;
      ++stats.edges_followed;
      if (visited.insert(child->uri()).second) {
        queue.emplace_back(std::move(child), depth + 1);
      } else {
        stats.cycle_found = true;  // re-encounter: DAG sharing or cycle
      }
    }
  }
  return stats;
}

std::vector<ViewPtr> CollectSubgraph(const ViewPtr& root,
                                     const TraversalOptions& options) {
  std::vector<ViewPtr> out;
  Traverse({root}, options, [&out](const ViewPtr& v, size_t) {
    out.push_back(v);
    return VisitAction::kContinue;
  });
  return out;
}

std::vector<ViewPtr> FindAll(
    const ViewPtr& root,
    const std::function<bool(const ResourceView&)>& predicate,
    const TraversalOptions& options) {
  std::vector<ViewPtr> out;
  Traverse({root}, options, [&](const ViewPtr& v, size_t) {
    if (predicate(*v)) out.push_back(v);
    return VisitAction::kContinue;
  });
  return out;
}

bool IsIndirectlyRelated(const ViewPtr& from, const ViewPtr& to,
                         const TraversalOptions& options) {
  if (from == nullptr || to == nullptr) return false;
  bool found = false;
  // Start from the *children* of `from`: the relation requires a path of
  // length >= 1, and a view is not indirectly related to itself unless it
  // lies on a cycle.
  std::vector<ViewPtr> children =
      from->GetGroupComponent().DirectlyRelated(options.infinite_prefix);
  Traverse(children, options, [&](const ViewPtr& v, size_t) {
    if (v->uri() == to->uri()) {
      found = true;
      return VisitAction::kStop;
    }
    return VisitAction::kContinue;
  });
  return found;
}

namespace {

enum class Color { kGray, kBlack };

struct ShapeState {
  std::unordered_map<std::string, Color> colors;
  const TraversalOptions* options;
  size_t visited = 0;
  bool dag_edge = false;
  bool cycle = false;
};

void ShapeDfs(const ViewPtr& view, size_t depth, ShapeState* state) {
  if (state->cycle) return;
  if (state->visited >= state->options->max_views ||
      depth > state->options->max_depth) {
    return;
  }
  ++state->visited;
  state->colors[view->uri()] = Color::kGray;
  GroupComponent group = view->GetGroupComponent();
  for (const ViewPtr& child : group.DirectlyRelated(state->options->infinite_prefix)) {
    if (child == nullptr) continue;
    auto it = state->colors.find(child->uri());
    if (it == state->colors.end()) {
      ShapeDfs(child, depth + 1, state);
    } else if (it->second == Color::kGray) {
      state->cycle = true;  // back edge into the active path
    } else {
      state->dag_edge = true;  // cross/forward edge: shared node
    }
    if (state->cycle) break;
  }
  state->colors[view->uri()] = Color::kBlack;
}

}  // namespace

GraphShape ClassifyShape(const ViewPtr& root, const TraversalOptions& options) {
  ShapeState state;
  state.options = &options;
  if (root != nullptr) ShapeDfs(root, 0, &state);
  if (state.cycle) return GraphShape::kCyclic;
  if (state.dag_edge) return GraphShape::kDag;
  return GraphShape::kTree;
}

}  // namespace idm::core
