// Resource views (paper §2.2, Definition 1): V = (η, τ, χ, γ).
//
// A resource view is modelled as an interface of four get-methods (paper
// §4.1), so that each view hides how, when and where its components are
// computed: extensionally (base facts), intensionally (query/service
// results), lazily, or as infinite generators.

#ifndef IDM_CORE_RESOURCE_VIEW_H_
#define IDM_CORE_RESOURCE_VIEW_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "core/content.h"
#include "core/group.h"
#include "core/tuple.h"

namespace idm::core {

/// Interface of a resource view. Implementations must be immutable from the
/// caller's perspective: repeated calls to a getter observe the same logical
/// component (lazy caches notwithstanding).
///
/// Beyond the paper's four components, every view carries:
///  - uri(): a stable identity string ("vfs:/Projects/PIM",
///    "imap://inbox/42"). Two views denote the same node of the resource
///    view graph iff their URIs are equal; this is what makes cycle-safe
///    traversal of lazily recreated adapter views possible.
///  - class_name(): the resource view class the view claims to obey
///    (paper §3.1), or "" for class-less views (schema-never data).
class ResourceView {
 public:
  virtual ~ResourceView() = default;

  /// Stable identity of this node in the resource view graph.
  virtual const std::string& uri() const = 0;

  /// Name of the resource view class this view obeys, or "" if none.
  virtual const std::string& class_name() const = 0;

  /// η — the name component (finite string; "" denotes η = ⟨⟩).
  virtual std::string GetNameComponent() const = 0;

  /// τ — the tuple component ((W, T); empty TupleComponent denotes τ = ()).
  virtual TupleComponent GetTupleComponent() const = 0;

  /// χ — the content component.
  virtual ContentComponent GetContentComponent() const = 0;

  /// γ — the group component.
  virtual GroupComponent GetGroupComponent() const = 0;
};

/// Fully materialized resource view with eagerly provided components.
/// Component values may still be internally lazy (ContentComponent /
/// GroupComponent handles), so this is the workhorse implementation —
/// built via ViewBuilder.
class MaterializedResourceView : public ResourceView {
 public:
  MaterializedResourceView(std::string uri, std::string class_name,
                           std::string name, TupleComponent tuple,
                           ContentComponent content, GroupComponent group)
      : uri_(std::move(uri)),
        class_name_(std::move(class_name)),
        name_(std::move(name)),
        tuple_(std::move(tuple)),
        content_(std::move(content)),
        group_(std::move(group)) {}

  const std::string& uri() const override { return uri_; }
  const std::string& class_name() const override { return class_name_; }
  std::string GetNameComponent() const override { return name_; }
  TupleComponent GetTupleComponent() const override { return tuple_; }
  ContentComponent GetContentComponent() const override { return content_; }
  GroupComponent GetGroupComponent() const override { return group_; }

 private:
  std::string uri_;
  std::string class_name_;
  std::string name_;
  TupleComponent tuple_;
  ContentComponent content_;
  GroupComponent group_;
};

/// Fluent builder for resource views.
///
///   ViewPtr v = ViewBuilder("vfs:/Projects/PIM")
///                   .Class("folder")
///                   .Name("PIM")
///                   .Tuple(fs_tuple)
///                   .GroupSet({child1, child2})
///                   .Build();
class ViewBuilder {
 public:
  explicit ViewBuilder(std::string uri) : uri_(std::move(uri)) {}

  ViewBuilder& Class(std::string class_name) {
    class_name_ = std::move(class_name);
    return *this;
  }
  ViewBuilder& Name(std::string name) {
    name_ = std::move(name);
    return *this;
  }
  ViewBuilder& Tuple(TupleComponent tuple) {
    tuple_ = std::move(tuple);
    return *this;
  }
  ViewBuilder& Content(ContentComponent content) {
    content_ = std::move(content);
    return *this;
  }
  ViewBuilder& ContentString(std::string data) {
    content_ = ContentComponent::OfString(std::move(data));
    return *this;
  }
  ViewBuilder& Group(GroupComponent group) {
    group_ = std::move(group);
    return *this;
  }
  ViewBuilder& GroupSet(std::vector<ViewPtr> views) {
    group_ = GroupComponent::Make(
        GroupComponent::OfSet(std::move(views)),
        GroupComponent(group_).has_sequence() ? group_ : GroupComponent());
    return *this;
  }
  ViewBuilder& GroupSequence(std::vector<ViewPtr> views) {
    group_ = GroupComponent::Make(
        group_.has_set() ? group_ : GroupComponent(),
        GroupComponent::OfSequence(std::move(views)));
    return *this;
  }

  ViewPtr Build() {
    return std::make_shared<MaterializedResourceView>(
        std::move(uri_), std::move(class_name_), std::move(name_),
        std::move(tuple_), std::move(content_), std::move(group_));
  }

 private:
  std::string uri_;
  std::string class_name_;
  std::string name_;
  TupleComponent tuple_;
  ContentComponent content_;
  GroupComponent group_;
};

/// Resource view whose components are produced by functions, evaluated on
/// every access (no caching at this level; providers may cache internally).
/// This is the adapter type used by data source plugins: the view is a
/// *logical* node whose components are fetched from the underlying
/// subsystem on demand (paper §4.1).
class FunctionalResourceView : public ResourceView {
 public:
  struct Providers {
    std::function<std::string()> name;
    std::function<TupleComponent()> tuple;
    std::function<ContentComponent()> content;
    std::function<GroupComponent()> group;
  };

  FunctionalResourceView(std::string uri, std::string class_name,
                         Providers providers)
      : uri_(std::move(uri)),
        class_name_(std::move(class_name)),
        providers_(std::move(providers)) {}

  const std::string& uri() const override { return uri_; }
  const std::string& class_name() const override { return class_name_; }
  std::string GetNameComponent() const override {
    return providers_.name ? providers_.name() : std::string();
  }
  TupleComponent GetTupleComponent() const override {
    return providers_.tuple ? providers_.tuple() : TupleComponent();
  }
  ContentComponent GetContentComponent() const override {
    return providers_.content ? providers_.content() : ContentComponent();
  }
  GroupComponent GetGroupComponent() const override {
    return providers_.group ? providers_.group() : GroupComponent();
  }

 private:
  std::string uri_;
  std::string class_name_;
  Providers providers_;
};

/// Notational shorthand for the paper's V_i → V_k (direct relatedness):
/// true iff \p to is in S ∪ Q of \p from's group component. Only the
/// enumerable part of an infinite Q (first \p infinite_prefix entries) is
/// examined.
bool IsDirectlyRelated(const ResourceView& from, const ResourceView& to,
                       size_t infinite_prefix = 64);

}  // namespace idm::core

#endif  // IDM_CORE_RESOURCE_VIEW_H_
