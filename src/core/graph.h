// Cycle-safe traversal over resource view graphs (paper §2.3: the graph may
// contain trees, DAGs and cycles; §3.4/§4.4: group sequences may be
// infinite). All traversal is bounded and deduplicates nodes on uri().

#ifndef IDM_CORE_GRAPH_H_
#define IDM_CORE_GRAPH_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/resource_view.h"

namespace idm::core {

/// Traversal limits; defaults are generous but finite so that traversing a
/// graph with infinite group sequences terminates.
struct TraversalOptions {
  /// Maximum number of distinct views visited.
  size_t max_views = 1U << 20;
  /// Maximum depth from the root(s) (root is depth 0).
  size_t max_depth = std::numeric_limits<size_t>::max();
  /// How many elements of an *infinite* group sequence to expand per view.
  /// Finite sequences are always fully expanded.
  size_t infinite_prefix = 0;
};

/// Visitor outcome per view.
enum class VisitAction {
  kContinue,      ///< keep traversing, expand this view's children
  kSkipChildren,  ///< keep traversing but do not expand this view
  kStop,          ///< abort the whole traversal
};

/// Callback invoked once per distinct view; depth is the BFS distance from
/// the nearest root.
using ViewVisitor = std::function<VisitAction(const ViewPtr& view, size_t depth)>;

/// Statistics returned by a traversal.
struct TraversalStats {
  size_t views_visited = 0;
  size_t edges_followed = 0;
  bool truncated = false;   ///< hit max_views/max_depth or an infinite prefix
  bool cycle_found = false; ///< some edge pointed at an already-visited view
};

/// Breadth-first traversal from \p roots. Visits each distinct uri once.
TraversalStats Traverse(const std::vector<ViewPtr>& roots,
                        const TraversalOptions& options,
                        const ViewVisitor& visitor);

/// Convenience: collect every view (indirectly) related to \p root,
/// including \p root itself.
std::vector<ViewPtr> CollectSubgraph(const ViewPtr& root,
                                     const TraversalOptions& options = {});

/// Convenience: all views in the subgraph matching \p predicate.
std::vector<ViewPtr> FindAll(const ViewPtr& root,
                             const std::function<bool(const ResourceView&)>& predicate,
                             const TraversalOptions& options = {});

/// The paper's V_i ⇝ V_k (indirect relatedness): true iff a directed path of
/// length >= 1 leads from \p from to \p to.
bool IsIndirectlyRelated(const ViewPtr& from, const ViewPtr& to,
                         const TraversalOptions& options = {});

/// Shape of a (finite) resource view graph.
enum class GraphShape { kTree, kDag, kCyclic };

/// Classifies the subgraph reachable from \p root. A node reached twice via
/// different parents makes it a DAG; an edge back into the active path (or
/// any previously visited node forming a directed cycle) makes it cyclic.
GraphShape ClassifyShape(const ViewPtr& root,
                         const TraversalOptions& options = {});

}  // namespace idm::core

#endif  // IDM_CORE_GRAPH_H_
