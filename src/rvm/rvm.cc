#include "rvm/rvm.h"

#include <chrono>
#include <unordered_set>

#include "index/analyzer.h"
#include "util/string_util.h"

namespace idm::rvm {

using core::ContentComponent;
using core::GroupComponent;
using core::TupleComponent;
using core::ViewPtr;
using index::DocId;

namespace {

Micros WallNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Classifies a view uri for Table 2: base items have plain uris; derived
/// views carry a '#'-fragment stamped by the converter ("#xml...", "#tex...").
enum class Derivation { kBase, kXml, kLatex, kOther };

Derivation Classify(const std::string& uri) {
  size_t hash = uri.find('#');
  if (hash == std::string::npos) return Derivation::kBase;
  if (uri.compare(hash, 4, "#xml") == 0) return Derivation::kXml;
  if (uri.compare(hash, 4, "#tex") == 0) return Derivation::kLatex;
  return Derivation::kOther;
}

}  // namespace

// ---------------------------------------------------------------------------
// Mutation routing. Each primitive either touches the structure directly
// (no engine: the classic in-memory path) or builds a storage::Mutation,
// stages it in the engine's WAL batch and applies it through the SAME
// ApplyMutation used by recovery — live run and replay therefore execute
// identical state transitions.

storage::Structures ReplicaIndexesModule::Mutable() {
  storage::Structures s;
  s.catalog = &catalog_;
  s.names = &name_index_;
  s.tuples = &tuple_index_;
  s.content = &content_index_;
  s.groups = &group_store_;
  s.lineage = &lineage_;
  s.versions = &versions_;
  return s;
}

Status ReplicaIndexesModule::CommitBatch() {
  if (engine_ == nullptr) return Status::OK();
  return engine_->Commit();
}

uint32_t ReplicaIndexesModule::MutInternSource(const std::string& name) {
  if (engine_ == nullptr) return catalog_.InternSource(name);
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kInternSource;
  m.s1 = name;
  engine_->Log(m);
  return static_cast<uint32_t>(storage::ApplyMutation(m, Mutable()).value());
}

DocId ReplicaIndexesModule::MutRegister(const std::string& uri,
                                        const std::string& class_name,
                                        uint32_t source, bool derived) {
  if (engine_ == nullptr) {
    return catalog_.Register(uri, class_name, source, derived);
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kRegister;
  m.s1 = uri;
  m.s2 = class_name;
  m.a = source;
  m.b = derived ? 1 : 0;
  engine_->Log(m);
  return storage::ApplyMutation(m, Mutable()).value();
}

void ReplicaIndexesModule::MutCatalogRemove(DocId id) {
  if (engine_ == nullptr) {
    catalog_.Remove(id);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kCatalogRemove;
  m.a = id;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutNameAdd(DocId id, const std::string& name) {
  if (engine_ == nullptr) {
    name_index_.Add(id, name);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kNameAdd;
  m.a = id;
  m.s1 = name;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutNameRemove(DocId id) {
  if (engine_ == nullptr) {
    name_index_.Remove(id);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kNameRemove;
  m.a = id;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutTupleAdd(DocId id,
                                       const core::TupleComponent& tuple) {
  if (engine_ == nullptr) {
    tuple_index_.Add(id, tuple);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kTupleAdd;
  m.a = id;
  tuple.SerializeTo(&m.s1);
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutTupleRemove(DocId id) {
  if (engine_ == nullptr) {
    tuple_index_.Remove(id);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kTupleRemove;
  m.a = id;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutContentAdd(DocId id, const std::string& text) {
  if (engine_ == nullptr) {
    content_index_.AddDocument(id, text);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kContentAdd;
  m.a = id;
  m.s1 = text;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutContentRemove(DocId id) {
  if (engine_ == nullptr) {
    content_index_.RemoveDocument(id);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kContentRemove;
  m.a = id;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutGroupSet(DocId id, std::vector<DocId> children) {
  if (engine_ == nullptr) {
    group_store_.SetChildren(id, std::move(children));
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kGroupSet;
  m.a = id;
  m.ids.assign(children.begin(), children.end());
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutGroupRemoveAll(DocId id) {
  if (engine_ == nullptr) {
    group_store_.RemoveAllEdgesOf(id);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kGroupRemoveAll;
  m.a = id;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutLineageRecord(DocId derived, DocId origin,
                                            const std::string& transformation) {
  if (engine_ == nullptr) {
    lineage_.Record(derived, origin, transformation);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kLineageRecord;
  m.a = derived;
  m.b = origin;
  m.s1 = transformation;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutLineageForget(DocId id) {
  if (engine_ == nullptr) {
    lineage_.Forget(id);
    return;
  }
  storage::Mutation m;
  m.kind = storage::Mutation::Kind::kLineageForget;
  m.a = id;
  engine_->Log(m);
  (void)storage::ApplyMutation(m, Mutable());
}

void ReplicaIndexesModule::MutVersionAppend(index::ChangeRecord::Op op,
                                            DocId id) {
  ++mutation_count_;
  if (mutation_metric_ != nullptr) mutation_metric_->Inc();
  if (engine_ == nullptr) {
    versions_.Append(op, id);
  } else {
    storage::Mutation m;
    m.kind = storage::Mutation::Kind::kVersionAppend;
    m.a = static_cast<uint64_t>(op);
    m.b = id;
    // The timestamp rides in the record so replay reproduces it exactly
    // even though the recovering process observes a different clock.
    m.c = static_cast<uint64_t>(clock_ != nullptr ? clock_->NowMicros() : 0);
    engine_->Log(m);
    (void)storage::ApplyMutation(m, Mutable());
  }
  // Live-path epoch bookkeeping and change fan-out. Every mutation route
  // (indexing, sync, notifications, removal) funnels through this append,
  // so this is the single choke point where fine-grained epochs and the
  // subscription stream observe writes. The catalog entry is present for
  // adds/updates and tombstoned (uri and source retained) for removals;
  // the name replica has already dropped removed ids, so removals carry
  // an empty name.
  const index::Version version = versions_.current();
  const index::CatalogEntry* entry = catalog_.Entry(id);
  static const std::string kNoUri;
  const std::string& uri = entry != nullptr ? entry->uri : kNoUri;
  const uint32_t source = entry != nullptr ? entry->source : 0;
  epochs_.Note(source, uri, version);
  if (listener_) {
    const std::string& name = op == index::ChangeRecord::Op::kRemoved
                                  ? kNoUri
                                  : name_index_.NameOf(id);
    index::ChangeRecord record;
    record.version = version;
    record.op = op;
    record.id = id;
    listener_(record, source, uri, name);
  }
}

storage::Snapshot ReplicaIndexesModule::ExportSnapshot() const {
  storage::Snapshot snapshot;
  snapshot.last_commit_seq = engine_ != nullptr ? engine_->commit_seq() : 0;
  snapshot.catalog = catalog_.Serialize();
  snapshot.names = name_index_.Serialize();
  snapshot.tuples = tuple_index_.Serialize();
  snapshot.content = content_index_.Serialize();
  snapshot.groups = group_store_.Serialize();
  snapshot.lineage = lineage_.Serialize();
  snapshot.versions = versions_.Serialize();
  return snapshot;
}

Status ReplicaIndexesModule::RestoreSnapshot(const storage::Snapshot& snapshot) {
  IDM_ASSIGN_OR_RETURN(index::Catalog catalog,
                       index::Catalog::Deserialize(snapshot.catalog));
  IDM_ASSIGN_OR_RETURN(index::NameIndex names,
                       index::NameIndex::Deserialize(snapshot.names));
  IDM_ASSIGN_OR_RETURN(index::InvertedIndex content,
                       index::InvertedIndex::Deserialize(snapshot.content));
  IDM_ASSIGN_OR_RETURN(index::GroupStore groups,
                       index::GroupStore::Deserialize(snapshot.groups));
  IDM_ASSIGN_OR_RETURN(index::LineageStore lineage,
                       index::LineageStore::Deserialize(snapshot.lineage));
  IDM_ASSIGN_OR_RETURN(index::VersionLog versions,
                       index::VersionLog::Deserialize(snapshot.versions, clock_));
  // The tuple index restores in place (it is non-movable); it comes last so
  // a failure above leaves the module untouched.
  IDM_RETURN_NOT_OK(
      index::TupleIndex::DeserializeInto(snapshot.tuples, &tuple_index_));
  catalog_ = std::move(catalog);
  name_index_ = std::move(names);
  content_index_ = std::move(content);
  group_store_ = std::move(groups);
  lineage_ = std::move(lineage);
  versions_ = std::move(versions);
  // Restore bypasses MutVersionAppend, so the fine-grained epochs must be
  // reconstructed from the recovered log + catalog.
  epochs_.Rebuild(versions_, catalog_);
  return Status::OK();
}

Status ReplicaIndexesModule::ReplayMutations(
    const std::vector<storage::Mutation>& mutations) {
  storage::Structures structures = Mutable();
  for (const storage::Mutation& m : mutations) {
    IDM_RETURN_NOT_OK(storage::ApplyMutation(m, structures).status());
  }
  // Replay applies mutations directly (silent: no listener, no epoch
  // notes); rebuild the epoch map to match the replayed log.
  epochs_.Rebuild(versions_, catalog_);
  return Status::OK();
}

Result<SourceIndexStats> ReplicaIndexesModule::Walk(
    DataSource& source, const ConverterRegistry& converters,
    const ViewPtr& root, const IndexingOptions& options, SyncStats* sync) {
  SourceIndexStats stats;
  stats.source_name = source.name();
  stats.source_bytes = source.TotalBytes();
  uint32_t source_id = MutInternSource(source.name());
  Micros sim_start = source.access_micros();

  std::deque<ViewPtr> queue;
  std::unordered_set<std::string> visited;
  // Children are pre-registered in the catalog (their ids are needed for
  // group edges) before they are visited; remember them so they still
  // count as "added" when popped.
  std::unordered_set<DocId> preregistered;

  ViewPtr start = options.apply_converters ? converters.MaybeWrap(root) : root;
  if (start != nullptr) {
    queue.push_back(start);
    visited.insert(start->uri());
  }

  while (!queue.empty()) {
    if (stats.views_total >= options.max_views) {
      stats.truncated = true;
      break;
    }
    ViewPtr view = std::move(queue.front());
    queue.pop_front();
    ++stats.views_total;

    // --- Phase 1: data source access ---------------------------------------
    Micros t0 = WallNow();
    const std::string& uri = view->uri();
    std::string name = view->GetNameComponent();
    TupleComponent tuple = view->GetTupleComponent();
    ContentComponent content = view->GetContentComponent();
    std::string text;
    bool has_text = false;
    if (!content.empty() && content.finite()) {
      auto materialized = content.ToString();
      if (materialized.ok() && index::LooksLikeText(*materialized)) {
        text = std::move(materialized).value();
        has_text = !text.empty();
      }
    } else if (!content.empty() && options.infinite_content_prefix > 0) {
      // Infinite χ: index a bounded prefix so stream views are searchable.
      std::string prefix =
          content.GuardedPrefix(options.infinite_content_prefix, nullptr);
      if (index::LooksLikeText(prefix)) {
        text = std::move(prefix);
        has_text = !text.empty();
      }
      stats.truncated = true;  // only the prefix of the stream is indexed
    }
    stats.times.data_source_access += WallNow() - t0;

    // --- Phase 1b: group expansion & Content2iDM conversion ----------------
    // Converter parsing is RVM work, not source access; it lands in the
    // component-indexing bar of Figure 5. (Simulated source charges raised
    // while listing children are still folded into access at the end.)
    Micros t0b = WallNow();
    GroupComponent group = view->GetGroupComponent();
    if (group.has_sequence() && !group.sequence_finite()) {
      stats.truncated = true;  // infinite Q: only the window is indexed
    }
    std::vector<ViewPtr> children = group.DirectlyRelated(options.infinite_window);
    if (options.apply_converters) {
      for (ViewPtr& child : children) child = converters.MaybeWrap(child);
    }
    stats.times.component_indexing += WallNow() - t0b;

    // --- Phase 2: catalog insert -------------------------------------------
    Micros t1 = WallNow();
    bool is_new = !catalog_.Find(uri).has_value();
    Derivation derivation = Classify(uri);
    DocId id = MutRegister(uri, view->class_name(), source_id,
                           derivation != Derivation::kBase);
    if (preregistered.erase(id) > 0) is_new = true;
    std::vector<DocId> child_ids;
    child_ids.reserve(children.size());
    for (const ViewPtr& child : children) {
      if (child == nullptr) continue;
      bool child_known = catalog_.Find(child->uri()).has_value();
      Derivation child_derivation = Classify(child->uri());
      DocId child_id = MutRegister(
          child->uri(), child->class_name(), source_id,
          child_derivation != Derivation::kBase);
      if (!child_known) preregistered.insert(child_id);
      child_ids.push_back(child_id);
    }
    stats.times.catalog_insert += WallNow() - t1;

    // --- Phase 3: component indexing ---------------------------------------
    Micros t2 = WallNow();
    bool changed = is_new;
    if (!is_new && sync != nullptr) {
      changed = name_index_.NameOf(id) != name ||
                !(tuple_index_.TupleOf(id) == tuple);
    }
    if (changed || sync == nullptr) {
      MutNameAdd(id, name);
      MutTupleAdd(id, tuple);
      if (has_text) {
        MutContentAdd(id, text);
      } else {
        MutContentRemove(id);
      }
    }
    if (has_text) stats.net_input_bytes += text.size();
    MutGroupSet(id, child_ids);
    // Lineage: a derived view was produced from its base item by a
    // Content2iDM conversion (paper §8, item 2).
    if (derivation != Derivation::kBase) {
      size_t hash = uri.find('#');
      auto base = catalog_.Find(uri.substr(0, hash));
      if (base.has_value() && *base != id) {
        const char* transformation =
            derivation == Derivation::kXml     ? "convert:xml"
            : derivation == Derivation::kLatex ? "convert:latex"
                                               : "convert";
        MutLineageRecord(id, *base, transformation);
      }
    }
    // Versioning: every observed change advances the dataspace version
    // (paper §8, item 1).
    if (is_new) {
      MutVersionAppend(index::ChangeRecord::Op::kAdded, id);
    } else if (changed) {
      MutVersionAppend(index::ChangeRecord::Op::kUpdated, id);
    }
    stats.times.component_indexing += WallNow() - t2;

    if (sync != nullptr) {
      if (is_new) {
        ++sync->added;
      } else if (changed) {
        ++sync->updated;
      }
    }

    // Optional integrity checking against the resource view classes.
    if (options.conformance_registry != nullptr) {
      Status conforms = options.conformance_registry->CheckConformance(
          *view, options.infinite_window);
      if (!conforms.ok()) {
        ++stats.conformance_violations;
        if (stats.conformance_samples.size() < 5) {
          stats.conformance_samples.push_back(conforms.ToString());
        }
      }
    }

    switch (derivation) {
      case Derivation::kBase: ++stats.views_base; break;
      case Derivation::kXml: ++stats.views_derived_xml; break;
      case Derivation::kLatex: ++stats.views_derived_latex; break;
      case Derivation::kOther: ++stats.views_derived_other; break;
    }

    for (ViewPtr& child : children) {
      if (child == nullptr) continue;
      if (visited.insert(child->uri()).second) {
        queue.push_back(std::move(child));
      }
    }
  }

  // Fold the source's simulated access cost into the access phase: it is
  // the dominant term for remote sources (paper Fig. 5, Email/IMAP).
  stats.times.data_source_access += source.access_micros() - sim_start;
  return stats;
}

Result<SourceIndexStats> ReplicaIndexesModule::IndexSource(
    DataSource& source, const ConverterRegistry& converters,
    const IndexingOptions& options) {
  IDM_ASSIGN_OR_RETURN(ViewPtr root, source.RootView());
  IDM_ASSIGN_OR_RETURN(SourceIndexStats stats,
                       Walk(source, converters, root, options, nullptr));
  IDM_RETURN_NOT_OK(CommitBatch());
  return stats;
}

Result<SyncStats> ReplicaIndexesModule::SyncSource(
    DataSource& source, const ConverterRegistry& converters,
    const IndexingOptions& options) {
  uint32_t source_id = MutInternSource(source.name());

  // Snapshot the *base* uris currently attributed to this source. Derived
  // views (converter subgraphs) are not probed individually: they are
  // removed together with their base item by RemoveSubtree.
  std::unordered_set<std::string> before;
  for (DocId id : catalog_.LiveIds()) {
    const index::CatalogEntry* entry = catalog_.Entry(id);
    if (entry != nullptr && entry->source == source_id && !entry->derived) {
      before.insert(entry->uri);
    }
  }

  IDM_ASSIGN_OR_RETURN(ViewPtr root, source.RootView());
  SyncStats sync;
  IDM_ASSIGN_OR_RETURN(SourceIndexStats stats,
                       Walk(source, converters, root, options, &sync));
  (void)stats;

  // Anything previously known but no longer reachable has been deleted
  // behind the RVM's back.
  for (const std::string& uri : before) {
    auto id = catalog_.Find(uri);
    if (!id.has_value()) continue;
    // Visited views were re-registered; detect the unvisited ones by
    // checking whether the walk refreshed their edges this round. Cheap
    // proxy: re-resolve via the source.
    auto live = source.ViewByUri(uri);
    if (!live.ok()) {
      if (live.status().IsRetryable()) {
        // A flaky probe is not a deletion: keep the last-known-good state
        // and let the next poll retry, instead of purging the subtree on a
        // transient kIoError/kUnavailable.
        sync.RecordFailure(uri);
        continue;
      }
      IDM_ASSIGN_OR_RETURN(SyncStats removed, RemoveSubtree(uri));
      sync.removed += removed.removed;
    }
  }
  IDM_RETURN_NOT_OK(CommitBatch());
  return sync;
}

Result<SyncStats> ReplicaIndexesModule::IndexSubtree(
    DataSource& source, const ConverterRegistry& converters,
    const std::string& uri, const IndexingOptions& options) {
  auto view = source.ViewByUri(uri);
  if (!view.ok()) {
    if (view.status().IsRetryable()) {
      // Partial-failure semantics: a flaky subtree is skipped and recorded,
      // not fatal — existing index state for it stays untouched.
      SyncStats sync;
      sync.RecordFailure(uri);
      return sync;
    }
    return view.status();
  }
  SyncStats sync;
  IDM_ASSIGN_OR_RETURN(SourceIndexStats stats,
                       Walk(source, converters, *view, options, &sync));
  (void)stats;
  // The walk starts *at* the changed uri, so a freshly created view is
  // indexed without the full poll that would refresh its parent's child
  // list — leaving it unreachable by descendant-path expansion until the
  // next Poll. Patch the missing γ edge through the Mut* choke point so
  // WAL replay and mutation listeners observe it too.
  LinkIntoParent(uri);
  IDM_RETURN_NOT_OK(CommitBatch());
  return sync;
}

void ReplicaIndexesModule::LinkIntoParent(const std::string& uri) {
  auto id = catalog_.Find(uri);
  if (!id.has_value() || uri.find('#') != std::string::npos) return;
  size_t slash = uri.rfind('/');
  if (slash == std::string::npos || slash == 0) return;
  // "vfs:/a/b" parents to "vfs:/a"; a top-level "vfs:/a" parents to the
  // scheme root "vfs:/" (the slash stays when stripping leaves none).
  auto parent = catalog_.Find(uri.substr(0, slash));
  if (!parent.has_value()) parent = catalog_.Find(uri.substr(0, slash + 1));
  if (!parent.has_value() || *parent == *id) return;
  std::vector<index::DocId> children = group_store_.Children(*parent);
  for (index::DocId child : children) {
    if (child == *id) return;
  }
  children.push_back(*id);
  MutGroupSet(*parent, std::move(children));
}

Result<SyncStats> ReplicaIndexesModule::RemoveSubtree(const std::string& uri) {
  SyncStats stats;
  std::string slash_prefix = uri + "/";
  std::string hash_prefix = uri + "#";
  for (DocId id : catalog_.LiveIds()) {
    const index::CatalogEntry* entry = catalog_.Entry(id);
    if (entry == nullptr) continue;
    const std::string& candidate = entry->uri;
    if (candidate == uri || StartsWith(candidate, slash_prefix) ||
        StartsWith(candidate, hash_prefix)) {
      MutCatalogRemove(id);
      MutNameRemove(id);
      MutTupleRemove(id);
      MutContentRemove(id);
      MutGroupRemoveAll(id);
      MutLineageForget(id);
      MutVersionAppend(index::ChangeRecord::Op::kRemoved, id);
      ++stats.removed;
    }
  }
  IDM_RETURN_NOT_OK(CommitBatch());
  return stats;
}

namespace {

void PutBlock(std::string* out, const std::string& block) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((block.size() >> (i * 8)) & 0xFF));
  }
  out->append(block);
}

bool GetBlock(const std::string& in, size_t* pos, std::string* block) {
  if (*pos + 8 > in.size()) return false;
  uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
           << (i * 8);
  }
  *pos += 8;
  if (*pos + len > in.size()) return false;
  block->assign(in, *pos, len);
  *pos += len;
  return true;
}

}  // namespace

std::string ReplicaIndexesModule::ExportMetadata() const {
  std::string out;
  PutBlock(&out, catalog_.Serialize());
  PutBlock(&out, versions_.Serialize());
  return out;
}

Status ReplicaIndexesModule::ImportMetadata(const std::string& data) {
  size_t pos = 0;
  std::string catalog_block, version_block;
  if (!GetBlock(data, &pos, &catalog_block) ||
      !GetBlock(data, &pos, &version_block) || pos != data.size()) {
    return Status::ParseError("malformed metadata image");
  }
  IDM_ASSIGN_OR_RETURN(index::Catalog catalog,
                       index::Catalog::Deserialize(catalog_block));
  IDM_ASSIGN_OR_RETURN(index::VersionLog versions,
                       index::VersionLog::Deserialize(version_block));
  catalog_ = std::move(catalog);
  versions_ = std::move(versions);
  return Status::OK();
}

IndexSizes ReplicaIndexesModule::Sizes() const {
  IndexSizes sizes;
  sizes.name_bytes = name_index_.MemoryUsage();
  sizes.tuple_bytes = tuple_index_.MemoryUsage();
  sizes.content_bytes = content_index_.MemoryUsage();
  sizes.group_bytes = group_store_.MemoryUsage();
  sizes.catalog_bytes = catalog_.MemoryUsage();
  return sizes;
}

void ReplicaIndexesModule::SetObservability(obs::Observability* obs) {
  mutation_metric_ =
      obs == nullptr ? nullptr : obs->metrics().counter("rvm.mutations");
}

// ---------------------------------------------------------------------------
// SynchronizationManager

Result<SourceIndexStats> SynchronizationManager::RegisterSource(
    std::shared_ptr<DataSource> source) {
  DataSource* raw = source.get();
  sources_.push_back(source);
  // Subscribe first so that changes racing the initial scan are not lost.
  Subscribe(raw);
  return module_->IndexSource(*raw, converters_, options_);
}

void SynchronizationManager::AttachSource(std::shared_ptr<DataSource> source) {
  DataSource* raw = source.get();
  sources_.push_back(std::move(source));
  Subscribe(raw);
}

void SynchronizationManager::Subscribe(DataSource* raw) {
  raw->SubscribeChanges(
      [this, raw, alive = std::weak_ptr<char>(alive_)](
          const SourceChange& change) {
        if (alive.expired()) return;  // manager is gone; drop the event
        pending_.emplace_back(raw, change);
      });
}

DataSource* SynchronizationManager::FindSource(const std::string& name) const {
  for (const auto& source : sources_) {
    if (source->name() == name) return source.get();
  }
  return nullptr;
}

Result<SyncStats> SynchronizationManager::Poll() {
  SyncStats total;
  for (const auto& source : sources_) {
    auto stats = module_->SyncSource(*source, converters_, options_);
    if (!stats.ok()) {
      if (stats.status().IsRetryable()) {
        // One unreachable source degrades the round instead of aborting it:
        // the remaining sources still sync, and the next poll retries.
        total.RecordFailure(source->name());
        continue;
      }
      return stats.status();
    }
    total.Merge(*stats);
  }
  // Polling observed the current state; queued notifications are subsumed.
  pending_.clear();
  ++totals_.polls;
  if (metrics_.polls != nullptr) metrics_.polls->Inc();
  Account(total);
  if (post_sync_) post_sync_();
  return total;
}

Result<SyncStats> SynchronizationManager::ProcessNotifications() {
  SyncStats total;
  while (!pending_.empty()) {
    auto [source, change] = pending_.front();
    pending_.pop_front();
    if (change.kind == SourceChange::Kind::kRemoved) {
      IDM_ASSIGN_OR_RETURN(SyncStats removed,
                           module_->RemoveSubtree(change.uri));
      total.removed += removed.removed;
    } else {
      auto stats =
          module_->IndexSubtree(*source, converters_, change.uri, options_);
      if (stats.ok()) {
        total.Merge(*stats);
      } else if (stats.status().code() == StatusCode::kNotFound) {
        // The item vanished between the notification and now: the stale
        // "added" collapses into a removal.
        IDM_ASSIGN_OR_RETURN(SyncStats removed,
                             module_->RemoveSubtree(change.uri));
        total.removed += removed.removed;
      } else {
        total.RecordFailure(change.uri);
      }
    }
    ++totals_.notifications;
    if (metrics_.notifications != nullptr) metrics_.notifications->Inc();
  }
  Account(total);
  if (post_sync_) post_sync_();
  return total;
}

void SynchronizationManager::Account(const SyncStats& stats) {
  totals_.added += stats.added;
  totals_.updated += stats.updated;
  totals_.removed += stats.removed;
  totals_.failed += stats.failed;
  if (metrics_.added != nullptr) {
    metrics_.added->Inc(stats.added);
    metrics_.updated->Inc(stats.updated);
    metrics_.removed->Inc(stats.removed);
    metrics_.failed->Inc(stats.failed);
  }
}

void SynchronizationManager::SetObservability(obs::Observability* obs) {
  if (obs == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  obs::MetricsRegistry& reg = obs->metrics();
  metrics_.added = reg.counter("rvm.sync.added");
  metrics_.updated = reg.counter("rvm.sync.updated");
  metrics_.removed = reg.counter("rvm.sync.removed");
  metrics_.failed = reg.counter("rvm.sync.failed");
  metrics_.polls = reg.counter("rvm.sync.polls");
  metrics_.notifications = reg.counter("rvm.sync.notifications");
}

}  // namespace idm::rvm
