#include "rvm/converter.h"

#include "core/view_class.h"
#include "latex/latex.h"
#include "latex/latex_views.h"
#include "util/string_util.h"
#include "xml/xml.h"
#include "xml/xml_views.h"

namespace idm::rvm {

using core::ContentComponent;
using core::FunctionalResourceView;
using core::GroupComponent;
using core::ViewPtr;

namespace {

/// Shared wrapper logic: keeps η/τ/χ of the original, upgrades the class,
/// and appends a lazily computed content subgraph to γ.Q.
class WrappingConverter : public ContentConverter {
 public:
  WrappingConverter(std::string name, std::string extension,
                    std::string wrapped_class)
      : name_(std::move(name)),
        extension_(std::move(extension)),
        wrapped_class_(std::move(wrapped_class)) {}

  const std::string& name() const override { return name_; }

  bool CanConvert(const core::ResourceView& view) const override {
    // File-like views only (files, attachments, and their subclasses are
    // the ones with raw document content).
    if (view.class_name() != "file" && view.class_name() != "attachment" &&
        view.class_name() != "xmlfile" && view.class_name() != "latexfile") {
      return false;
    }
    std::string lower = ToLower(view.GetNameComponent());
    return EndsWith(lower, extension_);
  }

  ViewPtr Wrap(const ViewPtr& view) const override {
    const WrappingConverter* self = this;
    FunctionalResourceView::Providers providers;
    providers.name = [view]() { return view->GetNameComponent(); };
    providers.tuple = [view]() { return view->GetTupleComponent(); };
    providers.content = [view]() { return view->GetContentComponent(); };
    std::string uri = view->uri();
    providers.group = [self, view, uri]() {
      GroupComponent original = view->GetGroupComponent();
      return GroupComponent::Make(
          original,
          GroupComponent::OfLazySequence([self, view, uri]() {
            std::vector<ViewPtr> out;
            auto content = view->GetContentComponent().ToString();
            if (!content.ok()) {
              ++self->failures_;
              return out;
            }
            auto subgraph = self->Convert(*content, uri);
            if (!subgraph.ok()) {
              ++self->failures_;
              return out;
            }
            ++self->conversions_;
            out.push_back(std::move(subgraph).value());
            return out;
          }));
    };
    return std::make_shared<FunctionalResourceView>(uri, wrapped_class_,
                                                    std::move(providers));
  }

 protected:
  /// Parses \p content and returns the subgraph root.
  virtual Result<ViewPtr> Convert(const std::string& content,
                                  const std::string& uri) const = 0;

 private:
  std::string name_;
  std::string extension_;
  std::string wrapped_class_;
};

class XmlConverter : public WrappingConverter {
 public:
  XmlConverter() : WrappingConverter("xml", ".xml", "xmlfile") {}

 protected:
  Result<ViewPtr> Convert(const std::string& content,
                          const std::string& uri) const override {
    IDM_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(content));
    return xml::XmlToViews(doc, uri);
  }
};

class LatexConverter : public WrappingConverter {
 public:
  LatexConverter() : WrappingConverter("latex", ".tex", "latexfile") {}

 protected:
  Result<ViewPtr> Convert(const std::string& content,
                          const std::string& uri) const override {
    IDM_ASSIGN_OR_RETURN(latex::LatexDocument doc, latex::ParseLatex(content));
    return latex::LatexToViews(doc, uri);
  }
};

}  // namespace

std::unique_ptr<ContentConverter> MakeXmlConverter() {
  return std::make_unique<XmlConverter>();
}

std::unique_ptr<ContentConverter> MakeLatexConverter() {
  return std::make_unique<LatexConverter>();
}

ViewPtr ConverterRegistry::MaybeWrap(const ViewPtr& view) const {
  if (view == nullptr) return view;
  for (const auto& converter : converters_) {
    if (converter->CanConvert(*view)) return converter->Wrap(view);
  }
  return view;
}

const ContentConverter* ConverterRegistry::FindFor(
    const core::ResourceView& view) const {
  for (const auto& converter : converters_) {
    if (converter->CanConvert(view)) return converter.get();
  }
  return nullptr;
}

ConverterRegistry ConverterRegistry::Standard() {
  ConverterRegistry registry;
  registry.Register(MakeXmlConverter());
  registry.Register(MakeLatexConverter());
  return registry;
}

}  // namespace idm::rvm
