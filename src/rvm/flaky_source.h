// FlakySource: a DataSource decorator that injects faults in front of any
// plugin without touching it — the test double for every flaky personal
// substrate the paper names (remote IMAP mailboxes, unmounted volumes, dead
// feeds). Each source-level operation (RootView, ViewByUri, DeleteItem)
// first consults a deterministic FaultInjector, which may return kIoError /
// kUnavailable or charge a latency spike to the simulation clock.

#ifndef IDM_RVM_FLAKY_SOURCE_H_
#define IDM_RVM_FLAKY_SOURCE_H_

#include <memory>
#include <string>

#include "rvm/data_source.h"
#include "util/fault.h"

namespace idm::rvm {

class FlakySource : public DataSource {
 public:
  /// \p injector must outlive this source (it is typically owned by the
  /// test or bench driving the scenario).
  FlakySource(std::shared_ptr<DataSource> inner, FaultInjector* injector)
      : inner_(std::move(inner)), injector_(injector) {}

  const std::string& name() const override { return inner_->name(); }

  Result<core::ViewPtr> RootView() override;
  Result<core::ViewPtr> ViewByUri(const std::string& uri) override;
  Status DeleteItem(const std::string& uri) override;

  /// Injected latency counts as access cost: Figure-5-style accounting
  /// sees the slow reads.
  Micros access_micros() const override {
    return inner_->access_micros() + injector_->latency_injected_micros();
  }
  uint64_t TotalBytes() const override { return inner_->TotalBytes(); }
  bool SubscribeChanges(
      std::function<void(const SourceChange&)> callback) override {
    return inner_->SubscribeChanges(std::move(callback));
  }

  DataSource* inner() const { return inner_.get(); }
  FaultInjector* injector() const { return injector_; }

 private:
  std::shared_ptr<DataSource> inner_;
  FaultInjector* injector_;
};

}  // namespace idm::rvm

#endif  // IDM_RVM_FLAKY_SOURCE_H_
