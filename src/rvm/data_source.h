// Data Source Proxy (paper §5.2, component 1): the plugin interface that
// represents each subsystem (filesystem, IMAP server, RSS feed, ...) as an
// initial iDM graph, plus the concrete plugins for this repository's
// substrates.

#ifndef IDM_RVM_DATA_SOURCE_H_
#define IDM_RVM_DATA_SOURCE_H_

#include <functional>
#include <memory>
#include <string>

#include "core/resource_view.h"
#include "email/imap.h"
#include "rel/relational.h"
#include "stream/rss.h"
#include "stream/stream.h"
#include "util/clock.h"
#include "vfs/vfs.h"

namespace idm::rvm {

/// A change noticed by a data source: the uri of the affected view.
struct SourceChange {
  enum class Kind { kAddedOrModified, kRemoved };
  Kind kind;
  std::string uri;
};

/// A Data Source Plugin.
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Display name, also the catalog's source name ("Filesystem", ...).
  virtual const std::string& name() const = 0;

  /// The root of this source's initial iDM graph. Components of the
  /// returned views are computed lazily against the live source.
  virtual Result<core::ViewPtr> RootView() = 0;

  /// Re-instantiates the view with the given uri (used by incremental
  /// synchronization). NotFound when the underlying item is gone.
  virtual Result<core::ViewPtr> ViewByUri(const std::string& uri) = 0;

  /// Cumulative *simulated* access cost charged by the source so far.
  virtual Micros access_micros() const = 0;

  /// Total stored bytes (Table 2's "Total Size" column).
  virtual uint64_t TotalBytes() const = 0;

  /// Subscribes to change notifications where the subsystem supports them
  /// (paper §5.2: hfs events, IMAP notifications). Default: unsupported.
  virtual bool SubscribeChanges(std::function<void(const SourceChange&)>) {
    return false;
  }

  /// Deletes the underlying item of a *base* view (write-through for iQL's
  /// update support, §5.1). Sources that cannot delete return
  /// Unimplemented. Deleting derived views is never possible — they have
  /// no independent existence.
  virtual Status DeleteItem(const std::string& uri) {
    return Status::Unimplemented("source '" + name() + "' cannot delete '" +
                                 uri + "'");
  }
};

/// Files&folders plugin over the virtual filesystem.
class FileSystemSource : public DataSource {
 public:
  FileSystemSource(std::string name, std::shared_ptr<vfs::VirtualFileSystem> fs,
                   std::string root_path = "/");

  const std::string& name() const override { return name_; }
  Result<core::ViewPtr> RootView() override;
  Result<core::ViewPtr> ViewByUri(const std::string& uri) override;
  Micros access_micros() const override { return fs_->access_micros(); }
  uint64_t TotalBytes() const override { return fs_->TotalContentBytes(); }
  bool SubscribeChanges(std::function<void(const SourceChange&)>) override;
  Status DeleteItem(const std::string& uri) override;

 private:
  std::string name_;
  std::shared_ptr<vfs::VirtualFileSystem> fs_;
  std::string root_path_;
};

/// Email plugin over the simulated IMAP server.
class ImapSource : public DataSource {
 public:
  ImapSource(std::string name, std::shared_ptr<email::ImapServer> server);

  const std::string& name() const override { return name_; }
  Result<core::ViewPtr> RootView() override;
  Result<core::ViewPtr> ViewByUri(const std::string& uri) override;
  Micros access_micros() const override { return server_->access_micros(); }
  uint64_t TotalBytes() const override { return server_->TotalWireBytes(); }
  bool SubscribeChanges(std::function<void(const SourceChange&)>) override;
  Status DeleteItem(const std::string& uri) override;

 private:
  std::string name_;
  std::shared_ptr<email::ImapServer> server_;
};

/// Relational plugin: a local relational database (e.g. an address book —
/// the paper's example of structured desktop data) exposed through the
/// reldb/relation/tuple classes of Table 1. Local and latency-free.
class RelationalSource : public DataSource {
 public:
  RelationalSource(std::string name, std::shared_ptr<rel::RelationalDb> db);

  const std::string& name() const override { return name_; }
  Result<core::ViewPtr> RootView() override;
  Result<core::ViewPtr> ViewByUri(const std::string& uri) override;
  Micros access_micros() const override { return 0; }
  uint64_t TotalBytes() const override;

 private:
  std::string name_;
  std::shared_ptr<rel::RelationalDb> db_;
};

/// RSS plugin: polls a feed server and exposes the delivered items as an
/// rssatom stream view (infinite Q over the poll buffer).
class RssSource : public DataSource {
 public:
  RssSource(std::string name, std::shared_ptr<stream::FeedServer> server);

  const std::string& name() const override { return name_; }
  Result<core::ViewPtr> RootView() override;
  Result<core::ViewPtr> ViewByUri(const std::string& uri) override;
  Micros access_micros() const override { return server_->access_micros(); }
  uint64_t TotalBytes() const override;

  /// One polling round against the feed (the RSS world has no push).
  Result<size_t> Poll();

 private:
  std::string name_;
  std::shared_ptr<stream::FeedServer> server_;
  stream::EventBus bus_;
  std::shared_ptr<stream::StreamBuffer> buffer_;
  std::unique_ptr<stream::RssPoller> poller_;
};

}  // namespace idm::rvm

#endif  // IDM_RVM_DATA_SOURCE_H_
