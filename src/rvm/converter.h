// Content2iDM Converters (paper §5.2, component 2): enrich the initial iDM
// graph by converting content components into resource view subgraphs that
// reflect the structural information inside files. The two converters the
// paper ships — XML and LaTeX — are provided; the registry is open for
// more.
//
// A converter *wraps* a file-like view: the wrapped view keeps the uri,
// name, tuple and content of the original, upgrades the class (file →
// xmlfile / latexfile), and extends the group component with a lazily
// parsed content subgraph (paper §4.1: the subgraph of 'vldb 2006.tex' is
// computed when getGroupComponent() is called).

#ifndef IDM_RVM_CONVERTER_H_
#define IDM_RVM_CONVERTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/resource_view.h"

namespace idm::rvm {

class ContentConverter {
 public:
  virtual ~ContentConverter() = default;

  /// Converter id: "xml", "latex", ... Also tags derived-view accounting.
  virtual const std::string& name() const = 0;

  /// True when this converter understands \p view's content (decided from
  /// cheap signals: name extension; never reads the content itself).
  virtual bool CanConvert(const core::ResourceView& view) const = 0;

  /// Returns the enriched wrapper view. The content is parsed lazily, on
  /// first group access; parse failures yield an empty subgraph and bump
  /// parse_failures().
  virtual core::ViewPtr Wrap(const core::ViewPtr& view) const = 0;

  /// Number of successful lazy conversions / failed parses so far.
  uint64_t conversions() const { return conversions_; }
  uint64_t parse_failures() const { return failures_; }

 protected:
  mutable uint64_t conversions_ = 0;
  mutable uint64_t failures_ = 0;
};

/// Converts .xml files (class → xmlfile, subgraph per paper §3.3).
std::unique_ptr<ContentConverter> MakeXmlConverter();

/// Converts .tex files (class → latexfile, subgraph per paper §2.3).
std::unique_ptr<ContentConverter> MakeLatexConverter();

/// Ordered converter collection; first CanConvert wins.
class ConverterRegistry {
 public:
  void Register(std::unique_ptr<ContentConverter> converter) {
    converters_.push_back(std::move(converter));
  }

  /// Wraps \p view with the first matching converter, or returns it
  /// unchanged.
  core::ViewPtr MaybeWrap(const core::ViewPtr& view) const;

  /// The converter that would handle \p view, or nullptr.
  const ContentConverter* FindFor(const core::ResourceView& view) const;

  const std::vector<std::unique_ptr<ContentConverter>>& converters() const {
    return converters_;
  }

  /// Registry with the paper's converters: XML and LaTeX.
  static ConverterRegistry Standard();

 private:
  std::vector<std::unique_ptr<ContentConverter>> converters_;
};

}  // namespace idm::rvm

#endif  // IDM_RVM_CONVERTER_H_
