#include "rvm/flaky_source.h"

namespace idm::rvm {

Result<core::ViewPtr> FlakySource::RootView() {
  IDM_RETURN_NOT_OK(injector_->OnOperation(name() + ".RootView"));
  return inner_->RootView();
}

Result<core::ViewPtr> FlakySource::ViewByUri(const std::string& uri) {
  IDM_RETURN_NOT_OK(injector_->OnOperation(name() + ".ViewByUri " + uri));
  return inner_->ViewByUri(uri);
}

Status FlakySource::DeleteItem(const std::string& uri) {
  IDM_RETURN_NOT_OK(injector_->OnOperation(name() + ".DeleteItem " + uri));
  return inner_->DeleteItem(uri);
}

}  // namespace idm::rvm
