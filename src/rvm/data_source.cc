#include "rvm/data_source.h"

#include <cstdlib>

#include "email/email_views.h"
#include "util/string_util.h"
#include "vfs/vfs_views.h"

namespace idm::rvm {

// ---------------------------------------------------------------------------
// FileSystemSource

FileSystemSource::FileSystemSource(std::string name,
                                   std::shared_ptr<vfs::VirtualFileSystem> fs,
                                   std::string root_path)
    : name_(std::move(name)),
      fs_(std::move(fs)),
      root_path_(vfs::VirtualFileSystem::NormalizePath(root_path)) {}

Result<core::ViewPtr> FileSystemSource::RootView() {
  return vfs::MakeVfsView(fs_, root_path_);
}

Result<core::ViewPtr> FileSystemSource::ViewByUri(const std::string& uri) {
  if (!StartsWith(uri, "vfs:")) {
    return Status::InvalidArgument("not a vfs uri: " + uri);
  }
  return vfs::MakeVfsView(fs_, uri.substr(4));
}

bool FileSystemSource::SubscribeChanges(
    std::function<void(const SourceChange&)> callback) {
  fs_->Subscribe([callback = std::move(callback)](const vfs::FsEvent& event) {
    SourceChange change;
    change.kind = event.kind == vfs::FsEvent::Kind::kRemoved
                      ? SourceChange::Kind::kRemoved
                      : SourceChange::Kind::kAddedOrModified;
    change.uri = vfs::VfsUri(event.path);
    callback(change);
  });
  return true;
}

Status FileSystemSource::DeleteItem(const std::string& uri) {
  if (!StartsWith(uri, "vfs:")) {
    return Status::InvalidArgument("not a vfs uri: " + uri);
  }
  return fs_->Remove(uri.substr(4));
}

// ---------------------------------------------------------------------------
// ImapSource

ImapSource::ImapSource(std::string name,
                       std::shared_ptr<email::ImapServer> server)
    : name_(std::move(name)), server_(std::move(server)) {}

Result<core::ViewPtr> ImapSource::RootView() {
  return email::MakeImapRootView(server_);
}

Result<core::ViewPtr> ImapSource::ViewByUri(const std::string& uri) {
  if (!StartsWith(uri, "imap://")) {
    return Status::InvalidArgument("not an imap uri: " + uri);
  }
  // "imap://<folder...>[/<uid>]": the trailing segment is a uid iff it is
  // numeric and the prefix names an existing folder.
  std::string rest = uri.substr(7);
  size_t slash = rest.rfind('/');
  if (slash != std::string::npos) {
    std::string folder = rest.substr(0, slash);
    std::string last = rest.substr(slash + 1);
    bool numeric = !last.empty() &&
                   last.find_first_not_of("0123456789") == std::string::npos;
    if (numeric && server_->ListUids(folder).ok()) {
      return email::MakeMessageView(server_, folder,
                                    std::strtoull(last.c_str(), nullptr, 10));
    }
  }
  // A folder uri.
  auto folders = server_->ListFolders();
  if (folders.ok()) {
    for (const std::string& folder : *folders) {
      if (folder == rest) return email::MakeImapFolderView(server_, folder);
    }
  }
  if (rest.empty()) return RootView();
  return Status::NotFound("no imap item for " + uri);
}

bool ImapSource::SubscribeChanges(
    std::function<void(const SourceChange&)> callback) {
  auto server = server_;
  server_->Subscribe([callback = std::move(callback)](
                         const std::string& folder, uint64_t uid) {
    callback({SourceChange::Kind::kAddedOrModified,
              email::ImapMessageUri(folder, uid)});
  });
  return true;
}

Status ImapSource::DeleteItem(const std::string& uri) {
  if (!StartsWith(uri, "imap://")) {
    return Status::InvalidArgument("not an imap uri: " + uri);
  }
  std::string rest = uri.substr(7);
  size_t slash = rest.rfind('/');
  if (slash == std::string::npos) {
    return Status::Unimplemented("folders cannot be deleted through iQL");
  }
  std::string folder = rest.substr(0, slash);
  std::string last = rest.substr(slash + 1);
  if (last.empty() || last.find_first_not_of("0123456789") != std::string::npos) {
    return Status::Unimplemented("only messages can be deleted through iQL");
  }
  return server_->Expunge(folder, std::strtoull(last.c_str(), nullptr, 10));
}

// ---------------------------------------------------------------------------
// RelationalSource

RelationalSource::RelationalSource(std::string name,
                                   std::shared_ptr<rel::RelationalDb> db)
    : name_(std::move(name)), db_(std::move(db)) {}

Result<core::ViewPtr> RelationalSource::RootView() {
  return rel::MakeRelDbView(*db_);
}

Result<core::ViewPtr> RelationalSource::ViewByUri(const std::string& uri) {
  // "rel:<db>[/<relation>[/<row>]]".
  if (!StartsWith(uri, "rel:" + db_->name())) {
    return Status::NotFound("not an item of database '" + db_->name() + "'");
  }
  std::string rest = uri.substr(4 + db_->name().size());
  auto parts = SplitSkipEmpty(rest, '/');
  if (parts.empty()) return RootView();
  rel::Relation* relation = db_->Find(parts[0]);
  if (relation == nullptr) {
    return Status::NotFound("no relation '" + parts[0] + "'");
  }
  if (parts.size() == 1) {
    return rel::MakeRelationView(db_->name(), *relation);
  }
  char* end = nullptr;
  size_t row = std::strtoull(parts[1].c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || row >= relation->size()) {
    return Status::NotFound("no row '" + parts[1] + "'");
  }
  return rel::MakeTupleView(db_->name(), *relation, row);
}

uint64_t RelationalSource::TotalBytes() const {
  uint64_t total = 0;
  for (const std::string& name : db_->RelationNames()) {
    const rel::Relation* relation = db_->Find(name);
    if (relation == nullptr) continue;
    for (size_t i = 0; i < relation->size(); ++i) {
      for (const core::Value& value : relation->row(i)) {
        total += value.MemoryUsage();
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// RssSource

RssSource::RssSource(std::string name,
                     std::shared_ptr<stream::FeedServer> server)
    : name_(std::move(name)),
      server_(std::move(server)),
      buffer_(std::make_shared<stream::StreamBuffer>()) {
  bus_.Subscribe(buffer_);
  poller_ = std::make_unique<stream::RssPoller>(server_, &bus_);
}

Result<core::ViewPtr> RssSource::RootView() {
  return buffer_->MakeStreamView("rss:" + name_, "rssatom");
}

Result<core::ViewPtr> RssSource::ViewByUri(const std::string& uri) {
  if (uri == "rss:" + name_) return RootView();
  // Item documents live in the poll buffer; resolve by scanning the
  // delivered window (bounded: feeds are small).
  auto cursor = buffer_->MakeStreamView("rss:" + name_, "rssatom")
                    ->GetGroupComponent()
                    .OpenSequence();
  while (core::ViewPtr item = cursor->Next()) {
    if (item->uri() == uri) return item;
  }
  return Status::NotFound("no delivered rss item for " + uri);
}

uint64_t RssSource::TotalBytes() const {
  // The feed document hosted on the server is the stored artifact.
  return server_->DocumentBytes();
}

Result<size_t> RssSource::Poll() { return poller_->Poll(); }

}  // namespace idm::rvm
