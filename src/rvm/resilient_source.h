// ResilientSource: a DataSource decorator that survives flaky plugins.
// Every source-level operation is guarded by a per-source CircuitBreaker
// and retried under a RetryPolicy: retryable failures (IsRetryable — i.e.
// kIoError/kUnavailable) back off exponentially with deterministic jitter,
// with all waiting charged to the Clock (zero wall-clock sleeping under a
// SimClock); permanent failures (NotFound, InvalidArgument, ...) pass
// through untouched and do not trip the breaker.
//
// Stacking order for a fault scenario:
//   ResilientSource( FlakySource( real plugin, injector ), clock )
// gives "a flaky substrate behind a resilient proxy" — the acceptance
// setup of the resilience tests and bench.

#ifndef IDM_RVM_RESILIENT_SOURCE_H_
#define IDM_RVM_RESILIENT_SOURCE_H_

#include <memory>
#include <string>

#include "rvm/data_source.h"
#include "util/retry.h"

namespace idm::rvm {

class ResilientSource : public DataSource {
 public:
  struct Options {
    RetryPolicy retry;
    CircuitBreaker::Options breaker;
    /// Seed of the jitter Rng (schedules replay bit-identically).
    uint64_t jitter_seed = 42;
  };

  /// Retry/resilience counters, cumulative over the source's lifetime.
  struct Stats {
    uint64_t operations = 0;       ///< guarded calls issued by consumers
    uint64_t retries = 0;          ///< extra attempts beyond the first
    uint64_t recovered = 0;        ///< ops that failed then succeeded
    uint64_t exhausted = 0;        ///< ops that failed every attempt
    uint64_t rejected_open = 0;    ///< ops refused by an open breaker
    Micros backoff_micros = 0;     ///< total simulated backoff charged
  };

  /// \p clock drives backoff and the breaker cooldown; it must outlive
  /// this source. Pass the same SimClock the sources charge.
  ResilientSource(std::shared_ptr<DataSource> inner, Clock* clock)
      : ResilientSource(std::move(inner), clock, Options()) {}
  ResilientSource(std::shared_ptr<DataSource> inner, Clock* clock,
                  Options options)
      : inner_(std::move(inner)),
        clock_(clock),
        options_(options),
        jitter_(options.jitter_seed),
        breaker_(options.breaker, clock) {}

  const std::string& name() const override { return inner_->name(); }

  Result<core::ViewPtr> RootView() override {
    return Guarded("RootView", [this] { return inner_->RootView(); });
  }
  Result<core::ViewPtr> ViewByUri(const std::string& uri) override {
    return Guarded("ViewByUri", [this, &uri] { return inner_->ViewByUri(uri); });
  }
  Status DeleteItem(const std::string& uri) override;

  Micros access_micros() const override { return inner_->access_micros(); }
  uint64_t TotalBytes() const override { return inner_->TotalBytes(); }
  bool SubscribeChanges(
      std::function<void(const SourceChange&)> callback) override {
    return inner_->SubscribeChanges(std::move(callback));
  }

  const Stats& stats() const { return stats_; }
  CircuitBreaker& breaker() { return breaker_; }
  DataSource* inner() const { return inner_.get(); }

 private:
  template <typename Fn>
  Result<core::ViewPtr> Guarded(const char* op, const Fn& fn);
  Status GuardedStatus(const char* op, const std::function<Status()>& fn);

  std::shared_ptr<DataSource> inner_;
  Clock* clock_;
  Options options_;
  Rng jitter_;
  CircuitBreaker breaker_;
  Stats stats_;
};

template <typename Fn>
Result<core::ViewPtr> ResilientSource::Guarded(const char* op, const Fn& fn) {
  ++stats_.operations;
  if (!breaker_.AllowRequest()) {
    ++stats_.rejected_open;
    return Status::Unavailable("circuit open for source '" + name() +
                               "' (" + op + ")");
  }
  Result<core::ViewPtr> last = Status::Unavailable("retry loop never ran");
  bool failed_once = false;
  for (int attempt = 1; attempt <= options_.retry.max_attempts; ++attempt) {
    last = fn();
    if (last.ok()) {
      breaker_.RecordSuccess();
      if (failed_once) ++stats_.recovered;
      return last;
    }
    if (!last.status().IsRetryable()) return last;  // an answer, not an outage
    failed_once = true;
    breaker_.RecordFailure();
    if (attempt == options_.retry.max_attempts || !breaker_.AllowRequest()) {
      break;  // out of attempts, or the breaker tripped mid-loop
    }
    ++stats_.retries;
    Micros wait = options_.retry.BackoffMicros(attempt, &jitter_);
    stats_.backoff_micros += wait;
    if (clock_ != nullptr) clock_->AdvanceMicros(wait);
  }
  ++stats_.exhausted;
  return last;
}

}  // namespace idm::rvm

#endif  // IDM_RVM_RESILIENT_SOURCE_H_
