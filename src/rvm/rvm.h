// Replica&Indexes Module and Synchronization Manager (paper §5.2,
// components 3 and 4).
//
// The Replica&Indexes module owns the four index/replica structures of the
// paper's evaluation (§7.2) plus the Resource View Catalog:
//   1. Name Index & Replica      (index/name_index.h)
//   2. Tuple Index & Replica     (index/tuple_index.h, vertical partitioning)
//   3. Content Index             (index/inverted_index.h, not a replica)
//   4. Group Replica             (index/group_store.h)
//   -  Resource View Catalog     (index/catalog.h)
//
// The Synchronization Manager observes registered data sources: it performs
// the initial analysis/indexing of a new source, polls sources for updates
// done behind the RVM's back, and subscribes to notification events where
// sources support them (paper: hfs file events, here: VFS/IMAP callbacks).
//
// Indexing is instrumented exactly along the axes of the paper's Figure 5
// (Catalog Insert / Component Indexing / Data Source Access), Table 2
// (base vs. XML/LaTeX-derived view counts) and Table 3 (index sizes, net
// input size).

#ifndef IDM_RVM_RVM_H_
#define IDM_RVM_RVM_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/view_class.h"
#include "storage/engine.h"
#include "index/catalog.h"
#include "index/epoch_map.h"
#include "index/group_store.h"
#include "index/inverted_index.h"
#include "index/lineage.h"
#include "index/name_index.h"
#include "index/version_log.h"
#include "index/tuple_index.h"
#include "rvm/converter.h"
#include "rvm/data_source.h"

namespace idm::rvm {

/// Per-structure index sizes in bytes (paper Table 3).
struct IndexSizes {
  size_t name_bytes = 0;
  size_t tuple_bytes = 0;
  size_t content_bytes = 0;
  size_t group_bytes = 0;
  size_t catalog_bytes = 0;
  size_t total() const {
    return name_bytes + tuple_bytes + content_bytes + group_bytes +
           catalog_bytes;
  }
};

/// Phase breakdown of an indexing run, microseconds (paper Figure 5).
/// Each phase combines measured wall time with the *simulated* access cost
/// charged by the source's latency model, so remote sources show realistic
/// data-source-access dominance without a network.
struct PhaseTimes {
  Micros data_source_access = 0;
  Micros catalog_insert = 0;
  Micros component_indexing = 0;
  Micros total() const {
    return data_source_access + catalog_insert + component_indexing;
  }
};

/// Per-source indexing statistics (paper Tables 2 and 3, Figure 5).
struct SourceIndexStats {
  std::string source_name;
  size_t views_total = 0;
  size_t views_base = 0;          ///< from the data source proxy itself
  size_t views_derived_xml = 0;   ///< from the XML converter
  size_t views_derived_latex = 0; ///< from the LaTeX converter
  size_t views_derived_other = 0;
  uint64_t source_bytes = 0;      ///< Table 2 "Total Size"
  uint64_t net_input_bytes = 0;   ///< Table 3 "Net Input Data Size"
  PhaseTimes times;
  bool truncated = false;         ///< hit max_views or an infinite window
  /// Class-conformance violations observed (when IndexingOptions sets a
  /// conformance_registry); first few messages kept for diagnosis.
  size_t conformance_violations = 0;
  std::vector<std::string> conformance_samples;
};

/// Indexing parameters.
struct IndexingOptions {
  /// Upper bound on distinct views visited per run.
  size_t max_views = 1U << 22;
  /// Stream window: how many elements of an infinite group sequence are
  /// materialized and indexed (paper §5.2: "infinite group components are
  /// managed using a stream window").
  size_t infinite_window = 64;
  /// When > 0, the first this-many bytes of *infinite* content components
  /// (paper §4.1: lazy/infinite χ) are materialized via
  /// ContentComponent::GuardedPrefix and full-text indexed, so stream views
  /// become keyword-searchable up to the window. 0 (the default) keeps the
  /// classic behavior: infinite content is never touched at sync time.
  size_t infinite_content_prefix = 0;
  /// When false, Content2iDM converters are not applied at sync time; file
  /// content stays unconverted until some consumer navigates it (the lazy
  /// side of ablation A2 in DESIGN.md).
  bool apply_converters = true;
  /// When set, every visited view is conformance-checked against its
  /// resource view class (paper §3.1: classes as pre-defined schema
  /// information). Violations are counted in SourceIndexStats and the
  /// first few messages retained; indexing continues (schema-later
  /// tolerance, not schema-first rejection).
  const core::ClassRegistry* conformance_registry = nullptr;
};

/// Incremental-synchronization outcome. A sync can partially fail: flaky
/// subtrees or whole sources are skipped and recorded here instead of
/// aborting the round (the catalog keeps its last-known-good state for
/// them; the next poll retries).
struct SyncStats {
  size_t added = 0;
  size_t updated = 0;
  size_t removed = 0;
  size_t failed = 0;  ///< subtrees/sources skipped due to transient errors
  /// The first few failed uris (or source names), for diagnosis.
  std::vector<std::string> failed_uris;

  /// Records a skipped subtree/source (bounded sample of uris).
  void RecordFailure(const std::string& uri) {
    ++failed;
    if (failed_uris.size() < 8) failed_uris.push_back(uri);
  }
  /// Folds \p other into this (used when merging per-source rounds).
  void Merge(const SyncStats& other) {
    added += other.added;
    updated += other.updated;
    removed += other.removed;
    failed += other.failed;
    for (const std::string& uri : other.failed_uris) {
      if (failed_uris.size() >= 8) break;
      failed_uris.push_back(uri);
    }
  }
};

/// Cumulative synchronization counters since construction — the
/// introspection-API view of sync activity (per-round SyncStats are the
/// operational return values; these never reset).
struct SyncTotals {
  uint64_t added = 0;
  uint64_t updated = 0;
  uint64_t removed = 0;
  uint64_t failed = 0;
  uint64_t polls = 0;           ///< Poll() rounds completed
  uint64_t notifications = 0;   ///< notification events applied
};

class ReplicaIndexesModule {
 public:
  ReplicaIndexesModule() = default;

  /// Clock used to timestamp the version log (may be nullptr).
  void SetClock(Clock* clock) {
    clock_ = clock;
    versions_ = index::VersionLog(clock);
  }

  /// Attaches a storage engine: from here on every mutation of the index
  /// structures is staged into the engine's WAL batch before it is applied
  /// (write-ahead), and the enclosing operation commits the batch. With no
  /// engine attached (the default) all paths mutate the structures
  /// directly — the in-memory dataspace is byte-for-byte the old code path.
  void AttachStorage(storage::StorageEngine* engine) { engine_ = engine; }
  storage::StorageEngine* storage_engine() const { return engine_; }

  /// Deterministic images of all seven structures plus the engine's commit
  /// sequence (0 when no engine is attached) — the checkpoint payload.
  storage::Snapshot ExportSnapshot() const;

  /// Replaces the structures with the images in \p snapshot. On failure the
  /// module may be left partially restored — callers treat that as a failed
  /// open, not a recoverable state.
  Status RestoreSnapshot(const storage::Snapshot& snapshot);

  /// Re-executes recovered WAL mutations against the structures. Call
  /// before AttachStorage so replay is not re-logged.
  Status ReplayMutations(const std::vector<storage::Mutation>& mutations);

  /// Walks the whole graph of \p source (bounded by \p options), registers
  /// every view in the catalog and feeds all index structures.
  Result<SourceIndexStats> IndexSource(DataSource& source,
                                       const ConverterRegistry& converters,
                                       const IndexingOptions& options = {});

  /// Incremental variants used by the Synchronization Manager.
  Result<SyncStats> SyncSource(DataSource& source,
                               const ConverterRegistry& converters,
                               const IndexingOptions& options = {});
  Result<SyncStats> IndexSubtree(DataSource& source,
                                 const ConverterRegistry& converters,
                                 const std::string& uri,
                                 const IndexingOptions& options = {});

  /// Removes \p uri and everything derived from or below it (uris with the
  /// "<uri>#..." or "<uri>/..." prefix) from catalog and indexes. Fails
  /// only when an attached storage engine cannot commit the removals.
  Result<SyncStats> RemoveSubtree(const std::string& uri);

  /// --- read access for the query processor --------------------------------
  const index::Catalog& catalog() const { return catalog_; }
  const index::NameIndex& names() const { return name_index_; }
  const index::TupleIndex& tuples() const { return tuple_index_; }
  const index::InvertedIndex& content() const { return content_index_; }
  const index::GroupStore& groups() const { return group_store_; }
  /// Provenance of derived views (paper §8, 'Lineage').
  const index::LineageStore& lineage() const { return lineage_; }
  /// The dataspace change log (paper §8, 'Versioning'). Every add/update/
  /// remove of a view logically creates a new version of the dataspace.
  const index::VersionLog& versions() const { return versions_; }

  /// The cache-invalidation epoch: the current dataspace version. Every
  /// mutation path — initial indexing, sync rounds, notifications, subtree
  /// removal — appends to the version log and thereby advances this, so a
  /// result cached at epoch E is exact for as long as epoch() == E.
  index::Version epoch() const { return versions_.current(); }

  /// Fine-grained mutation epochs (per substrate / per top-level subtree
  /// prefix, DESIGN.md §14). Kept in lockstep with the version log on the
  /// live path and rebuilt after snapshot restore / WAL replay.
  const index::EpochMap& epochs() const { return epochs_; }

  /// Live-path mutation listener: invoked once per version-log append
  /// (never during restore/replay, which are silent) with the appended
  /// record, the owning source, the view's uri, and its name component at
  /// event time — "" for removals, whose name replica entry is already
  /// gone by the time the version is appended.
  using MutationListener =
      std::function<void(const index::ChangeRecord& record, uint32_t source,
                         const std::string& uri, const std::string& name)>;
  void SetMutationListener(MutationListener listener) {
    listener_ = std::move(listener);
  }

  /// Current per-structure sizes (paper Table 3).
  IndexSizes Sizes() const;

  /// Logical mutations applied since construction (one per version-log
  /// append, so adds/updates/removes all count once).
  uint64_t mutation_count() const { return mutation_count_; }

  /// Attaches (or detaches, with nullptr) the metrics sink; resolves the
  /// rvm.mutations counter once.
  void SetObservability(obs::Observability* obs);

  /// Serializes the durable PDSMS metadata: the resource view catalog and
  /// the version log (the Derby-equivalent state). Index structures are
  /// not exported; after ImportMetadata, re-registering the data sources
  /// rebuilds them against the existing ids (the catalog keeps ids stable
  /// across restarts).
  std::string ExportMetadata() const;
  Status ImportMetadata(const std::string& data);

 private:
  struct WalkCounters;
  Result<SourceIndexStats> Walk(DataSource& source,
                                const ConverterRegistry& converters,
                                const core::ViewPtr& root,
                                const IndexingOptions& options,
                                SyncStats* sync);

  /// The mutable view of the structures handed to ApplyMutation.
  storage::Structures Mutable();
  /// Commits the staged WAL batch (no-op without an engine / empty batch).
  Status CommitBatch();

  // Mutation primitives: with an engine attached they log-then-apply via
  // ApplyMutation; without one they call the structure directly. All reads
  // stay direct in both modes.
  uint32_t MutInternSource(const std::string& name);
  index::DocId MutRegister(const std::string& uri,
                           const std::string& class_name, uint32_t source,
                           bool derived);
  void MutCatalogRemove(index::DocId id);
  void MutNameAdd(index::DocId id, const std::string& name);
  void MutNameRemove(index::DocId id);
  void MutTupleAdd(index::DocId id, const core::TupleComponent& tuple);
  void MutTupleRemove(index::DocId id);
  void MutContentAdd(index::DocId id, const std::string& text);
  void MutContentRemove(index::DocId id);
  void MutGroupSet(index::DocId id, std::vector<index::DocId> children);
  void MutGroupRemoveAll(index::DocId id);
  void LinkIntoParent(const std::string& uri);
  void MutLineageRecord(index::DocId derived, index::DocId origin,
                        const std::string& transformation);
  void MutLineageForget(index::DocId id);
  void MutVersionAppend(index::ChangeRecord::Op op, index::DocId id);

  index::Catalog catalog_;
  index::NameIndex name_index_;
  index::TupleIndex tuple_index_;
  index::InvertedIndex content_index_;
  index::GroupStore group_store_;
  index::LineageStore lineage_;
  index::VersionLog versions_;
  index::EpochMap epochs_;
  MutationListener listener_;
  Clock* clock_ = nullptr;
  storage::StorageEngine* engine_ = nullptr;
  uint64_t mutation_count_ = 0;
  obs::Counter* mutation_metric_ = nullptr;
};

class SynchronizationManager {
 public:
  SynchronizationManager(ReplicaIndexesModule* module,
                         ConverterRegistry converters,
                         IndexingOptions options = {})
      : module_(module),
        converters_(std::move(converters)),
        options_(options) {}

  /// Registers a data source: analyzes it, triggers initial indexing, and
  /// subscribes to its notification events when supported (paper §5.2).
  Result<SourceIndexStats> RegisterSource(std::shared_ptr<DataSource> source);

  /// Registers a source *without* the initial indexing walk — used after a
  /// durable restart, where the recovered catalog/indexes already reflect
  /// the source and only the notification subscription must be re-armed.
  /// The next Poll() reconciles any drift that happened while down.
  void AttachSource(std::shared_ptr<DataSource> source);

  DataSource* FindSource(const std::string& name) const;
  const std::vector<std::shared_ptr<DataSource>>& sources() const {
    return sources_;
  }

  /// Polls every source for updates done bypassing the RVM layer; diffs
  /// against the catalog and repairs indexes.
  Result<SyncStats> Poll();

  /// Notifications delivered by sources but not yet applied.
  size_t pending_notifications() const { return pending_.size(); }

  /// Applies queued notifications incrementally.
  Result<SyncStats> ProcessNotifications();

  /// Cumulative sync activity since construction (introspection API).
  const SyncTotals& totals() const { return totals_; }

  /// Attaches (or detaches, with nullptr) the metrics sink; resolves the
  /// rvm.sync.* counters once.
  void SetObservability(obs::Observability* obs);

  /// Hook fired after every completed synchronization round (Poll or
  /// ProcessNotifications), i.e. at the points where a batch of mutations
  /// has fully landed — the subscription layer pumps deltas here.
  void SetPostSyncHook(std::function<void()> hook) {
    post_sync_ = std::move(hook);
  }

  const ConverterRegistry& converters() const { return converters_; }
  const IndexingOptions& options() const { return options_; }

 private:
  /// Registers the change subscription for an already-tracked source. The
  /// substrates hold their callbacks forever, so each one captures a weak
  /// reference to \p alive_ and goes inert once this manager is destroyed
  /// (sources can outlive the dataspace, e.g. across a durable restart).
  void Subscribe(DataSource* raw);
  /// Folds one round's SyncStats into totals_ and the metric counters.
  void Account(const SyncStats& stats);

  ReplicaIndexesModule* module_;
  ConverterRegistry converters_;
  IndexingOptions options_;
  std::vector<std::shared_ptr<DataSource>> sources_;
  std::deque<std::pair<DataSource*, SourceChange>> pending_;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  SyncTotals totals_;
  std::function<void()> post_sync_;
  /// Metric pointers resolved by SetObservability (null = metrics off).
  struct Metrics {
    obs::Counter* added = nullptr;
    obs::Counter* updated = nullptr;
    obs::Counter* removed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* polls = nullptr;
    obs::Counter* notifications = nullptr;
  };
  Metrics metrics_;
};

}  // namespace idm::rvm

#endif  // IDM_RVM_RVM_H_
