#include "rvm/resilient_source.h"

namespace idm::rvm {

Status ResilientSource::GuardedStatus(const char* op,
                                      const std::function<Status()>& fn) {
  ++stats_.operations;
  if (!breaker_.AllowRequest()) {
    ++stats_.rejected_open;
    return Status::Unavailable("circuit open for source '" + name() + "' (" +
                               op + ")");
  }
  Status last = Status::Unavailable("retry loop never ran");
  bool failed_once = false;
  for (int attempt = 1; attempt <= options_.retry.max_attempts; ++attempt) {
    last = fn();
    if (last.ok()) {
      breaker_.RecordSuccess();
      if (failed_once) ++stats_.recovered;
      return last;
    }
    if (!last.IsRetryable()) return last;
    failed_once = true;
    breaker_.RecordFailure();
    if (attempt == options_.retry.max_attempts || !breaker_.AllowRequest()) {
      break;
    }
    ++stats_.retries;
    Micros wait = options_.retry.BackoffMicros(attempt, &jitter_);
    stats_.backoff_micros += wait;
    if (clock_ != nullptr) clock_->AdvanceMicros(wait);
  }
  ++stats_.exhausted;
  return last;
}

Status ResilientSource::DeleteItem(const std::string& uri) {
  return GuardedStatus("DeleteItem",
                       [this, &uri] { return inner_->DeleteItem(uri); });
}

}  // namespace idm::rvm
