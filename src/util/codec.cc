#include "util/codec.h"

#include <cstring>

namespace idm::codec {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (i * 8)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (i * 8)) & 0xFF));
  }
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU64(out, s.size());
  out->append(s);
}

bool GetU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos > in.size() || in.size() - *pos < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(in[*pos + i]))
          << (i * 8);
  }
  *pos += 4;
  return true;
}

bool GetU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos > in.size() || in.size() - *pos < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
          << (i * 8);
  }
  *pos += 8;
  return true;
}

bool GetI64(std::string_view in, size_t* pos, int64_t* v) {
  uint64_t u = 0;
  if (!GetU64(in, pos, &u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool GetDouble(std::string_view in, size_t* pos, double* v) {
  uint64_t bits = 0;
  if (!GetU64(in, pos, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool GetString(std::string_view in, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!GetU64(in, pos, &len)) return false;
  // Overflow-safe: compare against what actually remains.
  if (len > in.size() - *pos) return false;
  s->assign(in.substr(*pos, len));
  *pos += len;
  return true;
}

}  // namespace idm::codec
