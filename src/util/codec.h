// Little-endian binary codec shared by every on-disk / in-image format in
// the repository (catalog, version log, index snapshots, WAL records).
//
// All Get* readers are bounds- and overflow-safe: a length field larger
// than the remaining input fails instead of wrapping `pos + len` around
// SIZE_MAX — a truncated or hostile image is reported, never half-read.

#ifndef IDM_UTIL_CODEC_H_
#define IDM_UTIL_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace idm::codec {

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}
void PutDouble(std::string* out, double v);
/// u64 length prefix followed by the raw bytes.
void PutString(std::string* out, std::string_view s);

bool GetU32(std::string_view in, size_t* pos, uint32_t* v);
bool GetU64(std::string_view in, size_t* pos, uint64_t* v);
bool GetI64(std::string_view in, size_t* pos, int64_t* v);
bool GetDouble(std::string_view in, size_t* pos, double* v);
bool GetString(std::string_view in, size_t* pos, std::string* s);

}  // namespace idm::codec

#endif  // IDM_UTIL_CODEC_H_
