#include "util/retry.h"

namespace idm {

Micros RetryPolicy::BackoffMicros(int retry, Rng* rng) const {
  if (retry < 1) retry = 1;
  double wait = static_cast<double>(initial_backoff_micros);
  for (int i = 1; i < retry; ++i) {
    wait *= backoff_multiplier;
    if (wait >= static_cast<double>(max_backoff_micros)) break;
  }
  if (wait > static_cast<double>(max_backoff_micros)) {
    wait = static_cast<double>(max_backoff_micros);
  }
  if (rng != nullptr && jitter_fraction > 0.0) {
    // Uniform in [1 - jitter, 1 + jitter).
    wait *= 1.0 + jitter_fraction * (2.0 * rng->NextDouble() - 1.0);
  }
  if (wait < 0.0) wait = 0.0;
  return static_cast<Micros>(wait);
}

Status RunWithRetry(const RetryPolicy& policy, Clock* clock, Rng* rng,
                    const std::function<Status()>& fn) {
  Status last = Status::Unavailable("retry loop never ran");
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = fn();
    if (last.ok() || !last.IsRetryable()) return last;
    if (attempt == policy.max_attempts) break;
    Micros wait = policy.BackoffMicros(attempt, rng);
    if (clock != nullptr) clock->AdvanceMicros(wait);
  }
  return last;
}

const char* CircuitStateToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::State CircuitBreaker::state() {
  if (state_ == State::kOpen && clock_ != nullptr &&
      clock_->NowMicros() - opened_at_micros_ >= options_.cooldown_micros) {
    state_ = State::kHalfOpen;
    half_open_successes_ = 0;
  }
  return state_;
}

bool CircuitBreaker::AllowRequest() {
  if (state() == State::kOpen) {
    ++rejected_requests_;
    return false;
  }
  return true;
}

void CircuitBreaker::TripOpen() {
  state_ = State::kOpen;
  opened_at_micros_ = clock_ != nullptr ? clock_->NowMicros() : 0;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  ++times_opened_;
}

void CircuitBreaker::RecordSuccess() {
  switch (state()) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++half_open_successes_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case State::kOpen:
      // Success while open: a caller raced the trip; ignore.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  switch (state()) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) TripOpen();
      break;
    case State::kHalfOpen:
      TripOpen();  // the probe failed: restart the cooldown
      break;
    case State::kOpen:
      break;
  }
}

}  // namespace idm
