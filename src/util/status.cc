#include "util/status.h"

namespace idm {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kAlreadyExists: return "already exists";
    case StatusCode::kOutOfRange: return "out of range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kFailedPrecondition: return "failed precondition";
    case StatusCode::kParseError: return "parse error";
    case StatusCode::kIoError: return "io error";
    case StatusCode::kConformanceError: return "conformance error";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDeadlineExceeded: return "deadline exceeded";
    case StatusCode::kResourceExhausted: return "resource exhausted";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDataLoss: return "data loss";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

bool IsRetryable(StatusCode code) {
  // kResourceExhausted is load shedding: the request was fine, the system
  // was busy — retry with backoff. kDeadlineExceeded is not retryable
  // within the same request: the same budget would overrun the same way.
  // kDataLoss is permanent: the bytes on the other end are provably
  // damaged, so a retry rereads the same damage — repair, don't retry.
  return code == StatusCode::kIoError || code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + state_->message);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace idm
