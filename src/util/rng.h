// Deterministic pseudo-random number generation for workload synthesis.
// All benchmark datasets are reproducible given a seed.

#ifndef IDM_UTIL_RNG_H_
#define IDM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace idm {

/// SplitMix64-based PRNG: tiny state, excellent statistical quality for
/// workload generation, and deterministic across platforms (unlike
/// std::default_random_engine / std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability \p p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent \p s, computed against a
  /// lazily-built CDF. Suited to vocabulary sampling in synthetic text.
  size_t Zipf(size_t n, double s);

 private:
  uint64_t state_;
  // Cached Zipf CDF for the last (n, s) pair requested.
  size_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace idm

#endif  // IDM_UTIL_RNG_H_
