// Resource governance for query execution (DESIGN.md §10).
//
// iDM resource views may have *lazy and infinite* content and group
// components (paper §2, §4.1), so a single evaluation can legitimately try
// to materialize unbounded work. ExecContext is the cooperative governor
// threaded through every execution loop: a deadline on the clock, a
// cancellation flag, a step budget, and a hierarchical memory budget.
//
// One *family* of contexts governs one query. The root context is created
// by the caller; every parallel arm (thread-pool fan-out, federation peer)
// runs under a Child() that shares the family's cancellation flag, step
// counter, deadline and simulated-cost accumulator, but owns a sub-budget
// of the memory budget. The first arm to overrun any limit dooms the whole
// family, so siblings observe the failure at their next Tick() and unwind
// — first overrun cancels siblings.
//
// Checks are cheap by construction: Tick() is one relaxed fetch_add on the
// shared step counter; the clock is consulted only every kStride counted
// steps (or on every step when a simulated per-step cost makes the
// comparison pure arithmetic). Code that is handed a nullptr context runs
// exactly as before — governance off is the zero-cost default.

#ifndef IDM_UTIL_EXEC_CONTEXT_H_
#define IDM_UTIL_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>

#include "util/clock.h"
#include "util/status.h"

namespace idm::util {

/// Hierarchical byte budget. Charges propagate to the parent chain, so the
/// root budget bounds the sum over all children while each child may also
/// carry its own (tighter) limit. Thread-safe; Release() must not exceed
/// what the same caller charged.
class MemoryBudget {
 public:
  /// \p limit_bytes == 0 means "account but never refuse".
  explicit MemoryBudget(size_t limit_bytes, MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves \p bytes against this budget and every ancestor. On overrun
  /// nothing remains charged and kResourceExhausted is returned.
  Status TryCharge(size_t bytes);

  /// Returns \p bytes to this budget and every ancestor.
  void Release(size_t bytes);

  size_t limit() const { return limit_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  /// High-water mark of used().
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  const size_t limit_;
  MemoryBudget* const parent_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// Per-query governor: deadline, cancellation, step budget, memory budget.
/// See the file comment for the family/child model.
class ExecContext {
 public:
  /// All limits default to 0 = "unlimited"; a context with no limit set
  /// still counts steps and bytes (observability without enforcement).
  struct Limits {
    /// Simulated/wall time budget measured on the clock from context
    /// creation, plus any simulated evaluation cost charged via
    /// micros_per_step. Overrun -> kDeadlineExceeded.
    Micros deadline_micros = 0;
    /// Evaluation-step budget across the whole family. Overrun ->
    /// kResourceExhausted.
    uint64_t max_steps = 0;
    /// Test hook: the family is cancelled (kCancelled) when the shared
    /// step counter crosses this value. Exact: the crossing Tick fails.
    uint64_t cancel_at_step = 0;
    /// Byte budget of the root MemoryBudget. Overrun -> kResourceExhausted.
    size_t memory_limit_bytes = 0;
    /// Simulated evaluation cost charged per counted step. With a SimClock
    /// this is what makes deadlines *deterministic*: the doom step is
    /// ceil(deadline / micros_per_step), independent of the hardware.
    /// Callers may apply charged_micros() to the clock afterwards.
    Micros micros_per_step = 0;

    /// True when any limit is set (the context would ever refuse work).
    bool any() const {
      return deadline_micros > 0 || max_steps > 0 || cancel_at_step > 0 ||
             memory_limit_bytes > 0 || micros_per_step > 0;
    }
  };

  /// Deadline checks read the clock every kStride steps (unless a per-step
  /// cost makes every-step checks pure arithmetic).
  static constexpr uint64_t kStride = 128;

  /// Root context. \p clock may be nullptr (deadline then measures only
  /// simulated per-step cost).
  ExecContext(const Clock* clock, Limits limits);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Child for a parallel arm: shares the family state, carves a
  /// sub-budget (same byte limit, charges roll up to the root).
  std::unique_ptr<ExecContext> Child();

  /// Cooperatively cancels the whole family with \p reason.
  void Cancel(Status reason);

  /// True once any limit overran or Cancel() was called. Doomed families
  /// never recover; every subsequent Tick()/Check() returns status().
  bool doomed() const {
    return family_->doomed.load(std::memory_order_acquire);
  }

  /// OK while live; the first doom reason afterwards.
  Status status() const;

  /// Counts \p n units of work and enforces the limits. Returns OK or the
  /// doom status. This is the bounded-stride check every execution loop
  /// calls.
  Status Tick(uint64_t n = 1);

  /// Tick() for loops that cannot propagate a Status: false means "stop,
  /// the family is doomed" (the caller's caller reports status()).
  bool TickAlive(uint64_t n = 1) { return Tick(n).ok(); }

  /// Full check without counting work (admission points, loop preambles).
  Status Check();

  /// Reserves bytes against this context's memory budget; dooms the family
  /// on overrun.
  Status ChargeMemory(size_t bytes);
  void ReleaseMemory(size_t bytes);

  // --- observability -------------------------------------------------------
  uint64_t steps_used() const {
    return family_->steps.load(std::memory_order_relaxed);
  }
  /// Peak bytes of the *root* budget (the whole family's high water).
  size_t bytes_peak() const { return family_->budget.peak(); }
  /// Simulated evaluation cost accumulated via micros_per_step.
  Micros charged_micros() const {
    return family_->charged.load(std::memory_order_relaxed);
  }
  /// Clock time since creation plus simulated evaluation cost.
  Micros elapsed_micros() const;
  /// Micros left before the deadline (never negative); max() when no
  /// deadline is set. Federation derives per-peer deadlines from this.
  Micros remaining_micros() const;

  const Clock* clock() const { return family_->clock; }
  const Limits& limits() const { return family_->limits; }

 private:
  struct Family {
    const Clock* clock;
    Limits limits;
    Micros start_micros;
    std::atomic<uint64_t> steps{0};
    std::atomic<Micros> charged{0};
    std::atomic<bool> doomed{false};
    std::mutex mu;
    Status doom;  ///< guarded by mu; set exactly once
    MemoryBudget budget;

    Family(const Clock* c, Limits l)
        : clock(c),
          limits(l),
          start_micros(c != nullptr ? c->NowMicros() : 0),
          budget(l.memory_limit_bytes) {}
  };

  ExecContext(std::shared_ptr<Family> family,
              std::unique_ptr<MemoryBudget> own_budget);

  /// Records \p reason as the family's doom (first writer wins).
  void Doom(Status reason);
  Status DoomStatus() const;

  std::shared_ptr<Family> family_;
  std::unique_ptr<MemoryBudget> own_budget_;  ///< null on the root
  MemoryBudget* budget_;                      ///< family root or own_budget_
};

/// RAII memory reservation against an ExecContext (which may be nullptr:
/// everything no-ops). Releases whatever was charged on destruction.
class ScopedCharge {
 public:
  explicit ScopedCharge(ExecContext* ctx) : ctx_(ctx) {}
  ~ScopedCharge() {
    if (ctx_ != nullptr && bytes_ > 0) ctx_->ReleaseMemory(bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// Adds \p bytes to the reservation; dooms the family on overrun.
  Status Add(size_t bytes) {
    if (ctx_ == nullptr) return Status::OK();
    IDM_RETURN_NOT_OK(ctx_->ChargeMemory(bytes));
    bytes_ += bytes;
    return Status::OK();
  }

 private:
  ExecContext* ctx_;
  size_t bytes_ = 0;
};

}  // namespace idm::util

#endif  // IDM_UTIL_EXEC_CONTEXT_H_
