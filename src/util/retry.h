// Retry with capped exponential backoff, and a per-dependency circuit
// breaker (recovery side of the resilience layer).
//
// Both primitives charge every wait to a Clock instead of sleeping: under a
// SimClock a test drives backoff and cooldown by AdvanceMicros alone, and a
// 20 %-fault sync converges with zero wall-clock sleeping. Jitter comes from
// the seeded Rng, so retry schedules are reproducible.

#ifndef IDM_UTIL_RETRY_H_
#define IDM_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/clock.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace idm {

/// Capped exponential backoff: attempt n waits
///   min(initial * multiplier^(n-1), max) * (1 ± jitter).
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 4;
  Micros initial_backoff_micros = 1000;
  double backoff_multiplier = 2.0;
  Micros max_backoff_micros = 1000000;
  /// Relative jitter amplitude in [0, 1): the wait is scaled by a factor
  /// drawn uniformly from [1 - jitter, 1 + jitter).
  double jitter_fraction = 0.25;

  /// Backoff before retry number \p retry (1-based: the wait after the
  /// retry-th failure). \p rng supplies jitter; nullptr disables jitter.
  Micros BackoffMicros(int retry, Rng* rng = nullptr) const;
};

/// Runs \p fn up to policy.max_attempts times. Failures whose code is
/// retryable (Status::IsRetryable) are retried after charging the backoff
/// wait to \p clock; permanent failures and exhaustion return the last
/// status. \p clock and \p rng may be nullptr.
Status RunWithRetry(const RetryPolicy& policy, Clock* clock, Rng* rng,
                    const std::function<Status()>& fn);

/// Result-returning flavour of RunWithRetry.
template <typename T>
Result<T> RunWithRetryResult(const RetryPolicy& policy, Clock* clock, Rng* rng,
                             const std::function<Result<T>()>& fn) {
  Result<T> last = Status::Unavailable("retry loop never ran");
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = fn();
    if (last.ok() || !last.status().IsRetryable()) return last;
    if (attempt == policy.max_attempts) break;
    Micros wait = policy.BackoffMicros(attempt, rng);
    if (clock != nullptr) clock->AdvanceMicros(wait);
  }
  return last;
}

/// Per-dependency circuit breaker (closed → open → half-open → closed).
///
/// Closed: requests pass; failure_threshold *consecutive* failures trip the
/// breaker open. Open: requests are refused until cooldown_micros of clock
/// time elapse, then the next request is admitted as a half-open probe.
/// Half-open: half_open_successes consecutive successes close the breaker;
/// any failure re-opens it and restarts the cooldown. Only infrastructure
/// failures (retryable codes) should be recorded — a NotFound is an answer,
/// not an outage.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 5;
    Micros cooldown_micros = 30000000;  ///< 30 s of (simulated) time
    int half_open_successes = 1;
  };

  /// \p clock drives the cooldown and must outlive the breaker.
  CircuitBreaker(Options options, Clock* clock)
      : options_(options), clock_(clock) {}

  /// Current state; an open breaker whose cooldown has elapsed reports (and
  /// becomes) half-open.
  State state();

  /// True when a request may proceed: closed, half-open (probe), or open
  /// with an elapsed cooldown (transitions to half-open).
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  /// --- counters ------------------------------------------------------------
  int consecutive_failures() const { return consecutive_failures_; }
  uint64_t times_opened() const { return times_opened_; }
  uint64_t rejected_requests() const { return rejected_requests_; }

 private:
  void TripOpen();

  Options options_;
  Clock* clock_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  Micros opened_at_micros_ = 0;
  uint64_t times_opened_ = 0;
  uint64_t rejected_requests_ = 0;
};

const char* CircuitStateToString(CircuitBreaker::State state);

}  // namespace idm

#endif  // IDM_UTIL_RETRY_H_
