// Fixed-size thread pool for intra-query parallelism (DESIGN.md §8).
//
// The pool is deliberately minimal: a bounded set of workers, a FIFO task
// queue, and futures for completion. Determinism is the caller's contract —
// parallel callers fan work out over *index-addressed slots* and merge in
// slot order (OrderedParallelMap / RunAll below), so the merged output is
// byte-identical to a serial run regardless of scheduling.
//
// Nesting rule: RunAll/OrderedParallelMap executed *on a worker thread* run
// their tasks inline instead of re-submitting. Fan-out therefore happens at
// one level only, tasks never block on other tasks, and a fixed pool cannot
// deadlock on its own queue.

#ifndef IDM_UTIL_THREAD_POOL_H_
#define IDM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace idm::util {

/// Point-in-time counters describing pool load, sampled by
/// ThreadPool::telemetry(). Always on (plain relaxed atomics underneath —
/// util sits below the observability layer, so the obs metrics registry
/// samples these rather than the pool pushing into it).
struct ThreadPoolTelemetry {
  uint64_t submitted = 0;        ///< tasks handed to Submit()
  uint64_t executed = 0;         ///< tasks completed on a worker
  uint64_t inline_tasks = 0;     ///< RunAll tasks run on the calling thread
  uint64_t queue_depth_peak = 0; ///< max queue length observed at submit
  uint64_t busy_micros = 0;      ///< wall time workers spent inside tasks
};

class ThreadPool {
 public:
  /// Spawns \p threads workers. 0 is allowed and makes every RunAll caller
  /// fall back to inline execution (a pool-shaped no-op).
  explicit ThreadPool(size_t threads);

  /// Drains the queue (pending tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// True when the calling thread is one of *any* ThreadPool's workers.
  static bool OnWorkerThread();

  /// Enqueues \p fn; the future resolves when it has run (exceptions
  /// propagate through the future).
  std::future<void> Submit(std::function<void()> fn);

  /// Runs every task in \p tasks and returns when all have completed.
  /// Tasks run on \p pool workers, except: the first task runs inline on
  /// the caller (it would otherwise idle-wait), and when \p pool is null,
  /// empty, or the caller is itself a worker, *all* tasks run inline in
  /// order. Exceptions from tasks are rethrown (first by task index).
  static void RunAll(ThreadPool* pool, std::vector<std::function<void()>> tasks);

  /// Samples the load counters (consistent enough for monitoring; each
  /// field is read with a relaxed load).
  ThreadPoolTelemetry telemetry() const;

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> inline_tasks_{0};
  std::atomic<uint64_t> queue_depth_peak_{0};
  std::atomic<uint64_t> busy_micros_{0};
};

/// Applies `fn(i)` for every i in [0, n) — in parallel when \p pool allows —
/// and returns the results in index order. `Fn` must be callable
/// concurrently; the output is identical to the serial loop by
/// construction (each call writes its own slot, merged in index order).
template <typename T, typename Fn>
std::vector<T> OrderedParallelMap(ThreadPool* pool, size_t n, Fn fn) {
  std::vector<std::optional<T>> slots(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([&slots, &fn, i] { slots[i].emplace(fn(i)); });
  }
  ThreadPool::RunAll(pool, std::move(tasks));
  std::vector<T> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Chunk boundaries for splitting \p n items across \p ways workers with at
/// least \p min_chunk items per chunk: pairs of [begin, end). Returns one
/// chunk (or none for n == 0) when parallelism is not worth it.
std::vector<std::pair<size_t, size_t>> ChunkRanges(size_t n, size_t ways,
                                                   size_t min_chunk);

}  // namespace idm::util

#endif  // IDM_UTIL_THREAD_POOL_H_
