// Status: the error-reporting vocabulary used across the whole library.
//
// The public API of every idm library reports failure through idm::Status or
// idm::Result<T> (see result.h) instead of exceptions, following the idiom of
// production database codebases (Arrow, RocksDB).

#ifndef IDM_UTIL_STATUS_H_
#define IDM_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace idm {

/// Machine-readable failure category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed something malformed
  kNotFound = 2,          ///< a named entity does not exist
  kAlreadyExists = 3,     ///< a named entity exists and may not be replaced
  kOutOfRange = 4,        ///< index/offset beyond a bound
  kUnimplemented = 5,     ///< feature intentionally not provided
  kFailedPrecondition = 6,///< object is in the wrong state for the call
  kParseError = 7,        ///< malformed input document (XML, LaTeX, MIME, iQL)
  kIoError = 8,           ///< simulated device / source access failure
  kConformanceError = 9,  ///< resource view violates a resource view class
  kUnavailable = 10,      ///< remote source (IMAP, service call) unreachable
  kDeadlineExceeded = 11, ///< deadline overrun; retrying the same request
                          ///< with the same budget would overrun again
  kResourceExhausted = 12,///< load shed / budget overrun; retryable with
                          ///< backoff once pressure subsides
  kCancelled = 13,        ///< caller cooperatively cancelled the work
  kDataLoss = 14,         ///< bytes verified corrupt (CRC/seal failure);
                          ///< permanent — retrying rereads the same damage;
                          ///< repair (quarantine + re-fetch) is the recovery
  kInternal = 15,         ///< invariant violation inside the system itself
                          ///< (e.g. engine differential mismatch); a bug,
                          ///< not a caller or environment problem
};

/// Returns the canonical lower-case name of a code, e.g. "invalid argument".
const char* StatusCodeToString(StatusCode code);

/// True for codes that denote transient infrastructure trouble worth
/// retrying (kIoError, kUnavailable, and kResourceExhausted — load
/// shedding clears once pressure subsides), false for answers and caller
/// errors (kDeadlineExceeded: the same budget would overrun again;
/// (kNotFound is an answer; kParseError will not parse better next time).
/// This is the single classification used by the resilience layer (retry,
/// circuit breaking, partial-failure sync) — keep it next to the error
/// vocabulary instead of re-deriving it per subsystem.
bool IsRetryable(StatusCode code);

/// A cheap, movable success-or-error value.
///
/// An OK Status carries no allocation; an error Status owns a code and a
/// human-readable message. Statuses are immutable once built.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with \p code and \p message. `code == kOk` is
  /// normalized to the allocation-free OK status.
  Status(StatusCode code, std::string message);

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ConformanceError(std::string msg) {
    return Status(StatusCode::kConformanceError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The failure category; kOk when ok().
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty when ok().
  const std::string& message() const;

  /// True iff this status carries a retryable code (see IsRetryable).
  bool IsRetryable() const { return idm::IsRetryable(code()); }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with \p context prepended to the message.
  /// OK statuses are returned unchanged.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. shared_ptr keeps copies cheap; Status is immutable.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace idm

/// Propagates a non-OK Status from the enclosing function.
#define IDM_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::idm::Status _idm_status = (expr);        \
    if (!_idm_status.ok()) return _idm_status; \
  } while (false)

#endif  // IDM_UTIL_STATUS_H_
