// Deterministic fault injection (injection side of the resilience layer).
//
// A FaultInjector is the single decision point a flaky component consults
// before every operation: "does this op fail, and how long does it take?".
// All randomness comes from the seeded SplitMix64 Rng and all injected
// latency is charged to the supplied Clock (a SimClock in tests), so a
// fault scenario replays bit-identically from its seed and never sleeps.
//
// Two injection modes compose:
//   * probabilistic — a per-op Bernoulli draw picks kIoError / kUnavailable
//     (weighted) and an independent draw adds a latency spike;
//   * scripted — exact per-op-index faults (ScheduleFault) and half-open
//     outage windows (ScheduleOutage) override the dice, which makes tests
//     of "fail twice then recover" trivial to write.

#ifndef IDM_UTIL_FAULT_H_
#define IDM_UTIL_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/rng.h"
#include "util/status.h"

namespace idm {

/// What an injected fault does to the operation it hits.
enum class FaultKind {
  kNone = 0,
  kIoError,       ///< op fails with StatusCode::kIoError
  kUnavailable,   ///< op fails with StatusCode::kUnavailable
  kLatencySpike,  ///< op succeeds but charges latency_spike_micros
  kTruncate,      ///< content reads lose their tail (MaybeTruncate)
  // --- link-level kinds (OnLinkOperation; replication links) ---------------
  kPartition,     ///< message dropped: the send fails with kUnavailable
  kDelay,         ///< message delivered after delay_micros of extra latency
  kDuplicate,     ///< message delivered twice (receipt must be idempotent)
  // --- silent-corruption kinds (OnEnvOperation / OnLinkOperation) ----------
  kBitFlip,       ///< bytes land/arrive damaged; the op itself reports OK
};

const char* FaultKindToString(FaultKind kind);

/// Tuning knobs for probabilistic injection.
struct FaultConfig {
  /// Per-operation probability of an error fault (kIoError/kUnavailable).
  double fault_probability = 0.0;
  /// Among error faults: probability of kUnavailable (rest are kIoError).
  double unavailable_weight = 0.5;
  /// Independent per-operation probability of a latency spike.
  double latency_spike_probability = 0.0;
  /// Size of one latency spike.
  Micros latency_spike_micros = 50000;
  /// Cost charged by every faulted op (a failed access still takes time).
  Micros fault_latency_micros = 1000;
  /// Per-content-read probability of truncation, applied by MaybeTruncate.
  double truncate_probability = 0.0;
  /// Fraction of the content kept when truncated (0 ≤ keep < 1).
  double truncate_keep_fraction = 0.5;

  /// --- link-level knobs (consumed only by OnLinkOperation) ----------------
  /// Per-message probability the link drops the message (kPartition).
  double partition_probability = 0.0;
  /// Per-message probability of duplicated delivery (kDuplicate).
  double duplicate_probability = 0.0;
  /// Per-message probability of delayed delivery (kDelay).
  double delay_probability = 0.0;
  /// Extra latency charged by one delayed delivery.
  Micros delay_micros = 20000;
  /// Per-message probability the link damages payload bytes in flight
  /// (kBitFlip): the message is delivered, the receiver's CRC must catch
  /// it. Drawn only when > 0 so existing link Rng streams stay pinned.
  double link_corrupt_probability = 0.0;

  /// --- env-level corruption knobs (consumed only by OnEnvOperation) -------
  /// Per-write probability the device silently flips a bit in the bytes
  /// being persisted (kBitFlip). Drawn only when > 0: an injector used
  /// with both knobs at 0 consumes exactly the pre-corruption Rng stream.
  double bitflip_probability = 0.0;
  /// Per-write probability the device silently drops the tail of the bytes
  /// being persisted (kTruncate). Drawn only when > 0.
  double env_truncate_probability = 0.0;
};

/// Outcome of one link-level send (OnLinkOperation). Exactly one of the
/// fault effects applies per message; injected latency has already been
/// charged to the clock when the verdict is returned.
struct LinkVerdict {
  FaultKind kind = FaultKind::kNone;
  bool dropped = false;     ///< the message never arrives (partition)
  bool duplicated = false;  ///< the message arrives twice
  bool corrupted = false;   ///< the message arrives with damaged bytes
  Micros delay_micros = 0;  ///< extra delivery latency (already charged)
};

/// Outcome of one storage-device operation (OnEnvOperation). `status` is the
/// loud half (the op errors, the simulated machine crashes — the PR 3 crash
/// model); `corruption` is the silent half: the op reports OK but the bytes
/// it persisted are damaged (kBitFlip) or cut short (kTruncate). Silent
/// damage is what the scrubber exists to find.
struct EnvVerdict {
  Status status;
  FaultKind corruption = FaultKind::kNone;
};

/// Deterministic, clock-charging fault source. Not thread-safe (the whole
/// simulation is single-threaded by design).
class FaultInjector {
 public:
  /// \p clock receives injected latency; may be nullptr (latency is then
  /// only counted, not charged).
  explicit FaultInjector(uint64_t seed, Clock* clock = nullptr)
      : rng_(seed), clock_(clock) {}

  void set_config(const FaultConfig& config) { config_ = config; }
  const FaultConfig& config() const { return config_; }

  /// Scripted injection: the \p op_index-th call to OnOperation (0-based,
  /// counted across all op names) suffers \p kind. Overrides the dice.
  void ScheduleFault(uint64_t op_index, FaultKind kind) {
    scripted_[op_index] = kind;
  }

  /// Scripted outage: every op with index in [from_op, to_op) fails with
  /// \p kind — a dead link / unmounted volume window.
  void ScheduleOutage(uint64_t from_op, uint64_t to_op, FaultKind kind) {
    for (uint64_t i = from_op; i < to_op; ++i) scripted_[i] = kind;
  }

  /// The per-operation decision point. Charges any injected latency to the
  /// clock and returns OK or the injected error; \p op_name only labels the
  /// error message.
  Status OnOperation(const std::string& op_name);

  /// The per-message decision point for a replication / network link.
  /// Shares the op counter and scripted schedule with OnOperation (so
  /// ScheduleFault/ScheduleOutage script link faults too) but draws its
  /// own dice from the link knobs: a FaultInjector used only through
  /// OnOperation consumes exactly the same Rng stream as before the link
  /// kinds existed. \p op_name only labels nothing here — it is kept for
  /// symmetry and future tracing.
  LinkVerdict OnLinkOperation(const std::string& op_name);

  /// The per-operation decision point for a storage device (Env). Shares
  /// the op counter, scripted schedule, and error dice with OnOperation —
  /// with the corruption knobs at 0 it consumes exactly the same Rng
  /// stream, so every pre-existing crash scenario replays unchanged — but
  /// additionally surfaces silent-corruption verdicts: scripted kBitFlip /
  /// kTruncate (which OnOperation treats as OK no-ops) and, when the env
  /// knobs are > 0, probabilistic draws guarded behind those knobs.
  EnvVerdict OnEnvOperation(const std::string& op_name);

  /// Applies content truncation with the configured probability. Returns
  /// true when \p content was truncated.
  bool MaybeTruncate(std::string* content);

  /// --- counters ------------------------------------------------------------
  uint64_t ops_total() const { return ops_total_; }
  uint64_t faults_injected() const { return faults_injected_; }
  uint64_t truncations() const { return truncations_; }
  Micros latency_injected_micros() const { return latency_injected_micros_; }
  uint64_t link_drops() const { return link_drops_; }
  uint64_t link_duplicates() const { return link_duplicates_; }
  uint64_t link_delays() const { return link_delays_; }
  uint64_t link_corruptions() const { return link_corruptions_; }
  uint64_t env_corruptions() const { return env_corruptions_; }

 private:
  void Charge(Micros micros);

  FaultConfig config_;
  Rng rng_;
  Clock* clock_;
  std::map<uint64_t, FaultKind> scripted_;
  uint64_t ops_total_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t truncations_ = 0;
  Micros latency_injected_micros_ = 0;
  uint64_t link_drops_ = 0;
  uint64_t link_duplicates_ = 0;
  uint64_t link_delays_ = 0;
  uint64_t link_corruptions_ = 0;
  uint64_t env_corruptions_ = 0;
};

}  // namespace idm

#endif  // IDM_UTIL_FAULT_H_
