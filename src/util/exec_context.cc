#include "util/exec_context.h"

namespace idm::util {

// ---------------------------------------------------------------------------
// MemoryBudget

Status MemoryBudget::TryCharge(size_t bytes) {
  size_t after = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ > 0 && after > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "memory budget exceeded: " + std::to_string(after) + " > " +
        std::to_string(limit_) + " bytes");
  }
  // Raise the high-water mark (racy max via CAS loop).
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (after > peak &&
         !peak_.compare_exchange_weak(peak, after, std::memory_order_relaxed)) {
  }
  if (parent_ != nullptr) {
    Status up = parent_->TryCharge(bytes);
    if (!up.ok()) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return up;
    }
  }
  return Status::OK();
}

void MemoryBudget::Release(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

// ---------------------------------------------------------------------------
// ExecContext

ExecContext::ExecContext(const Clock* clock, Limits limits)
    : family_(std::make_shared<Family>(clock, limits)),
      budget_(&family_->budget) {}

ExecContext::ExecContext(std::shared_ptr<Family> family,
                         std::unique_ptr<MemoryBudget> own_budget)
    : family_(std::move(family)),
      own_budget_(std::move(own_budget)),
      budget_(own_budget_.get()) {}

std::unique_ptr<ExecContext> ExecContext::Child() {
  // Same byte limit as the family (a child may not exceed the query's
  // budget on its own); charges roll up to the root budget.
  auto sub = std::make_unique<MemoryBudget>(family_->limits.memory_limit_bytes,
                                            &family_->budget);
  return std::unique_ptr<ExecContext>(
      new ExecContext(family_, std::move(sub)));
}

void ExecContext::Cancel(Status reason) {
  if (reason.ok()) reason = Status::Cancelled("execution cancelled");
  Doom(std::move(reason));
}

void ExecContext::Doom(Status reason) {
  {
    std::lock_guard<std::mutex> lock(family_->mu);
    if (family_->doom.ok()) family_->doom = std::move(reason);
  }
  family_->doomed.store(true, std::memory_order_release);
}

Status ExecContext::DoomStatus() const {
  std::lock_guard<std::mutex> lock(family_->mu);
  return family_->doom;
}

Status ExecContext::status() const {
  if (!doomed()) return Status::OK();
  return DoomStatus();
}

Micros ExecContext::elapsed_micros() const {
  Micros elapsed = family_->charged.load(std::memory_order_relaxed);
  if (family_->clock != nullptr) {
    elapsed += family_->clock->NowMicros() - family_->start_micros;
  }
  return elapsed;
}

Micros ExecContext::remaining_micros() const {
  if (family_->limits.deadline_micros <= 0) {
    return std::numeric_limits<Micros>::max();
  }
  Micros left = family_->limits.deadline_micros - elapsed_micros();
  return left > 0 ? left : 0;
}

Status ExecContext::Check() {
  Family& f = *family_;
  if (f.doomed.load(std::memory_order_acquire)) return DoomStatus();
  if (f.limits.deadline_micros > 0 &&
      elapsed_micros() > f.limits.deadline_micros) {
    Doom(Status::DeadlineExceeded(
        "deadline of " + std::to_string(f.limits.deadline_micros) +
        "us exceeded"));
    return DoomStatus();
  }
  return Status::OK();
}

Status ExecContext::Tick(uint64_t n) {
  Family& f = *family_;
  if (f.doomed.load(std::memory_order_acquire)) return DoomStatus();

  uint64_t before = f.steps.fetch_add(n, std::memory_order_relaxed);
  uint64_t after = before + n;

  if (f.limits.cancel_at_step > 0 && after >= f.limits.cancel_at_step &&
      before < f.limits.cancel_at_step) {
    // Exactly one Tick crosses the injection point (fetch_add hands out
    // disjoint ranges), so the cancellation fires once, deterministically
    // by step count.
    Doom(Status::Cancelled("cancelled at step " +
                           std::to_string(f.limits.cancel_at_step)));
    return DoomStatus();
  }
  if (f.limits.max_steps > 0 && after > f.limits.max_steps) {
    Doom(Status::ResourceExhausted(
        "step budget of " + std::to_string(f.limits.max_steps) +
        " steps exceeded"));
    return DoomStatus();
  }
  if (f.limits.micros_per_step > 0) {
    f.charged.fetch_add(static_cast<Micros>(n) * f.limits.micros_per_step,
                        std::memory_order_relaxed);
  }
  if (f.limits.deadline_micros > 0) {
    // With a per-step cost the deadline comparison is pure arithmetic, so
    // it runs on every Tick and the doom step is exact. Otherwise the
    // clock is only consulted at stride boundaries.
    bool crossed_stride = before / kStride != after / kStride || n >= kStride;
    if (f.limits.micros_per_step > 0 || crossed_stride) {
      if (elapsed_micros() > f.limits.deadline_micros) {
        Doom(Status::DeadlineExceeded(
            "deadline of " + std::to_string(f.limits.deadline_micros) +
            "us exceeded after " + std::to_string(after) + " steps"));
        return DoomStatus();
      }
    }
  }
  return Status::OK();
}

Status ExecContext::ChargeMemory(size_t bytes) {
  if (family_->doomed.load(std::memory_order_acquire)) return DoomStatus();
  Status charged = budget_->TryCharge(bytes);
  if (!charged.ok()) {
    Doom(charged);
    return DoomStatus();
  }
  return Status::OK();
}

void ExecContext::ReleaseMemory(size_t bytes) { budget_->Release(bytes); }

}  // namespace idm::util
