// Clocks. The library separates *wall time* (used by benchmarks to measure
// real elapsed time) from *simulated time* (used by the VFS, the IMAP latency
// model and the synchronization manager so that tests are deterministic and
// "remote access cost" can be accounted without sleeping).

#ifndef IDM_UTIL_CLOCK_H_
#define IDM_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace idm {

/// Microseconds since an arbitrary epoch.
using Micros = int64_t;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds.
  virtual Micros NowMicros() const = 0;
  /// Advances time by \p micros. Real clocks implement this as a no-op
  /// spin-free "charge" that is reflected in accounting only.
  virtual void AdvanceMicros(Micros micros) = 0;
};

/// Deterministic, manually-advanced clock for simulations and tests.
///
/// Starts at a fixed epoch (2005-01-01 00:00:00 UTC, matching the vintage of
/// the paper's dataset) unless constructed with another origin.
class SimClock : public Clock {
 public:
  /// 2005-01-01 00:00:00 UTC expressed as microseconds since Unix epoch.
  static constexpr Micros kDefaultEpochMicros = 1104537600LL * 1000000LL;

  explicit SimClock(Micros start = kDefaultEpochMicros) : now_(start) {}

  Micros NowMicros() const override { return now_; }
  void AdvanceMicros(Micros micros) override { now_ += micros; }

  /// Convenience: advance by whole seconds.
  void AdvanceSeconds(int64_t seconds) { now_ += seconds * 1000000; }

 private:
  Micros now_;
};

/// Real wall-clock, monotonic. AdvanceMicros() is a no-op.
class WallClock : public Clock {
 public:
  Micros NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void AdvanceMicros(Micros) override {}
};

/// Formats a Unix-epoch timestamp (microseconds) as "DD/MM/YYYY HH:MM",
/// the notation used by the paper's examples.
std::string FormatTimestamp(Micros micros_since_epoch);

/// Parses "DD.MM.YYYY" (iQL date literal syntax, e.g. @12.06.2005) into
/// microseconds since the Unix epoch at midnight UTC. Returns false on
/// malformed input.
bool ParseDate(const std::string& dd_mm_yyyy, Micros* out);

}  // namespace idm

#endif  // IDM_UTIL_CLOCK_H_
