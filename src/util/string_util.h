// Small string helpers shared across the library. All functions are pure.

#ifndef IDM_UTIL_STRING_UTIL_H_
#define IDM_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace idm {

/// Splits \p s on \p sep. Empty fields are kept ("a//b" -> {"a","","b"});
/// an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view s, char sep);

/// Like Split but drops empty fields ("/a//b/" -> {"a","b"}).
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);

/// Joins \p parts with \p sep between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Glob-style match of \p pattern against \p text, where '*' matches any run
/// of characters (including empty) and '?' matches exactly one character.
/// Matching is case-insensitive, mirroring iQL name-step semantics
/// (e.g. "?onclusion*" matches "Conclusions").
bool WildcardMatch(std::string_view pattern, std::string_view text);

/// True if \p pattern contains a '*' or '?' metacharacter.
bool HasWildcards(std::string_view pattern);

/// Replaces every occurrence of \p from in \p s with \p to.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Formats a byte count as a fixed-point MB string, e.g. "12.5".
std::string BytesToMb(uint64_t bytes);

}  // namespace idm

#endif  // IDM_UTIL_STRING_UTIL_H_
