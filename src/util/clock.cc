#include "util/clock.h"

#include <cstdio>
#include <ctime>

namespace idm {

std::string FormatTimestamp(Micros micros_since_epoch) {
  std::time_t secs = static_cast<std::time_t>(micros_since_epoch / 1000000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d %02d:%02d", tm_utc.tm_mday,
                tm_utc.tm_mon + 1, tm_utc.tm_year + 1900, tm_utc.tm_hour,
                tm_utc.tm_min);
  return buf;
}

bool ParseDate(const std::string& dd_mm_yyyy, Micros* out) {
  int d = 0, m = 0, y = 0;
  if (std::sscanf(dd_mm_yyyy.c_str(), "%d.%d.%d", &d, &m, &y) != 3) {
    return false;
  }
  if (d < 1 || d > 31 || m < 1 || m > 12 || y < 1970 || y > 9999) return false;
  std::tm tm_utc{};
  tm_utc.tm_mday = d;
  tm_utc.tm_mon = m - 1;
  tm_utc.tm_year = y - 1900;
  std::time_t secs = timegm(&tm_utc);
  if (secs == static_cast<std::time_t>(-1)) return false;
  *out = static_cast<Micros>(secs) * 1000000;
  return true;
}

}  // namespace idm
