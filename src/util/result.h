// Result<T>: value-or-Status, the return type of fallible functions that
// produce a value (the Arrow `Result` / abseil `StatusOr` idiom).

#ifndef IDM_UTIL_RESULT_H_
#define IDM_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace idm {

/// Holds either a T (success) or a non-OK Status (failure).
///
/// Accessing the value of a failed Result is a programming error and asserts
/// in debug builds; callers must check ok() (or use the IDM_ASSIGN_OR_RETURN
/// macro) first.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// is a programming error (there would be no value).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::FailedPrecondition("Result built from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or \p fallback when this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace idm

#define IDM_CONCAT_IMPL_(x, y) x##y
#define IDM_CONCAT_(x, y) IDM_CONCAT_IMPL_(x, y)

/// Evaluates a Result<T> expression; on error returns the Status from the
/// enclosing function, otherwise assigns the value to `lhs` (which may be a
/// declaration, e.g. `auto doc`).
#define IDM_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  IDM_ASSIGN_OR_RETURN_IMPL_(IDM_CONCAT_(_idm_result_, __LINE__), \
                             lhs, rexpr)

#define IDM_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#endif  // IDM_UTIL_RESULT_H_
