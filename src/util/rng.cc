#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace idm {

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<size_t>(it - zipf_cdf_.begin());
}

}  // namespace idm
