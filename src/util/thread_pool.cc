#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

namespace idm::util {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker; }

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  uint64_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
  while (depth > peak && !queue_depth_peak_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  t_on_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    auto start = std::chrono::steady_clock::now();
    task();  // packaged_task captures exceptions into its future
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    busy_micros_.fetch_add(static_cast<uint64_t>(elapsed.count()),
                           std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::RunAll(ThreadPool* pool,
                        std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (pool == nullptr || pool->size() == 0 || OnWorkerThread() ||
      tasks.size() == 1) {
    if (pool != nullptr) {
      pool->inline_tasks_.fetch_add(tasks.size(), std::memory_order_relaxed);
    }
    for (auto& task : tasks) task();
    return;
  }
  pool->inline_tasks_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size() - 1);
  for (size_t i = 1; i < tasks.size(); ++i) {
    futures.push_back(pool->Submit(std::move(tasks[i])));
  }
  // The caller contributes the first task instead of idling on futures.
  std::exception_ptr first_error;
  try {
    tasks[0]();
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPoolTelemetry ThreadPool::telemetry() const {
  ThreadPoolTelemetry t;
  t.submitted = submitted_.load(std::memory_order_relaxed);
  t.executed = executed_.load(std::memory_order_relaxed);
  t.inline_tasks = inline_tasks_.load(std::memory_order_relaxed);
  t.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  t.busy_micros = busy_micros_.load(std::memory_order_relaxed);
  return t;
}

std::vector<std::pair<size_t, size_t>> ChunkRanges(size_t n, size_t ways,
                                                   size_t min_chunk) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n == 0) return ranges;
  if (ways < 1) ways = 1;
  if (min_chunk < 1) min_chunk = 1;
  size_t chunks = std::min(ways, std::max<size_t>(1, n / min_chunk));
  size_t base = n / chunks, extra = n % chunks;
  size_t begin = 0;
  for (size_t i = 0; i < chunks; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

}  // namespace idm::util
