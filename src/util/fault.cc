#include "util/fault.h"

namespace idm {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kIoError: return "io error";
    case FaultKind::kUnavailable: return "unavailable";
    case FaultKind::kLatencySpike: return "latency spike";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kBitFlip: return "bit flip";
  }
  return "unknown";
}

void FaultInjector::Charge(Micros micros) {
  if (micros <= 0) return;
  latency_injected_micros_ += micros;
  if (clock_ != nullptr) clock_->AdvanceMicros(micros);
}

Status FaultInjector::OnOperation(const std::string& op_name) {
  uint64_t index = ops_total_++;

  FaultKind kind = FaultKind::kNone;
  auto scripted = scripted_.find(index);
  if (scripted != scripted_.end()) {
    kind = scripted->second;
  } else {
    // Draw both dice unconditionally so the Rng stream consumed per op is
    // fixed: scenarios stay comparable when probabilities change.
    bool error_fault = rng_.Chance(config_.fault_probability);
    bool unavailable = rng_.Chance(config_.unavailable_weight);
    bool spike = rng_.Chance(config_.latency_spike_probability);
    if (error_fault) {
      kind = unavailable ? FaultKind::kUnavailable : FaultKind::kIoError;
    } else if (spike) {
      kind = FaultKind::kLatencySpike;
    }
  }

  switch (kind) {
    case FaultKind::kNone:
    case FaultKind::kTruncate:   // truncation applies to reads, not to ops
    case FaultKind::kBitFlip:    // silent corruption is an env/link effect
    case FaultKind::kDuplicate:  // duplication is a link effect; an op is
      return Status::OK();       // executed once either way
    case FaultKind::kLatencySpike:
      ++faults_injected_;
      Charge(config_.latency_spike_micros);
      return Status::OK();
    case FaultKind::kDelay:  // scripted on a plain op: just extra latency
      ++faults_injected_;
      Charge(config_.delay_micros);
      return Status::OK();
    case FaultKind::kIoError:
      ++faults_injected_;
      Charge(config_.fault_latency_micros);
      return Status::IoError("injected fault on " + op_name + " (op #" +
                             std::to_string(index) + ")");
    case FaultKind::kUnavailable:
    case FaultKind::kPartition:  // scripted on a plain op: an outage
      ++faults_injected_;
      Charge(config_.fault_latency_micros);
      return Status::Unavailable("injected outage on " + op_name + " (op #" +
                                 std::to_string(index) + ")");
  }
  return Status::OK();
}

LinkVerdict FaultInjector::OnLinkOperation(const std::string& op_name) {
  (void)op_name;
  uint64_t index = ops_total_++;

  FaultKind kind = FaultKind::kNone;
  auto scripted = scripted_.find(index);
  if (scripted != scripted_.end()) {
    kind = scripted->second;
  } else {
    // Fixed draw count per message (cf. OnOperation): link scenarios stay
    // comparable when individual probabilities change. An error-configured
    // injector (fault_probability) also drops — a generic flaky link.
    bool partition = rng_.Chance(config_.partition_probability);
    bool duplicate = rng_.Chance(config_.duplicate_probability);
    bool delay = rng_.Chance(config_.delay_probability);
    bool error = rng_.Chance(config_.fault_probability);
    // Corruption draw is guarded behind its knob: a link configured without
    // it consumes exactly the pre-corruption Rng stream.
    bool corrupt = config_.link_corrupt_probability > 0.0 &&
                   rng_.Chance(config_.link_corrupt_probability);
    if (partition || error) {
      kind = FaultKind::kPartition;
    } else if (corrupt) {
      kind = FaultKind::kBitFlip;
    } else if (duplicate) {
      kind = FaultKind::kDuplicate;
    } else if (delay) {
      kind = FaultKind::kDelay;
    }
  }

  LinkVerdict verdict;
  verdict.kind = kind;
  switch (kind) {
    case FaultKind::kNone:
    case FaultKind::kTruncate:  // not a link effect
      break;
    case FaultKind::kIoError:      // scripted legacy kinds on a link:
    case FaultKind::kUnavailable:  // the message is lost either way
    case FaultKind::kPartition:
      verdict.dropped = true;
      ++faults_injected_;
      ++link_drops_;
      Charge(config_.fault_latency_micros);
      break;
    case FaultKind::kLatencySpike:
    case FaultKind::kDelay:
      verdict.delay_micros = kind == FaultKind::kDelay
                                 ? config_.delay_micros
                                 : config_.latency_spike_micros;
      ++faults_injected_;
      ++link_delays_;
      Charge(verdict.delay_micros);
      break;
    case FaultKind::kDuplicate:
      verdict.duplicated = true;
      ++faults_injected_;
      ++link_duplicates_;
      break;
    case FaultKind::kBitFlip:
      verdict.corrupted = true;
      ++faults_injected_;
      ++link_corruptions_;
      break;
  }
  return verdict;
}

EnvVerdict FaultInjector::OnEnvOperation(const std::string& op_name) {
  uint64_t index = ops_total_++;

  FaultKind kind = FaultKind::kNone;
  auto scripted = scripted_.find(index);
  if (scripted != scripted_.end()) {
    kind = scripted->second;
  } else {
    // Same three unconditional dice as OnOperation, in the same order, so
    // an env that moves from OnOperation to OnEnvOperation replays every
    // pre-existing crash scenario bit-identically.
    bool error_fault = rng_.Chance(config_.fault_probability);
    bool unavailable = rng_.Chance(config_.unavailable_weight);
    bool spike = rng_.Chance(config_.latency_spike_probability);
    // Corruption dice exist only when their knobs are armed.
    bool flip = config_.bitflip_probability > 0.0 &&
                rng_.Chance(config_.bitflip_probability);
    bool cut = config_.env_truncate_probability > 0.0 &&
               rng_.Chance(config_.env_truncate_probability);
    if (flip) {
      kind = FaultKind::kBitFlip;
    } else if (cut) {
      kind = FaultKind::kTruncate;
    } else if (error_fault) {
      kind = unavailable ? FaultKind::kUnavailable : FaultKind::kIoError;
    } else if (spike) {
      kind = FaultKind::kLatencySpike;
    }
  }

  EnvVerdict verdict;
  switch (kind) {
    case FaultKind::kNone:
    case FaultKind::kDuplicate:  // not a device effect
      break;
    case FaultKind::kBitFlip:
    case FaultKind::kTruncate:
      // The device lies: the op reports OK, the bytes are damaged. The env
      // applies the damage; readers only find out when a CRC fails.
      verdict.corruption = kind;
      ++faults_injected_;
      ++env_corruptions_;
      break;
    case FaultKind::kLatencySpike:
      ++faults_injected_;
      Charge(config_.latency_spike_micros);
      break;
    case FaultKind::kDelay:
      ++faults_injected_;
      Charge(config_.delay_micros);
      break;
    case FaultKind::kIoError:
      ++faults_injected_;
      Charge(config_.fault_latency_micros);
      verdict.status = Status::IoError("injected fault on " + op_name +
                                       " (op #" + std::to_string(index) + ")");
      break;
    case FaultKind::kUnavailable:
    case FaultKind::kPartition:
      ++faults_injected_;
      Charge(config_.fault_latency_micros);
      verdict.status = Status::Unavailable("injected outage on " + op_name +
                                           " (op #" + std::to_string(index) +
                                           ")");
      break;
  }
  return verdict;
}

bool FaultInjector::MaybeTruncate(std::string* content) {
  if (content == nullptr || content->empty()) return false;
  if (!rng_.Chance(config_.truncate_probability)) return false;
  double keep = config_.truncate_keep_fraction;
  if (keep < 0.0) keep = 0.0;
  if (keep >= 1.0) keep = 0.99;
  content->resize(static_cast<size_t>(content->size() * keep));
  ++truncations_;
  return true;
}

}  // namespace idm
