#include "util/fault.h"

namespace idm {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kIoError: return "io error";
    case FaultKind::kUnavailable: return "unavailable";
    case FaultKind::kLatencySpike: return "latency spike";
    case FaultKind::kTruncate: return "truncate";
  }
  return "unknown";
}

void FaultInjector::Charge(Micros micros) {
  if (micros <= 0) return;
  latency_injected_micros_ += micros;
  if (clock_ != nullptr) clock_->AdvanceMicros(micros);
}

Status FaultInjector::OnOperation(const std::string& op_name) {
  uint64_t index = ops_total_++;

  FaultKind kind = FaultKind::kNone;
  auto scripted = scripted_.find(index);
  if (scripted != scripted_.end()) {
    kind = scripted->second;
  } else {
    // Draw both dice unconditionally so the Rng stream consumed per op is
    // fixed: scenarios stay comparable when probabilities change.
    bool error_fault = rng_.Chance(config_.fault_probability);
    bool unavailable = rng_.Chance(config_.unavailable_weight);
    bool spike = rng_.Chance(config_.latency_spike_probability);
    if (error_fault) {
      kind = unavailable ? FaultKind::kUnavailable : FaultKind::kIoError;
    } else if (spike) {
      kind = FaultKind::kLatencySpike;
    }
  }

  switch (kind) {
    case FaultKind::kNone:
    case FaultKind::kTruncate:  // truncation applies to reads, not to ops
      return Status::OK();
    case FaultKind::kLatencySpike:
      ++faults_injected_;
      Charge(config_.latency_spike_micros);
      return Status::OK();
    case FaultKind::kIoError:
      ++faults_injected_;
      Charge(config_.fault_latency_micros);
      return Status::IoError("injected fault on " + op_name + " (op #" +
                             std::to_string(index) + ")");
    case FaultKind::kUnavailable:
      ++faults_injected_;
      Charge(config_.fault_latency_micros);
      return Status::Unavailable("injected outage on " + op_name + " (op #" +
                                 std::to_string(index) + ")");
  }
  return Status::OK();
}

bool FaultInjector::MaybeTruncate(std::string* content) {
  if (content == nullptr || content->empty()) return false;
  if (!rng_.Chance(config_.truncate_probability)) return false;
  double keep = config_.truncate_keep_fraction;
  if (keep < 0.0) keep = 0.0;
  if (keep >= 1.0) keep = 0.99;
  content->resize(static_cast<size_t>(content->size() * keep));
  ++truncations_;
  return true;
}

}  // namespace idm
