#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace idm {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : Split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool WildcardMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with backtracking to the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, mark = 0;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || lower(pattern[p]) == lower(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool HasWildcards(std::string_view pattern) {
  return pattern.find('*') != std::string_view::npos ||
         pattern.find('?') != std::string_view::npos;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string BytesToMb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace idm
