#include "latex/latex_views.h"

#include <map>

namespace idm::latex {

using core::ContentComponent;
using core::Domain;
using core::GroupComponent;
using core::Schema;
using core::TupleComponent;
using core::Value;
using core::ViewBuilder;
using core::ViewPtr;

namespace {

using LabelTable = std::map<std::string, ViewPtr>;

const char* SectionClass(int level) {
  switch (level) {
    case 1: return "latex_section";
    case 2: return "latex_subsection";
    default: return "latex_subsubsection";
  }
}

/// τ for labeled units: ⟨label: string⟩, plus ⟨caption⟩ for environments.
TupleComponent UnitTuple(const LatexNode& node) {
  Schema schema;
  std::vector<Value> values;
  if (!node.label.empty()) {
    schema.Add("label", Domain::kString);
    values.push_back(Value::String(node.label));
  }
  if (!node.caption.empty()) {
    schema.Add("caption", Domain::kString);
    values.push_back(Value::String(node.caption));
  }
  if (schema.empty()) return TupleComponent();
  return TupleComponent::MakeUnchecked(std::move(schema), std::move(values));
}

/// χ for a structural unit: empty component when it has no direct text.
ContentComponent UnitContent(const LatexNode& node);

/// Direct text of a structural unit: its kText children plus its caption.
/// This becomes the unit view's χ, so that phrase predicates match the
/// section/figure itself (paper Q4-Q8 query sections and figures by the
/// phrases *they* contain).
std::string DirectText(const LatexNode& node) {
  std::string out;
  if (!node.caption.empty()) out = node.caption;
  for (const auto& child : node.children) {
    if (child->kind != LatexNode::Kind::kText) continue;
    if (!out.empty()) out += '\n';
    out += child->text;
  }
  return out;
}

ContentComponent UnitContent(const LatexNode& node) {
  std::string text = DirectText(node);
  if (text.empty()) return ContentComponent();
  return ContentComponent::OfString(std::move(text));
}

ViewPtr BuildNode(const LatexNode& node, const std::string& uri,
                  const std::shared_ptr<LabelTable>& labels) {
  // Structural children first; text runs fold into the parent's χ instead
  // of becoming views of their own (Figure 1(b) draws no text nodes).
  std::vector<ViewPtr> children;
  children.reserve(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i]->kind == LatexNode::Kind::kText) continue;
    children.push_back(
        BuildNode(*node.children[i], uri + "/" + std::to_string(i), labels));
  }

  ViewPtr view;
  switch (node.kind) {
    case LatexNode::Kind::kDocumentClass:
      view = ViewBuilder(uri)
                 .Name("documentclass")
                 .ContentString(node.title)
                 .Build();
      break;
    case LatexNode::Kind::kTitle:
      view = ViewBuilder(uri).Name("title").ContentString(node.title).Build();
      break;
    case LatexNode::Kind::kDocument:
      view = ViewBuilder(uri)
                 .Class("environment")
                 .Name("document")
                 .Content(UnitContent(node))
                 .GroupSequence(std::move(children))
                 .Build();
      break;
    case LatexNode::Kind::kSection:
      view = ViewBuilder(uri)
                 .Class(SectionClass(node.level))
                 .Name(node.title)
                 .Tuple(UnitTuple(node))
                 .Content(UnitContent(node))
                 .GroupSequence(std::move(children))
                 .Build();
      break;
    case LatexNode::Kind::kEnvironment:
      view = ViewBuilder(uri)
                 .Class(node.title == "figure" ? "figure" : "environment")
                 .Name(node.title)
                 .Tuple(UnitTuple(node))
                 .Content(UnitContent(node))
                 .GroupSequence(std::move(children))
                 .Build();
      break;
    case LatexNode::Kind::kText:
      // Folded into the parent's χ; BuildNode is never called on kText.
      break;
    case LatexNode::Kind::kRef: {
      // γ resolves against the shared label table on first access, so a
      // \ref to a later-defined label still finds its target.
      std::string key = node.title;
      view = ViewBuilder(uri)
                 .Class("texref")
                 .Name(key)
                 .Group(GroupComponent::OfLazySet([labels, key]() {
                   std::vector<ViewPtr> out;
                   auto it = labels->find(key);
                   if (it != labels->end()) out.push_back(it->second);
                   return out;
                 }))
                 .Build();
      break;
    }
  }
  if (!node.label.empty()) labels->emplace(node.label, view);
  return view;
}

}  // namespace

ViewPtr LatexToViews(const LatexDocument& doc, const std::string& uri_prefix) {
  auto labels = std::make_shared<LabelTable>();
  std::vector<ViewPtr> children;
  children.reserve(doc.nodes.size());
  std::string root_text;
  for (size_t i = 0; i < doc.nodes.size(); ++i) {
    if (doc.nodes[i]->kind == LatexNode::Kind::kText) {
      if (!root_text.empty()) root_text += '\n';
      root_text += doc.nodes[i]->text;
      continue;
    }
    children.push_back(BuildNode(*doc.nodes[i],
                                 uri_prefix + "#tex/" + std::to_string(i),
                                 labels));
  }
  ViewBuilder builder(uri_prefix + "#texdoc");
  builder.Class("latex_document").Name("latex").GroupSequence(std::move(children));
  if (!root_text.empty()) builder.ContentString(std::move(root_text));
  return builder.Build();
}

}  // namespace idm::latex
