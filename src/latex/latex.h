// Structural LaTeX parser: the substrate behind the paper's LATEX2iDM
// converter (paper §2.3, §5.2, §7.1). It recognizes the structural commands
// the paper's examples rely on — \documentclass, \title, the document
// environment, \section/\subsection/\subsubsection hierarchies, generic
// environments (figure, table, abstract, ...), \caption, \label and \ref —
// and collects everything else as plain text. \ref commands are what turn a
// LaTeX document into *graph*-structured (non-tree) data: they reference
// labeled sections/figures anywhere in the document.

#ifndef IDM_LATEX_LATEX_H_
#define IDM_LATEX_LATEX_H_

#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace idm::latex {

/// A node of the structural parse.
struct LatexNode {
  enum class Kind {
    kDocumentClass,  ///< \documentclass{...}; title holds the class name
    kTitle,          ///< \title{...}; title holds the title text
    kDocument,       ///< the \begin{document} body
    kSection,        ///< \section/\subsection/\subsubsection; level 1..3
    kEnvironment,    ///< \begin{env}...\end{env}; title holds env name
    kText,           ///< a run of plain text
    kRef,            ///< \ref{key}; title holds the key
  };

  Kind kind = Kind::kText;
  int level = 0;        ///< section nesting: 1 = section, 2 = subsection, ...
  std::string title;    ///< see Kind comments
  std::string label;    ///< \label key attached to this unit ("" if none)
  std::string caption;  ///< \caption text (environments)
  std::string text;     ///< kText payload
  std::vector<std::unique_ptr<LatexNode>> children;

  /// Concatenated text of this subtree (captions included).
  std::string TextContent() const;
  /// Nodes in this subtree, including this node.
  size_t SubtreeSize() const;
};

/// A parsed LaTeX file: a sequence of top-level nodes in document order
/// (documentclass, title, then the document body).
struct LatexDocument {
  std::vector<std::unique_ptr<LatexNode>> nodes;

  /// First node of \p kind, or nullptr.
  const LatexNode* Find(LatexNode::Kind kind) const;
  /// All \label keys defined anywhere in the document.
  std::vector<std::string> Labels() const;
};

/// Parses LaTeX source. Lenient where real-world LaTeX is messy (unclosed
/// environments close at end of input; unknown commands are stripped with
/// their star forms and optional arguments) but strict on structurally
/// broken input (an unterminated mandatory argument is a ParseError).
Result<LatexDocument> ParseLatex(const std::string& input);

}  // namespace idm::latex

#endif  // IDM_LATEX_LATEX_H_
