#include "latex/latex.h"

#include <cctype>

#include "util/string_util.h"

namespace idm::latex {

std::string LatexNode::TextContent() const {
  std::string out;
  if (kind == Kind::kText) out += text;
  if (!caption.empty()) {
    out += caption;
    out += ' ';
  }
  for (const auto& child : children) out += child->TextContent();
  return out;
}

size_t LatexNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children) n += child->SubtreeSize();
  return n;
}

const LatexNode* LatexDocument::Find(LatexNode::Kind kind) const {
  for (const auto& node : nodes) {
    if (node->kind == kind) return node.get();
  }
  return nullptr;
}

namespace {

void CollectLabels(const LatexNode& node, std::vector<std::string>* out) {
  if (!node.label.empty()) out->push_back(node.label);
  for (const auto& child : node.children) CollectLabels(*child, out);
}

}  // namespace

std::vector<std::string> LatexDocument::Labels() const {
  std::vector<std::string> out;
  for (const auto& node : nodes) CollectLabels(*node, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

/// Strips inline markup from a command argument: \cmd tokens are removed,
/// braces are dropped (keeping their contents), '~' becomes a space.
std::string CleanInline(const std::string& raw) {
  std::string out;
  for (size_t i = 0; i < raw.size();) {
    char c = raw[i];
    if (c == '\\') {
      ++i;
      if (i < raw.size() && !std::isalpha(static_cast<unsigned char>(raw[i]))) {
        out += raw[i++];  // escaped special character: \%, \&, \_
        continue;
      }
      while (i < raw.size() && std::isalpha(static_cast<unsigned char>(raw[i]))) {
        ++i;  // skip the command name; its brace args are kept by fallthrough
      }
      continue;
    }
    if (c == '{' || c == '}' || c == '$') {
      ++i;
      continue;
    }
    if (c == '~') {
      out += ' ';
      ++i;
      continue;
    }
    out += c;
    ++i;
  }
  // Collapse whitespace runs left behind by stripped markup.
  std::string collapsed;
  bool in_space = false;
  for (char c : out) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_space = true;
      continue;
    }
    if (in_space && !collapsed.empty()) collapsed += ' ';
    in_space = false;
    collapsed += c;
  }
  return collapsed;
}

class Parser {
 public:
  explicit Parser(const std::string& input) : input_(input) {}

  Result<LatexDocument> Run() {
    root_ = std::make_unique<LatexNode>();
    root_->kind = LatexNode::Kind::kDocument;
    stack_.push_back(root_.get());

    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '%') {
        SkipComment();
      } else if (c == '\\') {
        IDM_RETURN_NOT_OK(HandleCommand());
      } else if (c == '$') {
        ++pos_;  // math delimiters: keep the inner text, drop the '$'
      } else {
        text_ += c;
        ++pos_;
      }
    }
    FlushText();

    LatexDocument doc;
    doc.nodes = std::move(root_->children);
    return doc;
  }

 private:
  LatexNode* Current() { return stack_.back(); }

  void SkipComment() {
    while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
  }

  void FlushText() {
    std::string cleaned = text_;
    text_.clear();
    // Collapse whitespace runs; drop whitespace-only runs entirely.
    std::string collapsed;
    bool in_space = true;
    for (char c : cleaned) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) collapsed += ' ';
        in_space = true;
      } else {
        collapsed += c;
        in_space = false;
      }
    }
    std::string trimmed(Trim(collapsed));
    if (trimmed.empty()) return;
    auto node = std::make_unique<LatexNode>();
    node->kind = LatexNode::Kind::kText;
    node->text = std::move(trimmed);
    Current()->children.push_back(std::move(node));
  }

  std::string ReadCommandName() {
    // pos_ is at '\'.
    ++pos_;
    std::string name;
    if (pos_ < input_.size() &&
        !std::isalpha(static_cast<unsigned char>(input_[pos_]))) {
      name += input_[pos_++];  // \\, \%, \&, ...
      return name;
    }
    while (pos_ < input_.size() &&
           std::isalpha(static_cast<unsigned char>(input_[pos_]))) {
      name += input_[pos_++];
    }
    if (pos_ < input_.size() && input_[pos_] == '*') ++pos_;  // starred form
    return name;
  }

  void SkipOptionalArgs() {
    while (true) {
      size_t save = pos_;
      while (pos_ < input_.size() &&
             std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      if (pos_ < input_.size() && input_[pos_] == '[') {
        int depth = 0;
        while (pos_ < input_.size()) {
          if (input_[pos_] == '[') ++depth;
          if (input_[pos_] == ']' && --depth == 0) {
            ++pos_;
            break;
          }
          ++pos_;
        }
      } else {
        pos_ = save;
        return;
      }
    }
  }

  /// Reads one mandatory {…} argument with balanced braces; raw contents.
  Result<std::string> ReadBraceArg(const std::string& command) {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size() || input_[pos_] != '{') {
      return Status::ParseError("\\" + command +
                                " is missing its {…} argument");
    }
    ++pos_;
    std::string out;
    int depth = 1;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\\' && pos_ + 1 < input_.size()) {
        out += c;
        out += input_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (c == '{') ++depth;
      if (c == '}' && --depth == 0) {
        ++pos_;
        return out;
      }
      out += c;
      ++pos_;
    }
    return Status::ParseError("unterminated argument of \\" + command);
  }

  void PopSectionsToLevel(int level) {
    while (stack_.size() > 1) {
      LatexNode* top = Current();
      if (top->kind == LatexNode::Kind::kSection && top->level >= level) {
        stack_.pop_back();
      } else {
        break;
      }
    }
  }

  Status HandleSection(int level, const std::string& command) {
    FlushText();
    IDM_ASSIGN_OR_RETURN(std::string raw, ReadBraceArg(command));
    PopSectionsToLevel(level);
    auto node = std::make_unique<LatexNode>();
    node->kind = LatexNode::Kind::kSection;
    node->level = level;
    node->title = CleanInline(raw);
    LatexNode* raw_ptr = node.get();
    Current()->children.push_back(std::move(node));
    stack_.push_back(raw_ptr);
    return Status::OK();
  }

  Status HandleCommand() {
    std::string command = ReadCommandName();
    if (command == "documentclass") {
      SkipOptionalArgs();
      IDM_ASSIGN_OR_RETURN(std::string arg, ReadBraceArg(command));
      FlushText();
      auto node = std::make_unique<LatexNode>();
      node->kind = LatexNode::Kind::kDocumentClass;
      node->title = CleanInline(arg);
      Current()->children.push_back(std::move(node));
      return Status::OK();
    }
    if (command == "title") {
      IDM_ASSIGN_OR_RETURN(std::string arg, ReadBraceArg(command));
      FlushText();
      auto node = std::make_unique<LatexNode>();
      node->kind = LatexNode::Kind::kTitle;
      node->title = CleanInline(arg);
      Current()->children.push_back(std::move(node));
      return Status::OK();
    }
    if (command == "section") return HandleSection(1, command);
    if (command == "subsection") return HandleSection(2, command);
    if (command == "subsubsection") return HandleSection(3, command);
    if (command == "begin") {
      IDM_ASSIGN_OR_RETURN(std::string env, ReadBraceArg(command));
      SkipOptionalArgs();
      FlushText();
      auto node = std::make_unique<LatexNode>();
      if (env == "document") {
        node->kind = LatexNode::Kind::kDocument;
        node->title = "document";
      } else {
        node->kind = LatexNode::Kind::kEnvironment;
        node->title = env;
      }
      LatexNode* raw_ptr = node.get();
      Current()->children.push_back(std::move(node));
      stack_.push_back(raw_ptr);
      return Status::OK();
    }
    if (command == "end") {
      IDM_ASSIGN_OR_RETURN(std::string env, ReadBraceArg(command));
      FlushText();
      // Pop until the matching environment (or document) closes; sections
      // opened inside it close implicitly. Unmatched \end is ignored.
      for (size_t i = stack_.size(); i-- > 1;) {
        LatexNode* node = stack_[i];
        bool matches =
            (env == "document" && node->kind == LatexNode::Kind::kDocument) ||
            (node->kind == LatexNode::Kind::kEnvironment && node->title == env);
        if (matches) {
          stack_.resize(i);
          break;
        }
      }
      return Status::OK();
    }
    if (command == "label") {
      IDM_ASSIGN_OR_RETURN(std::string key, ReadBraceArg(command));
      // Attach to the innermost open structural unit.
      if (Current()->label.empty()) Current()->label = CleanInline(key);
      return Status::OK();
    }
    if (command == "caption") {
      IDM_ASSIGN_OR_RETURN(std::string raw, ReadBraceArg(command));
      Current()->caption = CleanInline(raw);
      return Status::OK();
    }
    if (command == "ref" || command == "eqref" || command == "autoref" ||
        command == "pageref") {
      IDM_ASSIGN_OR_RETURN(std::string key, ReadBraceArg(command));
      FlushText();
      auto node = std::make_unique<LatexNode>();
      node->kind = LatexNode::Kind::kRef;
      node->title = CleanInline(key);
      Current()->children.push_back(std::move(node));
      return Status::OK();
    }
    // Styling commands: keep the argument text inline.
    if (command == "emph" || command == "textbf" || command == "textit" ||
        command == "texttt" || command == "textsc" || command == "underline" ||
        command == "mbox") {
      IDM_ASSIGN_OR_RETURN(std::string arg, ReadBraceArg(command));
      text_ += CleanInline(arg);
      return Status::OK();
    }
    if (command == "\\") {
      text_ += '\n';
      return Status::OK();
    }
    if (command.size() == 1 &&
        !std::isalpha(static_cast<unsigned char>(command[0]))) {
      text_ += command;  // escaped special: \%, \&, \_, \$, \#, \{, \}
      return Status::OK();
    }
    // Any other command: swallow optional args and up to two brace groups
    // (e.g. \cite{x}, \includegraphics[w]{f}, \frac{a}{b}).
    SkipOptionalArgs();
    for (int i = 0; i < 2; ++i) {
      size_t save = pos_;
      while (pos_ < input_.size() &&
             std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      if (pos_ < input_.size() && input_[pos_] == '{') {
        auto arg = ReadBraceArg(command);
        if (!arg.ok()) return arg.status();
      } else {
        pos_ = save;
        break;
      }
    }
    return Status::OK();
  }

  const std::string& input_;
  size_t pos_ = 0;
  std::string text_;
  std::unique_ptr<LatexNode> root_;
  std::vector<LatexNode*> stack_;
};

}  // namespace

Result<LatexDocument> ParseLatex(const std::string& input) {
  return Parser(input).Run();
}

}  // namespace idm::latex
