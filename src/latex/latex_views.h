// Instantiation of LaTeX structure in iDM (paper §2.3, Figure 1).
//
// Sections become latex_section / latex_subsection / latex_subsubsection
// views, environments become environment views (figure environments get the
// figure subclass), text runs become textblock views, and \ref commands
// become texref views whose group component points at the *referenced*
// section/figure view — the cross edges that make the resource view graph
// of a LaTeX file a general graph rather than a tree (V_Preliminaries being
// related to both V_document and V_ref in Figure 1(b)).

#ifndef IDM_LATEX_LATEX_VIEWS_H_
#define IDM_LATEX_LATEX_VIEWS_H_

#include <memory>
#include <string>

#include "core/resource_view.h"
#include "latex/latex.h"

namespace idm::latex {

/// Builds the latex_document view for \p doc. The views materialize all
/// names/labels/text eagerly; \ref targets resolve lazily through a shared
/// label table (so forward references work). URIs are
/// "<prefix>#tex/<child-index-path>".
core::ViewPtr LatexToViews(const LatexDocument& doc,
                           const std::string& uri_prefix);

}  // namespace idm::latex

#endif  // IDM_LATEX_LATEX_VIEWS_H_
