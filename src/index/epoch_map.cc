#include "index/epoch_map.h"

#include <algorithm>

namespace idm::index {

std::string EpochMap::TopPrefix(std::string_view uri) {
  size_t hash = uri.find('#');
  if (hash != std::string_view::npos) uri = uri.substr(0, hash);
  size_t start = 0;
  size_t colon = uri.find(':');
  if (colon != std::string_view::npos) {
    start = colon + 1;
    if (uri.substr(start, 2) == "//") start += 2;
    while (start < uri.size() && uri[start] == '/') ++start;
  }
  size_t slash = uri.find('/', start);
  if (slash == std::string_view::npos) return std::string(uri);
  return std::string(uri.substr(0, slash));
}

void EpochMap::Note(uint32_t source, std::string_view uri, Version version) {
  Version& s = by_source_[source];
  if (version > s) s = version;
  if (!uri.empty()) {
    Version& p = by_prefix_[TopPrefix(uri)];
    if (version > p) p = version;
  }
  if (version > global_) global_ = version;
}

Version EpochMap::SourceEpoch(uint32_t source) const {
  auto it = by_source_.find(source);
  return it == by_source_.end() ? 0 : it->second;
}

Version EpochMap::PrefixEpoch(std::string_view uri) const {
  auto it = by_prefix_.find(TopPrefix(uri));
  return it == by_prefix_.end() ? 0 : it->second;
}

std::vector<uint32_t> EpochMap::SourcesChangedSince(Version since) const {
  std::vector<uint32_t> out;
  for (const auto& [source, version] : by_source_) {
    if (version > since) out.push_back(source);
  }
  return out;
}

bool EpochMap::ChangedOutside(const std::vector<uint32_t>& sources,
                              Version since) const {
  for (const auto& [source, version] : by_source_) {
    if (version > since &&
        !std::binary_search(sources.begin(), sources.end(), source)) {
      return true;
    }
  }
  return false;
}

void EpochMap::Clear() {
  by_source_.clear();
  by_prefix_.clear();
  global_ = 0;
}

void EpochMap::Rebuild(const VersionLog& versions, const Catalog& catalog) {
  Clear();
  for (const ChangeRecord& record : versions.ChangesSince(0)) {
    const CatalogEntry* entry = catalog.Entry(record.id);
    if (entry != nullptr) {
      Note(entry->source, entry->uri, record.version);
    } else if (record.version > global_) {
      global_ = record.version;  // unknown id: still advances the global epoch
    }
  }
}

}  // namespace idm::index
