// Inverted full-text index with positional postings: the from-scratch
// replacement for the Apache Lucene indexes of the paper's prototype
// (§7.2: the Name Index&Replica and the Content Index). Supports term,
// boolean AND/OR and exact phrase queries. Not a replica: original text is
// not retained (paper: "that index is not able to return the original
// content component").
//
// Storage is Lucene-style: one compressed posting list per term, a byte
// blob of varint-encoded [doc-id delta, position count, position deltas...]
// records. Appending documents in increasing id order extends blobs in
// place; out-of-order inserts and removals decode+re-encode the affected
// term lists (rare in the PDSMS write path, which bulk-loads per source).

#ifndef IDM_INDEX_INVERTED_INDEX_H_
#define IDM_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/exec_context.h"
#include "util/result.h"

namespace idm::index {

/// Catalog-assigned view identifier (see catalog.h).
using DocId = uint64_t;

class InvertedIndex {
 public:
  /// Indexes \p text under \p id. Re-adding an id replaces its old text.
  void AddDocument(DocId id, const std::string& text);

  /// Removes a document from all posting lists. Unknown ids are a no-op.
  void RemoveDocument(DocId id);

  /// Ids whose text contains \p term (normalized), sorted ascending.
  ///
  /// All query methods take an optional ExecContext: under governance each
  /// decoded posting counts one step and a doomed context stops the scan,
  /// leaving a truncated (still sorted) result — callers must check
  /// ctx->status() before treating it as complete.
  std::vector<DocId> TermQuery(const std::string& term,
                               util::ExecContext* ctx = nullptr) const;

  /// Ids containing *all* terms, sorted ascending.
  std::vector<DocId> AndQuery(const std::vector<std::string>& terms,
                              util::ExecContext* ctx = nullptr) const;

  /// Ids containing *any* term, sorted ascending.
  std::vector<DocId> OrQuery(const std::vector<std::string>& terms,
                             util::ExecContext* ctx = nullptr) const;

  /// Ids containing the terms of \p phrase at consecutive positions. A
  /// single-term phrase degenerates to TermQuery; an empty phrase matches
  /// nothing.
  std::vector<DocId> PhraseQuery(const std::string& phrase,
                                 util::ExecContext* ctx = nullptr) const;

  /// Like TermQuery, but also returns each document's term frequency
  /// (occurrence count) — the raw material for tf-idf ranking.
  std::vector<std::pair<DocId, uint32_t>> TermQueryWithTf(
      const std::string& term, util::ExecContext* ctx = nullptr) const;

  /// Documents containing \p term (document frequency), for idf weights.
  size_t DocumentFrequency(const std::string& term) const;

  size_t doc_count() const { return doc_terms_.size(); }
  size_t term_count() const { return lists_.size(); }
  uint64_t total_tokens() const { return total_tokens_; }

  /// Approximate memory footprint in bytes (posting blobs + dictionaries);
  /// used for the paper's Table 3 index-size accounting.
  size_t MemoryUsage() const;

  /// Deterministic binary image (term dictionary sorted by term, posting
  /// blobs verbatim, doc->terms map sorted by doc) for checkpoints.
  std::string Serialize() const;
  static Result<InvertedIndex> Deserialize(const std::string& data);

 private:
  struct TermList {
    uint32_t doc_count = 0;
    DocId last_doc = 0;  ///< highest doc id in the blob (append cursor)
    std::string blob;    ///< varint records, ascending doc order
  };

  struct DecodedPosting {
    DocId doc;
    std::vector<uint32_t> positions;
  };

  uint32_t InternTerm(const std::string& term);
  const TermList* FindList(const std::string& raw_term) const;
  static std::vector<DecodedPosting> Decode(const TermList& list);
  static void Encode(const std::vector<DecodedPosting>& postings,
                     TermList* list);
  static void AppendRecord(TermList* list, DocId doc,
                           const std::vector<uint32_t>& positions);

  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<TermList> lists_;
  // doc -> term ids it contributed (for removal/replacement).
  std::unordered_map<DocId, std::vector<uint32_t>> doc_terms_;
  uint64_t total_tokens_ = 0;
};

}  // namespace idm::index

#endif  // IDM_INDEX_INVERTED_INDEX_H_
