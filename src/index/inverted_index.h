// Inverted full-text index with positional postings: the from-scratch
// replacement for the Apache Lucene indexes of the paper's prototype
// (§7.2: the Name Index&Replica and the Content Index). Supports term,
// boolean AND/OR and exact phrase queries. Not a replica: original text is
// not retained (paper: "that index is not able to return the original
// content component").
//
// Storage is Lucene-style: one compressed posting list per term, a byte
// blob of varint-encoded [doc-id delta, position count, position deltas...]
// records. Appending documents in increasing id order extends blobs in
// place; out-of-order inserts and removals decode+re-encode the affected
// term lists (rare in the PDSMS write path, which bulk-loads per source).
//
// Block acceleration (DESIGN.md §16): on top of the blob each term lazily
// gets an immutable block index — runs of up to kBlockDocs doc ids, each
// block re-encoded as delta varints or a bitset (whichever is smaller)
// with its [first, last] doc range acting as a skip pointer and the byte
// offset of its first blob record kept for targeted position decoding.
// TermDocs/AndDocs/PhraseDocs answer from blocks with block-wise
// range-skipping intersection and decode positions only for intersection
// survivors; results are identical to the ExecContext-free TermQuery/
// AndQuery/PhraseQuery. Blocks are a query-side cache: mutations drop the
// affected terms' blocks, and nothing about Serialize()'s format changes.

#ifndef IDM_INDEX_INVERTED_INDEX_H_
#define IDM_INDEX_INVERTED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/exec_context.h"
#include "util/result.h"

namespace idm::index {

/// Catalog-assigned view identifier (see catalog.h).
using DocId = uint64_t;

class InvertedIndex {
 public:
  InvertedIndex() = default;
  // Copies and moves carry the postings but not the lazily built block
  // cache (mutex/atomic members are not copyable; blocks rebuild on demand).
  InvertedIndex(const InvertedIndex& other);
  InvertedIndex& operator=(const InvertedIndex& other);
  InvertedIndex(InvertedIndex&& other) noexcept;
  InvertedIndex& operator=(InvertedIndex&& other) noexcept;

  /// Indexes \p text under \p id. Re-adding an id replaces its old text.
  void AddDocument(DocId id, const std::string& text);

  /// Removes a document from all posting lists. Unknown ids are a no-op.
  void RemoveDocument(DocId id);

  /// Ids whose text contains \p term (normalized), sorted ascending.
  ///
  /// All query methods take an optional ExecContext: under governance each
  /// decoded posting counts one step and a doomed context stops the scan,
  /// leaving a truncated (still sorted) result — callers must check
  /// ctx->status() before treating it as complete.
  std::vector<DocId> TermQuery(const std::string& term,
                               util::ExecContext* ctx = nullptr) const;

  /// Ids containing *all* terms, sorted ascending.
  std::vector<DocId> AndQuery(const std::vector<std::string>& terms,
                              util::ExecContext* ctx = nullptr) const;

  /// Ids containing *any* term, sorted ascending.
  std::vector<DocId> OrQuery(const std::vector<std::string>& terms,
                             util::ExecContext* ctx = nullptr) const;

  /// Ids containing the terms of \p phrase at consecutive positions. A
  /// single-term phrase degenerates to TermQuery; an empty phrase matches
  /// nothing.
  std::vector<DocId> PhraseQuery(const std::string& phrase,
                                 util::ExecContext* ctx = nullptr) const;

  /// Like TermQuery, but also returns each document's term frequency
  /// (occurrence count) — the raw material for tf-idf ranking.
  std::vector<std::pair<DocId, uint32_t>> TermQueryWithTf(
      const std::string& term, util::ExecContext* ctx = nullptr) const;

  /// Documents containing \p term (document frequency), for idf weights.
  size_t DocumentFrequency(const std::string& term) const;

  /// --- blocked (compressed, skip-pointer) query path ----------------------
  /// Same answers as the ungoverned TermQuery/AndQuery/PhraseQuery, served
  /// from the per-term block indexes. No ExecContext parameter on purpose:
  /// governed evaluation must tick per posting in blob order and therefore
  /// takes the classic methods; the blocked path is the fast lane for
  /// ungoverned (complete-result) execution. Thread-safe against other
  /// readers; not against concurrent mutation (like every query method).
  std::vector<DocId> TermDocs(const std::string& term) const;
  std::vector<DocId> AndDocs(const std::vector<std::string>& terms) const;
  std::vector<DocId> PhraseDocs(const std::string& phrase) const;
  /// Same pairs as TermQueryWithTf, zipped from the block index and its
  /// tf sidecar — ranking without re-skipping the blob's position
  /// varints. Ranking never ticks (in either engine), so this has no
  /// governed counterpart.
  std::vector<std::pair<DocId, uint32_t>> TermTfDocs(
      const std::string& term) const;

  /// Block-cache activity counters (stats.vm.* feeds from these).
  struct BlockStats {
    uint64_t built_lists = 0;    ///< term block indexes built so far
    uint64_t varint_blocks = 0;  ///< blocks resident in delta-varint form
    uint64_t bitset_blocks = 0;  ///< blocks resident in bitset form
    uint64_t block_bytes = 0;    ///< resident block bytes (docs payload)
    uint64_t skipped_blocks = 0; ///< blocks skipped by range disjointness
  };
  BlockStats block_stats() const;

  /// Bytes of the compressed postings representation actually resident:
  /// varint blobs plus whatever block indexes have been built.
  size_t CompressedPostingsBytes() const;

  /// Bytes a raw uncompressed postings layout would occupy (8 bytes per
  /// posting doc id + 4 bytes per position) — the Table 3 style baseline
  /// the compressed representation is measured against.
  size_t UncompressedPostingsBytes() const;

  size_t doc_count() const { return doc_terms_.size(); }
  size_t term_count() const { return lists_.size(); }
  uint64_t total_tokens() const { return total_tokens_; }

  /// Approximate memory footprint in bytes (posting blobs + dictionaries);
  /// used for the paper's Table 3 index-size accounting.
  size_t MemoryUsage() const;

  /// Deterministic binary image (term dictionary sorted by term, posting
  /// blobs verbatim, doc->terms map sorted by doc) for checkpoints.
  std::string Serialize() const;
  static Result<InvertedIndex> Deserialize(const std::string& data);

 private:
  struct TermList {
    uint32_t doc_count = 0;
    DocId last_doc = 0;  ///< highest doc id in the blob (append cursor)
    std::string blob;    ///< varint records, ascending doc order
  };

  struct DecodedPosting {
    DocId doc;
    std::vector<uint32_t> positions;
  };

  /// One block of up to kBlockDocs consecutive postings of a term.
  /// [first, last] is the skip pointer; record_offset points at the block's
  /// first record in TermList::blob so position payloads can be decoded for
  /// exactly this block's docs without touching the rest of the list.
  struct PostingBlock {
    DocId first = 0;
    DocId last = 0;
    uint32_t count = 0;
    uint32_t record_offset = 0;
    bool dense = false;  ///< docs is a bitset over [first, last], else varints
    std::string docs;    ///< doc payload only — no positions
  };
  struct BlockIndex {
    std::vector<PostingBlock> blocks;
    /// Term frequency per doc, in list order across blocks — a sidecar
    /// captured during the build walk so ranking never re-skips the
    /// blob's position varints. Counted in `bytes`.
    std::vector<uint32_t> tf;
    size_t bytes = 0;       ///< docs + tf payload bytes across blocks
    size_t dense_count = 0; ///< how many blocks chose the bitset form
  };

  uint32_t InternTerm(const std::string& term);
  const TermList* FindList(const std::string& raw_term) const;
  static std::vector<DecodedPosting> Decode(const TermList& list);
  static void Encode(const std::vector<DecodedPosting>& postings,
                     TermList* list);
  static void AppendRecord(TermList* list, DocId doc,
                           const std::vector<uint32_t>& positions);

  static BlockIndex BuildBlocks(const TermList& list);
  static void AppendBlockDocs(const PostingBlock& block,
                              std::vector<DocId>* out);
  /// Lazily builds (and caches) the block index of term id \p tid.
  const BlockIndex* BlockedFor(uint32_t tid) const;
  void DropBlocks(uint32_t tid);
  /// Streaming position reader over one term's blob: Advance() moves
  /// forward-only through the record stream (docs must be requested in
  /// ascending order), decoding each record at most once and skipping
  /// whole blocks the target is past. Positions are decoded only for the
  /// requested doc; every other record's are varint-skipped.
  struct PositionCursor {
    const TermList* list = nullptr;
    const BlockIndex* blocks = nullptr;
    size_t block = 0;      ///< index into blocks->blocks
    uint32_t record = 0;   ///< records consumed in the current block
    size_t pos = 0;        ///< blob offset of the next record
    DocId current = 0;     ///< last decoded doc (valid when decoded)
    bool entered = false;  ///< pos/record primed for blocks[block]
    bool decoded = false;  ///< current holds a decoded doc

    /// Positions of \p doc, or false when the doc is not in the list (or
    /// the cursor has already streamed past it).
    bool Advance(DocId doc, std::vector<uint32_t>* out);
  };
  /// acc ∩ term-docs via block-range skipping; counts skipped blocks.
  std::vector<DocId> IntersectWithBlocks(const std::vector<DocId>& acc,
                                         const BlockIndex& blocks) const;

  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<TermList> lists_;
  // doc -> term ids it contributed (for removal/replacement).
  std::unordered_map<DocId, std::vector<uint32_t>> doc_terms_;
  uint64_t total_tokens_ = 0;

  /// Lazily built block indexes, keyed by term id. The mutex serializes
  /// concurrent readers racing to build the same term; mutations (which
  /// never run concurrently with queries) drop entries for changed terms.
  mutable std::mutex blocks_mu_;
  mutable std::unordered_map<uint32_t, std::unique_ptr<BlockIndex>> blocks_;
  mutable std::atomic<uint64_t> blocks_built_{0};
  mutable std::atomic<uint64_t> blocks_skipped_{0};
};

}  // namespace idm::index

#endif  // IDM_INDEX_INVERTED_INDEX_H_
