#include "index/inverted_index.h"

#include <algorithm>

#include "index/analyzer.h"
#include "util/codec.h"

namespace idm::index {

namespace {

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

uint64_t GetVarint(const std::string& in, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < in.size()) {
    uint8_t byte = static_cast<uint8_t>(in[(*pos)++]);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

/// Postings per block: small enough that decoding one block for phrase
/// verification is cheap, large enough that skip pointers pay off.
constexpr uint32_t kBlockDocs = 128;

}  // namespace

void InvertedIndex::AppendRecord(TermList* list, DocId doc,
                                 const std::vector<uint32_t>& positions) {
  PutVarint(&list->blob, doc - (list->doc_count == 0 ? 0 : list->last_doc));
  PutVarint(&list->blob, positions.size());
  uint32_t prev = 0;
  for (uint32_t pos : positions) {
    PutVarint(&list->blob, pos - prev);
    prev = pos;
  }
  list->last_doc = doc;
  ++list->doc_count;
}

std::vector<InvertedIndex::DecodedPosting> InvertedIndex::Decode(
    const TermList& list) {
  std::vector<DecodedPosting> out;
  out.reserve(list.doc_count);
  size_t pos = 0;
  DocId doc = 0;
  for (uint32_t i = 0; i < list.doc_count; ++i) {
    doc += GetVarint(list.blob, &pos);
    uint64_t count = GetVarint(list.blob, &pos);
    DecodedPosting posting;
    posting.doc = doc;
    posting.positions.reserve(count);
    uint32_t position = 0;
    for (uint64_t j = 0; j < count; ++j) {
      position += static_cast<uint32_t>(GetVarint(list.blob, &pos));
      posting.positions.push_back(position);
    }
    out.push_back(std::move(posting));
  }
  return out;
}

void InvertedIndex::Encode(const std::vector<DecodedPosting>& postings,
                           TermList* list) {
  list->blob.clear();
  list->doc_count = 0;
  list->last_doc = 0;
  for (const DecodedPosting& posting : postings) {
    AppendRecord(list, posting.doc, posting.positions);
  }
  list->blob.shrink_to_fit();
}

uint32_t InvertedIndex::InternTerm(const std::string& term) {
  auto it = term_ids_.find(term);
  if (it != term_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(lists_.size());
  term_ids_.emplace(term, id);
  lists_.emplace_back();
  return id;
}

const InvertedIndex::TermList* InvertedIndex::FindList(
    const std::string& raw_term) const {
  auto it = term_ids_.find(raw_term);
  return it == term_ids_.end() ? nullptr : &lists_[it->second];
}

InvertedIndex::InvertedIndex(const InvertedIndex& other)
    : term_ids_(other.term_ids_),
      lists_(other.lists_),
      doc_terms_(other.doc_terms_),
      total_tokens_(other.total_tokens_) {}

InvertedIndex& InvertedIndex::operator=(const InvertedIndex& other) {
  if (this == &other) return *this;
  term_ids_ = other.term_ids_;
  lists_ = other.lists_;
  doc_terms_ = other.doc_terms_;
  total_tokens_ = other.total_tokens_;
  std::lock_guard<std::mutex> lock(blocks_mu_);
  blocks_.clear();
  return *this;
}

InvertedIndex::InvertedIndex(InvertedIndex&& other) noexcept
    : term_ids_(std::move(other.term_ids_)),
      lists_(std::move(other.lists_)),
      doc_terms_(std::move(other.doc_terms_)),
      total_tokens_(other.total_tokens_) {}

InvertedIndex& InvertedIndex::operator=(InvertedIndex&& other) noexcept {
  if (this == &other) return *this;
  term_ids_ = std::move(other.term_ids_);
  lists_ = std::move(other.lists_);
  doc_terms_ = std::move(other.doc_terms_);
  total_tokens_ = other.total_tokens_;
  std::lock_guard<std::mutex> lock(blocks_mu_);
  blocks_.clear();
  return *this;
}

void InvertedIndex::DropBlocks(uint32_t tid) {
  std::lock_guard<std::mutex> lock(blocks_mu_);
  blocks_.erase(tid);
}

void InvertedIndex::AddDocument(DocId id, const std::string& text) {
  if (doc_terms_.count(id) > 0) RemoveDocument(id);

  std::vector<Token> tokens = Tokenize(text);
  total_tokens_ += tokens.size();
  // Group positions per term (tokens arrive in position order).
  std::unordered_map<std::string, std::vector<uint32_t>> term_positions;
  for (Token& token : tokens) {
    term_positions[std::move(token.term)].push_back(token.position);
  }

  std::vector<uint32_t> term_ids;
  term_ids.reserve(term_positions.size());
  for (auto& [term, positions] : term_positions) {
    uint32_t tid = InternTerm(term);
    TermList& list = lists_[tid];
    if (list.doc_count == 0 || list.last_doc < id) {
      AppendRecord(&list, id, positions);  // fast path: in-order append
    } else {
      // Out-of-order insert: decode, splice, re-encode.
      std::vector<DecodedPosting> postings = Decode(list);
      auto it = std::lower_bound(
          postings.begin(), postings.end(), id,
          [](const DecodedPosting& p, DocId d) { return p.doc < d; });
      postings.insert(it, DecodedPosting{id, positions});
      Encode(postings, &list);
    }
    DropBlocks(tid);
    term_ids.push_back(tid);
  }
  std::sort(term_ids.begin(), term_ids.end());
  term_ids.shrink_to_fit();
  doc_terms_.emplace(id, std::move(term_ids));
}

void InvertedIndex::RemoveDocument(DocId id) {
  auto it = doc_terms_.find(id);
  if (it == doc_terms_.end()) return;
  for (uint32_t tid : it->second) {
    TermList& list = lists_[tid];
    std::vector<DecodedPosting> postings = Decode(list);
    auto doc_it = std::lower_bound(
        postings.begin(), postings.end(), id,
        [](const DecodedPosting& p, DocId d) { return p.doc < d; });
    if (doc_it != postings.end() && doc_it->doc == id) {
      total_tokens_ -= doc_it->positions.size();
      postings.erase(doc_it);
    }
    Encode(postings, &list);
    DropBlocks(tid);
  }
  doc_terms_.erase(it);
}

std::vector<DocId> InvertedIndex::TermQuery(const std::string& term,
                                            util::ExecContext* ctx) const {
  std::vector<std::string> normalized = PhraseTerms(term);
  if (normalized.size() != 1) return AndQuery(normalized, ctx);
  const TermList* list = FindList(normalized[0]);
  if (list == nullptr) return {};
  std::vector<DocId> out;
  out.reserve(list->doc_count);
  size_t pos = 0;
  DocId doc = 0;
  for (uint32_t i = 0; i < list->doc_count; ++i) {
    if (ctx != nullptr && !ctx->TickAlive()) break;  // one step per posting
    doc += GetVarint(list->blob, &pos);
    uint64_t count = GetVarint(list->blob, &pos);
    for (uint64_t j = 0; j < count; ++j) GetVarint(list->blob, &pos);
    out.push_back(doc);
  }
  return out;
}

std::vector<std::pair<DocId, uint32_t>> InvertedIndex::TermQueryWithTf(
    const std::string& term, util::ExecContext* ctx) const {
  std::vector<std::pair<DocId, uint32_t>> out;
  std::vector<std::string> normalized = PhraseTerms(term);
  if (normalized.size() != 1) return out;  // single terms only
  const TermList* list = FindList(normalized[0]);
  if (list == nullptr) return out;
  out.reserve(list->doc_count);
  size_t pos = 0;
  DocId doc = 0;
  for (uint32_t i = 0; i < list->doc_count; ++i) {
    if (ctx != nullptr && !ctx->TickAlive()) break;
    doc += GetVarint(list->blob, &pos);
    uint64_t count = GetVarint(list->blob, &pos);
    for (uint64_t j = 0; j < count; ++j) GetVarint(list->blob, &pos);
    out.emplace_back(doc, static_cast<uint32_t>(count));
  }
  return out;
}

size_t InvertedIndex::DocumentFrequency(const std::string& term) const {
  std::vector<std::string> normalized = PhraseTerms(term);
  if (normalized.size() != 1) return 0;
  const TermList* list = FindList(normalized[0]);
  return list == nullptr ? 0 : list->doc_count;
}

std::vector<DocId> InvertedIndex::AndQuery(
    const std::vector<std::string>& terms, util::ExecContext* ctx) const {
  if (terms.empty()) return {};
  std::vector<DocId> acc = TermQuery(terms[0], ctx);
  for (size_t i = 1; i < terms.size() && !acc.empty(); ++i) {
    if (ctx != nullptr && ctx->doomed()) break;
    std::vector<DocId> next = TermQuery(terms[i], ctx);
    std::vector<DocId> merged;
    std::set_intersection(acc.begin(), acc.end(), next.begin(), next.end(),
                          std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

std::vector<DocId> InvertedIndex::OrQuery(const std::vector<std::string>& terms,
                                          util::ExecContext* ctx) const {
  std::vector<DocId> acc;
  for (const std::string& term : terms) {
    if (ctx != nullptr && ctx->doomed()) break;
    std::vector<DocId> next = TermQuery(term, ctx);
    std::vector<DocId> merged;
    std::set_union(acc.begin(), acc.end(), next.begin(), next.end(),
                   std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

std::vector<DocId> InvertedIndex::PhraseQuery(const std::string& phrase,
                                              util::ExecContext* ctx) const {
  std::vector<std::string> terms = PhraseTerms(phrase);
  if (terms.empty()) return {};
  if (terms.size() == 1) return TermQuery(terms[0], ctx);

  std::vector<std::vector<DecodedPosting>> decoded;
  decoded.reserve(terms.size());
  for (const std::string& term : terms) {
    const TermList* list = FindList(term);
    if (list == nullptr) return {};  // a missing term kills the phrase
    decoded.push_back(Decode(*list));
  }

  auto find_doc = [](const std::vector<DecodedPosting>& postings,
                     DocId id) -> const std::vector<uint32_t>* {
    auto it = std::lower_bound(
        postings.begin(), postings.end(), id,
        [](const DecodedPosting& p, DocId d) { return p.doc < d; });
    return (it != postings.end() && it->doc == id) ? &it->positions : nullptr;
  };

  std::vector<DocId> out;
  for (const DecodedPosting& first : decoded[0]) {
    if (ctx != nullptr && !ctx->TickAlive()) break;
    bool all_present = true;
    for (size_t k = 1; k < decoded.size() && all_present; ++k) {
      all_present = find_doc(decoded[k], first.doc) != nullptr;
    }
    if (!all_present) continue;
    bool matched = false;
    for (uint32_t start : first.positions) {
      bool consecutive = true;
      for (size_t k = 1; k < decoded.size(); ++k) {
        const std::vector<uint32_t>* positions = find_doc(decoded[k], first.doc);
        if (!std::binary_search(positions->begin(), positions->end(),
                                start + static_cast<uint32_t>(k))) {
          consecutive = false;
          break;
        }
      }
      if (consecutive) {
        matched = true;
        break;
      }
    }
    if (matched) out.push_back(first.doc);
  }
  return out;
}

namespace {
constexpr uint64_t kContentMagic = 0x69444D31434E5431ULL;  // "iDM1CNT1"
constexpr uint32_t kContentFormatVersion = 1;
}  // namespace

std::string InvertedIndex::Serialize() const {
  std::string out;
  codec::PutU64(&out, kContentMagic);
  codec::PutU32(&out, kContentFormatVersion);
  codec::PutU64(&out, total_tokens_);
  // Term dictionary + posting blobs, sorted by term text so the image is
  // independent of hash-map iteration order. Term ids are preserved: the
  // blobs do not reference them, but doc_terms_ does.
  std::vector<const std::pair<const std::string, uint32_t>*> terms;
  terms.reserve(term_ids_.size());
  for (const auto& entry : term_ids_) terms.push_back(&entry);
  std::sort(terms.begin(), terms.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  codec::PutU64(&out, terms.size());
  for (const auto* entry : terms) {
    const TermList& list = lists_[entry->second];
    codec::PutString(&out, entry->first);
    codec::PutU32(&out, entry->second);
    codec::PutU32(&out, list.doc_count);
    codec::PutU64(&out, list.last_doc);
    codec::PutString(&out, list.blob);
  }
  std::vector<DocId> docs;
  docs.reserve(doc_terms_.size());
  for (const auto& [doc, term_list] : doc_terms_) docs.push_back(doc);
  std::sort(docs.begin(), docs.end());
  codec::PutU64(&out, docs.size());
  for (DocId doc : docs) {
    const std::vector<uint32_t>& term_list = doc_terms_.at(doc);
    codec::PutU64(&out, doc);
    codec::PutU64(&out, term_list.size());
    for (uint32_t term : term_list) codec::PutU32(&out, term);
  }
  return out;
}

Result<InvertedIndex> InvertedIndex::Deserialize(const std::string& data) {
  size_t pos = 0;
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!codec::GetU64(data, &pos, &magic) || magic != kContentMagic) {
    return Status::ParseError("not a serialized content index");
  }
  if (!codec::GetU32(data, &pos, &version) ||
      version != kContentFormatVersion) {
    return Status::ParseError("unsupported content index format version");
  }
  InvertedIndex index;
  uint64_t n_terms = 0;
  if (!codec::GetU64(data, &pos, &index.total_tokens_) ||
      !codec::GetU64(data, &pos, &n_terms)) {
    return Status::ParseError("truncated content index");
  }
  if (n_terms > (data.size() - pos) / 24) {
    return Status::ParseError("truncated term table");
  }
  index.lists_.resize(n_terms);
  std::vector<bool> seen(n_terms, false);
  for (uint64_t i = 0; i < n_terms; ++i) {
    std::string term;
    uint32_t term_id = 0;
    TermList list;
    if (!codec::GetString(data, &pos, &term) ||
        !codec::GetU32(data, &pos, &term_id) ||
        !codec::GetU32(data, &pos, &list.doc_count) ||
        !codec::GetU64(data, &pos, &list.last_doc) ||
        !codec::GetString(data, &pos, &list.blob)) {
      return Status::ParseError("truncated term entry");
    }
    if (term_id >= n_terms || seen[term_id]) {
      return Status::ParseError("invalid term id");
    }
    seen[term_id] = true;
    index.lists_[term_id] = std::move(list);
    index.term_ids_.emplace(std::move(term), term_id);
  }
  uint64_t n_docs = 0;
  if (!codec::GetU64(data, &pos, &n_docs)) {
    return Status::ParseError("truncated doc table");
  }
  for (uint64_t i = 0; i < n_docs; ++i) {
    uint64_t doc = 0, n = 0;
    if (!codec::GetU64(data, &pos, &doc) || !codec::GetU64(data, &pos, &n)) {
      return Status::ParseError("truncated doc entry");
    }
    if (n > (data.size() - pos) / 4) {
      return Status::ParseError("truncated doc term list");
    }
    std::vector<uint32_t> term_list;
    term_list.reserve(n);
    for (uint64_t t = 0; t < n; ++t) {
      uint32_t term = 0;
      if (!codec::GetU32(data, &pos, &term)) {
        return Status::ParseError("truncated doc term list");
      }
      if (term >= n_terms) return Status::ParseError("invalid doc term id");
      term_list.push_back(term);
    }
    index.doc_terms_.emplace(doc, std::move(term_list));
  }
  if (pos != data.size()) return Status::ParseError("trailing bytes");
  return index;
}

// --- blocked query path ----------------------------------------------------

InvertedIndex::BlockIndex InvertedIndex::BuildBlocks(const TermList& list) {
  BlockIndex index;
  if (list.doc_count == 0) return index;
  index.blocks.reserve((list.doc_count + kBlockDocs - 1) / kBlockDocs);

  std::vector<DocId> run;
  run.reserve(kBlockDocs);
  size_t run_offset = 0;

  auto flush = [&]() {
    if (run.empty()) return;
    PostingBlock block;
    block.first = run.front();
    block.last = run.back();
    block.count = static_cast<uint32_t>(run.size());
    block.record_offset = static_cast<uint32_t>(run_offset);
    // Delta-varint form first; switch to a bitset when it is smaller (a
    // dense run of near-consecutive ids packs to one bit per slot).
    std::string varints;
    DocId prev = block.first;
    for (size_t i = 1; i < run.size(); ++i) {
      PutVarint(&varints, run[i] - prev);
      prev = run[i];
    }
    const uint64_t span = block.last - block.first + 1;
    const size_t bitset_bytes = static_cast<size_t>((span + 7) / 8);
    if (bitset_bytes < varints.size()) {
      block.dense = true;
      block.docs.assign(bitset_bytes, '\0');
      for (DocId doc : run) {
        uint64_t bit = doc - block.first;
        block.docs[bit >> 3] |= static_cast<char>(1u << (bit & 7));
      }
      ++index.dense_count;
    } else {
      block.docs = std::move(varints);
    }
    index.bytes += block.docs.size();
    index.blocks.push_back(std::move(block));
    run.clear();
  };

  size_t pos = 0;
  DocId doc = 0;
  index.tf.reserve(list.doc_count);
  for (uint32_t i = 0; i < list.doc_count; ++i) {
    size_t record_start = pos;
    doc += GetVarint(list.blob, &pos);
    uint64_t count = GetVarint(list.blob, &pos);
    for (uint64_t j = 0; j < count; ++j) GetVarint(list.blob, &pos);
    if (run.empty()) run_offset = record_start;
    run.push_back(doc);
    index.tf.push_back(static_cast<uint32_t>(count));
    if (run.size() == kBlockDocs) flush();
  }
  flush();
  index.bytes += index.tf.size() * sizeof(uint32_t);
  return index;
}

void InvertedIndex::AppendBlockDocs(const PostingBlock& block,
                                    std::vector<DocId>* out) {
  if (block.dense) {
    for (size_t byte = 0; byte < block.docs.size(); ++byte) {
      uint8_t bits = static_cast<uint8_t>(block.docs[byte]);
      while (bits != 0) {
        int bit = __builtin_ctz(bits);
        out->push_back(block.first + (byte << 3) + bit);
        bits &= bits - 1;
      }
    }
    return;
  }
  DocId doc = block.first;
  out->push_back(doc);
  size_t pos = 0;
  for (uint32_t i = 1; i < block.count; ++i) {
    doc += GetVarint(block.docs, &pos);
    out->push_back(doc);
  }
}

const InvertedIndex::BlockIndex* InvertedIndex::BlockedFor(
    uint32_t tid) const {
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    auto it = blocks_.find(tid);
    if (it != blocks_.end()) return it->second.get();
  }
  auto built = std::make_unique<BlockIndex>(BuildBlocks(lists_[tid]));
  std::lock_guard<std::mutex> lock(blocks_mu_);
  auto [it, inserted] = blocks_.emplace(tid, std::move(built));
  if (inserted) blocks_built_.fetch_add(1, std::memory_order_relaxed);
  return it->second.get();
}

bool InvertedIndex::PositionCursor::Advance(DocId doc,
                                            std::vector<uint32_t>* out) {
  const std::vector<PostingBlock>& skip = blocks->blocks;
  while (block < skip.size() && skip[block].last < doc) {
    ++block;
    entered = false;
  }
  if (block >= skip.size()) return false;
  const PostingBlock& here = skip[block];
  if (doc < here.first) return false;
  if (!entered) {
    // The skip pointer bounds the decode to this block's records.
    pos = here.record_offset;
    record = 0;
    entered = true;
    decoded = false;
  }
  // A record already streamed past the target means the doc is absent.
  if (decoded && current >= doc) return false;
  while (record < here.count) {
    DocId delta = GetVarint(list->blob, &pos);
    // Doc deltas are relative to the PREVIOUS record, which for the
    // block's first record lives outside the block; its absolute id is
    // the skip entry's `first`.
    current = (record == 0) ? here.first : current + delta;
    ++record;
    decoded = true;
    uint64_t count = GetVarint(list->blob, &pos);
    if (current == doc) {
      out->clear();
      out->reserve(count);
      uint32_t position = 0;
      for (uint64_t j = 0; j < count; ++j) {
        position += static_cast<uint32_t>(GetVarint(list->blob, &pos));
        out->push_back(position);
      }
      return true;
    }
    for (uint64_t j = 0; j < count; ++j) GetVarint(list->blob, &pos);
    if (current > doc) return false;
  }
  return false;
}

std::vector<DocId> InvertedIndex::IntersectWithBlocks(
    const std::vector<DocId>& acc, const BlockIndex& blocks) const {
  std::vector<DocId> out;
  if (acc.empty() || blocks.blocks.empty()) return out;
  std::vector<DocId> scratch;
  auto acc_it = acc.begin();
  for (const PostingBlock& block : blocks.blocks) {
    // Skip pointers: fast-forward past blocks wholly below the accumulator
    // cursor and stop once blocks start past its end.
    if (block.last < *acc_it) {
      blocks_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (block.first > acc.back()) {
      blocks_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    scratch.clear();
    AppendBlockDocs(block, &scratch);
    auto lo = std::lower_bound(acc_it, acc.end(), block.first);
    auto hi = std::upper_bound(lo, acc.end(), block.last);
    std::set_intersection(lo, hi, scratch.begin(), scratch.end(),
                          std::back_inserter(out));
    acc_it = hi;
    if (acc_it == acc.end()) break;
  }
  return out;
}

std::vector<DocId> InvertedIndex::TermDocs(const std::string& term) const {
  std::vector<std::string> normalized = PhraseTerms(term);
  if (normalized.size() != 1) return AndDocs(normalized);
  auto it = term_ids_.find(normalized[0]);
  if (it == term_ids_.end()) return {};
  const BlockIndex* blocks = BlockedFor(it->second);
  std::vector<DocId> out;
  out.reserve(lists_[it->second].doc_count);
  for (const PostingBlock& block : blocks->blocks) AppendBlockDocs(block, &out);
  return out;
}

std::vector<std::pair<DocId, uint32_t>> InvertedIndex::TermTfDocs(
    const std::string& term) const {
  std::vector<std::string> normalized = PhraseTerms(term);
  if (normalized.size() != 1) return {};  // single terms only
  auto it = term_ids_.find(normalized[0]);
  if (it == term_ids_.end()) return {};
  const BlockIndex* blocks = BlockedFor(it->second);
  std::vector<DocId> docs;
  docs.reserve(lists_[it->second].doc_count);
  for (const PostingBlock& block : blocks->blocks) AppendBlockDocs(block, &docs);
  std::vector<std::pair<DocId, uint32_t>> out;
  out.reserve(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    out.emplace_back(docs[i], blocks->tf[i]);
  }
  return out;
}

std::vector<DocId> InvertedIndex::AndDocs(
    const std::vector<std::string>& terms) const {
  if (terms.empty()) return {};
  // Resolve all terms first (a missing term empties the intersection),
  // then fold starting from the rarest list — the accumulator can only
  // shrink, so the block-skip intersection does the least possible work.
  std::vector<uint32_t> tids;
  tids.reserve(terms.size());
  for (const std::string& term : terms) {
    for (const std::string& token : PhraseTerms(term)) {
      auto it = term_ids_.find(token);
      if (it == term_ids_.end()) return {};
      tids.push_back(it->second);
    }
  }
  if (tids.empty()) return {};
  std::sort(tids.begin(), tids.end(), [this](uint32_t a, uint32_t b) {
    return lists_[a].doc_count < lists_[b].doc_count;
  });
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  std::vector<DocId> acc;
  const BlockIndex* first = BlockedFor(tids[0]);
  acc.reserve(lists_[tids[0]].doc_count);
  for (const PostingBlock& block : first->blocks) AppendBlockDocs(block, &acc);
  for (size_t i = 1; i < tids.size() && !acc.empty(); ++i) {
    acc = IntersectWithBlocks(acc, *BlockedFor(tids[i]));
  }
  return acc;
}

std::vector<DocId> InvertedIndex::PhraseDocs(const std::string& phrase) const {
  std::vector<std::string> terms = PhraseTerms(phrase);
  if (terms.empty()) return {};
  if (terms.size() == 1) return TermDocs(terms[0]);

  std::vector<uint32_t> tids;
  tids.reserve(terms.size());
  for (const std::string& term : terms) {
    auto it = term_ids_.find(term);
    if (it == term_ids_.end()) return {};  // a missing term kills the phrase
    tids.push_back(it->second);
  }

  // Candidate docs: block-skip intersection of all term doc sets, rarest
  // first. Only the survivors ever have positions decoded — the classic
  // PhraseQuery decodes every position of every term up front.
  std::vector<DocId> candidates = AndDocs(terms);
  if (candidates.empty()) return candidates;

  // One forward-only cursor per term: candidates are sorted, so each
  // record in each list is decoded at most once across the whole phrase.
  std::vector<PositionCursor> cursors(tids.size());
  for (size_t k = 0; k < tids.size(); ++k) {
    cursors[k].list = &lists_[tids[k]];
    cursors[k].blocks = BlockedFor(tids[k]);
  }
  std::vector<std::vector<uint32_t>> positions(tids.size());
  std::vector<DocId> out;
  for (DocId doc : candidates) {
    bool have_all = true;
    for (size_t k = 0; k < tids.size() && have_all; ++k) {
      have_all = cursors[k].Advance(doc, &positions[k]);
    }
    if (!have_all) continue;  // defensive: candidates came from these lists
    bool matched = false;
    for (uint32_t start : positions[0]) {
      bool consecutive = true;
      for (size_t k = 1; k < tids.size(); ++k) {
        if (!std::binary_search(positions[k].begin(), positions[k].end(),
                                start + static_cast<uint32_t>(k))) {
          consecutive = false;
          break;
        }
      }
      if (consecutive) {
        matched = true;
        break;
      }
    }
    if (matched) out.push_back(doc);
  }
  return out;
}

InvertedIndex::BlockStats InvertedIndex::block_stats() const {
  BlockStats stats;
  stats.built_lists = blocks_built_.load(std::memory_order_relaxed);
  stats.skipped_blocks = blocks_skipped_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(blocks_mu_);
  for (const auto& [tid, index] : blocks_) {
    stats.block_bytes += index->bytes;
    stats.bitset_blocks += index->dense_count;
    stats.varint_blocks += index->blocks.size() - index->dense_count;
  }
  return stats;
}

size_t InvertedIndex::CompressedPostingsBytes() const {
  size_t total = 0;
  for (const TermList& list : lists_) total += list.blob.size();
  std::lock_guard<std::mutex> lock(blocks_mu_);
  for (const auto& [tid, index] : blocks_) {
    total += index->bytes + index->blocks.size() * sizeof(PostingBlock);
  }
  return total;
}

size_t InvertedIndex::UncompressedPostingsBytes() const {
  size_t postings = 0;
  for (const TermList& list : lists_) postings += list.doc_count;
  return postings * sizeof(DocId) +
         static_cast<size_t>(total_tokens_) * sizeof(uint32_t);
}

size_t InvertedIndex::MemoryUsage() const {
  size_t total = 0;
  for (const auto& [term, tid] : term_ids_) {
    total += sizeof(tid) + sizeof(term) + term.capacity() + 16;  // bucket
  }
  for (const TermList& list : lists_) {
    total += sizeof(TermList) + list.blob.capacity();
  }
  for (const auto& [id, term_ids] : doc_terms_) {
    total += sizeof(id) + sizeof(term_ids) +
             term_ids.capacity() * sizeof(uint32_t) + 16;  // bucket
  }
  return total;
}

}  // namespace idm::index
