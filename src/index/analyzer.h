// Text analysis for the full-text indexes: lower-cased alphanumeric tokens
// with positions (needed for phrase queries), in the style of the Lucene
// StandardAnalyzer the paper's prototype used.

#ifndef IDM_INDEX_ANALYZER_H_
#define IDM_INDEX_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace idm::index {

/// One token: normalized term plus its ordinal position in the text.
struct Token {
  std::string term;
  uint32_t position;
};

/// Tokenizes \p text: maximal runs of ASCII alphanumerics (plus bytes >=
/// 0x80, so UTF-8 words survive) are lower-cased; everything else is a
/// separator. Positions count tokens, not bytes.
std::vector<Token> Tokenize(const std::string& text);

/// Terms of a query phrase, in order (same normalization as Tokenize).
std::vector<std::string> PhraseTerms(const std::string& phrase);

/// Heuristic: true when \p content looks like text a full-text index should
/// receive (mostly printable in the first \p sample bytes). Binary content
/// (images etc.) is excluded from the "net input" (paper §7.2, Table 3).
bool LooksLikeText(const std::string& content, size_t sample = 512);

}  // namespace idm::index

#endif  // IDM_INDEX_ANALYZER_H_
