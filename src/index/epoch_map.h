// Fine-grained mutation epochs (DESIGN.md §14). The VersionLog gives one
// global epoch: any mutation anywhere advances it, which is exact but
// coarse — a result cached at epoch E is logically invalidated by writes
// that provably cannot affect it. The EpochMap refines the same version
// counter along two axes:
//
//   - per data source ("substrate"): the last dataspace version that
//     touched a view owned by source S, and
//   - per top-level subtree prefix: the last version that touched a view
//     whose uri lives under that prefix (e.g. "vfs:/projects",
//     "imap://INBOX") — fragments ("base#sec1") count under their base.
//
// The map holds no history — just the newest version per key — so it is
// O(#sources + #top-level prefixes) and is rebuilt from the VersionLog and
// the Catalog after a snapshot restore or WAL replay (tombstoned catalog
// entries keep their source and uri exactly so this reconstruction works).
//
// Consumers (query-cache validation, the subscription matcher) use it as a
// cheap pre-filter: "did anything change since E?" and "did any of *these*
// substrates change since E?" answer without scanning change records.

#ifndef IDM_INDEX_EPOCH_MAP_H_
#define IDM_INDEX_EPOCH_MAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "index/catalog.h"
#include "index/version_log.h"

namespace idm::index {

class EpochMap {
 public:
  /// The top-level subtree prefix of \p uri: scheme + first path segment,
  /// with any "#fragment" suffix stripped first ("vfs:/a/b" -> "vfs:/a",
  /// "imap://INBOX/42" -> "imap://INBOX", "x#sec/para" -> "x").
  static std::string TopPrefix(std::string_view uri);

  /// Records that \p version touched a view of \p source at \p uri.
  /// Versions must be non-decreasing (they are: the VersionLog is
  /// append-only and every mutation path notes its append here).
  void Note(uint32_t source, std::string_view uri, Version version);

  /// Last version that touched \p source; 0 when it was never touched.
  Version SourceEpoch(uint32_t source) const;

  /// Last version that touched the subtree \p uri belongs to; 0 when that
  /// subtree was never touched.
  Version PrefixEpoch(std::string_view uri) const;

  /// Newest version noted overall (0 = nothing noted). Equals the
  /// VersionLog's current() whenever the map is kept in lockstep.
  Version global() const { return global_; }

  /// Source ids with SourceEpoch > \p since, ascending.
  std::vector<uint32_t> SourcesChangedSince(Version since) const;

  /// True when some source outside the sorted \p sources list changed
  /// after \p since — i.e. the change set is NOT covered by \p sources.
  bool ChangedOutside(const std::vector<uint32_t>& sources,
                      Version since) const;

  size_t source_count() const { return by_source_.size(); }
  size_t prefix_count() const { return by_prefix_.size(); }

  void Clear();

  /// Reconstructs the map from the full change log: every record's source
  /// and uri are read from the catalog (tombstoned entries keep both).
  /// Used after snapshot restore / WAL replay, where mutations bypass the
  /// live Note() path.
  void Rebuild(const VersionLog& versions, const Catalog& catalog);

 private:
  // Ordered maps: SourcesChangedSince must enumerate deterministically.
  std::map<uint32_t, Version> by_source_;
  std::map<std::string, Version, std::less<>> by_prefix_;
  Version global_ = 0;
};

}  // namespace idm::index

#endif  // IDM_INDEX_EPOCH_MAP_H_
