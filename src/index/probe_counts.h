// Per-query index-probe counters (DESIGN.md §11).
//
// The index structures themselves stay free of instrumentation state — they
// are copied and wholesale-replaced on snapshot restore, so atomics inside
// them would be awkward and the counts would survive restores they should
// not. Instead the query evaluator accumulates a plain ProbeCounts per
// evaluation arm and merges arms in input order (exactly like its rule
// ledger), which keeps the totals deterministic under parallel execution.

#ifndef IDM_INDEX_PROBE_COUNTS_H_
#define IDM_INDEX_PROBE_COUNTS_H_

#include <cstdint>

namespace idm::index {

/// Counts of index lookups issued while evaluating one query.
struct ProbeCounts {
  uint64_t name_lookups = 0;     ///< R2 name-index pattern lookups
  uint64_t content_phrases = 0;  ///< R1 inverted-index phrase queries
  uint64_t tuple_scans = 0;      ///< R3 attribute-table scans
  uint64_t graph_walks = 0;      ///< R4/R6 descendant / reached-from walks

  uint64_t total() const {
    return name_lookups + content_phrases + tuple_scans + graph_walks;
  }

  void Merge(const ProbeCounts& other) {
    name_lookups += other.name_lookups;
    content_phrases += other.content_phrases;
    tuple_scans += other.tuple_scans;
    graph_walks += other.graph_walks;
  }
};

}  // namespace idm::index

#endif  // IDM_INDEX_PROBE_COUNTS_H_
