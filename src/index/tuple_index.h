// Tuple Index & Replica (paper §7.2, structure 2): an in-memory replica of
// all tuple components plus vertically partitioned, per-attribute sorted
// column indexes (the paper cites the Decomposition Storage Model [11]).
// Supports point and range predicates over any attribute name.

#ifndef IDM_INDEX_TUPLE_INDEX_H_
#define IDM_INDEX_TUPLE_INDEX_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tuple.h"
#include "index/inverted_index.h"  // for DocId
#include "util/exec_context.h"
#include "util/result.h"

namespace idm::index {

/// Comparison operators of iQL tuple predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

class TupleIndex {
 public:
  /// Stores the replica and indexes every attribute of \p tuple under the
  /// attribute's *normalized* name (lower-cased, non-alphanumerics
  /// stripped: "last modified time" and "lastmodified" both normalize
  /// toward "lastmodifiedtime", and query attributes match by normalized
  /// prefix). Re-adding an id replaces its tuple.
  void Add(DocId id, const core::TupleComponent& tuple);

  void Remove(DocId id);

  /// The replica: tuple of \p id (empty component when unknown).
  const core::TupleComponent& TupleOf(DocId id) const;

  /// Ids whose attribute (matched by normalized name or normalized prefix,
  /// e.g. query "lastmodified" → column "lastmodifiedtime") satisfies
  /// `value <op> literal`. Sorted ascending. Views without the attribute
  /// never match.
  ///
  /// Thread-safety: concurrent Scan calls are safe (the lazy column sort
  /// is guarded); Add/Remove must not run concurrently with Scan — sync
  /// and query never overlap, as everywhere else in the index layer.
  ///
  /// Under a governed context (\p ctx non-null) the copy-out loop ticks at
  /// bounded stride and stops early once the family is doomed; the result
  /// is then a subset (incomplete — check ctx->status()).
  std::vector<DocId> Scan(const std::string& attribute, CompareOp op,
                          const core::Value& literal,
                          util::ExecContext* ctx = nullptr) const;

  /// Normalizes an attribute name as described at Add().
  static std::string NormalizeAttribute(const std::string& name);

  size_t size() const { return replica_.size(); }

  /// Approximate footprint in bytes for Table 3 accounting.
  size_t MemoryUsage() const;

  /// Deterministic binary image (replica sorted by id) for checkpoints;
  /// DeserializeInto re-Adds every tuple into \p out (cleared first),
  /// rebuilding the column indexes. Out-parameter form because the mutex
  /// and atomic members make TupleIndex non-movable.
  std::string Serialize() const;
  static Status DeserializeInto(const std::string& data, TupleIndex* out);

  /// Drops all tuples and columns.
  void Clear();

 private:
  struct Column {
    // (value, id), kept sorted; rebuilt lazily after bulk inserts. `dirty`
    // is atomic and the rebuild mutex-guarded so that parallel query
    // leaves may Scan the same column concurrently (release on the sorter,
    // acquire on readers orders the sorted entries before dirty=false).
    std::vector<std::pair<core::Value, DocId>> entries;
    std::atomic<bool> dirty{false};
  };
  const Column* FindColumn(const std::string& attribute) const;
  void SortColumn(Column* column) const;

  std::unordered_map<DocId, core::TupleComponent> replica_;
  mutable std::map<std::string, Column> columns_;
  mutable std::mutex sort_mu_;  ///< serializes lazy column rebuilds
};

}  // namespace idm::index

#endif  // IDM_INDEX_TUPLE_INDEX_H_
