// Data lineage (paper §8, conclusion item 2): "keeping the history of all
// data transformations that originated a given resource view". Because iDM
// represents the whole dataspace in one model, lineage is a single edge
// relation over view ids, regardless of source or format.
//
// The RVM records an edge whenever a transformation produces a view:
// converter-derived views point at the file view they were extracted from;
// copies point at their origin. Chains compose ("copied from X, which was
// extracted from Y").

#ifndef IDM_INDEX_LINEAGE_H_
#define IDM_INDEX_LINEAGE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"  // for DocId
#include "util/result.h"

namespace idm::index {

/// One provenance edge: this view was produced from `origin` by
/// `transformation` ("convert:latex", "convert:xml", "copy", ...).
struct LineageEdge {
  DocId origin = 0;
  std::string transformation;
};

class LineageStore {
 public:
  /// Records that \p derived was produced from \p origin. A view may have
  /// several origins (e.g. merged documents); duplicates are collapsed.
  void Record(DocId derived, DocId origin, std::string transformation);

  /// Drops all lineage of \p derived (both directions).
  void Forget(DocId id);

  /// Direct origins of \p id, in recording order.
  const std::vector<LineageEdge>& OriginsOf(DocId id) const;

  /// Views directly produced from \p id.
  std::vector<DocId> DerivedFrom(DocId id) const;

  /// The full provenance chain of \p id: transitive origins in BFS order
  /// (nearest first). Cycle-safe; bounded by \p max_depth.
  std::vector<LineageEdge> ProvenanceChain(DocId id,
                                           size_t max_depth = 64) const;

  size_t edge_count() const { return edges_; }
  size_t MemoryUsage() const;

  /// Deterministic binary image (origin lists sorted by derived id) for
  /// checkpoints; Deserialize replays Record, rebuilding derived_.
  std::string Serialize() const;
  static Result<LineageStore> Deserialize(const std::string& data);

 private:
  std::unordered_map<DocId, std::vector<LineageEdge>> origins_;
  std::unordered_map<DocId, std::vector<DocId>> derived_;
  size_t edges_ = 0;
};

}  // namespace idm::index

#endif  // IDM_INDEX_LINEAGE_H_
